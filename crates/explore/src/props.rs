//! Ready-made properties for [`Explorer::check`](crate::Explorer::check).
//!
//! A property is any `FnOnce(&RunOutcome<T>) -> Result<(), String>`;
//! these helpers cover the recurring ones:
//!
//! * [`terminates`] — "terminates without deadlock": the run must not
//!   end in [`RunError::Deadlock`].
//! * [`no_uncaught`] — no exception escapes the main thread, i.e. every
//!   asynchronous exception is caught somewhere ("no lost exception"
//!   when the program under test installs handlers that account for
//!   every `throwTo`).
//! * [`returns`] — the main thread computes exactly the expected value.
//! * [`releases_balanced`] — "bracket releases on every path": if the
//!   program prints a marker on acquire and another on release, every
//!   explored schedule must balance them.
//! * [`output_satisfies`] — an arbitrary predicate over the console
//!   output.

use std::fmt::Debug;

use conch_runtime::error::RunError;

use crate::explorer::RunOutcome;

/// The run must not deadlock. Uncaught exceptions and step-budget
/// truncation are *not* failures for this property.
pub fn terminates<T>(out: &RunOutcome<T>) -> Result<(), String> {
    match &out.result {
        Err(e @ RunError::Deadlock { .. }) => Err(e.to_string()),
        _ => Ok(()),
    }
}

/// No exception may escape the main thread.
pub fn no_uncaught<T>(out: &RunOutcome<T>) -> Result<(), String> {
    match &out.result {
        Err(e @ RunError::Uncaught(_)) => Err(e.to_string()),
        _ => Ok(()),
    }
}

/// The main thread must return exactly `expected`.
pub fn returns<T>(expected: T) -> impl FnOnce(&RunOutcome<T>) -> Result<(), String>
where
    T: PartialEq + Debug + 'static,
{
    move |out| match &out.result {
        Ok(v) if *v == expected => Ok(()),
        other => Err(format!("expected Ok({expected:?}), got {other:?}")),
    }
}

/// Every `acquire` marker printed must be matched by a `release` marker
/// — the observable form of "bracket releases on every path".
pub fn releases_balanced<T>(
    acquire: char,
    release: char,
) -> impl FnOnce(&RunOutcome<T>) -> Result<(), String> {
    move |out| {
        let a = out.output.chars().filter(|&c| c == acquire).count();
        let r = out.output.chars().filter(|&c| c == release).count();
        if a == r {
            Ok(())
        } else {
            Err(format!(
                "unbalanced bracket: {a} acquire ({acquire:?}) vs {r} release ({release:?}) in output {:?}",
                out.output
            ))
        }
    }
}

/// The console output must satisfy `pred`; `desc` names the property in
/// the failure message.
pub fn output_satisfies<T>(
    desc: &'static str,
    pred: impl FnOnce(&str) -> bool + 'static,
) -> impl FnOnce(&RunOutcome<T>) -> Result<(), String> {
    move |out| {
        if pred(&out.output) {
            Ok(())
        } else {
            Err(format!("output {:?} violates: {desc}", out.output))
        }
    }
}

/// Conjunction of two properties.
pub fn all_of<T>(
    first: impl FnOnce(&RunOutcome<T>) -> Result<(), String> + 'static,
    second: impl FnOnce(&RunOutcome<T>) -> Result<(), String> + 'static,
) -> impl FnOnce(&RunOutcome<T>) -> Result<(), String> {
    move |out| {
        first(out)?;
        second(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explorer::{Explorer, TestCase};
    use conch_runtime::io::Io;

    #[test]
    fn terminates_flags_deadlock() {
        let result = Explorer::new().check(|| {
            TestCase::new(
                Io::new_empty_mvar::<i64>().and_then(|m| m.take()),
                terminates,
            )
        });
        let failure = result.expect_fail();
        assert!(failure.message.contains("deadlock"), "{}", failure.message);
    }

    #[test]
    fn returns_accepts_the_right_value() {
        let result =
            Explorer::new().check(|| TestCase::new(Io::pure(41i64).map(|x| x + 1), returns(42)));
        result.expect_pass();
    }

    #[test]
    fn releases_balanced_spots_a_leak() {
        let result = Explorer::new().check(|| {
            TestCase::new(
                Io::put_char('a')
                    .then(Io::put_char('a'))
                    .then(Io::put_char('r')),
                releases_balanced('a', 'r'),
            )
        });
        let failure = result.expect_fail();
        assert!(
            failure.message.contains("unbalanced"),
            "{}",
            failure.message
        );
    }
}
