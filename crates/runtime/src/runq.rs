//! The scheduler's run queue: FIFO order with O(1) unlinking.
//!
//! `VecDeque::remove(i)` shifts up to half the queue on every pick —
//! O(n) per scheduling decision under the Random and External policies,
//! which pick from the middle. This queue keeps the same observable
//! FIFO semantics but unlinks by *tombstoning*: removal blanks the
//! entry in place, and compaction runs only when tombstones outnumber
//! live entries, so the amortized cost per operation is O(1) while the
//! iteration order stays byte-identical to the `VecDeque` it replaced.

use std::collections::VecDeque;

use crate::ids::ThreadId;

/// An order-preserving queue of runnable threads.
#[derive(Debug, Default)]
pub(crate) struct RunQueue {
    buf: VecDeque<Option<ThreadId>>,
    /// Number of tombstones (`None` entries) in `buf`.
    dead: usize,
}

impl RunQueue {
    pub fn new() -> Self {
        RunQueue::default()
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.buf.len() - self.dead
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn clear(&mut self) {
        self.buf.clear();
        self.dead = 0;
    }

    pub fn push_back(&mut self, tid: ThreadId) {
        self.buf.push_back(Some(tid));
    }

    /// Pre-grows the buffer for a batch of `additional` pushes, so a
    /// mass wakeup (one timer-wheel tick's worth of sleepers) pays for
    /// at most one reallocation instead of amortizing per push.
    pub fn reserve(&mut self, additional: usize) {
        self.buf.reserve(additional);
    }

    /// Pops the first live entry; amortized O(1).
    pub fn pop_front(&mut self) -> Option<ThreadId> {
        while let Some(entry) = self.buf.pop_front() {
            match entry {
                Some(tid) => return Some(tid),
                None => self.dead -= 1,
            }
        }
        None
    }

    /// Live entries in FIFO order.
    pub fn iter(&self) -> impl Iterator<Item = ThreadId> + '_ {
        self.buf.iter().filter_map(|s| *s)
    }

    /// Live entries in FIFO order, paired with raw buffer positions that
    /// stay valid for [`RunQueue::take_at`] until the next mutation.
    pub fn iter_with_pos(&self) -> impl Iterator<Item = (usize, ThreadId)> + '_ {
        self.buf
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.map(|t| (i, t)))
    }

    /// Unlinks the entry at raw position `pos` (as yielded by
    /// [`RunQueue::iter_with_pos`]); O(1) plus amortized compaction.
    pub fn take_at(&mut self, pos: usize) -> ThreadId {
        let tid = self.buf[pos].take().expect("live entry at position");
        self.dead += 1;
        self.maybe_compact();
        tid
    }

    /// Unlinks the `i`-th live entry in FIFO order.
    pub fn remove_live(&mut self, i: usize) -> ThreadId {
        let pos = self.iter_with_pos().nth(i).expect("live index in range").0;
        self.take_at(pos)
    }

    fn maybe_compact(&mut self) {
        if self.dead * 2 > self.buf.len() {
            self.buf.retain(Option::is_some);
            self.dead = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::tid;

    fn drain(q: &mut RunQueue) -> Vec<u64> {
        let mut out = Vec::new();
        while let Some(t) = q.pop_front() {
            out.push(t.index());
        }
        out
    }

    #[test]
    fn fifo_order_is_preserved() {
        let mut q = RunQueue::new();
        for i in 0..5 {
            q.push_back(tid(i));
        }
        assert_eq!(q.len(), 5);
        assert_eq!(drain(&mut q), [0, 1, 2, 3, 4]);
        assert!(q.is_empty());
    }

    #[test]
    fn remove_live_matches_vecdeque_remove() {
        let mut q = RunQueue::new();
        for i in 0..5 {
            q.push_back(tid(i));
        }
        assert_eq!(q.remove_live(2).index(), 2);
        assert_eq!(q.remove_live(0).index(), 0);
        assert_eq!(q.len(), 3);
        assert_eq!(q.iter().map(ThreadId::index).collect::<Vec<_>>(), [1, 3, 4]);
        assert_eq!(drain(&mut q), [1, 3, 4]);
    }

    #[test]
    fn take_at_uses_positions_from_iter_with_pos() {
        let mut q = RunQueue::new();
        for i in 0..4 {
            q.push_back(tid(i));
        }
        q.remove_live(1); // introduce a tombstone
        let pairs: Vec<_> = q.iter_with_pos().collect();
        assert_eq!(
            pairs.iter().map(|(_, t)| t.index()).collect::<Vec<_>>(),
            [0, 2, 3]
        );
        let (pos, t) = pairs[1];
        assert_eq!(q.take_at(pos), t);
        assert_eq!(drain(&mut q), [0, 3]);
    }

    #[test]
    fn compaction_bounds_the_buffer() {
        let mut q = RunQueue::new();
        for round in 0..1_000u64 {
            q.push_back(tid(round));
            q.push_back(tid(round + 1_000_000));
            q.remove_live(1);
            q.pop_front();
        }
        assert!(q.is_empty());
        // Tombstones never exceed live entries + 1 between operations.
        assert!(q.buf.len() <= 2);
    }

    #[test]
    fn interleaved_push_pop_remove() {
        let mut q = RunQueue::new();
        for i in 0..6 {
            q.push_back(tid(i));
        }
        assert_eq!(q.pop_front().unwrap().index(), 0);
        assert_eq!(q.remove_live(3).index(), 4);
        q.push_back(tid(6));
        assert_eq!(
            q.iter().map(ThreadId::index).collect::<Vec<_>>(),
            [1, 2, 3, 5, 6]
        );
        assert_eq!(q.len(), 5);
    }
}
