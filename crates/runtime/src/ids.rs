//! Identifiers for threads and `MVar`s.
//!
//! Both are small, copyable, ordered handles. In the paper's semantics
//! (Figure 2) they correspond to the restricted names `t` and `m`; in the
//! runtime they index slabs owned by the [`Runtime`](crate::scheduler::Runtime).

use std::fmt;

/// Identity of a green thread, as returned by `forkIO` and `myThreadId`.
///
/// `ThreadId`s support equality and ordering, as in Concurrent Haskell.
///
/// The *identity* of a thread is its spawn sequence number (`seq`):
/// monotonically increasing within a run, never reused, and the number
/// rendered by `Display`/[`ThreadId::index`] — so traces and schedule
/// certificates name threads in spawn order regardless of how the
/// runtime stores them. The `slot`/`generation` pair is a private
/// addressing hint: finished threads vacate their slot in the thread
/// table for reuse, and the generation tag makes a stale handle (e.g. a
/// `throwTo` aimed at a thread that finished and whose slot was
/// recycled) miss cleanly instead of hitting the new occupant.
///
/// # Examples
///
/// ```
/// use conch_runtime::prelude::*;
///
/// let mut rt = Runtime::new();
/// let tid = rt.run(Io::fork(Io::pure(()))).unwrap();
/// let main = rt.main_thread_id();
/// assert_ne!(tid, main);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct ThreadId {
    /// Spawn sequence number — the observable identity.
    pub(crate) seq: u32,
    /// Thread-table slot this thread occupies (may be recycled later).
    pub(crate) slot: u16,
    /// Generation of the slot at spawn time; a lookup with a stale
    /// generation misses.
    pub(crate) generation: u16,
}

impl ThreadId {
    /// A handle addressing slot `seq` at generation 0 — the layout every
    /// thread has while no slot has been recycled.
    ///
    /// The packing keeps a `ThreadId` at 8 bytes — the same as the plain
    /// index it replaced — because handles are copied into every trace
    /// event, schedule choice and sleep-set entry of the explorer's hot
    /// loop. `u32` bounds spawns per run at ~4 billion and `u16` bounds
    /// *concurrent* threads at 65 535; both are enforced with explicit
    /// panics in the scheduler rather than silent wraparound.
    pub(crate) fn fresh(seq: u32, slot: u16, generation: u16) -> ThreadId {
        ThreadId {
            seq,
            slot,
            generation,
        }
    }

    /// The raw spawn sequence number of this thread. Useful for logging
    /// and for the semantics bridge, which names threads `t0`, `t1`, ….
    pub fn index(self) -> u64 {
        self.seq as u64
    }

    /// The handle with raw index `i` — for tooling and tests that build
    /// footprints without running a program (identity is the sequence
    /// number alone; the addressing hint of a fabricated id names a
    /// real slot only while no slot has been recycled).
    pub fn from_index(i: u64) -> Self {
        ThreadId::fresh(i as u32, i as u16, 0)
    }
}

// Identity is the spawn sequence number alone: two handles with the
// same `seq` always carry the same slot/generation, and hashing or
// comparing the addressing hint would be redundant.
impl PartialEq for ThreadId {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
    }
}

impl Eq for ThreadId {}

impl PartialOrd for ThreadId {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for ThreadId {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.seq.cmp(&other.seq)
    }
}

impl std::hash::Hash for ThreadId {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.seq.hash(state);
    }
}

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "thread#{}", self.seq)
    }
}

/// Identity of an `MVar` cell inside a [`Runtime`](crate::scheduler::Runtime).
///
/// This is the untyped handle; user code normally holds the typed wrapper
/// [`MVar<T>`](crate::mvar::MVar) instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MVarId(pub(crate) u64);

impl MVarId {
    /// The raw index of this `MVar`.
    pub fn index(self) -> u64 {
        self.0
    }

    /// The handle with raw index `i` — for tooling and tests that
    /// build footprints without running a program; a fabricated id
    /// names a real `MVar` only if one with that index exists.
    pub fn from_index(i: u64) -> Self {
        MVarId(i)
    }
}

impl fmt::Display for MVarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "mvar#{}", self.0)
    }
}

#[cfg(test)]
pub(crate) fn tid(seq: u64) -> ThreadId {
    ThreadId::fresh(seq as u32, seq as u16, 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_ids_are_ordered() {
        assert!(tid(0) < tid(1));
        assert_eq!(tid(3), tid(3));
    }

    #[test]
    fn display_is_readable() {
        assert_eq!(tid(2).to_string(), "thread#2");
        assert_eq!(MVarId(5).to_string(), "mvar#5");
    }

    #[test]
    fn index_round_trip() {
        assert_eq!(tid(9).index(), 9);
        assert_eq!(MVarId(4).index(), 4);
    }

    #[test]
    fn identity_ignores_the_addressing_hint() {
        // A recycled slot gives a later thread a different (slot, gen)
        // pair; equality, ordering and hashing see only the seq.
        let a = ThreadId::fresh(5, 1, 0);
        let b = ThreadId::fresh(5, 3, 2);
        assert_eq!(a, b);
        assert!(ThreadId::fresh(4, 9, 9) < a);
        assert_eq!(a.to_string(), "thread#5");
        assert_eq!(a.index(), 5);
    }
}
