//! The dynamic partial-order reduction engine
//! ([`Reduction::Dpor`](crate::explorer::Reduction)).
//!
//! Instead of branching on every enabled alternative at every branch
//! point (the sleep-set DFS in [`crate::pool`]), DPOR lets each
//! executed run *tell* the search which alternatives matter: the run's
//! step log is analyzed for races ([`crate::clocks`]), and for each
//! race a backtrack entry is installed at the earlier step's branch
//! point, forcing the later thread there in some future run. Branch
//! points whose alternatives commute with everything that follows are
//! never branched at all — the win over the conservative footprint
//! relation the sleep-set DFS prunes with.
//!
//! # Shape of the search: rounds
//!
//! The search is a fixpoint of *rounds*. Each round is a complete DFS
//! over the tree the current backtrack sets justify:
//!
//! 1. Every scheduling branch point becomes a
//!    [`Node::restricted`](crate::frontier::Node) whose children are
//!    the executed default choice plus the point's backtrack set
//!    (frozen for the round). Delivery points always branch both arms
//!    — a delivery is dependent on every step of its target, so both
//!    orders are always relevant. The DFS machinery is the same one
//!    the sleep-set engine uses: per-sibling sleep entries, donation
//!    based work stealing, DFS keys.
//! 2. Each completed run is registered in a shared trie. Only the
//!    *first* registration of a path counts the run, merges its
//!    stats, analyzes its races, and requests backtrack insertions —
//!    a pure function of the path, so re-executions in later rounds
//!    (the price of re-walking the grown tree) contribute nothing.
//! 3. At the round barrier the pending insertions are folded into the
//!    trie canonically ([`Frontier::dpor_apply_pending`]); if nothing
//!    grew, the backtrack sets are closed under the race analysis and
//!    the search is done.
//!
//! Within a round the tree is fixed, so the work-stealing DFS is
//! deterministic; the insertion set is a union over first-registered
//! runs, so the barrier's output is timing-independent; by induction
//! every counter and the DFS-earliest failure certificate are
//! bit-identical for any worker count. To keep the certificate a
//! function of the run set alone, a failing run neither stops a round
//! nor prunes DFS-later work — the fixpoint drains completely.
//!
//! # Sleep discipline
//!
//! Rounds compose with sleep sets exactly as in classical DPOR: a
//! backtrack member that is asleep at its point (its step is already
//! covered by the sibling subtree that put it to sleep) is skipped at
//! exploration time (`Node::advance`), never at planning time —
//! whether a thread is asleep depends on the exploration context,
//! while the planned insertions must stay a pure function of the path.

use std::cell::RefCell;
use std::rc::Rc;

use conch_runtime::stats::Stats;
use conch_runtime::value::FromValue;

use crate::clocks::{RaceFlag, RaceState};
use crate::driver::DriverState;
use crate::explorer::{Explorer, TestCase};
use crate::frontier::{dfs_key, Frontier, Node};
use crate::pool::ItemGuard;
use crate::schedule::Choice;

/// Run one worker of one DPOR round to completion: pull items, DFS
/// each subtree restricted to the round's backtrack sets, register and
/// analyze each first-executed path, donate when peers starve. The
/// caller loops rounds until [`Frontier::dpor_apply_pending`] reports
/// closure.
///
/// Re-walking the grown tree each round is what makes the fixpoint
/// simple, but most of the tree is unchanged from round to round — so
/// before executing a script the worker asks the trie whether the
/// subtree below it is *clean* ([`Frontier::dpor_subtree_clean`]):
/// registered in full by an earlier round, with no backtrack entry
/// added since. A clean subtree would replay only already-registered
/// paths (which contribute nothing — registration is first-run-only),
/// so it is skipped without executing anything. Only dirty spines and
/// genuinely new paths are ever replayed, which collapses the
/// per-round cost from O(tree) to O(changed subtrees).
pub(crate) fn dpor_round_loop<T, F>(explorer: &Explorer, frontier: &Frontier, mut factory: F)
where
    T: FromValue,
    F: FnMut() -> TestCase<T>,
{
    let config = explorer.config();
    let mut rt = explorer.make_runtime();
    let state = Rc::new(RefCell::new(DriverState::new(
        Vec::new(),
        Vec::new(),
        config.preemption_bound,
        config.max_depth,
    )));
    state.borrow_mut().trace_exec = true;
    let mut stack: Vec<Node> = Vec::new();
    let mut script: Vec<Choice> = Vec::new();
    let mut local_stats = Stats::default();
    let mut races = RaceState::new(config.legacy_race_analysis);
    let mut replay_ns = 0u64;
    let mut analysis_ns = 0u64;

    while let Some(item) = frontier.next_item() {
        let _guard = ItemGuard(frontier);
        stack.clear();
        if let Some(node) = item.node.clone() {
            stack.push(node);
        }
        'dfs: loop {
            if frontier.is_stopped() {
                break 'dfs;
            }
            script.clear();
            script.extend_from_slice(&item.prefix);
            script.extend(stack.iter().map(Node::choice));
            if frontier.dpor_subtree_clean(&script) {
                // Every path below this script is registered and its
                // backtrack sets have not changed since the round that
                // drained it: replaying it would register nothing, so
                // skip the whole subtree.
                if !backtrack_stack(&mut stack) {
                    break 'dfs;
                }
                continue 'dfs;
            }
            load_script(&state, &item, &stack);
            let t0 = std::time::Instant::now();
            let (run, schedule) = explorer.run_once(&mut rt, factory(), &state);
            replay_ns += t0.elapsed().as_nanos() as u64;
            let st = state.borrow();
            let candidates: Vec<u32> = st
                .record
                .iter()
                .map(|p| {
                    if p.is_delivery() {
                        2
                    } else if p.is_arm() {
                        p.arms as u32
                    } else {
                        p.alts.len() as u32
                    }
                })
                .collect();
            let new_path = frontier.dpor_register_run(&schedule.choices, &candidates);
            if new_path {
                frontier.note_run(run.depth_hit, run.stats.steps, &schedule.choices);
                local_stats.merge(&run.stats);
                if let Err(message) = run.check_result {
                    // A failure neither stops the round nor prunes
                    // DFS-later work: the fixpoint must drain
                    // completely so the counters and the DFS-earliest
                    // certificate are functions of the run set alone.
                    frontier.offer_failure(dfs_key(&st.record), schedule.clone(), message);
                }
                let t1 = std::time::Instant::now();
                let analysis = races.analyze(&st.exec_log, &st.births);
                analysis_ns += t1.elapsed().as_nanos() as u64;
                local_stats.races_detected += analysis.races;
                let inserts = plan_inserts(&st, &analysis.flags);
                frontier.dpor_request_inserts(&schedule.choices, &inserts);
            }
            drop(st);
            // Newly discovered branch points below the scripted prefix
            // become DFS nodes restricted to the round's backtrack
            // sets (registered above, so the trie walk resolves the
            // whole path even on a first execution).
            {
                let scripted = item.prefix.len() + stack.len();
                let lists = frontier.dpor_backtrack_lists(&schedule.choices, scripted);
                let mut st = state.borrow_mut();
                for (point, backtrack) in st.record.drain(scripted..).zip(lists) {
                    if point.is_delivery() || point.is_arm() {
                        // Delivery and oracle points branch all their
                        // alternatives in every round — a delivery is
                        // dependent on every step of its target, and an
                        // oracle's arms are first-class behaviours, so
                        // neither is ever restricted by backtrack sets.
                        stack.push(Node::from_point(point));
                    } else {
                        let chosen = match point.chosen {
                            Choice::Thread(t) => t,
                            Choice::Deliver(_) | Choice::Arm(_) => {
                                unreachable!("scheduling point")
                            }
                        };
                        let mut order = Vec::with_capacity(1 + backtrack.len());
                        order.push(chosen);
                        order.extend(backtrack.into_iter().filter(|&t| t != chosen));
                        stack.push(Node::restricted(point, order));
                    }
                }
            }
            if frontier.hungry() {
                donate(frontier, &item, &mut stack);
            }
            if !backtrack_stack(&mut stack) {
                break 'dfs;
            }
            if frontier.explored() >= config.max_schedules {
                frontier.request_stop();
                break 'dfs;
            }
            if let Some(budget) = config.max_total_steps {
                if frontier.steps() >= budget {
                    frontier.request_stop();
                    break 'dfs;
                }
            }
        }
    }
    frontier.merge_stats(&local_stats);
    frontier.add_timing(replay_ns, analysis_ns);
}

/// Translate one run's race flags into backtrack insertions — a pure
/// function of the executed path, so first-registration-only analysis
/// is sound. For each race at branch point `i` with later thread `q`:
/// force `q` at `i` when it was an enabled alternative there.
/// Otherwise walk the race's happens-before witnesses
/// (Flanagan–Godefroid's E set, in log order): forcing any enabled
/// witness makes progress toward the reversal, and a witness equal to
/// the chosen thread means the progress path is this run's own subtree
/// — nothing to add. Only when no witness qualifies does the
/// conservative clause fire: insert every sibling.
fn plan_inserts(st: &DriverState, flags: &[RaceFlag]) -> Vec<(usize, u64)> {
    let mut inserts: Vec<(usize, u64)> = Vec::new();
    for flag in flags {
        let point = flag.point as usize;
        let p = &st.record[point];
        if p.is_delivery() || p.is_arm() {
            // Both delivery arms are always explored; the reversal of
            // a race whose earlier event is the delivery transition is
            // the opposite arm. Oracle points likewise branch every
            // arm unconditionally (and their steps are never logged,
            // so no race should flag one anyway).
            continue;
        }
        let chosen = match p.chosen {
            Choice::Thread(t) => t,
            Choice::Deliver(_) | Choice::Arm(_) => {
                unreachable!("scheduling point must hold a thread choice")
            }
        };
        if flag.later_tid == chosen {
            continue;
        }
        if p.alts.iter().any(|&(a, _)| a == flag.later_tid) {
            inserts.push((point, flag.later_tid));
            continue;
        }
        let mut handled = false;
        for &w in &flag.witnesses {
            if w == chosen {
                handled = true;
                break;
            }
            if p.alts.iter().any(|&(a, _)| a == w) {
                inserts.push((point, w));
                handled = true;
                break;
            }
        }
        if !handled {
            for &(a, _) in p.alts.iter() {
                if a != chosen {
                    inserts.push((point, a));
                }
            }
        }
    }
    inserts
}

/// Refill the driver's script and sleep entries for the schedule the
/// item prefix + stack currently denote (the DPOR twin of
/// [`crate::pool`]'s `load_script`; sleep entries are always on).
fn load_script(state: &Rc<RefCell<DriverState>>, item: &crate::frontier::WorkItem, stack: &[Node]) {
    let mut st = state.borrow_mut();
    st.reset();
    st.script.extend_from_slice(&item.prefix);
    st.extra_sleep.extend_from_slice(&item.base_sleep);
    let base = item.prefix.len();
    for (i, node) in stack.iter().enumerate() {
        st.script.push(node.choice());
        node.each_explored(|entry| st.extra_sleep.push((base + i, entry)));
    }
}

/// Advance the deepest advanceable node; `false` when the item's
/// subtree is exhausted.
fn backtrack_stack(stack: &mut Vec<Node>) -> bool {
    loop {
        match stack.last_mut() {
            None => return false,
            Some(node) => {
                if node.advance() {
                    return true;
                }
                stack.pop();
            }
        }
    }
}

/// Split the shallowest unexhausted branch points of the stack into
/// [`WorkItem`](crate::frontier::WorkItem)s covering their remaining
/// alternatives, and seal them locally (the DPOR twin of
/// [`crate::pool`]'s `donate` — restricted nodes donate their
/// remaining backtrack children). Donates up to one item per currently
/// starving thief, pushed as one batch.
fn donate(frontier: &Frontier, item: &crate::frontier::WorkItem, stack: &mut [Node]) {
    let want = frontier.starving().max(1);
    let mut batch: Vec<crate::frontier::WorkItem> = Vec::new();
    for i in 0..stack.len() {
        if batch.len() >= want {
            break;
        }
        if stack[i].sealed {
            continue;
        }
        let mut remainder = stack[i].clone();
        if !remainder.advance() {
            continue;
        }
        let base = item.prefix.len();
        let mut prefix = item.prefix.clone();
        let mut base_sleep = item.base_sleep.clone();
        let mut base_key = item.base_key.clone();
        for (j, node) in stack[..i].iter().enumerate() {
            prefix.push(node.choice());
            node.each_explored(|entry| base_sleep.push((base + j, entry)));
            base_key.push(node.key_index());
        }
        batch.push(crate::frontier::WorkItem {
            prefix,
            base_sleep,
            base_key,
            node: Some(remainder),
        });
        stack[i].sealed = true;
    }
    frontier.push_batch(batch);
}
