//! Supervisors: monitored children, restart strategies, intensity
//! windows, and trees.
//!
//! A supervisor is itself an actor (so supervisors compose into trees
//! via [`supervisor_child`]): its mailbox carries [`Down`] messages
//! from a [`monitor`] on each child, tagged with the child's spec
//! index. The loop:
//!
//! * ignores *stale* notices (a `Down` whose `from` is not the current
//!   incarnation's thread — e.g. the delayed notice of a child the
//!   supervisor itself killed during an all-for-one sweep);
//! * removes children that exited [`ExitReason::Normal`] without
//!   restarting them;
//! * on an abnormal exit, slides the restart-intensity window: if more
//!   than `max_restarts` abnormal exits land within `window` virtual
//!   microseconds, the supervisor gives up — kills every child and
//!   crashes, escalating to *its* supervisor;
//! * otherwise restarts per strategy: the crashed child
//!   ([`Strategy::OneForOne`]), every child ([`Strategy::AllForOne`]),
//!   or the crashed child and all later-started ones
//!   ([`Strategy::RestForOne`]). Replaced incarnations are killed
//!   synchronously (§9 `throwTo`) before their successors start.
//!
//! **No orphans**: the whole supervisor body is guarded so that *any*
//! exit — give-up, crash, or an asynchronous kill from a storm or a
//! parent supervisor — first kills every live child. Children spawned
//! with [`spawn_actor_on`] keep their mailbox across restarts, so
//! unconsumed messages survive the crash: restart preserves queue
//! state, and any application state the child keeps in external
//! `MVar`s is protected by its own masked transactions.

use std::rc::Rc;

use conch_runtime::exception::Exception;
use conch_runtime::io::Io;
use conch_runtime::mvar::MVar;
use conch_runtime::value::{FromValue, IntoValue, Value};

use crate::actor::{monitor, spawn_actor, ActorRef, Down};
use crate::mailbox::Mailbox;

/// Which children a crash takes down with it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Restart only the crashed child.
    OneForOne,
    /// Kill and restart every child.
    AllForOne,
    /// Kill and restart the crashed child and all later-started ones.
    RestForOne,
}

/// How to (re)start one child. The closure runs once at supervisor
/// start and once per restart; capture `Copy` handles (mailboxes,
/// state cells) to give successive incarnations shared state.
#[derive(Clone)]
pub struct ChildSpec {
    start: Rc<dyn Fn() -> Io<ActorRef<Value>>>,
}

/// Builds a [`ChildSpec`] from a start closure.
pub fn child_spec(start: impl Fn() -> Io<ActorRef<Value>> + 'static) -> ChildSpec {
    ChildSpec {
        start: Rc::new(start),
    }
}

/// A supervisor's configuration: strategy, restart budget, children.
#[derive(Clone)]
pub struct SupervisorSpec {
    strategy: Strategy,
    /// Maximum abnormal exits tolerated within `window` before giving up.
    max_restarts: usize,
    /// Sliding window, in virtual microseconds.
    window: i64,
    children: Vec<ChildSpec>,
}

impl SupervisorSpec {
    /// A spec with the given strategy, no children yet, and a default
    /// budget of 3 restarts per 1 000 000 virtual microseconds.
    pub fn new(strategy: Strategy) -> Self {
        SupervisorSpec {
            strategy,
            max_restarts: 3,
            window: 1_000_000,
            children: Vec::new(),
        }
    }

    /// Sets the restart-intensity budget.
    pub fn intensity(mut self, max_restarts: usize, window: i64) -> Self {
        self.max_restarts = max_restarts;
        self.window = window.max(1);
        self
    }

    /// Appends a child (start order is rest-for-one order).
    pub fn child(mut self, spec: ChildSpec) -> Self {
        self.children.push(spec);
        self
    }
}

/// A running supervisor: the supervisor actor plus the cell naming
/// the *current* child incarnations (`List` of `Pair(Int(index),
/// child-ref)`), exposed so audits and kill storms can aim at live
/// children and at the supervisor itself.
#[derive(Debug, Clone, Copy)]
pub struct Supervisor {
    /// The supervisor actor (its mailbox carries `Down` notices).
    pub actor: ActorRef<Down>,
    /// Current children, updated by the restart loop.
    pub children_cell: MVar<Value>,
}

impl Supervisor {
    /// The current child incarnations, in spec-index order.
    pub fn child_refs(&self) -> Io<Vec<ActorRef<Value>>> {
        let cell = self.children_cell;
        Io::block(cell.take().and_then(move |v| {
            let refs = decode_children(&v)
                .into_iter()
                .map(|(_, c)| c)
                .collect::<Vec<_>>();
            cell.put(v).map(move |_| refs)
        }))
    }

    /// Kills the supervisor (asynchronously); its exit guard kills
    /// every child, so no orphan survives.
    pub fn shutdown(&self) -> Io<()> {
        self.actor.kill()
    }

    /// Kills the supervisor with the §9 synchronous `throwTo`.
    pub fn shutdown_sync(&self) -> Io<()> {
        self.actor.kill_sync()
    }
}

impl IntoValue for Supervisor {
    fn into_value(self) -> Value {
        Value::Pair(
            Box::new(self.actor.into_value()),
            Box::new(Value::MVar(self.children_cell.id())),
        )
    }
}

impl FromValue for Supervisor {
    fn from_value(v: Value) -> Option<Self> {
        match v {
            Value::Pair(a, c) => Some(Supervisor {
                actor: ActorRef::from_value(*a)?,
                children_cell: MVar::from_id(c.as_mvar_id()?),
            }),
            _ => None,
        }
    }
}

fn decode_children(v: &Value) -> Vec<(usize, ActorRef<Value>)> {
    match v {
        Value::List(xs) => xs
            .iter()
            .filter_map(|x| match x {
                Value::Pair(i, c) => {
                    Some((i.as_int()? as usize, ActorRef::from_value((**c).clone())?))
                }
                _ => None,
            })
            .collect(),
        _ => Vec::new(),
    }
}

fn encode_children(children: Vec<(usize, ActorRef<Value>)>) -> Value {
    Value::List(
        children
            .into_iter()
            .map(|(i, c)| Value::Pair(Box::new(Value::Int(i as i64)), Box::new(c.into_value())))
            .collect(),
    )
}

/// One masked transaction over the children cell.
fn children_txn<R>(
    cell: MVar<Value>,
    f: impl FnOnce(&mut Vec<(usize, ActorRef<Value>)>) -> R + 'static,
) -> Io<R>
where
    R: FromValue + IntoValue + 'static,
{
    Io::block(cell.take().and_then(move |v| {
        let mut kids = decode_children(&v);
        let r = f(&mut kids);
        cell.put(encode_children(kids)).map(move |_| r)
    }))
}

/// Starts child `idx`, monitors it into the supervisor's mailbox
/// (mref = spec index) and records the incarnation.
fn start_child(
    spec: Rc<SupervisorSpec>,
    idx: usize,
    inbox: Mailbox<Down>,
    cell: MVar<Value>,
) -> Io<()> {
    (spec.children[idx].start)().and_then(move |child| {
        monitor(&child, inbox, idx as i64).then(children_txn(cell, move |kids| {
            kids.retain(|(i, _)| *i != idx);
            kids.push((idx, child));
            kids.sort_by_key(|(i, _)| *i);
        }))
    })
}

fn start_range(
    spec: Rc<SupervisorSpec>,
    indices: Vec<usize>,
    inbox: Mailbox<Down>,
    cell: MVar<Value>,
) -> Io<()> {
    let mut indices = indices;
    match indices.pop() {
        None => Io::unit(),
        Some(last) => {
            // Keep start order: recurse on the front first.
            let front = indices;
            let spec2 = Rc::clone(&spec);
            start_range(spec2, front, inbox, cell).then(start_child(spec, last, inbox, cell))
        }
    }
}

/// Synchronously kills the recorded incarnations at `indices` (dead
/// targets are no-ops) and drops them from the cell.
fn kill_indices(cell: MVar<Value>, indices: Vec<usize>) -> Io<()> {
    children_txn(cell, move |kids| {
        let doomed: Vec<Value> = kids
            .iter()
            .filter(|(i, _)| indices.contains(i))
            .map(|(_, c)| c.into_value())
            .collect();
        kids.retain(|(i, _)| !indices.contains(i));
        doomed
    })
    .and_then(kill_refs)
}

fn kill_refs(mut doomed: Vec<Value>) -> Io<()> {
    match doomed.pop() {
        None => Io::unit(),
        Some(v) => match ActorRef::<Value>::from_value(v) {
            Some(c) => c.kill_sync().then(kill_refs(doomed)),
            None => kill_refs(doomed),
        },
    }
}

/// Kills every live child, retrying if an asynchronous exception (a
/// storm striking the dying supervisor) interrupts the sweep. Each
/// kill is idempotent — `throwTo` at a dead thread is a no-op — so
/// retrying from the top cannot over-kill, and any finite storm lets
/// the sweep complete. This is the no-orphan guarantee.
fn kill_all_children(cell: MVar<Value>) -> Io<()> {
    children_txn(cell, move |kids| {
        let doomed: Vec<Value> = kids.iter().map(|(_, c)| c.into_value()).collect();
        kids.clear();
        doomed
    })
    .and_then(kill_refs)
    .catch(move |_| kill_all_children(cell))
}

/// Slides the intensity window and decides: `None` = give up,
/// `Some(times)` = proceed with the updated restart history.
fn admit_restart(mut times: Vec<i64>, now: i64, spec: &SupervisorSpec) -> Option<Vec<i64>> {
    times.retain(|t| now - *t <= spec.window);
    times.push(now);
    if times.len() > spec.max_restarts {
        None
    } else {
        Some(times)
    }
}

fn sup_loop(
    inbox: Mailbox<Down>,
    spec: Rc<SupervisorSpec>,
    cell: MVar<Value>,
    restarts: Vec<i64>,
) -> Io<()> {
    inbox.recv().and_then(move |down: Down| {
        let idx = down.mref as usize;
        // Stale-notice filter: only the *current* incarnation's death
        // is actionable. (We learn the current tid from the cell; a
        // notice from a replaced incarnation is dropped.)
        children_txn(cell, move |kids| {
            kids.iter()
                .find(|(i, _)| *i == idx)
                .map(|(_, c)| c.tid().index() as i64)
        })
        .and_then(move |current: Option<i64>| {
            let stale = current != Some(down.from as i64);
            if stale || idx >= spec.children.len() {
                return sup_loop(inbox, spec, cell, restarts);
            }
            if !down.reason.is_abnormal() {
                // Normal exit: remove, do not restart.
                return children_txn(cell, move |kids| kids.retain(|(i, _)| *i != idx))
                    .then(sup_loop(inbox, spec, cell, restarts));
            }
            Io::now().and_then(move |now| match admit_restart(restarts, now, &spec) {
                None => {
                    // Budget exhausted: give up and escalate. The body
                    // guard in sup_body will (re-)kill the children.
                    Io::throw(Exception::error_call(
                        "supervisor: restart intensity exceeded",
                    ))
                }
                Some(times) => {
                    let n = spec.children.len();
                    let to_restart: Vec<usize> = match spec.strategy {
                        Strategy::OneForOne => vec![idx],
                        Strategy::AllForOne => (0..n).collect(),
                        Strategy::RestForOne => (idx..n).collect(),
                    };
                    let spec2 = Rc::clone(&spec);
                    kill_indices(cell, to_restart.clone())
                        .then(start_range(spec2, to_restart, inbox, cell))
                        .then(sup_loop(inbox, spec, cell, times))
                }
            })
        })
    })
}

fn sup_body(inbox: Mailbox<Down>, spec: Rc<SupervisorSpec>, cell: MVar<Value>) -> Io<()> {
    let n = spec.children.len();
    let spec2 = Rc::clone(&spec);
    start_range(spec2, (0..n).collect(), inbox, cell)
        .then(sup_loop(inbox, spec, cell, Vec::new()))
        .catch_info(move |e, origin| kill_all_children(cell).then(Io::rethrow(e, origin)))
}

/// Spawns a supervisor running `spec`. The supervisor's mailbox is
/// sized to hold a `Down` from every child plus slack, so exit
/// delivery to the supervisor never blocks a dying child for long.
pub fn spawn_supervisor(spec: SupervisorSpec) -> Io<Supervisor> {
    let capacity = (spec.children.len() as i64 * 2).max(4);
    Io::new_mvar(Value::List(Vec::new())).and_then(move |cell| {
        let spec = Rc::new(spec);
        spawn_actor(capacity, move |inbox: Mailbox<Down>| {
            sup_body(inbox, spec, cell)
        })
        .map(move |actor| Supervisor {
            actor,
            children_cell: cell,
        })
    })
}

/// Wraps a whole supervisor as a child of another supervisor — the
/// tree combinator. If the inner supervisor gives up (or is killed),
/// its parent restarts the entire subtree with a fresh spec copy.
pub fn supervisor_child(spec: SupervisorSpec) -> ChildSpec {
    child_spec(move || spawn_supervisor(spec.clone()).map(|sup| sup.actor.erase()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use conch_runtime::exception::ExitReason;
    use conch_runtime::scheduler::Runtime;

    fn run<T: FromValue + IntoValue + 'static>(io: Io<T>) -> T {
        Runtime::new().run(io).unwrap()
    }

    /// A counter worker: `Inc` (any message) adds 2 to the shared cell
    /// in one masked transaction; message `-1` makes it crash.
    fn counter_child(state: MVar<i64>, inbox: Mailbox<i64>) -> ChildSpec {
        child_spec(move || {
            spawn_actor_on(inbox, move |mb: Mailbox<i64>| counter_loop(mb, state))
                .map(|a| a.erase())
        })
    }

    fn counter_loop(mb: Mailbox<i64>, state: MVar<i64>) -> Io<()> {
        mb.recv().and_then(move |msg| {
            if msg < 0 {
                Io::throw(Exception::error_call("poison"))
            } else {
                Io::block(state.take().and_then(move |n| state.put(n + 2)))
                    .then(counter_loop(mb, state))
            }
        })
    }

    fn wait_counter(state: MVar<i64>, at_least: i64) -> Io<i64> {
        Io::block(state.take().and_then(move |n| state.put(n).map(move |_| n))).and_then(move |n| {
            if n >= at_least {
                Io::pure(n)
            } else {
                Io::sleep(20).then(wait_counter(state, at_least))
            }
        })
    }

    use crate::actor::spawn_actor_on;

    #[test]
    fn one_for_one_restarts_crashed_child_and_keeps_state() {
        let got = run(Io::new_mvar(0_i64).and_then(|state| {
            Mailbox::<i64>::new(8).and_then(move |inbox| {
                let spec = SupervisorSpec::new(Strategy::OneForOne)
                    .intensity(5, 1_000_000)
                    .child(counter_child(state, inbox));
                spawn_supervisor(spec).and_then(move |sup| {
                    inbox
                        .send(1) // +2
                        .then(inbox.send(-1)) // crash
                        .then(inbox.send(1)) // +2, served by the restart
                        .then(wait_counter(state, 4))
                        .and_then(move |n| sup.shutdown().map(move |_| n))
                })
            })
        }));
        assert_eq!(got, 4);
    }

    #[test]
    fn give_up_after_intensity_exceeded() {
        let got = run(Io::new_mvar(0_i64).and_then(|state| {
            Mailbox::<i64>::new(8).and_then(move |inbox| {
                let spec = SupervisorSpec::new(Strategy::OneForOne)
                    .intensity(1, 1_000_000)
                    .child(counter_child(state, inbox));
                spawn_supervisor(spec).and_then(move |sup| {
                    // Two crashes within the window exceed a budget of 1.
                    inbox.send(-1).then(inbox.send(-1)).then(wait_sup_dead(sup))
                })
            })
        }));
        match got {
            ExitReason::Crashed(e) => {
                assert_eq!(
                    *e,
                    Exception::error_call("supervisor: restart intensity exceeded")
                )
            }
            other => panic!("expected give-up crash, got {other:?}"),
        }
    }

    fn wait_sup_dead(sup: Supervisor) -> Io<ExitReason> {
        sup.actor.exit_reason().and_then(move |r| match r {
            Some(r) => Io::pure(r),
            None => Io::sleep(20).then(wait_sup_dead(sup)),
        })
    }

    fn incarnation_seqs(sup: Supervisor) -> Io<Vec<i64>> {
        sup.child_refs()
            .map(|refs| refs.iter().map(|c| c.tid().index() as i64).collect())
    }

    fn wait_children(sup: Supervisor, n: usize) -> Io<Vec<i64>> {
        incarnation_seqs(sup).and_then(move |seqs| {
            if seqs.len() == n {
                Io::pure(seqs)
            } else {
                Io::sleep(20).then(wait_children(sup, n))
            }
        })
    }

    /// Crashes the child at `idx` (via its own mailbox poison) and
    /// waits until every child slot holds a live, *settled* pool.
    fn seq_change_matrix(strategy: Strategy) -> (Vec<i64>, Vec<i64>) {
        run(Io::new_mvar(0_i64).and_then(move |state| {
            Mailbox::<i64>::new(4).and_then(move |poison_box| {
                // Three children, each with its own mailbox; child 1
                // gets the poison.
                Mailbox::<i64>::new(4).and_then(move |mb0| {
                    Mailbox::<i64>::new(4).and_then(move |mb2| {
                        let spec = SupervisorSpec::new(strategy)
                            .intensity(5, 1_000_000)
                            .child(counter_child(state, mb0))
                            .child(counter_child(state, poison_box))
                            .child(counter_child(state, mb2));
                        spawn_supervisor(spec).and_then(move |sup| {
                            wait_children(sup, 3).and_then(move |before| {
                                poison_box.send(-1).then(
                                    wait_restart(sup, before.clone())
                                        .map(move |after| (before, after)),
                                )
                            })
                        })
                    })
                })
            })
        }))
    }

    /// Waits until child 1's incarnation differs from `before[1]` and
    /// three children are live again.
    fn wait_restart(sup: Supervisor, before: Vec<i64>) -> Io<Vec<i64>> {
        incarnation_seqs(sup).and_then(move |after| {
            if after.len() == 3 && after[1] != before[1] {
                Io::pure(after)
            } else {
                Io::sleep(20).then(wait_restart(sup, before))
            }
        })
    }

    #[test]
    fn one_for_one_replaces_only_the_crashed_child() {
        let (before, after) = seq_change_matrix(Strategy::OneForOne);
        assert_eq!(before[0], after[0]);
        assert_ne!(before[1], after[1]);
        assert_eq!(before[2], after[2]);
    }

    #[test]
    fn all_for_one_replaces_every_child() {
        let (before, after) = seq_change_matrix(Strategy::AllForOne);
        assert_ne!(before[0], after[0]);
        assert_ne!(before[1], after[1]);
        assert_ne!(before[2], after[2]);
    }

    #[test]
    fn rest_for_one_replaces_crashed_and_later_children() {
        let (before, after) = seq_change_matrix(Strategy::RestForOne);
        assert_eq!(before[0], after[0]);
        assert_ne!(before[1], after[1]);
        assert_ne!(before[2], after[2]);
    }

    #[test]
    fn shutdown_leaves_no_orphans() {
        let got = run(Io::new_mvar(0_i64).and_then(|state| {
            Mailbox::<i64>::new(4).and_then(move |inbox| {
                let spec =
                    SupervisorSpec::new(Strategy::OneForOne).child(counter_child(state, inbox));
                spawn_supervisor(spec).and_then(move |sup| {
                    wait_children(sup, 1).and_then(move |_| {
                        sup.child_refs().and_then(move |kids| {
                            let kid = kids[0];
                            sup.shutdown_sync().then(wait_ref_dead(kid))
                        })
                    })
                })
            })
        }));
        assert_eq!(got, ExitReason::Killed);
    }

    fn wait_ref_dead(a: ActorRef<Value>) -> Io<ExitReason> {
        a.exit_reason().and_then(move |r| match r {
            Some(r) => Io::pure(r),
            None => Io::sleep(20).then(wait_ref_dead(a)),
        })
    }

    #[test]
    fn supervision_tree_restarts_a_whole_subtree() {
        // Root supervises a child supervisor which supervises a
        // counter. Killing the mid supervisor restarts the subtree and
        // service resumes on the same mailbox.
        let got = run(Io::new_mvar(0_i64).and_then(|state| {
            Mailbox::<i64>::new(8).and_then(move |inbox| {
                let mid = SupervisorSpec::new(Strategy::OneForOne)
                    .intensity(5, 1_000_000)
                    .child(counter_child(state, inbox));
                let root_spec = SupervisorSpec::new(Strategy::OneForOne)
                    .intensity(5, 1_000_000)
                    .child(supervisor_child(mid));
                spawn_supervisor(root_spec).and_then(move |root| {
                    inbox.send(1).then(wait_counter(state, 2)).then(
                        // Kill the mid supervisor (root's only child).
                        root.child_refs().and_then(move |kids| {
                            kids[0].kill_sync().then(
                                inbox
                                    .send(1)
                                    .then(wait_counter(state, 4))
                                    .and_then(move |n| root.shutdown().map(move |_| n)),
                            )
                        }),
                    )
                })
            })
        }));
        assert_eq!(got, 4);
    }
}
