//! Typed `MVar` handles and the runtime's `MVar` cells.
//!
//! An `MVar` (§4, after Id's M-structures) is a box that is either empty or
//! holds one value. [`MVar::take`] blocks while the box is empty and
//! [`MVar::put`] blocks while it is full; both are *interruptible*
//! operations in the sense of §5.3 — inside `block` they can still receive
//! asynchronous exceptions, but only while the resource is unavailable.
//!
//! Wake-up uses direct hand-off: a `put` to an empty `MVar` with waiting
//! takers passes the value straight to the first taker (FIFO), so no woken
//! thread ever has to retry. This is one deterministic refinement of the
//! paper's nondeterministic (PutMVar)/(TakeMVar) rules.

use std::collections::VecDeque;
use std::marker::PhantomData;

use crate::ids::{MVarId, ThreadId};
use crate::io::{Action, Io};
use crate::value::{FromValue, IntoValue, Value};

/// A typed handle to an `MVar` cell holding values of type `T`.
///
/// Handles are small and copyable; the cell itself lives in the
/// [`Runtime`](crate::scheduler::Runtime).
///
/// # Examples
///
/// ```
/// use conch_runtime::prelude::*;
///
/// let prog = Io::new_empty_mvar::<i64>()
///     .and_then(|m| m.put(1).then(m.take()));
/// let mut rt = Runtime::new();
/// assert_eq!(rt.run(prog).unwrap(), 1);
/// ```
pub struct MVar<T> {
    id: MVarId,
    marker: PhantomData<fn(T) -> T>,
}

impl<T> Clone for MVar<T> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<T> Copy for MVar<T> {}

impl<T> std::fmt::Debug for MVar<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "MVar({})", self.id)
    }
}

impl<T> PartialEq for MVar<T> {
    fn eq(&self, other: &Self) -> bool {
        self.id == other.id
    }
}

impl<T> Eq for MVar<T> {}

impl<T: FromValue + IntoValue + 'static> MVar<T> {
    /// Wraps a raw cell id in a typed handle.
    ///
    /// Exposed for the semantics bridge; user code obtains handles from
    /// [`Io::new_empty_mvar`] instead.
    pub fn from_id(id: MVarId) -> Self {
        MVar {
            id,
            marker: PhantomData,
        }
    }

    /// The raw cell id of this handle.
    pub fn id(&self) -> MVarId {
        self.id
    }

    /// `takeMVar` — removes and returns the contents, blocking while empty.
    ///
    /// Interruptible: inside `block`, asynchronous exceptions can arrive
    /// right up until the value is acquired, but not after (§5.3).
    pub fn take(&self) -> Io<T> {
        Io::from_action(Action::TakeMVar(self.id))
    }

    /// `putMVar` — fills the box, blocking while it is already full.
    ///
    /// Interruptible only while the box is full; a `put` to an `MVar` that
    /// is known empty (e.g. in an exception handler that restores state,
    /// §5.3) cannot be interrupted.
    pub fn put(&self, v: T) -> Io<()> {
        Io::from_action(Action::PutMVar(self.id, v.into_value()))
    }

    /// Non-blocking take: `Just` the contents, or `Nothing` if empty.
    pub fn try_take(&self) -> Io<Option<T>> {
        Io::from_action(Action::TryTakeMVar(self.id))
    }

    /// Non-blocking put: `true` if the value was stored, `false` if full.
    pub fn try_put(&self, v: T) -> Io<bool> {
        Io::from_action(Action::TryPutMVar(self.id, v.into_value()))
    }

    /// Reinterprets the element type of the handle.
    ///
    /// Useful when a protocol stores differently-shaped values in one cell;
    /// a shape mismatch at `take` time panics with a conversion error.
    pub fn cast<U: FromValue + IntoValue + 'static>(&self) -> MVar<U> {
        MVar {
            id: self.id,
            marker: PhantomData,
        }
    }
}

impl<T: FromValue + IntoValue + 'static> FromValue for MVar<T> {
    fn from_value(v: Value) -> Option<Self> {
        v.as_mvar_id().map(MVar::from_id)
    }
}

impl<T: FromValue + IntoValue + 'static> IntoValue for MVar<T> {
    fn into_value(self) -> Value {
        Value::MVar(self.id)
    }
}

/// The state of one `MVar` cell inside the runtime.
#[derive(Debug, Default)]
pub(crate) struct MVarCell {
    /// `Some(v)` when full.
    pub contents: Option<Value>,
    /// Threads blocked in `takeMVar`, FIFO.
    pub take_queue: VecDeque<ThreadId>,
    /// Threads blocked in `putMVar`, FIFO, with the value they carry.
    pub put_queue: VecDeque<(ThreadId, Value)>,
}

impl MVarCell {
    /// An empty cell.
    pub fn empty() -> Self {
        MVarCell::default()
    }

    /// A full cell holding `v`.
    pub fn full(v: Value) -> Self {
        MVarCell {
            contents: Some(v),
            ..MVarCell::default()
        }
    }

    /// Removes a thread from both wait queues (after interruption).
    pub fn forget_waiter(&mut self, t: ThreadId) {
        self.take_queue.retain(|&x| x != t);
        self.put_queue.retain(|(x, _)| *x != t);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::tid;
    use crate::prelude::*;

    #[test]
    fn handle_is_copy_and_eq() {
        let a: MVar<i64> = MVar::from_id(MVarId(1));
        let b = a;
        assert_eq!(a, b);
        let c: MVar<i64> = MVar::from_id(MVarId(2));
        assert_ne!(a, c);
    }

    #[test]
    fn new_mvar_starts_full() {
        let mut rt = Runtime::new();
        let prog = Io::new_mvar(7_i64).and_then(|m| m.take());
        assert_eq!(rt.run(prog).unwrap(), 7);
    }

    #[test]
    fn try_take_on_empty_is_nothing() {
        let mut rt = Runtime::new();
        let prog = Io::new_empty_mvar::<i64>().and_then(|m| m.try_take());
        assert_eq!(rt.run(prog).unwrap(), None);
    }

    #[test]
    fn try_take_on_full_takes() {
        let mut rt = Runtime::new();
        let prog = Io::new_mvar(5_i64).and_then(|m| {
            m.try_take()
                .and_then(move |v| m.try_take().map(move |w| (v, w)))
        });
        // Second try_take sees the now-empty box.
        let (first, second) = rt.run(prog).unwrap();
        assert_eq!(first, Some(5));
        assert_eq!(second, None);
    }

    #[test]
    fn try_put_respects_fullness() {
        let mut rt = Runtime::new();
        let prog = Io::new_empty_mvar::<i64>().and_then(|m| {
            m.try_put(1)
                .and_then(move |a| m.try_put(2).map(move |b| (a, b)))
        });
        assert_eq!(rt.run(prog).unwrap(), (true, false));
    }

    #[test]
    fn forget_waiter_clears_queues() {
        let mut cell = MVarCell::empty();
        cell.take_queue.push_back(tid(1));
        cell.take_queue.push_back(tid(2));
        cell.put_queue.push_back((tid(1), Value::Unit));
        cell.forget_waiter(tid(1));
        assert_eq!(cell.take_queue, [tid(2)]);
        assert!(cell.put_queue.is_empty());
    }

    #[test]
    fn cast_reinterprets_element_type() {
        let mut rt = Runtime::new();
        let prog = Io::new_empty_mvar::<Value>().and_then(|m| {
            let typed: MVar<i64> = m.cast();
            typed.put(3).then(typed.take())
        });
        assert_eq!(rt.run(prog).unwrap(), 3);
    }
}
