//! The `Either` sum type, as used by the paper's symmetric combinators.
//!
//! `either :: IO a -> IO b -> IO (Either a b)` (§7.2) returns `Left r` if
//! the first computation finishes first and `Right r` otherwise. We mirror
//! the Haskell type rather than overloading Rust's `Result`, whose `Ok`/
//! `Err` reading would be misleading for a race.

use conch_runtime::value::{FromValue, IntoValue, Value};

/// A value of one of two alternatives.
///
/// # Examples
///
/// ```
/// use conch_combinators::Either;
///
/// let l: Either<i64, char> = Either::Left(3);
/// assert!(l.is_left());
/// assert_eq!(l.left(), Some(3));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Either<A, B> {
    /// The first alternative (`a` finished first, for `race`).
    Left(A),
    /// The second alternative.
    Right(B),
}

impl<A, B> Either<A, B> {
    /// Returns `true` for `Left`.
    pub fn is_left(&self) -> bool {
        matches!(self, Either::Left(_))
    }

    /// Returns `true` for `Right`.
    pub fn is_right(&self) -> bool {
        matches!(self, Either::Right(_))
    }

    /// The `Left` payload, if any.
    pub fn left(self) -> Option<A> {
        match self {
            Either::Left(a) => Some(a),
            Either::Right(_) => None,
        }
    }

    /// The `Right` payload, if any.
    pub fn right(self) -> Option<B> {
        match self {
            Either::Left(_) => None,
            Either::Right(b) => Some(b),
        }
    }

    /// Applies one of two functions, collapsing to a single type.
    pub fn fold<T>(self, on_left: impl FnOnce(A) -> T, on_right: impl FnOnce(B) -> T) -> T {
        match self {
            Either::Left(a) => on_left(a),
            Either::Right(b) => on_right(b),
        }
    }
}

impl<A: IntoValue, B: IntoValue> IntoValue for Either<A, B> {
    fn into_value(self) -> Value {
        match self {
            Either::Left(a) => Value::Left(Box::new(a.into_value())),
            Either::Right(b) => Value::Right(Box::new(b.into_value())),
        }
    }
}

impl<A: FromValue, B: FromValue> FromValue for Either<A, B> {
    fn from_value(v: Value) -> Option<Self> {
        match v {
            Value::Left(a) => Some(Either::Left(A::from_value(*a)?)),
            Value::Right(b) => Some(Either::Right(B::from_value(*b)?)),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predicates_and_accessors() {
        let l: Either<i64, char> = Either::Left(1);
        let r: Either<i64, char> = Either::Right('x');
        assert!(l.is_left() && !l.is_right());
        assert!(r.is_right() && !r.is_left());
        assert_eq!(l.left(), Some(1));
        assert_eq!(l.right(), None);
        assert_eq!(r.right(), Some('x'));
    }

    #[test]
    fn fold_collapses() {
        let l: Either<i64, i64> = Either::Left(2);
        assert_eq!(l.fold(|a| a * 10, |b| b), 20);
        let r: Either<i64, i64> = Either::Right(3);
        assert_eq!(r.fold(|a| a, |b| b * 10), 30);
    }

    #[test]
    fn value_round_trip() {
        let l: Either<i64, char> = Either::Left(7);
        let v = l.into_value();
        assert_eq!(Either::<i64, char>::from_value(v), Some(Either::Left(7)));
        let r: Either<i64, char> = Either::Right('q');
        assert_eq!(
            Either::<i64, char>::from_value(r.into_value()),
            Some(Either::Right('q'))
        );
    }

    #[test]
    fn from_wrong_shape_is_none() {
        assert_eq!(Either::<i64, char>::from_value(Value::Unit), None);
    }
}
