//! # conch-combinators
//!
//! Robust abstractions over the asynchronous-exception primitives of
//! [`conch-runtime`](conch_runtime), transcribing §7 of *Asynchronous
//! Exceptions in Haskell* (PLDI 2001):
//!
//! * bracketing (§7.1): [`finally`], [`later`], [`bracket`],
//!   [`bracket_on_error`], [`on_exception`];
//! * symmetric process abstractions (§7.2): [`race`] (the paper's
//!   `either`) and [`both`];
//! * composable time-outs (§7.3): [`timeout`];
//! * safe points (§7.4): [`safe_point`];
//! * the safe-locking patterns of §5.1–§5.3: [`modify_mvar`],
//!   [`with_mvar`], [`modify_mvar_masked`], plus the deliberately racy
//!   [`modify_mvar_naive`] baseline;
//! * the datatypes §4 says are buildable from MVars: [`Chan`] and
//!   [`Sem`];
//! * n-ary speculative combinators in the spirit of §10's parallel-or:
//!   [`race_many`], [`map_concurrently`];
//! * paper-adjacent extensions: [`Thunk`] (§8's thunk treatment),
//!   [`catch_sync`]/[`catch_alert`] (§9's exceptions-vs-alerts),
//!   [`mask`]/[`Restore`] (the successor to `block`/`unblock`),
//!   [`supervise`] (§11's fault-tolerance idiom);
//! * recovery: [`retry_backoff`] (bounded, virtual-clock exponential
//!   backoff) and [`Breaker`] (a load-shedding circuit breaker).
//!
//! The paper's point is that these can be built *as a library*, with no
//! further runtime support than `throwTo`, `block`/`unblock` and
//! interruptible operations — and this crate uses nothing else.
//!
//! ## Example: a timed race
//!
//! ```
//! use conch_runtime::prelude::*;
//! use conch_combinators::{race, timeout, Either};
//!
//! let mut rt = Runtime::new();
//! // Race two "searches"; give the whole thing a budget of 1ms.
//! let search = race(
//!     Io::sleep(100).map(|_| "breadth-first".to_owned()),
//!     Io::sleep(300).map(|_| "depth-first".to_owned()),
//! );
//! let prog = timeout(1_000, search);
//! let winner = rt.run(prog).unwrap();
//! assert_eq!(winner, Some(Either::Left("breadth-first".to_owned())));
//! ```

mod alerts;
mod bracket;
mod chan;
mod either;
mod locking;
mod many;
mod mask;
mod race;
mod retry;
mod sem;
mod supervise;
mod thunk;

pub use crate::alerts::{catch_alert, catch_sync};
pub use crate::bracket::{
    bracket, bracket_on_error, finally, kill_thread, later, on_exception, safe_point,
};
pub use crate::chan::Chan;
pub use crate::either::Either;
pub use crate::locking::{
    modify_mvar, modify_mvar_masked, modify_mvar_naive, modify_mvar_with, with_mvar,
};
pub use crate::many::{map_concurrently, race_many};
pub use crate::mask::{mask, modify_mvar_restoring, Restore};
pub use crate::race::{both, race, timeout};
pub use crate::retry::{retry_backoff, Breaker, BreakerOutcome};
pub use crate::sem::Sem;
pub use crate::supervise::{supervise, Supervised};
pub use crate::thunk::Thunk;
