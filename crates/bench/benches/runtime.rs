//! B10 — interpreter/scheduler hot-path throughput (`conch-runtime`).
//!
//! Four workloads, one per optimization shipped with the slot-reclaiming
//! scheduler:
//!
//! * `interpreter_steps` — a long pure computation: raw small-steps per
//!   second through the interpreter loop.
//! * `fork_join_churn` — sequential fork of many short-lived threads:
//!   spawn/retire cost with buffer recycling, plus the thread-table
//!   high-water mark showing slot reclamation keeps memory bounded.
//! * `httpd_requests` — the §11 server answering well-behaved requests:
//!   requests per (wall and virtual) second, fork-per-connection.
//!   The JSON adds an `httpd_requests_pooled` row: the same load
//!   through the supervised `conch-actors` worker pool, recording the
//!   conservation counters (`accepted == outcomes`).
//! * `httpd_requests_sharded` — the production-scale sharded plane: a
//!   clients × shards sweep of keep-alive connections each carrying a
//!   pipelined request run, recording the quiescent-aggregate
//!   conservation counters, virtual-time throughput and timer-wheel
//!   throughput per row. A `httpd_requests_sharded_skew` row sends 80%
//!   of the clients to shard 0 and records the per-shard `accepted`
//!   imbalance, and `httpd_requests_wall_parallel` rows (B12) run the
//!   plane on `MultiRuntime` — one scheduler per shard — at
//!   `os_threads = 1` vs `os_threads = shards`, asserting the two runs
//!   are bit-identical and reporting the wall speedup.
//! * `timer_churn` — the hierarchical timer wheel against the old
//!   `BinaryHeap` sleeper queue on a 100k-standing-timer,
//!   batched-wakeup churn shape.
//! * `schedule_exploration` — the B9 three-thread workload explored to
//!   completion: schedules per second through the reset-and-reuse
//!   explorer runtime.
//!
//! Besides the timing output, writes `BENCH_runtime.json` at the
//! workspace root with the headline numbers, for EXPERIMENTS.md.
//!
//! With `BENCH_SMOKE` set in the environment, the Criterion timing
//! loops are skipped and each workload runs exactly once to produce the
//! JSON — CI uses this to assert the deterministic counters (steps,
//! forks, thread-slot high-water, explored/complete) without depending
//! on machine speed.

use std::time::Instant;

use conch_bench::{
    explore_once, serve_n_good, serve_n_good_paced, serve_n_good_pooled, serve_sharded,
    serve_sharded_skewed, serve_wall_parallel, timer_heap_churn, timer_wheel_churn,
};
use conch_runtime::io::for_each;
use conch_runtime::prelude::*;
use criterion::Criterion;

const COMPUTE_STEPS: u64 = 1_000_000;
const CHURN_FORKS: u64 = 10_000;
const HTTPD_REQUESTS: u64 = 50;
/// The sharded-plane sweep: clients × shards, each connection carrying
/// `SHARDED_PIPELINE` pipelined requests — the 100k-client rows run a
/// million virtual requests each.
const SHARDED_CLIENTS: [usize; 3] = [1_000, 10_000, 100_000];
const SHARDED_SHARDS: [usize; 3] = [1, 4, 16];
const SHARDED_PIPELINE: usize = 10;
/// The skewed-arrival row: 80% of 10k clients land on shard 0 of 4 —
/// the per-shard `accepted` counters expose the imbalance while the
/// aggregate still conserves.
const SKEW_CLIENTS: usize = 10_000;
const SKEW_SHARDS: usize = 4;
const SKEW_HOT_PERCENT: usize = 80;
/// The wall-parallel rows: each shard count runs twice — once with all
/// shards multiplexed onto one OS thread (the wall baseline) and once
/// with one OS thread per shard — and `wall_speedup` is the ratio of
/// the two wall times. Everything else about the two runs must be
/// bit-identical; the row records that check as `deterministic`.
const WALL_CLIENTS: usize = 20_000;
const WALL_SHARDS: [usize; 2] = [1, 4];
/// T1 churn shape: 100k standing keep-alive timers plus fast
/// request-timeout churn through the front of the queue —
/// `TIMER_CYCLES` ticks each filing and expiring a `TIMER_BATCH`-sized
/// batched wakeup (2M churn inserts total).
const TIMER_STANDING: u64 = 100_000;
const TIMER_CYCLES: u64 = 250_000;
const TIMER_BATCH: u64 = 8;
/// Virtual microseconds between client arrivals in the JSON row: paced
/// arrivals keep the virtual clock moving (see
/// [`conch_bench::serve_n_good_paced`]), making "requests per virtual
/// second" well-defined and deterministic.
const HTTPD_ARRIVAL_GAP_US: u64 = 100;

/// Forks `n` trivial children one after another, yielding after each so
/// the child runs to completion before the next fork: sustained
/// spawn/retire churn with only a handful of threads alive at once.
fn fork_churn(n: u64) -> Io<()> {
    for_each(n, |_| Io::fork(Io::unit()).then(Io::yield_now()))
}

fn bench_hot_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("runtime_hot_paths");
    group.bench_function("interpreter_steps_1m", |b| {
        b.iter(|| {
            let mut rt = Runtime::new();
            rt.run(Io::compute(COMPUTE_STEPS)).expect("compute");
        })
    });
    group.bench_function("fork_join_churn_10k", |b| {
        b.iter(|| {
            let mut rt = Runtime::new();
            rt.run(fork_churn(CHURN_FORKS)).expect("churn");
        })
    });
    group.bench_function("httpd_50_requests", |b| {
        b.iter(|| {
            let mut rt = Runtime::new();
            rt.run(serve_n_good(HTTPD_REQUESTS)).expect("server run");
        })
    });
    group.bench_function("httpd_sharded_1k_x4", |b| {
        b.iter(|| {
            let mut rt = Runtime::new();
            rt.run(serve_sharded(1_000, 4, SHARDED_PIPELINE))
                .expect("sharded run");
        })
    });
    group.bench_function("timer_wheel_churn_100k", |b| {
        b.iter(|| timer_wheel_churn(TIMER_STANDING, TIMER_CYCLES, TIMER_BATCH))
    });
    group.bench_function("timer_heap_churn_100k", |b| {
        b.iter(|| timer_heap_churn(TIMER_STANDING, TIMER_CYCLES, TIMER_BATCH))
    });
    group.bench_function("explore_unbounded", |b| b.iter(|| explore_once(None)));
    group.finish();
}

/// One measured run per workload, written as a small JSON report next
/// to the workspace `Cargo.toml`.
fn emit_json() {
    let mut rows = Vec::new();

    let mut rt = Runtime::new();
    let start = Instant::now();
    rt.run(Io::compute(COMPUTE_STEPS)).expect("compute");
    let secs = start.elapsed().as_secs_f64().max(1e-9);
    let steps = rt.stats().steps;
    rows.push(format!(
        "    {{\"workload\": \"interpreter_steps\", \"steps\": {}, \
         \"seconds\": {:.6}, \"steps_per_sec\": {:.1}}}",
        steps,
        secs,
        steps as f64 / secs,
    ));

    let mut rt = Runtime::new();
    let start = Instant::now();
    rt.run(fork_churn(CHURN_FORKS)).expect("churn");
    let secs = start.elapsed().as_secs_f64().max(1e-9);
    rows.push(format!(
        "    {{\"workload\": \"fork_join_churn\", \"forks\": {}, \
         \"max_thread_slots\": {}, \"seconds\": {:.6}, \"forks_per_sec\": {:.1}}}",
        rt.stats().forks,
        rt.stats().max_thread_slots,
        secs,
        rt.stats().forks as f64 / secs,
    ));

    let mut rt = Runtime::new();
    let start = Instant::now();
    rt.run(serve_n_good_paced(HTTPD_REQUESTS, HTTPD_ARRIVAL_GAP_US))
        .expect("server run");
    let secs = start.elapsed().as_secs_f64().max(1e-9);
    let virtual_us = rt.clock();
    // Guarded: virtual_us is nonzero with paced arrivals, but a zero
    // clock must degrade to 0.0, not to a NaN/inf in the JSON.
    let per_virtual_sec = if virtual_us == 0 {
        0.0
    } else {
        HTTPD_REQUESTS as f64 / (virtual_us as f64 / 1e6)
    };
    rows.push(format!(
        "    {{\"workload\": \"httpd_requests\", \"requests\": {}, \
         \"max_thread_slots\": {}, \"virtual_us\": {}, \"seconds\": {:.6}, \
         \"requests_per_sec\": {:.1}, \"requests_per_virtual_sec\": {:.1}}}",
        HTTPD_REQUESTS,
        rt.stats().max_thread_slots,
        virtual_us,
        secs,
        HTTPD_REQUESTS as f64 / secs,
        per_virtual_sec,
    ));

    // The same load through the supervised `conch-actors` worker pool
    // instead of fork-per-connection. The row records the conservation
    // counters — CI asserts `accepted == outcomes` stays true under the
    // pool (the audit-grade quiesce: shutdown_sync, drain, snapshot).
    let mut rt = Runtime::new();
    let start = Instant::now();
    let snap = rt
        .run(serve_n_good_pooled(HTTPD_REQUESTS))
        .expect("pooled server run");
    let secs = start.elapsed().as_secs_f64().max(1e-9);
    rows.push(format!(
        "    {{\"workload\": \"httpd_requests_pooled\", \"requests\": {}, \
         \"accepted\": {}, \"outcomes\": {}, \"conserved\": {}, \
         \"max_thread_slots\": {}, \"seconds\": {:.6}, \
         \"requests_per_sec\": {:.1}}}",
        HTTPD_REQUESTS,
        snap.accepted,
        snap.outcomes(),
        snap.conserved(),
        rt.stats().max_thread_slots,
        secs,
        HTTPD_REQUESTS as f64 / secs,
    ));

    // The production-scale sharded plane: clients × shards, each
    // connection one FIN-terminated pipeline of SHARDED_PIPELINE
    // requests (the 100k-client rows run a million virtual requests).
    // CI asserts every row conserves, the 100k rows clear 1M requests,
    // and the shard sweep scales requests_per_virtual_sec.
    for clients in SHARDED_CLIENTS {
        for shards in SHARDED_SHARDS {
            let mut rt = Runtime::new();
            let start = Instant::now();
            let snap = rt
                .run(serve_sharded(clients, shards, SHARDED_PIPELINE))
                .expect("sharded server run");
            let secs = start.elapsed().as_secs_f64().max(1e-9);
            let requests = (clients * SHARDED_PIPELINE) as u64;
            let virtual_us = rt.clock();
            let per_virtual_sec = if virtual_us == 0 {
                0.0
            } else {
                requests as f64 / (virtual_us as f64 / 1e6)
            };
            let timer_ops = rt.stats().timer_ops;
            rows.push(format!(
                "    {{\"workload\": \"httpd_requests_sharded\", \"clients\": {}, \
                 \"shards\": {}, \"requests\": {}, \"accepted\": {}, \"outcomes\": {}, \
                 \"conserved\": {}, \"max_thread_slots\": {}, \"virtual_us\": {}, \
                 \"seconds\": {:.6}, \"requests_per_sec\": {:.1}, \
                 \"requests_per_virtual_sec\": {:.1}, \"timer_ops\": {}, \
                 \"timer_ops_per_sec\": {:.1}}}",
                clients,
                shards,
                requests,
                snap.accepted,
                snap.outcomes(),
                snap.conserved(),
                rt.stats().max_thread_slots,
                virtual_us,
                secs,
                requests as f64 / secs,
                per_virtual_sec,
                timer_ops,
                timer_ops as f64 / secs,
            ));
        }
    }

    // The skewed-arrival row: 80% of the clients land on shard 0. The
    // per-shard accepted counters expose the imbalance (hot shard vs a
    // fair share); the aggregate still conserves and serves everything.
    {
        let mut rt = Runtime::new();
        let start = Instant::now();
        let (agg, per_shard) = rt
            .run(serve_sharded_skewed(
                SKEW_CLIENTS,
                SKEW_SHARDS,
                SHARDED_PIPELINE,
                SKEW_HOT_PERCENT,
            ))
            .expect("skewed sharded run");
        let secs = start.elapsed().as_secs_f64().max(1e-9);
        let requests = (SKEW_CLIENTS * SHARDED_PIPELINE) as u64;
        let accepted: Vec<i64> = per_shard.iter().map(|s| s.accepted).collect();
        let hot = accepted.iter().copied().max().unwrap_or(0);
        let fair = requests as f64 / SKEW_SHARDS as f64;
        let accepted_list = accepted
            .iter()
            .map(|a| a.to_string())
            .collect::<Vec<_>>()
            .join(", ");
        rows.push(format!(
            "    {{\"workload\": \"httpd_requests_sharded_skew\", \"clients\": {}, \
             \"shards\": {}, \"hot_percent\": {}, \"requests\": {}, \
             \"accepted\": {}, \"outcomes\": {}, \"conserved\": {}, \
             \"accepted_per_shard\": [{}], \"hot_shard_accepted\": {}, \
             \"imbalance\": {:.2}, \"seconds\": {:.6}}}",
            SKEW_CLIENTS,
            SKEW_SHARDS,
            SKEW_HOT_PERCENT,
            requests,
            agg.accepted,
            agg.outcomes(),
            agg.conserved(),
            accepted_list,
            hot,
            hot as f64 / fair,
            secs,
        ));
    }

    // The wall-parallel rows: the same sharded load on the
    // MultiRuntime plane, once with every shard on one OS thread (the
    // wall baseline) and once with one OS thread per shard. The two
    // runs must agree on every deterministic observable — merged and
    // per-shard snapshots, ok counts, drain log, barrier rounds — and
    // the row records that check plus the wall speedup. CI asserts
    // `deterministic` unconditionally and the shards=4 speedup only on
    // hosts with >= 4 CPUs.
    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    for shards in WALL_SHARDS {
        let base_start = Instant::now();
        let base = serve_wall_parallel(WALL_CLIENTS, shards, SHARDED_PIPELINE, 1);
        let base_secs = base_start.elapsed().as_secs_f64().max(1e-9);
        let par_start = Instant::now();
        let par = serve_wall_parallel(WALL_CLIENTS, shards, SHARDED_PIPELINE, shards);
        let par_secs = par_start.elapsed().as_secs_f64().max(1e-9);
        let deterministic = par.oks == base.oks
            && par.merged == base.merged
            && par.per_shard == base.per_shard
            && par.oks_per_shard == base.oks_per_shard
            && par.drain_log == base.drain_log
            && par.rounds == base.rounds;
        let requests = (WALL_CLIENTS * SHARDED_PIPELINE) as u64;
        rows.push(format!(
            "    {{\"workload\": \"httpd_requests_wall_parallel\", \"clients\": {}, \
             \"shards\": {}, \"os_threads\": {}, \"requests\": {}, \
             \"conserved\": {}, \"deterministic\": {}, \"rounds\": {}, \
             \"messages\": {}, \"host_cpus\": {}, \"baseline_seconds\": {:.6}, \
             \"seconds\": {:.6}, \"requests_per_sec\": {:.1}, \
             \"wall_speedup\": {:.2}}}",
            WALL_CLIENTS,
            shards,
            shards,
            requests,
            par.merged.conserved(),
            deterministic,
            par.rounds,
            par.messages,
            host_cpus,
            base_secs,
            par_secs,
            requests as f64 / par_secs,
            base_secs / par_secs,
        ));
    }

    // T1: the timer structures head to head on the production churn
    // shape — a standing mass of far-future keep-alive timers plus fast
    // request-timeout traffic through the front of the queue. Identical
    // logical work; the checksums must agree or the comparison is void.
    let wheel_start = Instant::now();
    let wheel_sum = timer_wheel_churn(TIMER_STANDING, TIMER_CYCLES, TIMER_BATCH);
    let wheel_secs = wheel_start.elapsed().as_secs_f64().max(1e-9);
    let heap_start = Instant::now();
    let heap_sum = timer_heap_churn(TIMER_STANDING, TIMER_CYCLES, TIMER_BATCH);
    let heap_secs = heap_start.elapsed().as_secs_f64().max(1e-9);
    assert_eq!(
        wheel_sum, heap_sum,
        "wheel and heap churn must fire the same entries"
    );
    let churn_ops = TIMER_STANDING + 2 * TIMER_CYCLES * TIMER_BATCH;
    rows.push(format!(
        "    {{\"workload\": \"timer_churn\", \"standing\": {}, \"cycles\": {}, \
         \"batch\": {}, \"ops\": {}, \"timer_ops_per_sec\": {:.1}, \
         \"heap_ops_per_sec\": {:.1}, \"wheel_vs_heap\": {:.2}}}",
        TIMER_STANDING,
        TIMER_CYCLES,
        TIMER_BATCH,
        churn_ops,
        churn_ops as f64 / wheel_secs,
        churn_ops as f64 / heap_secs,
        heap_secs / wheel_secs,
    ));

    let start = Instant::now();
    let report = explore_once(None);
    let secs = start.elapsed().as_secs_f64().max(1e-9);
    rows.push(format!(
        "    {{\"workload\": \"schedule_exploration\", \"explored\": {}, \
         \"pruned\": {}, \"complete\": {}, \"seconds\": {:.6}, \
         \"schedules_per_sec\": {:.1}}}",
        report.explored,
        report.pruned,
        report.complete,
        secs,
        report.explored as f64 / secs,
    ));

    let json = format!(
        "{{\n  \"bench\": \"runtime_hot_paths\",\n  \"results\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_runtime.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

fn main() {
    if std::env::var_os("BENCH_SMOKE").is_none() {
        let mut criterion = Criterion::default();
        bench_hot_paths(&mut criterion);
    }
    emit_json();
}
