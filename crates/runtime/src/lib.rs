//! # conch-runtime
//!
//! A green-thread runtime for **Concurrent Haskell with asynchronous
//! exceptions**, reproducing the design of Marlow, Peyton Jones, Moran &
//! Reppy, *Asynchronous Exceptions in Haskell* (PLDI 2001) in Rust.
//!
//! The paper's primitives map onto this crate as follows:
//!
//! | Paper | Here |
//! |---|---|
//! | `return` / `>>=` | [`Io::pure`] / [`Io::and_then`] |
//! | `throw` / `catch` | [`Io::throw`] / [`Io::catch`] |
//! | `forkIO` / `myThreadId` | [`Io::fork`] / [`Io::my_thread_id`] |
//! | `newEmptyMVar` / `takeMVar` / `putMVar` | [`Io::new_empty_mvar`] / [`MVar::take`] / [`MVar::put`] |
//! | `throwTo` (§5) | [`Io::throw_to`] |
//! | `block` / `unblock` (§5.2) | [`Io::block`] / [`Io::unblock`] |
//! | interruptible operations (§5.3) | built into `takeMVar`/`putMVar`/`sleep`/`getChar` |
//! | `sleep`, `getChar`, `putChar` | [`Io::sleep`], [`Io::get_char`], [`Io::put_char`] |
//! | synchronous `throwTo` (§9) | [`Io::throw_to_sync`] |
//!
//! Rust has no killable native threads, so the runtime is a deterministic
//! *interpreter*: every `Io` action is data, threads advance one small
//! step at a time, and an asynchronous exception can land at any step
//! boundary — the paper's "any program point". Scheduling is
//! deterministic (round-robin or seeded random), which makes the subtle
//! interleavings of §5 reproducible in tests.
//!
//! ## Quickstart
//!
//! ```
//! use conch_runtime::prelude::*;
//!
//! // A child thread blocks on an MVar; we interrupt it with throwTo and
//! // observe the exception being handled.
//! let prog = Io::new_empty_mvar::<i64>().and_then(|hole| {
//!     Io::new_empty_mvar::<String>().and_then(move |report| {
//!         let child = hole
//!             .take()
//!             .map(|_| "value".to_owned())
//!             .catch(|e| Io::pure(format!("interrupted: {e}")))
//!             .and_then(move |s| report.put(s));
//!         Io::fork(child).and_then(move |tid| {
//!             Io::sleep(10)
//!                 .then(Io::throw_to(tid, Exception::kill_thread()))
//!                 .then(report.take())
//!         })
//!     })
//! });
//!
//! let mut rt = Runtime::new();
//! assert_eq!(rt.run(prog).unwrap(), "interrupted: KillThread");
//! ```

pub mod config;
pub mod console;
pub mod decide;
pub mod error;
pub mod exception;
pub mod ids;
pub mod io;
pub mod mvar;
pub mod parallel;
mod runq;
pub mod scheduler;
pub mod stats;
pub mod thread;
pub mod timer;
pub mod trace;
pub mod value;

pub use crate::config::{DeadlockPolicy, DeliveryMode, RuntimeConfig, SchedulingPolicy};
pub use crate::decide::{Decider, FirstRunnable, StepFootprint, ThreadView};
pub use crate::error::RunError;
pub use crate::exception::{ArithError, Exception, ExceptionKind, ExitReason};
pub use crate::ids::{MVarId, ThreadId};
pub use crate::io::Io;
pub use crate::mvar::MVar;
pub use crate::parallel::{
    CrossMsg, Envelope, MultiConfig, MultiReport, MultiRuntime, ShardCtx, ShardProgram, ShardReport,
};
pub use crate::scheduler::Runtime;
pub use crate::stats::Stats;
pub use crate::thread::{MaskState, RaiseOrigin};
pub use crate::timer::{TimerEntry, TimerWheel};
pub use crate::trace::{BlockSite, IoEvent};
pub use crate::value::{FromValue, IntoValue, Value};

/// The most commonly used names, for glob import.
pub mod prelude {
    pub use crate::config::{DeadlockPolicy, DeliveryMode, RuntimeConfig, SchedulingPolicy};
    pub use crate::decide::{Decider, StepFootprint, ThreadView};
    pub use crate::error::RunError;
    pub use crate::exception::{Exception, ExceptionKind, ExitReason};
    pub use crate::ids::ThreadId;
    pub use crate::io::Io;
    pub use crate::mvar::MVar;
    pub use crate::scheduler::Runtime;
    pub use crate::thread::RaiseOrigin;
    pub use crate::value::{FromValue, IntoValue, Value};
}
