//! Recovery combinators: bounded retry with exponential backoff and a
//! load-shedding circuit breaker.
//!
//! Both are built from the paper's primitives only — `catch`, `MVar`s
//! and the virtual clock — so they compose with asynchronous
//! exceptions the same way every other combinator here does:
//! `KillThread` is never swallowed (a retry loop that ate its own
//! cancellation would resurrect exactly the §9 bug the server's
//! handler guard defends against), and all waiting is bounded virtual
//! sleeping, so the explorer can enumerate every schedule through a
//! recovery path.

use conch_runtime::io::Io;
use conch_runtime::mvar::MVar;
use conch_runtime::value::{FromValue, IntoValue};

use crate::locking::modify_mvar_with;

/// Runs `factory(attempt)` up to `attempts` times, sleeping
/// `base_delay << attempt` virtual microseconds between failures
/// (bounded exponential backoff: `base_delay`, `2·base_delay`,
/// `4·base_delay`, …).
///
/// The action is taken as a *factory* (attempt number in) because `Io`
/// values are single-use. Synchronous failures are retried;
/// `KillThread` is re-thrown immediately — a cancelled retry loop must
/// stay cancelled. When the budget is exhausted the last failure
/// propagates.
///
/// # Panics
///
/// Panics if `attempts` is zero.
///
/// # Examples
///
/// ```
/// use conch_runtime::prelude::*;
/// use conch_combinators::retry_backoff;
/// use std::cell::RefCell;
/// use std::rc::Rc;
///
/// let mut rt = Runtime::new();
/// let tries = Rc::new(RefCell::new(0));
/// let t = Rc::clone(&tries);
/// let prog = retry_backoff(3, 100, move |attempt| {
///     *t.borrow_mut() += 1;
///     if attempt < 2 {
///         Io::<i64>::throw(Exception::error_call("flaky"))
///     } else {
///         Io::pure(7)
///     }
/// });
/// assert_eq!(rt.run(prog).unwrap(), 7);
/// assert_eq!(*tries.borrow(), 3);
/// assert_eq!(rt.clock(), 100 + 200); // backoff between the attempts
/// ```
pub fn retry_backoff<A, F>(attempts: u32, base_delay: u64, factory: F) -> Io<A>
where
    A: FromValue + IntoValue + 'static,
    F: Fn(u32) -> Io<A> + 'static,
{
    assert!(attempts > 0, "retry_backoff needs at least one attempt");
    fn go<A, F>(attempt: u32, attempts: u32, base_delay: u64, factory: std::rc::Rc<F>) -> Io<A>
    where
        A: FromValue + IntoValue + 'static,
        F: Fn(u32) -> Io<A> + 'static,
    {
        factory(attempt).catch(move |e| {
            if e.is_kill_thread() || attempt + 1 >= attempts {
                Io::throw(e)
            } else {
                Io::sleep(base_delay << attempt)
                    .and_then(move |_| go(attempt + 1, attempts, base_delay, factory))
            }
        })
    }
    go(0, attempts, base_delay, std::rc::Rc::new(factory))
}

/// A circuit breaker: after `threshold` *consecutive* failures the
/// circuit opens for `cooldown` virtual microseconds, during which
/// [`guard`](Breaker::guard)ed actions are shed without running — the
/// server-side half of graceful degradation (the caller turns a shed
/// into a `503 Retry-After`, a cached answer, whatever fits).
///
/// State lives in one `MVar` holding `(consecutive_failures,
/// open_until)`, updated with the §5.1 safe pattern, so the breaker is
/// async-exception-safe and shareable across worker threads.
#[derive(Debug, Clone, Copy)]
pub struct Breaker {
    /// `(consecutive failures, virtual deadline until which the
    /// circuit stays open)`.
    state: MVar<(i64, i64)>,
    /// Consecutive failures that open the circuit.
    threshold: i64,
    /// How long the circuit stays open once tripped (virtual µs).
    cooldown: u64,
}

/// What a [`Breaker::guard`]ed call produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerOutcome<A> {
    /// The circuit was closed and the action succeeded.
    Ran(A),
    /// The circuit was open: the action never ran.
    Shed,
}

impl<A: IntoValue> IntoValue for BreakerOutcome<A> {
    fn into_value(self) -> conch_runtime::value::Value {
        use conch_runtime::value::Value;
        match self {
            BreakerOutcome::Ran(a) => Value::Left(Box::new(a.into_value())),
            BreakerOutcome::Shed => Value::Right(Box::new(Value::Unit)),
        }
    }
}

impl<A: FromValue> FromValue for BreakerOutcome<A> {
    fn from_value(v: conch_runtime::value::Value) -> Option<Self> {
        use conch_runtime::value::Value;
        match v {
            Value::Left(a) => Some(BreakerOutcome::Ran(A::from_value(*a)?)),
            Value::Right(_) => Some(BreakerOutcome::Shed),
            _ => None,
        }
    }
}

impl IntoValue for Breaker {
    fn into_value(self) -> conch_runtime::value::Value {
        use conch_runtime::value::Value;
        Value::List(vec![
            self.state.into_value(),
            Value::Int(self.threshold),
            Value::Int(self.cooldown as i64),
        ])
    }
}

impl FromValue for Breaker {
    fn from_value(v: conch_runtime::value::Value) -> Option<Self> {
        use conch_runtime::value::Value;
        match v {
            Value::List(xs) if xs.len() == 3 => {
                let mut it = xs.into_iter();
                Some(Breaker {
                    state: MVar::from_value(it.next()?)?,
                    threshold: it.next()?.as_int()?,
                    cooldown: u64::try_from(it.next()?.as_int()?).ok()?,
                })
            }
            _ => None,
        }
    }
}

impl Breaker {
    /// A closed breaker that opens after `threshold` consecutive
    /// failures and stays open for `cooldown` virtual microseconds.
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is zero.
    pub fn new(threshold: i64, cooldown: u64) -> Io<Breaker> {
        assert!(threshold > 0, "Breaker needs a positive threshold");
        Io::new_mvar((0_i64, 0_i64)).map(move |state| Breaker {
            state,
            threshold,
            cooldown,
        })
    }

    /// Runs `action` if the circuit is closed (or the cooldown has
    /// expired), recording success/failure; sheds it otherwise.
    ///
    /// A failure while the action runs counts toward the threshold and
    /// re-throws. `KillThread` still counts (the worker died mid-call —
    /// the dependency is not absolved) but is never swallowed.
    pub fn guard<A>(&self, action: Io<A>) -> Io<BreakerOutcome<A>>
    where
        A: FromValue + IntoValue + 'static,
    {
        let b = *self;
        Io::now().and_then(move |now| {
            modify_mvar_with(b.state, move |(fails, open_until): (i64, i64)| {
                let open = now < open_until;
                Io::pure(((fails, open_until), open))
            })
            .and_then(move |open| {
                if open {
                    return Io::pure(BreakerOutcome::Shed);
                }
                action
                    .and_then(move |a| b.record(true).map(move |_| BreakerOutcome::Ran(a)))
                    .catch(move |e| b.record(false).then(Io::throw(e)))
            })
        })
    }

    /// `true` while the circuit is open at the current virtual time.
    pub fn is_open(&self) -> Io<bool> {
        let state = self.state;
        Io::now().and_then(move |now| {
            crate::locking::with_mvar(state, Io::pure)
                .map(move |(_, open_until): (i64, i64)| now < open_until)
        })
    }

    /// Records one call outcome: success closes the circuit fully,
    /// failure number `threshold` opens it until `now + cooldown`.
    fn record(&self, success: bool) -> Io<()> {
        let b = *self;
        Io::now().and_then(move |now| {
            modify_mvar_with(b.state, move |(fails, open_until): (i64, i64)| {
                let next = if success {
                    (0, 0)
                } else {
                    let fails = fails + 1;
                    if fails >= b.threshold {
                        // Open: shed everything until the cooldown ends,
                        // then let the next call probe the dependency.
                        (0, now + b.cooldown as i64)
                    } else {
                        (fails, open_until)
                    }
                };
                Io::pure((next, ()))
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use conch_runtime::prelude::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn retry_succeeds_first_try_without_sleeping() {
        let mut rt = Runtime::new();
        let prog = retry_backoff(5, 1_000, |_| Io::pure(1_i64));
        assert_eq!(rt.run(prog).unwrap(), 1);
        assert_eq!(rt.clock(), 0);
    }

    #[test]
    fn retry_backs_off_exponentially() {
        let mut rt = Runtime::new();
        let tries = Rc::new(RefCell::new(0_u32));
        let t = Rc::clone(&tries);
        let prog = retry_backoff(4, 100, move |attempt| {
            *t.borrow_mut() += 1;
            if attempt < 3 {
                Io::<i64>::throw(Exception::error_call("flaky"))
            } else {
                Io::pure(9)
            }
        });
        assert_eq!(rt.run(prog).unwrap(), 9);
        assert_eq!(*tries.borrow(), 4);
        // 100 + 200 + 400 between the four attempts.
        assert_eq!(rt.clock(), 700);
    }

    #[test]
    fn retry_exhausted_rethrows_last_failure() {
        let mut rt = Runtime::new();
        let prog = retry_backoff(3, 10, |attempt| {
            Io::<i64>::throw(Exception::error_call(format!("fail {attempt}")))
        });
        assert_eq!(
            rt.run(prog),
            Err(RunError::Uncaught(Exception::error_call("fail 2")))
        );
    }

    #[test]
    fn retry_never_swallows_kill_thread() {
        let mut rt = Runtime::new();
        // A retried action that blocks forever; killing the thread must
        // not trigger a retry.
        let tries = Rc::new(RefCell::new(0_u32));
        let t = Rc::clone(&tries);
        let prog = Io::new_empty_mvar::<i64>().and_then(move |hole| {
            let body = retry_backoff(10, 5, move |_| {
                *t.borrow_mut() += 1;
                hole.take()
            })
            .map(|_| ())
            .catch(|e| {
                assert!(e.is_kill_thread());
                Io::unit()
            });
            Io::fork(body).and_then(|tid| {
                Io::sleep(50)
                    .then(Io::throw_to(tid, Exception::kill_thread()))
                    .then(Io::sleep(50))
            })
        });
        rt.run(prog).unwrap();
        assert_eq!(*tries.borrow(), 1, "KillThread must not be retried");
    }

    #[test]
    fn breaker_opens_after_threshold_and_sheds() {
        let mut rt = Runtime::new();
        let prog = Breaker::new(2, 10_000).and_then(|b| {
            let fail = || {
                b.guard(Io::<i64>::throw(Exception::error_call("down")))
                    .catch(|_| Io::pure(BreakerOutcome::Shed))
            };
            fail()
                .then(fail())
                .then(b.guard(Io::pure(5_i64)))
                .and_then(move |shed| b.is_open().map(move |open| (shed, open)))
        });
        let (shed, open) = rt.run(prog).unwrap();
        assert_eq!(shed, BreakerOutcome::Shed, "third call must be shed");
        assert!(open);
    }

    #[test]
    fn breaker_closes_again_after_cooldown() {
        let mut rt = Runtime::new();
        let prog = Breaker::new(1, 1_000).and_then(|b| {
            b.guard(Io::<i64>::throw(Exception::error_call("down")))
                .catch(|_| Io::pure(BreakerOutcome::Shed))
                .then(Io::sleep(2_000))
                .then(b.guard(Io::pure(3_i64)))
        });
        assert_eq!(rt.run(prog).unwrap(), BreakerOutcome::Ran(3));
    }

    #[test]
    fn breaker_success_resets_failure_streak() {
        let mut rt = Runtime::new();
        let prog = Breaker::new(2, 10_000).and_then(|b| {
            let fail = move || {
                b.guard(Io::<i64>::throw(Exception::error_call("down")))
                    .catch(|_| Io::pure(BreakerOutcome::Shed))
            };
            // fail, success, fail: streak never reaches 2.
            fail()
                .then(b.guard(Io::pure(1_i64)))
                .then(fail())
                .then(b.guard(Io::pure(2_i64)))
        });
        assert_eq!(rt.run(prog).unwrap(), BreakerOutcome::Ran(2));
    }

    #[test]
    fn retry_composes_with_breaker() {
        let mut rt = Runtime::new();
        // A flaky dependency behind a breaker: the retry loop sees the
        // shed as a failure and backs off past the cooldown, after
        // which the probe succeeds.
        let calls = Rc::new(RefCell::new(0_u32));
        let c = Rc::clone(&calls);
        let prog = Breaker::new(1, 500).and_then(move |b| {
            retry_backoff(4, 400, move |_| {
                let c2 = Rc::clone(&c);
                b.guard(
                    Io::effect(move || {
                        let n = {
                            let mut m = c2.borrow_mut();
                            *m += 1;
                            *m
                        };
                        n as i64
                    })
                    .and_then(|n| {
                        if n == 1 {
                            Io::<i64>::throw(Exception::error_call("cold start"))
                        } else {
                            Io::pure(n)
                        }
                    }),
                )
                .and_then(|out| match out {
                    BreakerOutcome::Ran(v) => Io::pure(v),
                    BreakerOutcome::Shed => Io::<i64>::throw(Exception::error_call("shed")),
                })
            })
        });
        assert_eq!(rt.run(prog).unwrap(), 2);
    }
}
