//! Determinism of parallel schedule exploration.
//!
//! The work-stealing explorer promises (see DESIGN.md) that its results
//! are a function of the schedule space alone, not of how the tree is
//! carved across OS threads: passing reports are bit-identical for any
//! worker count, and failing runs shrink to the byte-identical
//! certificate the sequential DFS would have produced.

use conch_explore::{
    effective_workers, ExploreConfig, Explorer, Reduction, Report, RunOutcome, Schedule, Strategy,
    TestCase,
};
use conch_runtime::exception::Exception;
use conch_runtime::io::Io;

// The worker sweeps below use `check_parallel_exact` so that 4 and 8
// genuinely mean 4 and 8 OS threads even on a small CI box — the
// public `check_parallel` clamps requests to `available_parallelism`
// (see `workers_clamped_to_available_parallelism`), which would
// silently collapse the sweep to 1 worker on a 1-CPU machine.
const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// The G5 golden workload (see `tests/golden_traces.rs`): two MVar
/// writers racing a reader, plus an async kill — 448 schedules.
fn three_way_race() -> Io<i64> {
    Io::new_empty_mvar::<i64>().and_then(|m| {
        Io::fork(m.put(1))
            .then(Io::fork(m.put(2)))
            .and_then(move |t2| {
                Io::throw_to(t2, Exception::kill_thread())
                    .then(m.take())
                    .catch(|_| Io::pure(-1))
            })
    })
}

/// Two independent MVar pairs — exercises sleep-set pruning, so the
/// `pruned` counter is non-trivial.
fn independent_pairs() -> Io<i64> {
    Io::new_empty_mvar::<i64>().and_then(|a| {
        Io::new_empty_mvar::<i64>().and_then(move |b| {
            Io::fork(a.put(1))
                .then(Io::fork(b.put(2)))
                .then(a.take())
                .and_then(move |x| b.take().map(move |y| x + y))
        })
    })
}

/// The classic two-way output race used by the G4 goldens.
fn output_race() -> Io<()> {
    Io::fork(Io::put_char('b'))
        .then(Io::put_char('a'))
        .then(Io::sleep(1))
}

fn explorer() -> Explorer {
    Explorer::with_config(ExploreConfig {
        max_schedules: 100_000,
        ..ExploreConfig::default()
    })
}

fn passing_report(workers: usize, program: fn() -> Io<i64>) -> Report {
    explorer()
        .check_parallel_exact(workers, || {
            TestCase::new(program(), |out: &RunOutcome<i64>| match out.result {
                Ok(_) => Ok(()),
                Err(ref e) => Err(e.to_string()),
            })
        })
        .expect_pass()
        .clone()
}

#[test]
fn passing_counts_identical_for_every_worker_count() {
    for program in [three_way_race as fn() -> Io<i64>, independent_pairs] {
        // The sequential engine is the reference...
        let sequential = explorer()
            .check(|| {
                TestCase::new(program(), |out: &RunOutcome<i64>| match out.result {
                    Ok(_) => Ok(()),
                    Err(ref e) => Err(e.to_string()),
                })
            })
            .expect_pass()
            .clone();
        assert!(sequential.complete);
        // ...and every worker count reproduces it bit for bit,
        // including merged runtime stats (`Report` is `Eq`).
        for workers in WORKER_COUNTS {
            let parallel = passing_report(workers, program);
            assert_eq!(
                parallel, sequential,
                "report diverged at workers={workers}: {parallel:?} vs {sequential:?}"
            );
        }
    }
}

#[test]
fn pinned_g5_counts_hold_under_parallelism() {
    for workers in WORKER_COUNTS {
        let report = passing_report(workers, three_way_race);
        assert_eq!(report.explored, 448, "workers={workers}");
        assert_eq!(report.pruned, 8, "workers={workers}");
        assert_eq!(report.truncated, 0, "workers={workers}");
        assert!(report.complete, "workers={workers}");
    }
}

fn racy_case() -> TestCase<()> {
    TestCase::new(output_race(), |out: &RunOutcome<()>| {
        if out.output == "ba" {
            Err("child won the race".to_owned())
        } else {
            Ok(())
        }
    })
}

#[test]
fn failure_certificates_identical_for_every_worker_count() {
    let reference = explorer().check(racy_case);
    let reference = reference.expect_fail();
    for workers in WORKER_COUNTS {
        let result = explorer().check_parallel_exact(workers, racy_case);
        let failure = result.expect_fail();
        assert_eq!(
            failure.schedule, reference.schedule,
            "shrunk certificate diverged at workers={workers}"
        );
        assert_eq!(
            failure.original, reference.original,
            "original certificate diverged at workers={workers}"
        );
        assert_eq!(
            failure.message, reference.message,
            "failure message diverged at workers={workers}"
        );
        // Shrinking starts from the same original, so its cost is
        // identical too.
        assert_eq!(failure.report.shrink_runs, reference.report.shrink_runs);
    }
}

#[test]
fn parallel_find_shrink_replay_round_trip() {
    // Find a race with the parallel engine...
    let result = explorer().check_parallel_exact(4, racy_case);
    let failure = result.expect_fail();
    // ...replay its minimal certificate in a brand-new runtime, twice...
    for _ in 0..2 {
        let (outcome, check) = Explorer::new().replay(racy_case(), &failure.schedule);
        assert_eq!(outcome.output, "ba");
        assert!(check.is_err());
    }
    // ...check it is minimal (every choice is necessary)...
    for i in 0..failure.schedule.len() {
        let mut candidate = failure.schedule.clone();
        candidate.choices.remove(i);
        let (_, check) = Explorer::new().replay(racy_case(), &candidate);
        assert!(
            check.is_ok(),
            "choice {i} of {} is redundant",
            failure.schedule
        );
    }
    // ...and the text form round-trips.
    let parsed: Schedule = failure.schedule.to_string().parse().unwrap();
    assert_eq!(parsed, failure.schedule);
}

#[test]
fn workers_zero_uses_available_parallelism() {
    let report = explorer()
        .check_parallel(0, || {
            TestCase::new(output_race(), |_: &RunOutcome<()>| Ok(()))
        })
        .expect_pass()
        .clone();
    let sequential = explorer()
        .check(|| TestCase::new(output_race(), |_: &RunOutcome<()>| Ok(())))
        .expect_pass()
        .clone();
    assert_eq!(report, sequential);
}

#[test]
fn worker_auto_sizing_clamps_to_available_parallelism() {
    // The clamp itself, over every interesting shape of request.
    assert_eq!(effective_workers(0, 4), 4, "0 means 'use the machine'");
    assert_eq!(effective_workers(2, 4), 2, "under the machine: honored");
    assert_eq!(effective_workers(4, 4), 4, "exactly the machine: honored");
    assert_eq!(effective_workers(64, 4), 4, "over the machine: clamped");
    assert_eq!(effective_workers(8, 1), 1, "1-CPU box never oversubscribes");
    assert_eq!(effective_workers(0, 0), 1, "degenerate probe still runs");
}

#[test]
fn oversized_worker_request_is_clamped_and_deterministic() {
    // A request far beyond any plausible machine goes through the
    // public (clamped) engine; the determinism contract makes the
    // clamp observationally safe — the report is bit-identical to the
    // sequential reference no matter how many workers actually ran.
    // `check_parallel_exact` is the documented escape hatch for
    // callers that really want oversubscription.
    let clamped = explorer()
        .check_parallel(1024, || {
            TestCase::new(output_race(), |_: &RunOutcome<()>| Ok(()))
        })
        .expect_pass()
        .clone();
    let sequential = explorer()
        .check(|| TestCase::new(output_race(), |_: &RunOutcome<()>| Ok(())))
        .expect_pass()
        .clone();
    assert_eq!(clamped, sequential);
}

// ---------------------------------------------------------------------
// The same determinism contract must hold under DPOR: each round's
// tree is fixed, insertions are a commutative union, so counters and
// certificates are functions of the schedule space alone (see
// crates/explore/src/dpor.rs).
// ---------------------------------------------------------------------

fn dpor_explorer() -> Explorer {
    dpor_explorer_with(false)
}

fn dpor_explorer_with(legacy_race_analysis: bool) -> Explorer {
    Explorer::with_config(ExploreConfig {
        max_schedules: 100_000,
        strategy: Strategy::Exhaustive(Reduction::Dpor),
        legacy_race_analysis,
        ..ExploreConfig::default()
    })
}

#[test]
fn dpor_counts_identical_for_every_worker_count_and_analysis_path() {
    for program in [three_way_race as fn() -> Io<i64>, independent_pairs] {
        // The sequential incremental-analysis engine is the reference;
        // the legacy full-recompute path and every worker count must
        // reproduce its report bit for bit (`Report` is `Eq`; the
        // wall-clock `timing` field is excluded from equality).
        let sequential = dpor_explorer()
            .check(|| {
                TestCase::new(program(), |out: &RunOutcome<i64>| match out.result {
                    Ok(_) => Ok(()),
                    Err(ref e) => Err(e.to_string()),
                })
            })
            .expect_pass()
            .clone();
        assert!(sequential.complete);
        for legacy in [false, true] {
            for workers in WORKER_COUNTS {
                let parallel = dpor_explorer_with(legacy)
                    .check_parallel_exact(workers, || {
                        TestCase::new(program(), |out: &RunOutcome<i64>| match out.result {
                            Ok(_) => Ok(()),
                            Err(ref e) => Err(e.to_string()),
                        })
                    })
                    .expect_pass()
                    .clone();
                assert_eq!(
                    parallel, sequential,
                    "DPOR report diverged at workers={workers} legacy={legacy}"
                );
            }
        }
    }
}

#[test]
fn dpor_explores_fewer_schedules_than_sleep_sets_on_g5() {
    let sleep = passing_report(1, three_way_race);
    let dpor = dpor_explorer()
        .check(|| {
            TestCase::new(three_way_race(), |out: &RunOutcome<i64>| match out.result {
                Ok(_) => Ok(()),
                Err(ref e) => Err(e.to_string()),
            })
        })
        .expect_pass()
        .clone();
    assert!(sleep.complete && dpor.complete);
    assert!(
        dpor.explored < sleep.explored,
        "DPOR must strictly reduce G5: {} vs {}",
        dpor.explored,
        sleep.explored
    );
    assert!(dpor.stats.races_detected > 0);
    assert!(dpor.stats.backtracks_installed > 0);
}

#[test]
fn dpor_failure_certificates_identical_for_every_worker_count() {
    let check = || {
        Explorer::with_config(ExploreConfig {
            max_schedules: 100_000,
            strategy: Strategy::Exhaustive(Reduction::Dpor),
            ..ExploreConfig::default()
        })
    };
    let reference = check().check(racy_case);
    let reference = reference.expect_fail();
    for workers in WORKER_COUNTS {
        let result = check().check_parallel_exact(workers, racy_case);
        let failure = result.expect_fail();
        assert_eq!(
            failure.schedule, reference.schedule,
            "DPOR shrunk certificate diverged at workers={workers}"
        );
        assert_eq!(failure.original, reference.original);
        assert_eq!(failure.message, reference.message);
        // DPOR drains its whole fixpoint before shrinking, so even the
        // coverage counters of a failing search are deterministic.
        assert_eq!(
            failure.report, reference.report,
            "DPOR failing report diverged at workers={workers}"
        );
    }
}

#[test]
fn shrink_budget_truncates_deterministically() {
    // A budget so tight the very first run exhausts it: the failure is
    // still reported, but shrinking is cut off before its first
    // candidate replay — the certificate is the unshrunk original and
    // the report says so, instead of silently burning steps past the
    // deadline (or worse, panicking mid-shrink).
    let capped_cfg = || ExploreConfig {
        max_schedules: 100_000,
        max_total_steps: Some(1),
        ..ExploreConfig::default()
    };
    let always_fails = || {
        TestCase::new(output_race(), |_: &RunOutcome<()>| {
            Err("seeded failure".to_owned())
        })
    };
    let result = Explorer::with_config(capped_cfg()).check(always_fails);
    let failure = result.expect_fail();
    assert!(
        failure.report.shrink_truncated,
        "an exhausted budget must be reported: {:?}",
        failure.report
    );
    assert_eq!(
        failure.report.shrink_runs, 0,
        "no candidate may be replayed once the budget is spent"
    );
    assert_eq!(failure.report.shrink_steps, 0);
    assert_eq!(
        failure.schedule, failure.original,
        "best-so-far is the original when shrinking never started"
    );
    // Deterministic: a second capped search truncates identically.
    let again = Explorer::with_config(capped_cfg()).check(always_fails);
    let again = again.expect_fail();
    assert_eq!(again.report, failure.report);
    assert_eq!(again.schedule, failure.schedule);
    // Contrast: with no deadline the same search shrinks normally,
    // spends (and accounts) shrink steps, and is not marked truncated.
    let free = explorer().check(racy_case);
    let free = free.expect_fail();
    assert!(!free.report.shrink_truncated);
    assert!(free.report.shrink_runs > 0);
    assert!(
        free.report.shrink_steps > 0,
        "shrink replays must be charged to the step ledger"
    );
}

// ---------------------------------------------------------------------
// Sampling strategies share the determinism contract: a sample's
// schedule is a pure function of (strategy, index), workers claim
// indices from a shared counter and always drain the whole budget, so
// reports and certificates are bit-identical for every worker count.
// ---------------------------------------------------------------------

fn sampling_strategies() -> Vec<Strategy> {
    vec![
        Strategy::Pct {
            depth: 3,
            seed: 0xC0FFEE,
        },
        Strategy::UniformRandom { seed: 7 },
        Strategy::Swarm {
            seeds: vec![1, 2, 3],
        },
    ]
}

fn sampler(strategy: Strategy, samples: usize) -> Explorer {
    Explorer::with_config(ExploreConfig {
        max_schedules: samples,
        strategy,
        ..ExploreConfig::default()
    })
}

#[test]
fn sampled_passing_reports_identical_for_every_worker_count() {
    for strategy in sampling_strategies() {
        let reference = sampler(strategy.clone(), 64)
            .check(|| {
                TestCase::new(three_way_race(), |out: &RunOutcome<i64>| match out.result {
                    Ok(_) => Ok(()),
                    Err(ref e) => Err(e.to_string()),
                })
            })
            .expect_pass()
            .clone();
        assert!(!reference.complete, "sampling never claims coverage");
        assert_eq!(reference.stats.sampled, 64);
        for workers in WORKER_COUNTS {
            let parallel = sampler(strategy.clone(), 64)
                .check_parallel_exact(workers, || {
                    TestCase::new(three_way_race(), |out: &RunOutcome<i64>| match out.result {
                        Ok(_) => Ok(()),
                        Err(ref e) => Err(e.to_string()),
                    })
                })
                .expect_pass()
                .clone();
            assert_eq!(
                parallel, reference,
                "sampled report diverged at workers={workers} under {strategy:?}"
            );
        }
    }
}

#[test]
fn sampled_failure_certificates_identical_for_every_worker_count() {
    for strategy in sampling_strategies() {
        let reference = sampler(strategy.clone(), 256).check(racy_case);
        let reference = reference.expect_fail();
        let first = reference
            .report
            .first_failing_sample
            .expect("a sampled failure must carry its sample index");
        for workers in WORKER_COUNTS {
            let result = sampler(strategy.clone(), 256).check_parallel_exact(workers, racy_case);
            let failure = result.expect_fail();
            assert_eq!(
                failure.report.first_failing_sample,
                Some(first),
                "earliest failing sample diverged at workers={workers} under {strategy:?}"
            );
            assert_eq!(
                failure.schedule, reference.schedule,
                "sampled shrunk certificate diverged at workers={workers} under {strategy:?}"
            );
            assert_eq!(failure.original, reference.original);
            assert_eq!(failure.message, reference.message);
            assert_eq!(
                failure.report, reference.report,
                "sampled failing report diverged at workers={workers} under {strategy:?}"
            );
        }
    }
}

#[test]
fn step_budget_truncates_deterministically() {
    // A tiny global step budget stops the search early — at the same
    // schedule on every machine, unlike a wall-clock deadline — and the
    // report is marked incomplete.
    let cfg = ExploreConfig {
        max_schedules: 100_000,
        max_total_steps: Some(200),
        ..ExploreConfig::default()
    };
    let capped = Explorer::with_config(cfg.clone())
        .check(|| TestCase::new(three_way_race(), |_: &RunOutcome<i64>| Ok(())))
        .expect_pass()
        .clone();
    assert!(!capped.complete, "budget must mark the search incomplete");
    assert!(capped.explored < 448, "budget must actually bind");
    assert!(
        capped.steps >= 200,
        "search stops only once the budget is spent"
    );
    // Deterministic: a second run truncates at exactly the same point.
    let again = Explorer::with_config(cfg)
        .check(|| TestCase::new(three_way_race(), |_: &RunOutcome<i64>| Ok(())))
        .expect_pass()
        .clone();
    assert_eq!(capped, again);
}
