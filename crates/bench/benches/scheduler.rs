//! B6 — baseline numbers for the simulator substrate: raw interpreter
//! throughput, fork/join rates, and context-switch cost. These anchor
//! all the other benches (everything is measured in the same virtual
//! machine, so the relative shapes in B1–B5 are meaningful).

use conch_bench::{fork_join, run};
use conch_runtime::prelude::*;
use conch_runtime::SchedulingPolicy;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_compute_throughput(c: &mut Criterion) {
    const STEPS: u64 = 100_000;
    let mut group = c.benchmark_group("interpreter_throughput");
    group.throughput(Throughput::Elements(STEPS));
    group.bench_function("compute_steps", |b| {
        b.iter(|| run(RuntimeConfig::new(), Io::compute(STEPS)))
    });
    group.bench_function("bind_chain", |b| {
        b.iter(|| {
            let io = conch_runtime::io::replicate(STEPS / 10, || Io::pure(1_i64));
            run(RuntimeConfig::new(), io)
        })
    });
    group.finish();
}

fn bench_fork_join(c: &mut Criterion) {
    let mut group = c.benchmark_group("fork_join");
    for &n in &[10_u64, 100, 1_000] {
        group.throughput(Throughput::Elements(n));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| run(RuntimeConfig::new(), fork_join(n)))
        });
    }
    group.finish();
}

fn bench_context_switching(c: &mut Criterion) {
    // Many threads yielding in a loop: measures scheduler rotation cost.
    fn yielders(threads: u64, yields: u64) -> Io<i64> {
        Io::new_mvar(0_i64).and_then(move |done| {
            conch_runtime::io::replicate(threads, move || {
                Io::fork(
                    conch_runtime::io::replicate(yields, Io::yield_now)
                        .then(conch_combinators::modify_mvar(done, |n| Io::pure(n + 1))),
                )
            })
            .then(conch_bench::wait_until(done, threads as i64))
            .then(done.take())
        })
    }
    let mut group = c.benchmark_group("context_switch");
    for &threads in &[2_u64, 8, 32] {
        group.bench_with_input(
            BenchmarkId::new("yield_storm", threads),
            &threads,
            |b, &threads| b.iter(|| run(RuntimeConfig::new(), yielders(threads, 50))),
        );
    }
    group.finish();
}

fn bench_scheduling_policies(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduling_policy");
    let policies: [(&str, SchedulingPolicy); 2] = [
        ("round_robin", SchedulingPolicy::RoundRobin),
        ("random", SchedulingPolicy::Random { seed: 7 }),
    ];
    for (name, policy) in policies {
        group.bench_function(name, |b| {
            b.iter(|| {
                let cfg = RuntimeConfig::new().scheduling(policy);
                run(cfg, fork_join(100))
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_compute_throughput,
    bench_fork_join,
    bench_context_switching,
    bench_scheduling_policies
);
criterion_main!(benches);
