//! `mask` with a restore function — the descendant design.
//!
//! The paper's `unblock` always unmasks (§5.2: "unblock always unblocks
//! asynchronous exceptions, regardless of the context"). That is exactly
//! right for the paper's idioms, but it has a modularity wart the paper's
//! successors fixed: a library function that wraps its body in
//! `block (… unblock …)` will *unmask* even when its **caller** was
//! masked and needed to stay so. GHC 7 therefore replaced
//! `block`/`unblock` with `mask $ \restore -> …`, where `restore` resets
//! the masking state to whatever it was *at the `mask`*, not to
//! "unmasked".
//!
//! This module derives that API from the paper's primitives — no new
//! runtime support needed beyond reading the masking state — and its
//! tests demonstrate the wart that motivated the change.

use conch_runtime::io::Io;
use conch_runtime::value::{FromValue, IntoValue};

/// A capability to restore the masking state captured by [`mask`].
///
/// `Copy`, so the body can use it on several paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Restore {
    was_masked: bool,
}

impl Restore {
    /// Runs `io` with the masking state as it was when the enclosing
    /// [`mask`] was entered.
    pub fn apply<T: 'static>(self, io: Io<T>) -> Io<T> {
        if self.was_masked {
            Io::block(io)
        } else {
            Io::unblock(io)
        }
    }
}

/// Runs `body` with asynchronous exceptions masked, passing it a
/// [`Restore`] that re-establishes the *previous* state (rather than
/// unconditionally unmasking, as the paper's `unblock` does).
///
/// # Examples
///
/// ```
/// use conch_runtime::prelude::*;
/// use conch_combinators::mask;
///
/// let mut rt = Runtime::new();
/// let prog = mask(|restore| {
///     Io::masking_state().and_then(move |inside| {
///         restore.apply(Io::masking_state())
///             .map(move |restored| (inside, restored))
///     })
/// });
/// // At top level: masked inside, restored-to-unmasked by restore.
/// assert_eq!(rt.run(prog).unwrap(), (true, false));
/// ```
pub fn mask<T, F>(body: F) -> Io<T>
where
    T: FromValue + IntoValue + 'static,
    F: FnOnce(Restore) -> Io<T> + 'static,
{
    Io::masking_state().and_then(move |was_masked| Io::block(body(Restore { was_masked })))
}

/// An exception-safe state update in the `mask` style: like
/// [`modify_mvar`](crate::modify_mvar), but a *masked caller stays
/// masked* during the user computation.
pub fn modify_mvar_restoring<T, F>(m: conch_runtime::MVar<T>, compute: F) -> Io<()>
where
    T: FromValue + IntoValue + Clone + 'static,
    F: FnOnce(T) -> Io<T> + 'static,
{
    mask(move |restore| {
        m.take().and_then(move |a| {
            let saved = a.clone();
            restore
                .apply(compute(a))
                .catch(move |e| m.put(saved).then(Io::throw(e)))
                .and_then(move |b| m.put(b))
        })
    })
    .map(|_: ()| ())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{modify_mvar, timeout};
    use conch_runtime::prelude::*;

    #[test]
    fn mask_masks_and_restore_restores() {
        let mut rt = Runtime::new();
        let prog = mask(|restore| {
            Io::masking_state().and_then(move |inside| {
                restore
                    .apply(Io::masking_state())
                    .and_then(move |during_restore| {
                        Io::masking_state()
                            .map(move |after_restore| (inside, during_restore, after_restore))
                    })
            })
        });
        assert_eq!(rt.run(prog).unwrap(), (true, false, true));
    }

    #[test]
    fn nested_mask_restore_preserves_outer_mask() {
        let mut rt = Runtime::new();
        // A masked caller invokes a library function that itself uses
        // mask/restore: restore re-masks (to the caller's state), unlike
        // the paper's unblock.
        let library_fn = || mask(|restore| restore.apply(Io::masking_state()));
        let prog = Io::<bool>::block(library_fn());
        // The caller was masked, so even inside the library's "restore"
        // window the state is still masked.
        assert!(rt.run(prog).unwrap());
    }

    #[test]
    fn paper_unblock_violates_callers_mask() {
        // The wart that motivated the change: the same library function
        // written with the paper's unblock opens a window inside a
        // masked caller.
        let mut rt = Runtime::new();
        let library_fn = || Io::<bool>::block(Io::<bool>::unblock(Io::masking_state()));
        let prog = Io::<bool>::block(library_fn());
        // Caller masked, yet the state observed inside is UNMASKED.
        assert!(!rt.run(prog).unwrap());
    }

    #[test]
    fn restoring_update_in_masked_caller_is_uninterruptible() {
        // A masked caller runs a restoring update; a pending kill cannot
        // land inside the user computation (the caller's mask is kept),
        // whereas the paper-style modify_mvar would open a window.
        for seed in 0..20 {
            let cfg = RuntimeConfig::new().random_scheduling(seed).quantum(2);
            let mut rt = Runtime::with_config(cfg);
            let prog = Io::new_mvar(0_i64).and_then(|m| {
                let worker = Io::<()>::block(
                    modify_mvar_restoring(m, |n| Io::compute(200).then(Io::pure(n + 1)))
                        .then(Io::<()>::unblock(Io::unit())), // deliberate window at the end
                )
                .catch(|_| Io::unit());
                Io::<ThreadId>::block(Io::fork(worker)).and_then(move |w| {
                    Io::throw_to(w, Exception::kill_thread())
                        .then(Io::sleep(1_000_000))
                        .then(m.take())
                })
            });
            // The update always completes: state is 1 on every schedule.
            assert_eq!(rt.run(prog).unwrap(), 1, "seed {seed}");
        }
    }

    #[test]
    fn unmasked_caller_still_gets_interruptible_update() {
        // From an unmasked caller, modify_mvar_restoring behaves like
        // modify_mvar: the user computation is interruptible.
        let mut rt = Runtime::new();
        let prog = Io::new_mvar(0_i64).and_then(|m| {
            let worker = modify_mvar_restoring(m, |n| Io::compute(100_000).then(Io::pure(n + 1)))
                .catch(|_| Io::unit());
            Io::fork(worker).and_then(move |w| {
                // Pace by steps, not virtual time: the worker's compute
                // keeps the run queue busy, so the clock cannot advance.
                Io::compute(50)
                    .then(Io::throw_to(w, Exception::kill_thread()))
                    .then(m.take())
            })
        });
        // Interrupted mid-compute (or killed before taking): the old
        // state is what main observes either way.
        assert_eq!(rt.run(prog).unwrap(), 0);
    }

    #[test]
    fn mask_composes_with_timeout() {
        let mut rt = Runtime::new();
        // Masked bookkeeping + restored wait: the timeout can still fire
        // during the restored window.
        let prog = Io::new_empty_mvar::<i64>()
            .and_then(|never| timeout(100, mask(move |restore| restore.apply(never.take()))));
        assert_eq!(rt.run(prog).unwrap(), None);
        assert_eq!(rt.clock(), 100);
    }

    #[test]
    fn modify_mvar_and_restoring_agree_when_unmasked() {
        let mut rt = Runtime::new();
        let prog = Io::new_mvar(5_i64).and_then(|m| {
            modify_mvar(m, |n| Io::pure(n * 2))
                .then(modify_mvar_restoring(m, |n| Io::pure(n + 1)))
                .then(m.take())
        });
        assert_eq!(rt.run(prog).unwrap(), 11);
    }
}
