//! B5 — overhead and composition of the §7.3 `timeout` combinator.
//!
//! Expected shape: each nesting level adds a constant cost (two forked
//! threads plus an MVar rendezvous per level); the timed code itself is
//! untouched — the whole point of the exception-free timeout design.

use conch_bench::{nested_timeout_compute, run};
use conch_combinators::{both, race, timeout};
use conch_runtime::prelude::*;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_nesting_depth(c: &mut Criterion) {
    const WORK: u64 = 1_000;
    let mut group = c.benchmark_group("timeout_nesting");
    for &depth in &[0_u32, 1, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, &depth| {
            b.iter(|| run(RuntimeConfig::new(), nested_timeout_compute(depth, WORK)))
        });
    }
    group.finish();
}

fn bench_expiring_timeout(c: &mut Criterion) {
    // A timeout that actually fires: sleep blocked, timer wins.
    c.bench_function("timeout_fires_on_blocked_take", |b| {
        b.iter(|| {
            let io = Io::new_empty_mvar::<i64>().and_then(|m| timeout(100, m.take()));
            run(RuntimeConfig::new(), io)
        })
    });
}

fn bench_race_and_both(c: &mut Criterion) {
    let mut group = c.benchmark_group("symmetric_combinators");
    group.bench_function("race_two_computes", |b| {
        b.iter(|| {
            let io = race(
                Io::compute_returning(500, 1_i64),
                Io::compute_returning(900, 2_i64),
            );
            run(RuntimeConfig::new(), io)
        })
    });
    group.bench_function("both_two_computes", |b| {
        b.iter(|| {
            let io = both(
                Io::compute_returning(500, 1_i64),
                Io::compute_returning(900, 2_i64),
            );
            run(RuntimeConfig::new(), io)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_nesting_depth,
    bench_expiring_timeout,
    bench_race_and_both
);
criterion_main!(benches);
