//! Work distribution for parallel schedule exploration.
//!
//! A [`WorkItem`] is a frozen, replayable description of an unexplored
//! region of the schedule tree: a choice prefix (plain `Send` data), the
//! sleep-set entries accumulated along it, the prefix's DFS key, and
//! optionally the branch point whose remaining alternatives the item
//! covers. Items partition the schedule space — every schedule belongs
//! to exactly one item's subtree — so per-run counters aggregated
//! across workers are independent of how items are distributed, and the
//! `Io`/`Value` `Rc` graphs never have to cross a thread: each worker
//! rebuilds its program from the factory and replays the prefix.
//!
//! The [`Frontier`] is the shared pool: a LIFO stack of items behind a
//! mutex/condvar (LIFO keeps freshly split subtrees — the deepest,
//! chunkiest work — at the top), the atomic run counters, the
//! DFS-earliest failure candidate, and the merged runtime statistics.
//!
//! # Determinism
//!
//! Which step boundaries become branch points is a function of the
//! executed path alone (see [`crate::driver`]), so the set of runs, the
//! per-point `sleeping` lists, and each run's step count are all
//! independent of how the tree is carved into items. Counters are sums
//! over that fixed set, hence bit-identical for any worker count. For
//! failures, every run is ranked by its [DFS key](dfs_key); workers keep
//! only the lexicographically smallest failing run and prune subtrees
//! that are strictly later, so the surviving candidate is exactly the
//! run the sequential DFS would have failed on first.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard};

use conch_runtime::stats::Stats;

use crate::driver::{Point, SleepEntry};
use crate::schedule::{Choice, Schedule};

/// Poison-tolerant lock: a worker that panicked mid-item has already
/// flagged the search as stopped (see [`Frontier::request_stop`]), and
/// the data under each mutex stays structurally sound, so survivors
/// take the lock anyway, observe the stop flag, and drain out.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// One node of a DFS stack: a branch point plus the index of the
/// alternative currently being explored below it.
#[derive(Debug, Clone)]
pub(crate) struct Node {
    pub point: Point,
    /// For scheduling nodes: index into `point.alts` of the current
    /// choice. Unused for delivery nodes.
    chosen_idx: usize,
    /// The node's remaining alternatives were donated to another worker
    /// as a [`WorkItem`]; locally it is exhausted.
    pub sealed: bool,
}

impl Node {
    pub fn from_point(point: Point) -> Self {
        let chosen_idx = match point.chosen {
            Choice::Thread(t) => point
                .alts
                .iter()
                .position(|&(a, _)| a == t)
                .expect("recorded choice must be among its alternatives"),
            Choice::Deliver(_) => 0,
        };
        Node {
            point,
            chosen_idx,
            sealed: false,
        }
    }

    pub fn choice(&self) -> Choice {
        if self.point.is_delivery() {
            self.point.chosen
        } else {
            Choice::Thread(self.point.alts[self.chosen_idx].0)
        }
    }

    /// Alternatives already explored at this node (to be slept in
    /// sibling subtrees).
    pub fn explored_alts(&self) -> &[SleepEntry] {
        if self.point.is_delivery() {
            &[]
        } else {
            &self.point.alts[..self.chosen_idx]
        }
    }

    /// Position of the current alternative in this node's exploration
    /// order: the DFS visits smaller key indices first, so
    /// concatenating them along a path yields a key that orders whole
    /// runs by sequential visit order (see [`dfs_key`]).
    pub fn key_index(&self) -> u32 {
        if self.point.is_delivery() {
            match self.point.chosen {
                Choice::Deliver(true) => 0,
                _ => 1,
            }
        } else {
            self.chosen_idx as u32
        }
    }

    /// Move to the next unexplored alternative. Returns `false` when the
    /// node is exhausted (or its remainder was donated away).
    pub fn advance(&mut self) -> bool {
        if self.sealed {
            return false;
        }
        if self.point.is_delivery() {
            // Deliver-now is explored first; defer second; then done.
            if self.point.chosen == Choice::Deliver(true) {
                self.point.chosen = Choice::Deliver(false);
                true
            } else {
                false
            }
        } else {
            match (self.chosen_idx + 1..self.point.alts.len())
                .find(|&i| !self.point.sleeping.contains(&self.point.alts[i].0))
            {
                Some(i) => {
                    self.chosen_idx = i;
                    true
                }
                None => false,
            }
        }
    }
}

/// The DFS key of a recorded path: one entry per branch point — the
/// position of the taken alternative in that point's exploration order.
/// The sequential DFS visits runs in lexicographic key order, so
/// "found earlier sequentially" is exactly "lexicographically smaller".
pub(crate) fn dfs_key(record: &[Point]) -> Vec<u32> {
    record.iter().map(point_key).collect()
}

fn point_key(p: &Point) -> u32 {
    match p.chosen {
        Choice::Deliver(now) => {
            if now {
                0
            } else {
                1
            }
        }
        Choice::Thread(t) => {
            p.alts
                .iter()
                .position(|&(a, _)| a == t)
                .expect("recorded choice must be among its alternatives") as u32
        }
    }
}

/// A replayable region of the schedule tree, handed between workers.
/// Only plain data — no `Rc`, no program values.
pub(crate) struct WorkItem {
    /// Choices leading to the region's root, replayed verbatim.
    pub prefix: Vec<Choice>,
    /// Sleep-set entries accumulated along the prefix
    /// (`(script position, entry)` pairs, ascending).
    pub base_sleep: Vec<(usize, SleepEntry)>,
    /// DFS key of the prefix (one entry per prefix choice).
    pub base_key: Vec<u32>,
    /// The branch point whose remaining alternatives this item covers;
    /// `None` for the root item (the whole tree).
    pub node: Option<Node>,
}

impl WorkItem {
    pub fn root() -> Self {
        WorkItem {
            prefix: Vec::new(),
            base_sleep: Vec::new(),
            base_key: Vec::new(),
            node: None,
        }
    }
}

/// The DFS-earliest property failure seen so far.
pub(crate) struct FailureCandidate {
    pub key: Vec<u32>,
    /// The full (unshrunk) schedule of the failing run.
    pub schedule: Schedule,
    /// The property's message on that run.
    pub message: String,
}

struct QueueState {
    items: Vec<WorkItem>,
    /// Workers currently processing an item. The search is over when
    /// the queue is empty *and* nobody is busy (a busy worker may still
    /// donate new items).
    busy: usize,
}

/// Shared state of one (possibly parallel) exploration.
pub(crate) struct Frontier {
    workers: usize,
    queue: Mutex<QueueState>,
    available: Condvar,
    /// Workers currently blocked waiting for an item — the signal that
    /// busy workers should split their subtrees.
    starving: AtomicUsize,
    stopped: AtomicBool,
    has_failure: AtomicBool,
    explored: AtomicUsize,
    pruned: AtomicUsize,
    truncated: AtomicUsize,
    steps: AtomicU64,
    failure: Mutex<Option<FailureCandidate>>,
    stats: Mutex<Stats>,
}

impl Frontier {
    /// A frontier holding just the root item.
    pub fn new(workers: usize) -> Self {
        Frontier {
            workers,
            queue: Mutex::new(QueueState {
                items: vec![WorkItem::root()],
                busy: 0,
            }),
            available: Condvar::new(),
            starving: AtomicUsize::new(0),
            stopped: AtomicBool::new(false),
            has_failure: AtomicBool::new(false),
            explored: AtomicUsize::new(0),
            pruned: AtomicUsize::new(0),
            truncated: AtomicUsize::new(0),
            steps: AtomicU64::new(0),
            failure: Mutex::new(None),
            stats: Mutex::new(Stats::default()),
        }
    }

    /// Pop an item, or block until one is donated. Returns `None` when
    /// the search is over: stop requested, or queue empty with no busy
    /// worker left to donate. A returned item MUST be paired with a
    /// later [`finish_item`](Frontier::finish_item).
    pub fn next_item(&self) -> Option<WorkItem> {
        let mut q = lock(&self.queue);
        loop {
            if self.stopped.load(Ordering::Acquire) {
                return None;
            }
            if let Some(item) = q.items.pop() {
                q.busy += 1;
                return Some(item);
            }
            if q.busy == 0 {
                return None;
            }
            self.starving.fetch_add(1, Ordering::Relaxed);
            q = self.available.wait(q).unwrap_or_else(|e| e.into_inner());
            self.starving.fetch_sub(1, Ordering::Relaxed);
        }
    }

    /// Declare the item from the matching [`next_item`](Frontier::next_item)
    /// done (fully explored, donated away, or abandoned on stop).
    pub fn finish_item(&self) {
        let mut q = lock(&self.queue);
        q.busy -= 1;
        if q.busy == 0 {
            // Wake starving workers so they can observe termination.
            self.available.notify_all();
        }
    }

    /// Donate an item to the pool.
    pub fn push(&self, item: WorkItem) {
        let mut q = lock(&self.queue);
        q.items.push(item);
        drop(q);
        self.available.notify_one();
    }

    /// Should busy workers split their subtrees? True when some worker
    /// is starving; always false for a single-worker search, so the
    /// `workers = 1` engine is the sequential DFS, bit for bit.
    pub fn hungry(&self) -> bool {
        self.workers > 1 && self.starving.load(Ordering::Relaxed) > 0
    }

    /// Abort the search (a global cap was hit, or a worker panicked).
    pub fn request_stop(&self) {
        self.stopped.store(true, Ordering::Release);
        drop(lock(&self.queue));
        self.available.notify_all();
    }

    pub fn is_stopped(&self) -> bool {
        self.stopped.load(Ordering::Acquire)
    }

    /// Record one executed run.
    pub fn note_run(&self, depth_hit: bool, run_steps: u64) {
        self.explored.fetch_add(1, Ordering::Relaxed);
        if depth_hit {
            self.truncated.fetch_add(1, Ordering::Relaxed);
        }
        self.steps.fetch_add(run_steps, Ordering::Relaxed);
    }

    pub fn add_pruned(&self, n: usize) {
        if n > 0 {
            self.pruned.fetch_add(n, Ordering::Relaxed);
        }
    }

    pub fn explored(&self) -> usize {
        self.explored.load(Ordering::Relaxed)
    }

    pub fn pruned(&self) -> usize {
        self.pruned.load(Ordering::Relaxed)
    }

    pub fn truncated(&self) -> usize {
        self.truncated.load(Ordering::Relaxed)
    }

    pub fn steps(&self) -> u64 {
        self.steps.load(Ordering::Relaxed)
    }

    /// Offer a failing run; kept only if DFS-earlier than the current
    /// candidate.
    pub fn offer_failure(&self, key: Vec<u32>, schedule: Schedule, message: String) {
        let mut slot = lock(&self.failure);
        let earlier = match slot.as_ref() {
            None => true,
            Some(best) => key < best.key,
        };
        if earlier {
            *slot = Some(FailureCandidate {
                key,
                schedule,
                message,
            });
            self.has_failure.store(true, Ordering::Release);
        }
    }

    pub fn has_failure(&self) -> bool {
        self.has_failure.load(Ordering::Acquire)
    }

    /// `true` iff a failure candidate exists and `prefix_key` is
    /// strictly DFS-later — no run under that prefix can precede the
    /// candidate, so its whole subtree may be skipped. (A prefix *of*
    /// the candidate's key compares smaller, so the path to the
    /// candidate itself is never pruned and DFS-earlier failures can
    /// still be found and take over.)
    pub fn prune_later(&self, prefix_key: &[u32]) -> bool {
        match lock(&self.failure).as_ref() {
            Some(best) => prefix_key > best.key.as_slice(),
            None => false,
        }
    }

    pub fn take_failure(&self) -> Option<FailureCandidate> {
        lock(&self.failure).take()
    }

    /// Fold a worker's accumulated runtime statistics into the total.
    pub fn merge_stats(&self, local: &Stats) {
        lock(&self.stats).merge(local);
    }

    pub fn total_stats(&self) -> Stats {
        lock(&self.stats).clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sched(s: &str) -> Schedule {
        s.parse().unwrap()
    }

    #[test]
    fn offer_failure_keeps_dfs_earliest() {
        let f = Frontier::new(4);
        f.offer_failure(vec![1, 0], sched("t1.t0"), "later".into());
        f.offer_failure(vec![0, 2], sched("t0.t2"), "earlier".into());
        f.offer_failure(vec![0, 3], sched("t0.t3"), "in between".into());
        let best = f.take_failure().unwrap();
        assert_eq!(best.key, vec![0, 2]);
        assert_eq!(best.message, "earlier");
    }

    #[test]
    fn prune_later_is_strict_and_prefix_safe() {
        let f = Frontier::new(4);
        assert!(!f.prune_later(&[5, 5]), "no candidate, nothing to prune");
        f.offer_failure(vec![1, 1, 0], sched("t1.t1.t0"), "x".into());
        // Strictly later prefixes are pruned.
        assert!(f.prune_later(&[1, 2]));
        assert!(f.prune_later(&[2]));
        // Extensions of the candidate's key are later too.
        assert!(f.prune_later(&[1, 1, 0, 0]));
        // Prefixes of (and paths before) the candidate are kept: a
        // DFS-earlier failure may still hide there.
        assert!(!f.prune_later(&[1, 1]));
        assert!(!f.prune_later(&[1, 0, 7]));
        assert!(!f.prune_later(&[0]));
    }

    #[test]
    fn queue_counts_busy_and_terminates_when_drained() {
        let f = Frontier::new(1);
        let item = f.next_item().expect("root item");
        assert!(item.node.is_none() && item.prefix.is_empty());
        // Donate one child, finish the root: child still pending.
        f.push(WorkItem::root());
        f.finish_item();
        assert!(f.next_item().is_some());
        f.finish_item();
        // Queue empty, nobody busy: the search is over.
        assert!(f.next_item().is_none());
    }

    #[test]
    fn stop_drains_immediately() {
        let f = Frontier::new(2);
        f.request_stop();
        assert!(f.next_item().is_none());
        assert!(f.is_stopped());
    }

    #[test]
    fn counters_accumulate() {
        let f = Frontier::new(1);
        f.note_run(false, 10);
        f.note_run(true, 32);
        f.add_pruned(3);
        assert_eq!(f.explored(), 2);
        assert_eq!(f.truncated(), 1);
        assert_eq!(f.steps(), 42);
        assert_eq!(f.pruned(), 3);
    }

    #[test]
    fn single_worker_is_never_hungry() {
        let f = Frontier::new(1);
        assert!(!f.hungry());
    }
}
