//! The injector: where fault decisions come from.
//!
//! An [`Injector`] answers one question — "which arm of this fault
//! menu fires here?" — in one of two ways. [`Injector::Explore`] asks
//! the schedule explorer via [`Io::choose`], making the site a branch
//! point the DPOR engine enumerates alongside scheduling decisions.
//! [`Injector::Scripted`] drains a pre-written [`FaultPlan`], for plain
//! `Runtime` runs that want one reproducible fault sequence.
//!
//! A scripted plan lives in an `Rc<RefCell<…>>` drained through
//! [`Io::effect`]. `Effect` steps are conservatively dependent on
//! everything in the explorer's footprint relation, so scripted
//! injection is for plain runs — under exploration, use
//! [`Injector::Explore`], whose oracle steps are precisely what the
//! race analysis knows how to commute.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use conch_runtime::io::Io;

use crate::fault::{ConnFault, HandlerFault};

/// A fixed script of fault arms, drained one per injection site.
///
/// Sites draw arms in program order; when the script runs out every
/// further site gets arm `0` (no fault), so a plan is always safe to
/// under-specify.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    script: Rc<RefCell<VecDeque<u8>>>,
}

impl FaultPlan {
    /// A plan that injects the given arms, in order.
    pub fn of(arms: impl IntoIterator<Item = u8>) -> FaultPlan {
        FaultPlan {
            script: Rc::new(RefCell::new(arms.into_iter().collect())),
        }
    }

    /// The empty plan: every site resolves to arm `0` (no fault).
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// Draws the next arm for a site with `arms` alternatives.
    fn next_arm(&self, arms: u8) -> Io<i64> {
        let script = Rc::clone(&self.script);
        Io::effect(move || {
            let arm = script.borrow_mut().pop_front().unwrap_or(0);
            // Out-of-range entries clamp to "no fault" rather than
            // panicking: a plan written for one menu must not crash a
            // site with fewer arms.
            i64::from(if arm < arms { arm } else { 0 })
        })
    }
}

/// Where fault decisions come from. See the module docs.
#[derive(Debug, Clone)]
pub enum Injector {
    /// Every site is an [`Io::choose`] branch point for the explorer.
    Explore,
    /// Sites drain a fixed [`FaultPlan`] (plain runs only).
    Scripted(FaultPlan),
}

impl Injector {
    /// A scripted injector over the given arms.
    pub fn scripted(arms: impl IntoIterator<Item = u8>) -> Injector {
        Injector::Scripted(FaultPlan::of(arms))
    }

    /// A scripted injector that never injects anything.
    pub fn quiet() -> Injector {
        Injector::Scripted(FaultPlan::none())
    }

    /// The raw arm decision for a site with `arms` alternatives.
    pub fn arm(&self, arms: u8) -> Io<i64> {
        match self {
            Injector::Explore => Io::choose(arms),
            Injector::Scripted(plan) => plan.next_arm(arms),
        }
    }

    /// Decides the connection fault for one incoming connection.
    pub fn conn_fault(&self) -> Io<ConnFault> {
        self.arm(ConnFault::ARMS).map(ConnFault::from_arm)
    }

    /// Decides the handler fault for one request.
    pub fn handler_fault(&self) -> Io<HandlerFault> {
        self.arm(HandlerFault::ARMS).map(HandlerFault::from_arm)
    }

    /// Decides whether a storm strike hits (`true`) or spares its
    /// target.
    pub fn strike(&self) -> Io<bool> {
        self.arm(2).map(|a| a == 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use conch_runtime::prelude::*;

    #[test]
    fn scripted_plan_drains_in_order_then_defaults_to_zero() {
        let mut rt = Runtime::new();
        let inj = Injector::scripted([3, 1, 1]);
        let prog = inj
            .conn_fault()
            .and_then({
                let inj = inj.clone();
                move |a| inj.handler_fault().map(move |b| (a, b))
            })
            .and_then({
                let inj = inj.clone();
                move |(a, b)| inj.strike().map(move |c| (a, b, c))
            })
            .and_then({
                let inj = inj.clone();
                move |(a, b, c)| inj.conn_fault().map(move |d| (a, b, c, d))
            });
        let (a, b, c, d) = rt.run(prog).unwrap();
        assert_eq!(a, ConnFault::MidRequestClose);
        assert_eq!(b, HandlerFault::Crash);
        assert!(c);
        assert_eq!(d, ConnFault::None, "exhausted plan must mean no fault");
    }

    #[test]
    fn out_of_range_script_entries_clamp_to_no_fault() {
        let mut rt = Runtime::new();
        let inj = Injector::scripted([250]);
        assert_eq!(rt.run(inj.conn_fault()).unwrap(), ConnFault::None);
    }

    #[test]
    fn explore_injector_without_decider_takes_arm_zero() {
        // Outside exploration there is no decider, so every choose
        // resolves to arm 0: explore-mode programs are healthy by
        // default.
        let mut rt = Runtime::new();
        let inj = Injector::Explore;
        assert_eq!(rt.run(inj.conn_fault()).unwrap(), ConnFault::None);
        assert_eq!(rt.run(inj.handler_fault()).unwrap(), HandlerFault::None);
        assert!(!rt.run(inj.strike()).unwrap());
    }
}
