//! Dynamic runtime values.
//!
//! The interpreter is untyped internally: every value that flows through a
//! thread, an [`MVar`](crate::mvar::MVar) or a continuation is a [`Value`].
//! The typed [`Io<T>`](crate::io::Io) surface converts between `T` and
//! [`Value`] at the boundaries using [`IntoValue`] and [`FromValue`], so user
//! code never sees this representation unless it wants to.
//!
//! This mirrors the paper's Figure 1, where constants, characters, integers,
//! exceptions, `MVar` names and `ThreadId`s are all values of the object
//! language.

use std::fmt;

use crate::exception::Exception;
use crate::ids::{MVarId, ThreadId};

/// A dynamically-typed value of the embedded language.
///
/// `Value` is the universal currency of the interpreter: thread results,
/// `MVar` contents and continuation arguments are all `Value`s.
///
/// # Examples
///
/// ```
/// use conch_runtime::value::{IntoValue, Value};
///
/// let v = 42_i64.into_value();
/// assert_eq!(v.as_int(), Some(42));
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// The trivial value `()`.
    #[default]
    Unit,
    /// A boolean.
    Bool(bool),
    /// A 64-bit integer.
    Int(i64),
    /// A character (the argument/result of `putChar`/`getChar`).
    Char(char),
    /// A string.
    Str(String),
    /// A pair `(a, b)` — the result shape of the `both` combinator.
    Pair(Box<Value>, Box<Value>),
    /// A homogeneous list.
    List(Vec<Value>),
    /// `Left a` of a sum — the result shape of the `either` combinator.
    Left(Box<Value>),
    /// `Right b` of a sum.
    Right(Box<Value>),
    /// `Nothing` of an option — the result shape of `timeout` on expiry.
    Nothing,
    /// `Just a` of an option.
    Just(Box<Value>),
    /// A thread identifier, as returned by `forkIO` and `myThreadId`.
    ThreadId(ThreadId),
    /// An `MVar` reference, as returned by `newEmptyMVar`.
    MVar(MVarId),
    /// A first-class exception value.
    Exception(Exception),
}

impl Value {
    /// Returns the integer payload, or `None` for any other shape.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// Returns the boolean payload, or `None` for any other shape.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns the character payload, or `None` for any other shape.
    pub fn as_char(&self) -> Option<char> {
        match self {
            Value::Char(c) => Some(*c),
            _ => None,
        }
    }

    /// Returns the string payload, or `None` for any other shape.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the thread-id payload, or `None` for any other shape.
    pub fn as_thread_id(&self) -> Option<ThreadId> {
        match self {
            Value::ThreadId(t) => Some(*t),
            _ => None,
        }
    }

    /// Returns the `MVar`-id payload, or `None` for any other shape.
    pub fn as_mvar_id(&self) -> Option<MVarId> {
        match self {
            Value::MVar(m) => Some(*m),
            _ => None,
        }
    }

    /// Returns `true` if the value is the unit value.
    pub fn is_unit(&self) -> bool {
        matches!(self, Value::Unit)
    }

    /// A short name for the value's shape, used in conversion panic messages.
    pub fn shape(&self) -> &'static str {
        match self {
            Value::Unit => "unit",
            Value::Bool(_) => "bool",
            Value::Int(_) => "int",
            Value::Char(_) => "char",
            Value::Str(_) => "str",
            Value::Pair(_, _) => "pair",
            Value::List(_) => "list",
            Value::Left(_) => "left",
            Value::Right(_) => "right",
            Value::Nothing => "nothing",
            Value::Just(_) => "just",
            Value::ThreadId(_) => "thread-id",
            Value::MVar(_) => "mvar",
            Value::Exception(_) => "exception",
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Unit => write!(f, "()"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(n) => write!(f, "{n}"),
            Value::Char(c) => write!(f, "{c:?}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Pair(a, b) => write!(f, "({a}, {b})"),
            Value::List(xs) => {
                write!(f, "[")?;
                for (i, x) in xs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{x}")?;
                }
                write!(f, "]")
            }
            Value::Left(v) => write!(f, "Left {v}"),
            Value::Right(v) => write!(f, "Right {v}"),
            Value::Nothing => write!(f, "Nothing"),
            Value::Just(v) => write!(f, "Just {v}"),
            Value::ThreadId(t) => write!(f, "{t}"),
            Value::MVar(m) => write!(f, "{m}"),
            Value::Exception(e) => write!(f, "{e}"),
        }
    }
}

/// Conversion from a native Rust type into a [`Value`].
///
/// Implemented for the primitive types the embedded language knows about.
/// The typed [`Io<T>`](crate::io::Io) API uses this to inject results.
pub trait IntoValue {
    /// Converts `self` into a dynamic [`Value`].
    fn into_value(self) -> Value;
}

/// Conversion from a [`Value`] back into a native Rust type.
///
/// `from_value` returns `None` when the value has the wrong shape; the typed
/// API treats that as an internal invariant violation (it can only happen if
/// untyped values are smuggled across a typed boundary, e.g. via a raw
/// `Value` `MVar`).
pub trait FromValue: Sized {
    /// Converts a dynamic [`Value`] into `Self`, or `None` on shape mismatch.
    fn from_value(v: Value) -> Option<Self>;

    /// Converts, panicking with a descriptive message on shape mismatch.
    ///
    /// # Panics
    ///
    /// Panics if the value does not have the shape expected by `Self`.
    fn from_value_or_panic(v: Value) -> Self {
        let shape = v.shape();
        Self::from_value(v).unwrap_or_else(|| {
            panic!(
                "type confusion crossing the typed Io boundary: \
                 expected {}, got a {} value",
                std::any::type_name::<Self>(),
                shape
            )
        })
    }
}

impl IntoValue for Value {
    fn into_value(self) -> Value {
        self
    }
}

impl FromValue for Value {
    fn from_value(v: Value) -> Option<Self> {
        Some(v)
    }
}

impl IntoValue for () {
    fn into_value(self) -> Value {
        Value::Unit
    }
}

impl FromValue for () {
    fn from_value(v: Value) -> Option<Self> {
        match v {
            Value::Unit => Some(()),
            _ => None,
        }
    }
}

impl IntoValue for bool {
    fn into_value(self) -> Value {
        Value::Bool(self)
    }
}

impl FromValue for bool {
    fn from_value(v: Value) -> Option<Self> {
        v.as_bool()
    }
}

impl IntoValue for i64 {
    fn into_value(self) -> Value {
        Value::Int(self)
    }
}

impl FromValue for i64 {
    fn from_value(v: Value) -> Option<Self> {
        v.as_int()
    }
}

impl IntoValue for char {
    fn into_value(self) -> Value {
        Value::Char(self)
    }
}

impl FromValue for char {
    fn from_value(v: Value) -> Option<Self> {
        v.as_char()
    }
}

impl IntoValue for String {
    fn into_value(self) -> Value {
        Value::Str(self)
    }
}

impl IntoValue for &str {
    fn into_value(self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl FromValue for String {
    fn from_value(v: Value) -> Option<Self> {
        match v {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

impl IntoValue for ThreadId {
    fn into_value(self) -> Value {
        Value::ThreadId(self)
    }
}

impl FromValue for ThreadId {
    fn from_value(v: Value) -> Option<Self> {
        v.as_thread_id()
    }
}

impl IntoValue for Exception {
    fn into_value(self) -> Value {
        Value::Exception(self)
    }
}

impl FromValue for Exception {
    fn from_value(v: Value) -> Option<Self> {
        match v {
            Value::Exception(e) => Some(e),
            _ => None,
        }
    }
}

// `Normal` and `Killed` are small integer tags; `Crashed` rides on the
// first-class exception value, so the carried exception round-trips
// exactly (the actor layer threads exit reasons through `MVar`s and
// mailbox messages).
impl IntoValue for crate::exception::ExitReason {
    fn into_value(self) -> Value {
        use crate::exception::ExitReason;
        match self {
            ExitReason::Normal => Value::Int(0),
            ExitReason::Killed => Value::Int(1),
            ExitReason::Crashed(e) => Value::Exception(*e),
        }
    }
}

impl FromValue for crate::exception::ExitReason {
    fn from_value(v: Value) -> Option<Self> {
        use crate::exception::ExitReason;
        match v {
            Value::Int(0) => Some(ExitReason::Normal),
            Value::Int(1) => Some(ExitReason::Killed),
            Value::Exception(e) => Some(ExitReason::Crashed(Box::new(e))),
            _ => None,
        }
    }
}

impl<A: IntoValue, B: IntoValue> IntoValue for (A, B) {
    fn into_value(self) -> Value {
        Value::Pair(Box::new(self.0.into_value()), Box::new(self.1.into_value()))
    }
}

impl<A: FromValue, B: FromValue> FromValue for (A, B) {
    fn from_value(v: Value) -> Option<Self> {
        match v {
            Value::Pair(a, b) => Some((A::from_value(*a)?, B::from_value(*b)?)),
            _ => None,
        }
    }
}

/// Triples nest as `(a, (b, c))`.
impl<A: IntoValue, B: IntoValue, C: IntoValue> IntoValue for (A, B, C) {
    fn into_value(self) -> Value {
        (self.0, (self.1, self.2)).into_value()
    }
}

impl<A: FromValue, B: FromValue, C: FromValue> FromValue for (A, B, C) {
    fn from_value(v: Value) -> Option<Self> {
        let (a, (b, c)) = <(A, (B, C))>::from_value(v)?;
        Some((a, b, c))
    }
}

/// Quadruples nest as `(a, (b, (c, d)))`.
impl<A: IntoValue, B: IntoValue, C: IntoValue, D: IntoValue> IntoValue for (A, B, C, D) {
    fn into_value(self) -> Value {
        (self.0, (self.1, (self.2, self.3))).into_value()
    }
}

impl<A: FromValue, B: FromValue, C: FromValue, D: FromValue> FromValue for (A, B, C, D) {
    fn from_value(v: Value) -> Option<Self> {
        let (a, (b, (c, d))) = <(A, (B, (C, D)))>::from_value(v)?;
        Some((a, b, c, d))
    }
}

impl<T: IntoValue> IntoValue for Option<T> {
    fn into_value(self) -> Value {
        match self {
            None => Value::Nothing,
            Some(x) => Value::Just(Box::new(x.into_value())),
        }
    }
}

impl<T: FromValue> FromValue for Option<T> {
    fn from_value(v: Value) -> Option<Self> {
        match v {
            Value::Nothing => Some(None),
            Value::Just(x) => Some(Some(T::from_value(*x)?)),
            _ => None,
        }
    }
}

/// `Either e t` rendered as Rust: `Err` is `Left`, `Ok` is `Right`.
impl<T: IntoValue, E: IntoValue> IntoValue for Result<T, E> {
    fn into_value(self) -> Value {
        match self {
            Ok(t) => Value::Right(Box::new(t.into_value())),
            Err(e) => Value::Left(Box::new(e.into_value())),
        }
    }
}

impl<T: FromValue, E: FromValue> FromValue for Result<T, E> {
    fn from_value(v: Value) -> Option<Self> {
        match v {
            Value::Right(t) => Some(Ok(T::from_value(*t)?)),
            Value::Left(e) => Some(Err(E::from_value(*e)?)),
            _ => None,
        }
    }
}

impl<T: IntoValue> IntoValue for Vec<T> {
    fn into_value(self) -> Value {
        Value::List(self.into_iter().map(IntoValue::into_value).collect())
    }
}

impl<T: FromValue> FromValue for Vec<T> {
    fn from_value(v: Value) -> Option<Self> {
        match v {
            Value::List(xs) => xs.into_iter().map(T::from_value).collect(),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_round_trip() {
        let v = 17_i64.into_value();
        assert_eq!(i64::from_value(v), Some(17));
    }

    #[test]
    fn unit_round_trip() {
        assert_eq!(<()>::from_value(().into_value()), Some(()));
    }

    #[test]
    fn bool_round_trip() {
        assert_eq!(bool::from_value(true.into_value()), Some(true));
        assert_eq!(bool::from_value(false.into_value()), Some(false));
    }

    #[test]
    fn char_round_trip() {
        assert_eq!(char::from_value('λ'.into_value()), Some('λ'));
    }

    #[test]
    fn string_round_trip() {
        assert_eq!(
            String::from_value("hello".into_value()),
            Some("hello".to_owned())
        );
    }

    #[test]
    fn pair_round_trip() {
        let v = (1_i64, 'x').into_value();
        assert_eq!(<(i64, char)>::from_value(v), Some((1, 'x')));
    }

    #[test]
    fn nested_pair_round_trip() {
        let v = ((1_i64, 2_i64), (3_i64, 4_i64)).into_value();
        assert_eq!(
            <((i64, i64), (i64, i64))>::from_value(v),
            Some(((1, 2), (3, 4)))
        );
    }

    #[test]
    fn option_round_trip() {
        assert_eq!(
            Option::<i64>::from_value(Some(5_i64).into_value()),
            Some(Some(5))
        );
        assert_eq!(
            Option::<i64>::from_value(None::<i64>.into_value()),
            Some(None)
        );
    }

    #[test]
    fn result_round_trip() {
        let ok: Result<i64, char> = Ok(9);
        let err: Result<i64, char> = Err('e');
        assert_eq!(
            <Result<i64, char>>::from_value(ok.into_value()),
            Some(Ok(9))
        );
        assert_eq!(
            <Result<i64, char>>::from_value(err.into_value()),
            Some(Err('e'))
        );
    }

    #[test]
    fn vec_round_trip() {
        let v = vec![1_i64, 2, 3].into_value();
        assert_eq!(Vec::<i64>::from_value(v), Some(vec![1, 2, 3]));
    }

    #[test]
    fn shape_mismatch_is_none() {
        assert_eq!(i64::from_value(Value::Char('x')), None);
        assert_eq!(char::from_value(Value::Int(7)), None);
        assert_eq!(<(i64, i64)>::from_value(Value::Unit), None);
    }

    #[test]
    #[should_panic(expected = "type confusion")]
    fn from_value_or_panic_panics_on_mismatch() {
        let _ = i64::from_value_or_panic(Value::Char('x'));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Unit.to_string(), "()");
        assert_eq!(Value::Int(3).to_string(), "3");
        assert_eq!(
            Value::Pair(Box::new(Value::Int(1)), Box::new(Value::Unit)).to_string(),
            "(1, ())"
        );
        assert_eq!(
            Value::List(vec![Value::Int(1), Value::Int(2)]).to_string(),
            "[1, 2]"
        );
        assert_eq!(Value::Nothing.to_string(), "Nothing");
        assert_eq!(Value::Just(Box::new(Value::Int(1))).to_string(), "Just 1");
    }

    #[test]
    fn shapes_are_distinct() {
        let shapes = [
            Value::Unit.shape(),
            Value::Bool(true).shape(),
            Value::Int(0).shape(),
            Value::Char('a').shape(),
            Value::Str(String::new()).shape(),
            Value::Nothing.shape(),
        ];
        let mut unique = shapes.to_vec();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), shapes.len());
    }
}
