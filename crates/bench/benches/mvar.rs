//! B4 — MVar operation cost and the price of exception safety (§5.1).
//!
//! Expected shape: the §5.2-safe `modify_mvar` (block + catch + unblock
//! around every update) costs a small constant factor over raw take/put;
//! the naive pattern sits in between (catch only). Hand-off ping-pong
//! between two threads measures the blocking path.

use conch_bench::{mvar_naive_updates, mvar_pingpong, mvar_safe_updates, mvar_uncontended, run};
use conch_runtime::RuntimeConfig;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_update_styles(c: &mut Criterion) {
    const N: u64 = 1_000;
    let mut group = c.benchmark_group("mvar_update_styles");
    group.throughput(Throughput::Elements(N));
    group.bench_function("raw_take_put", |b| {
        b.iter(|| run(RuntimeConfig::new(), mvar_uncontended(N)))
    });
    group.bench_function("naive_catch_only", |b| {
        b.iter(|| run(RuntimeConfig::new(), mvar_naive_updates(N)))
    });
    group.bench_function("safe_block_unblock", |b| {
        b.iter(|| run(RuntimeConfig::new(), mvar_safe_updates(N)))
    });
    group.finish();
}

fn bench_pingpong(c: &mut Criterion) {
    let mut group = c.benchmark_group("mvar_pingpong");
    for &n in &[100_u64, 1_000] {
        group.throughput(Throughput::Elements(n));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| run(RuntimeConfig::new(), mvar_pingpong(n)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_update_styles, bench_pingpong);
criterion_main!(benches);
