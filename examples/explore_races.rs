//! Finding, shrinking and replaying a masking bug by exhaustive
//! schedule exploration — or by seeded schedule *sampling*.
//!
//! Run with `cargo run --example explore_races`. Pass `--workers N` to
//! spread the exploration over `N` OS threads (default: available
//! parallelism) — the counts and the certificate below come out
//! identical for every `N`; only the wall-clock time changes. Pass
//! `--reduction {sleep,dpor}` to pick the schedule-space reduction
//! (default: sleep sets); with `dpor` the sleep-set baseline is run
//! too and the reduction ratio is printed.
//!
//! Pass `--sample {pct,uniform,swarm}` to *draw* schedules instead of
//! enumerating them (`--samples N` for the budget, default 2048;
//! `--seed S` for the stream, default 0xC0FFEE). Sampling is the tool
//! for spaces too large to enumerate; here it demonstrates that a
//! sampled failure hands back the very same replayable, shrinkable
//! certificate the exhaustive search does, plus the index of the first
//! failing sample.
//!
//! The victim is a hand-rolled resource guard with the classic mistake
//! §7.1 warns about: the **acquire runs outside `block`**, so an
//! asynchronous exception landing between the acquire and the start of
//! the protected region leaks the resource. Random stress tests hit
//! that window occasionally; the explorer hits it *always*, and hands
//! back a minimal, replayable schedule certificate.

use conch::explore::{props, CheckResult, ExploreConfig, Explorer, Reduction, Strategy, TestCase};
use conch::prelude::*;
use conch_combinators::bracket;

/// The buggy guard: acquire ('a') unmasked, release ('r') afterwards.
/// Compare with [`conch_combinators::bracket`], which wraps the acquire
/// in `block`.
fn unmasked_acquire_guard() -> Io<i64> {
    Io::put_char('a').map(|_| 0_i64).and_then(|_| {
        Io::block(
            Io::unblock(Io::pure(1_i64))
                .catch(|e| Io::put_char('r').then(Io::throw(e)))
                .and_then(|r| Io::put_char('r').map(move |_| r)),
        )
    })
}

/// The correct §7.1 bracket over the same resource.
fn proper_bracket() -> Io<i64> {
    bracket(
        Io::put_char('a').map(|_| 0_i64),
        |_| Io::put_char('r'),
        |_| Io::pure(1_i64),
    )
}

/// Fork a worker running `body` and aim a `KillThread` at it; the
/// settling sleep ends the run once the worker finished or died.
fn under_fire(body: Io<i64>) -> Io<()> {
    Io::fork(body.map(|_| ()).catch(|_| Io::unit()))
        .and_then(|w| Io::throw_to(w, Exception::kill_thread()))
        .then(Io::sleep(1))
}

struct Cli {
    workers: usize,
    strategy: Strategy,
    samples: usize,
}

/// `--workers N` (0, the default, lets `check_parallel` pick the
/// machine's available parallelism), `--reduction {sleep,dpor}`,
/// `--sample {pct,uniform,swarm}`, `--samples N` and `--seed S` from
/// the command line.
fn cli_args() -> Cli {
    let mut workers = 0;
    let mut reduction = Reduction::SleepSets;
    let mut sample: Option<String> = None;
    let mut samples = 2048;
    let mut seed = 0xC0FFEE_u64;
    let mut args = std::env::args().skip(1);
    let number = |args: &mut dyn Iterator<Item = String>, flag: &str| -> u64 {
        let value = args.next().unwrap_or_else(|| {
            eprintln!("{flag} needs a number");
            std::process::exit(2);
        });
        value.parse().unwrap_or_else(|_| {
            eprintln!("{flag} needs a number, got {value:?}");
            std::process::exit(2);
        })
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workers" => workers = number(&mut args, "--workers") as usize,
            "--samples" => samples = number(&mut args, "--samples") as usize,
            "--seed" => seed = number(&mut args, "--seed"),
            "--reduction" => {
                reduction = match args.next().as_deref() {
                    Some("sleep") => Reduction::SleepSets,
                    Some("dpor") => Reduction::Dpor,
                    other => {
                        eprintln!("--reduction needs 'sleep' or 'dpor', got {other:?}");
                        std::process::exit(2);
                    }
                };
            }
            "--sample" => match args.next().as_deref() {
                Some(name @ ("pct" | "uniform" | "swarm")) => sample = Some(name.to_owned()),
                other => {
                    eprintln!("--sample needs 'pct', 'uniform' or 'swarm', got {other:?}");
                    std::process::exit(2);
                }
            },
            _ => {}
        }
    }
    let strategy = match sample.as_deref() {
        None => Strategy::Exhaustive(reduction),
        Some("pct") => Strategy::Pct { depth: 3, seed },
        Some("uniform") => Strategy::UniformRandom { seed },
        // Four PCT streams, one per seed, each with its own depth.
        Some(_) => Strategy::Swarm {
            seeds: (0..4).map(|i| seed.wrapping_add(i)).collect(),
        },
    };
    Cli {
        workers,
        strategy,
        samples,
    }
}

fn explorer_for(strategy: Strategy, samples: usize) -> Explorer {
    let max_schedules = if strategy.is_sampling() {
        samples
    } else {
        ExploreConfig::default().max_schedules
    };
    Explorer::with_config(ExploreConfig {
        max_schedules,
        strategy,
        ..ExploreConfig::default()
    })
}

fn main() {
    let cli = cli_args();
    let explorer = explorer_for(cli.strategy.clone(), cli.samples);
    println!("strategy: {:?}, workers: {}", cli.strategy, cli.workers);

    // The correct bracket survives every schedule.
    println!("\n== proper bracket ==");
    let ok = explorer.check_parallel(cli.workers, || {
        TestCase::new(
            under_fire(proper_bracket()),
            props::releases_balanced('a', 'r'),
        )
    });
    match &ok {
        CheckResult::Passed(report) => {
            if cli.strategy.is_sampling() {
                println!(
                    "every sampled acquire released: {} samples, {} distinct schedules",
                    report.stats.sampled, report.stats.distinct_schedules
                );
            } else {
                println!("every acquire released on every schedule: {report}");
            }
            if cli.strategy == Strategy::Exhaustive(Reduction::Dpor) {
                // Run the sleep-set baseline on the same program so the
                // summary can state the reduction directly.
                let baseline = explorer_for(Strategy::Exhaustive(Reduction::SleepSets), 0)
                    .check_parallel(cli.workers, || {
                        TestCase::new(
                            under_fire(proper_bracket()),
                            props::releases_balanced('a', 'r'),
                        )
                    })
                    .expect_pass()
                    .clone();
                println!(
                    "sleep-set baseline explored {}, DPOR explored {} — reduction ratio {:.2}x \
                     ({} races detected, {} backtracks installed)",
                    baseline.explored,
                    report.explored,
                    report.reduction_ratio(&baseline),
                    report.stats.races_detected,
                    report.stats.backtracks_installed,
                );
            }
        }
        CheckResult::Failed(f) => println!("unexpectedly failed: {}", f.message),
    }

    // The buggy guard does not.
    println!("\n== unmasked-acquire guard ==");
    let bad = explorer.check_parallel(cli.workers, || {
        TestCase::new(
            under_fire(unmasked_acquire_guard()),
            props::releases_balanced('a', 'r'),
        )
    });
    // A sampler can legitimately exhaust a small budget without hitting
    // the bug — that is a coverage statement, not a panic.
    if cli.strategy.is_sampling() {
        if let CheckResult::Passed(report) = &bad {
            println!(
                "no violation in {} samples ({} distinct schedules) — \
                 raise --samples or change --seed",
                report.stats.sampled, report.stats.distinct_schedules
            );
            return;
        }
    }
    let failure = bad.expect_fail();
    println!("violation found: {}", failure.message);
    if let Some(index) = failure.report.first_failing_sample {
        println!(
            "  first failing sample: #{index} (of {} drawn)",
            failure.report.explored
        );
    }
    println!(
        "  original certificate: {} ({} choices)",
        failure.original,
        failure.original.len()
    );
    println!(
        "  shrunk    certificate: {} ({} choices)",
        failure.schedule,
        failure.schedule.len()
    );
    println!("  coverage: {}", failure.report);

    // Replay the minimal certificate in a fresh Runtime: the leak is
    // reproduced deterministically from the choice list alone.
    let (outcome, check) = explorer.replay(
        TestCase::new(
            under_fire(unmasked_acquire_guard()),
            props::releases_balanced('a', 'r'),
        ),
        &failure.schedule,
    );
    println!(
        "\nreplayed schedule {} in a second runtime:",
        failure.schedule
    );
    println!(
        "  output: {:?} (the 'a' with no matching 'r' is the leak)",
        outcome.output
    );
    println!("  verdict: {}", check.unwrap_err());
}
