//! # conch-faults
//!
//! Deterministic fault injection for the conch runtime and its httpd
//! case study.
//!
//! The paper's thesis is that asynchronous exceptions can be given
//! *semantics* — that failure is not an excuse for nondeterminism the
//! programmer cannot reason about. This crate extends that stance to
//! injected failures: every fault here is a first-class **branch
//! point**, not a random event. In explore mode
//! ([`Injector::Explore`]) each injection site compiles to an
//! [`Io::choose`](conch_runtime::io::Io::choose) oracle, which
//! `conch-explore` enumerates exactly like a scheduling decision — so
//! `Explorer::check` walks the full *fault × schedule* product space,
//! DPOR prunes it, and the parallel engine reports bit-identical
//! coverage counters at any worker count. In scripted mode
//! ([`Injector::Scripted`]) the same sites drain a fixed [`FaultPlan`],
//! giving plain `Runtime` runs (benches, stress tests, demos) one
//! reproducible fault sequence.
//!
//! Three fault families cover the server's attack surface:
//!
//! * **connection faults** ([`ConnFault`]) — drop, stall-forever,
//!   mid-request close, garbage bytes — composed as *pre-written wire
//!   histories* and handed to the server via
//!   [`Listener::inject`](conch_httpd::net::Listener::inject), so the
//!   bytes themselves cost the explorer nothing;
//! * **handler faults** ([`HandlerFault`]) — synchronous crashes and
//!   wedged handlers, wrapped around any [`Handler`](conch_httpd::server::Handler)
//!   by [`faulty_handler`];
//! * **exception storms** ([`kill_storm`]) — bursts of
//!   `throwTo KillThread` aimed at the server's worker threads, the §11
//!   fault-tolerance scenario made adversarial.
//!
//! Arm `0` of every choice is "no fault", so a program under injection
//! is, by construction, a superset of the healthy program.

mod client;
mod fault;
mod handler;
mod inject;
pub mod spaces;
mod storm;

pub use crate::client::{faulty_client, prepared_connection};
pub use crate::fault::{ConnFault, HandlerFault};
pub use crate::handler::faulty_handler;
pub use crate::inject::{FaultPlan, Injector};
pub use crate::storm::{kill_storm, kill_storm_pooled, kill_storm_targets};
