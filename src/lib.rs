//! # conch
//!
//! **Con**current Haskell with asynchronous exceptions, in Rust: a full
//! reproduction of Marlow, Peyton Jones, Moran & Reppy, *Asynchronous
//! Exceptions in Haskell* (PLDI 2001).
//!
//! This facade crate re-exports the workspace:
//!
//! * [`runtime`] — the green-thread interpreter with `throwTo`,
//!   scoped `block`/`unblock`, and interruptible operations (§3–§5, §8).
//! * [`combinators`] — `finally`, `bracket`, `either`/`both`, the
//!   composable `timeout`, safe `MVar` locking, and `Chan` (§7).
//! * [`semantics`] — the executable operational semantics: Figures 1–5
//!   as data types and transition rules, plus a model checker (§6).
//! * [`explore`] — bounded schedule exploration over the runtime:
//!   exhaustively drive every interleaving and delivery point of a small
//!   program, with replayable, shrinkable failure certificates.
//! * [`httpd`] — the fault-tolerant HTTP-server case study (§11).
//! * [`faults`] — deterministic fault injection: connection faults,
//!   handler faults, and `KillThread` storms as explorer branch points,
//!   so the fault × schedule product space is enumerable.
//! * [`actors`] — the Erlang-style layer built on `throwTo`: typed
//!   bounded mailboxes, `link`/`monitor`, trap-exits, and supervision
//!   trees with restart strategies and intensity windows.
//!
//! See `README.md` for a tour, `DESIGN.md` for the reproduction map, and
//! `EXPERIMENTS.md` for the measured results.
//!
//! ## Quickstart
//!
//! ```
//! use conch::prelude::*;
//! use conch::combinators::timeout;
//!
//! let mut rt = Runtime::new();
//! // Abort a computation stuck on an empty MVar after 1ms of virtual time.
//! let prog = Io::new_empty_mvar::<i64>().and_then(|m| timeout(1_000, m.take()));
//! assert_eq!(rt.run(prog).unwrap(), None);
//! ```

pub use conch_actors as actors;
pub use conch_combinators as combinators;
pub use conch_explore as explore;
pub use conch_faults as faults;
pub use conch_httpd as httpd;
pub use conch_runtime as runtime;
pub use conch_semantics as semantics;

/// The most commonly used names from across the workspace.
pub mod prelude {
    pub use conch_combinators::{
        both, bracket, finally, kill_thread, modify_mvar, race, safe_point, timeout, with_mvar,
        Chan, Either,
    };
    pub use conch_runtime::prelude::*;
}
