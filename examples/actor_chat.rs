//! Pub-sub chat fan-out on the `conch-actors` layer, with a supervised
//! room and crash-proof state.
//!
//! Run plain (`cargo run --release --example actor_chat`) to watch the
//! scenario once under the deterministic runtime, or with `--explore`
//! to prove its invariants on **every schedule** of the bounded space
//! (`cargo run --release --example actor_chat -- --explore`).
//!
//! The scenario:
//!
//! * a **room** actor owns a bounded inbox of [`RoomMsg`]s — `Join`
//!   registers a subscriber's mailbox, `Say` fans the message out to
//!   every subscriber;
//! * the subscriber roster lives in an `MVar` *outside* the actor, and
//!   the room is supervised via [`spawn_actor_on`] on a fixed inbox —
//!   so when a poison pill crashes it mid-stream, the supervisor's
//!   restart resumes with the same inbox and the same roster: queued
//!   messages survive, subscriptions survive;
//! * a **monitor** watches the restarted room, and the supervisor
//!   shutdown at the end delivers exactly one `Down{Killed}` to it —
//!   no orphan room outlives its supervisor.
//!
//! Under `--explore`, exhaustive exploration (DPOR, preemption bound 3,
//! exception-delivery points branching fully) checks on every schedule
//! that both subscribers receive the pre-crash broadcast, both receive
//! the post-restart broadcast, and the shutdown reaps the room with a
//! single `Down` — then re-explores on the 4-worker engine and asserts
//! the coverage report is bit-identical.

use conch::actors::spawn_supervisor;
use conch::actors::{
    child_spec, monitor, spawn_actor_on, ActorRef, ChildSpec, Down, Mailbox, Strategy,
    SupervisorSpec,
};
use conch::explore::{
    CheckResult, ExploreConfig, Explorer, Reduction, Report, RunOutcome, TestCase,
};
use conch::prelude::*;
use conch::runtime::exception::ExitReason;
use conch::runtime::value::{FromValue, IntoValue, Value};

/// What a chat room understands.
#[derive(Debug, Clone)]
enum RoomMsg {
    /// Register a subscriber's inbox for future broadcasts.
    Join(Mailbox<i64>),
    /// Broadcast a message id to every subscriber. Negative ids are
    /// poison pills: the room crashes processing them.
    Say(i64),
}

impl IntoValue for RoomMsg {
    fn into_value(self) -> Value {
        match self {
            RoomMsg::Join(inbox) => {
                Value::Pair(Box::new(Value::Int(0)), Box::new(inbox.into_value()))
            }
            RoomMsg::Say(n) => Value::Pair(Box::new(Value::Int(1)), Box::new(Value::Int(n))),
        }
    }
}

impl FromValue for RoomMsg {
    fn from_value(v: Value) -> Option<Self> {
        match v {
            Value::Pair(tag, payload) => match tag.as_int()? {
                0 => Some(RoomMsg::Join(Mailbox::from_value(*payload)?)),
                1 => Some(RoomMsg::Say(payload.as_int()?)),
                _ => None,
            },
            _ => None,
        }
    }
}

fn roster_mailboxes(v: &Value) -> Vec<Mailbox<i64>> {
    match v {
        Value::List(xs) => xs
            .iter()
            .filter_map(|x| Mailbox::from_value(x.clone()))
            .collect(),
        _ => Vec::new(),
    }
}

/// Appends a subscriber to the shared roster (one masked transaction).
fn register(roster: MVar<Value>, inbox: Mailbox<i64>) -> Io<()> {
    Io::block(roster.take().and_then(move |v| match v {
        Value::List(mut xs) => {
            xs.push(inbox.into_value());
            roster.put(Value::List(xs))
        }
        other => roster.put(other),
    }))
}

/// Reads the roster, then fans `n` out to every subscriber in join
/// order (the sends run unmasked — a full subscriber inbox applies
/// backpressure to the room, not deadlock under the mask).
fn broadcast(roster: MVar<Value>, n: i64) -> Io<()> {
    Io::block(roster.take().and_then(move |v| {
        let subs = roster_mailboxes(&v);
        roster.put(v).map(move |_| subs)
    }))
    .and_then(move |subs| {
        let mut io = Io::unit();
        for s in subs {
            io = io.then(s.send(n));
        }
        io
    })
}

/// The room body: FIFO over its inbox, state entirely in `roster`, so
/// a restarted incarnation picks up exactly where the crash left off.
fn room_loop(mb: Mailbox<RoomMsg>, roster: MVar<Value>) -> Io<()> {
    mb.recv().and_then(move |msg: RoomMsg| match msg {
        RoomMsg::Join(inbox) => register(roster, inbox).then(room_loop(mb, roster)),
        RoomMsg::Say(n) if n < 0 => Io::throw(Exception::error_call("poison pill")),
        RoomMsg::Say(n) => broadcast(roster, n).then(room_loop(mb, roster)),
    })
}

fn room_child(inbox: Mailbox<RoomMsg>, roster: MVar<Value>) -> ChildSpec {
    child_spec(move || {
        spawn_actor_on(inbox, move |mb: Mailbox<RoomMsg>| room_loop(mb, roster)).map(|a| a.erase())
    })
}

fn down_code(r: &ExitReason) -> i64 {
    match r {
        ExitReason::Normal => 0,
        ExitReason::Killed => 1,
        ExitReason::Crashed(e) if e.is_exit_signal() => 2,
        ExitReason::Crashed(_) => 3,
    }
}

/// Polls until the supervisor has a live child and returns it.
fn current_room(sup: conch::actors::Supervisor) -> Io<ActorRef<Value>> {
    sup.child_refs().and_then(move |kids| match kids.first() {
        Some(kid) => Io::pure(*kid),
        None => Io::sleep(25).then(current_room(sup)),
    })
}

/// The whole scenario as one program. Returns
/// `[alice#1, bob#1, alice#2, bob#2, down mref, down reason, extra]`.
/// The poison pill is sent from a *forked* troll thread racing the
/// second broadcast, so the crash may land before or after `Say(2)` in
/// the room's FIFO — on every schedule both subscribers still get
/// broadcast 2 exactly once (the roster and queue survive the
/// restart), and the monitor fires exactly once (`extra == 0`).
fn chat_scenario() -> Io<Vec<i64>> {
    Io::new_mvar(Value::List(Vec::new())).and_then(|roster| {
        Mailbox::<RoomMsg>::new(8).and_then(move |lobby| {
            let spec = SupervisorSpec::new(Strategy::OneForOne)
                .intensity(3, 1_000_000)
                .child(room_child(lobby, roster));
            spawn_supervisor(spec).and_then(move |sup| {
                Mailbox::<i64>::new(8).and_then(move |alice| {
                    Mailbox::<i64>::new(8).and_then(move |bob| {
                        lobby
                            .send(RoomMsg::Join(alice))
                            .then(lobby.send(RoomMsg::Join(bob)))
                            .then(lobby.send(RoomMsg::Say(1)))
                            .then(alice.recv())
                            .and_then(move |a1: i64| {
                                bob.recv().and_then(move |b1: i64| {
                                    // The troll's poison races Say(2) into the
                                    // room's FIFO. Whichever order they land,
                                    // the supervisor restarts the room on the
                                    // same inbox and roster, so broadcast 2
                                    // reaches both subscribers exactly once.
                                    Io::fork(lobby.send(RoomMsg::Say(-1)))
                                        .then(lobby.send(RoomMsg::Say(2)))
                                        .then(alice.recv())
                                        .and_then(move |a2: i64| {
                                            bob.recv().and_then(move |b2: i64| {
                                                finale(sup).map(move |tail| {
                                                    let mut v = vec![a1, b1, a2, b2];
                                                    v.extend(tail);
                                                    v
                                                })
                                            })
                                        })
                                })
                            })
                    })
                })
            })
        })
    })
}

/// Monitors the current room incarnation, shuts the supervisor down,
/// and collects the single `Down` the reaping must deliver — plus
/// whatever else is in the watcher mailbox after a settling sleep (any
/// double delivery would queue there). Returns `[mref, code, extra]`.
fn finale(sup: conch::actors::Supervisor) -> Io<Vec<i64>> {
    Mailbox::<Down>::new(2).and_then(move |watcher| {
        current_room(sup).and_then(move |kid| {
            monitor(&kid, watcher, 7)
                .then(sup.shutdown_sync())
                .then(watcher.recv())
                .and_then(move |down: Down| {
                    Io::sleep(50)
                        .then(watcher.len())
                        .map(move |extra| vec![down.mref, down_code(&down.reason), extra])
                })
        })
    })
}

fn check(out: &RunOutcome<Vec<i64>>) -> Result<(), String> {
    match &out.result {
        // The monitored incarnation dies Killed (1) by the shutdown
        // sweep, or Crashed (3) if the racing poison reached it after
        // the monitor was registered — never by exit signal, and never
        // more than once.
        Ok(v) if matches!(v.as_slice(), [1, 1, 2, 2, 7, 1 | 3, 0]) => Ok(()),
        Ok(v) => Err(format!("expected [1, 1, 2, 2, 7, 1|3, 0], got {v:?}")),
        Err(e) => Err(format!("run failed: {e:?}")),
    }
}

fn explore(workers: usize) -> Report {
    let explorer = Explorer::with_config(ExploreConfig {
        max_schedules: 100_000,
        max_depth: 512,
        step_budget: 100_000,
        preemption_bound: Some(3),
        strategy: conch::explore::Strategy::Exhaustive(Reduction::Dpor),
        ..ExploreConfig::default()
    });
    let result = if workers == 1 {
        explorer.check(|| TestCase::new(chat_scenario(), check))
    } else {
        explorer.check_parallel(workers, || TestCase::new(chat_scenario(), check))
    };
    match result {
        CheckResult::Passed(report) => *report,
        CheckResult::Failed(f) => {
            println!("invariant VIOLATED: {}", f.message);
            println!("  shrunk certificate: {}", f.schedule);
            std::process::exit(1);
        }
    }
}

fn main() {
    if std::env::args().any(|a| a == "--explore") {
        println!("== actor chat under exhaustive exploration ==");
        let sequential = explore(1);
        assert!(
            sequential.complete,
            "exploration must be exhaustive: {sequential:?}"
        );
        println!(
            "  explored {} schedules ({} pruned), complete: {}",
            sequential.explored, sequential.pruned, sequential.complete
        );
        println!("  on every schedule: both subscribers saw broadcast 1, the poison");
        println!("  crash was restarted with roster and queue intact, both saw");
        println!("  broadcast 2, and shutdown delivered exactly one Down(Killed).");
        let parallel = explore(4);
        assert_eq!(
            sequential, parallel,
            "coverage must be bit-identical across engines"
        );
        println!("  4-worker engine: identical report, bit for bit.");
        return;
    }

    println!("== actor chat: supervised pub-sub fan-out ==");
    let mut rt = Runtime::new();
    let out = rt.run(chat_scenario()).expect("scenario runs clean");
    println!("  broadcast 1 -> alice got {}, bob got {}", out[0], out[1]);
    println!("  poison pill crashed the room; supervisor restarted it on the");
    println!("  same inbox and roster (subscriptions and queued messages kept)");
    println!("  broadcast 2 -> alice got {}, bob got {}", out[2], out[3]);
    println!(
        "  shutdown reaped the room: Down {{ mref: {}, reason: {} }}, {} extra",
        out[4],
        match out[5] {
            0 => "Normal",
            1 => "Killed",
            2 => "Crashed(exit signal)",
            _ => "Crashed",
        },
        out[6],
    );
    assert!(
        matches!(out.as_slice(), [1, 1, 2, 2, 7, 1 | 3, 0]),
        "invariant violated: {out:?}"
    );
    println!("  (run with --explore to prove this on every schedule)");
}
