//! Model-checking the paper's locking example (experiment E1, formal
//! half) and printing a concrete counterexample derivation.
//!
//! Run with `cargo run --example semantics_explorer`.
//!
//! Feeds the §5.1 naive-locking program and its §5.2 safe fix to the
//! executable semantics' model checker. For the naive version it prints
//! the interleaving — rule by rule, in the paper's notation — that loses
//! the lock; for the safe version it reports the exhaustively-verified
//! absence of such an interleaving.

use conch_semantics::engine::{check_safety, CheckResult, ExploreConfig, State};
use conch_semantics::programs::{lock_scenario, naive_lock_update, safe_lock_update};

fn main() {
    let cfg = ExploreConfig::default();

    println!("=== naive locking (§5.1) ===");
    let naive = lock_scenario(|m| naive_lock_update(m, 2));
    let init = State::new(naive, "");
    println!("initial state:\n  {}\n", init.soup.render());
    match check_safety(&init, &cfg, |s| s.is_deadlocked(&cfg.rules)) {
        CheckResult::Violation {
            trace,
            state,
            states,
        } => {
            println!("RACE FOUND after exploring {states} states.");
            println!("counterexample derivation ({} steps):", trace.len());
            for (i, step) in trace.iter().enumerate() {
                let tid = step.tid.map(|t| format!(" in {t}")).unwrap_or_default();
                println!("  {:>3}. {}{}", i + 1, step.rule, tid);
            }
            println!("final (wedged) state:\n  {state}");
            println!("  -> the MVar is empty and every thread is stuck: the lock is lost.\n");
        }
        CheckResult::Safe { .. } => {
            panic!("expected the naive pattern to be racy");
        }
    }

    println!("=== safe locking (§5.2 + §5.3) ===");
    let safe = lock_scenario(|m| safe_lock_update(m, 2));
    let init = State::new(safe, "");
    match check_safety(&init, &cfg, |s| s.is_deadlocked(&cfg.rules)) {
        CheckResult::Safe { states, complete } => {
            assert!(complete);
            println!("exhaustively explored {states} states: no interleaving loses the lock.");
            println!("block/unblock + interruptible takeMVar close every race window.");
        }
        CheckResult::Violation { trace, state, .. } => {
            println!("UNEXPECTED violation:");
            for step in &trace {
                println!("  {} -> {}", step.rule, step.state);
            }
            panic!("safe locking lost the lock at {state}");
        }
    }
}
