//! # conch-httpd
//!
//! The paper's §11 case study: "a prototype fault-tolerant HTTP server
//! which makes heavy use of time-outs, multithreading and exceptions"
//! (\[8\], Marlow's Haskell web server) — rebuilt on `conch-runtime` and
//! `conch-combinators` over a simulated network (see DESIGN.md for the
//! substitution).
//!
//! * [`http`] — an HTTP/1.0-subset parser and response renderer.
//! * [`net`] — `MVar`-channel connections and listeners; blocking reads
//!   and accepts are interruptible operations (§5.3), which is what makes
//!   the timeouts and the graceful shutdown possible.
//! * [`server`] — the accept loop, per-connection workers, read/handler
//!   timeouts, crash-to-500 conversion, counters, graceful shutdown.
//! * [`pool`] — the same serving contract on a supervised worker pool
//!   (`conch-actors`): a bounded accept queue feeds a fixed set of
//!   worker actors under a self-healing two-level supervision tree.
//! * [`shard`] — the production-scale plane: N accept shards with
//!   per-shard bounded queues and stats cells, keep-alive/pipelined
//!   [`net::FrameConnection`]s with per-request accounting, batched
//!   response flushes, and the quiescent-aggregate conservation law.
//! * [`client`] — load-generating clients: well-behaved, stalling,
//!   trickling and garbage.
//!
//! ## Example
//!
//! ```
//! use conch_runtime::prelude::*;
//! use conch_httpd::http::{Request, Response};
//! use conch_httpd::net::Listener;
//! use conch_httpd::server::{handler, start, ServerConfig};
//!
//! let mut rt = Runtime::new();
//! let prog = Listener::bind().and_then(|l| {
//!     start(l, handler(|_| Io::pure(Response::ok("hi"))), ServerConfig::default())
//!         .and_then(move |_srv| {
//!             l.connect().and_then(|conn| {
//!                 conn.send_text(Request::get("/").render())
//!                     .then(conn.read_response())
//!             })
//!         })
//! });
//! let resp = rt.run(prog).unwrap();
//! assert!(resp.contains("200 OK"));
//! ```

pub mod client;
pub mod http;
pub mod log;
pub mod net;
pub mod parallel;
pub mod pool;
pub mod router;
pub mod server;
pub mod shard;
