//! The fault-tolerant server proper (§11, after \[8\]).
//!
//! Per connection the server makes "heavy use of time-outs,
//! multithreading and exceptions", all via the paper's combinators:
//!
//! * `forkIO` per connection;
//! * [`timeout`] on reading the request (defeats stalled clients) and on
//!   running the handler (defeats slow handlers) — composable because
//!   timeouts carry no exception (§7.3);
//! * `catch` around the handler, turning crashes into `500`s;
//! * [`finally`] to keep the active-connection count exact on every exit
//!   path;
//! * graceful shutdown by `throwTo KillThread` at the acceptor — safe
//!   because a blocked `accept` is an interruptible operation (§5.3).

use std::rc::Rc;

use conch_combinators::{finally, kill_thread, modify_mvar, timeout};
use conch_runtime::ids::ThreadId;
use conch_runtime::io::Io;
use conch_runtime::mvar::MVar;
use conch_runtime::value::{FromValue, IntoValue, Value};

use crate::http::{parse_request, Request, Response};
use crate::net::{Connection, Listener};

/// A request handler: maps a request to an `Io` action producing a
/// response. Shared across connections, hence `Rc<dyn Fn…>`.
pub type Handler = Rc<dyn Fn(Request) -> Io<Response>>;

/// Wraps a plain closure as a [`Handler`].
pub fn handler(f: impl Fn(Request) -> Io<Response> + 'static) -> Handler {
    Rc::new(f)
}

/// Server tuning knobs (virtual microseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerConfig {
    /// Budget for receiving the complete request.
    pub read_timeout: u64,
    /// Budget for the handler to produce a response.
    pub handler_timeout: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            read_timeout: 10_000,
            handler_timeout: 50_000,
        }
    }
}

/// Per-server counters, each an `MVar`-protected cell updated with the
/// §5.1 safe pattern.
#[derive(Debug, Clone, Copy)]
pub struct ServerStats {
    /// Requests answered with the handler's response.
    pub served: MVar<i64>,
    /// Requests whose read phase timed out (answered 408).
    pub read_timeouts: MVar<i64>,
    /// Requests whose handler timed out (answered 504).
    pub handler_timeouts: MVar<i64>,
    /// Requests whose handler raised (answered 500).
    pub handler_errors: MVar<i64>,
    /// Requests that failed to parse (answered 400).
    pub parse_errors: MVar<i64>,
    /// Connections currently being handled.
    pub active: MVar<i64>,
}

/// A snapshot of the counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    /// See [`ServerStats::served`].
    pub served: i64,
    /// See [`ServerStats::read_timeouts`].
    pub read_timeouts: i64,
    /// See [`ServerStats::handler_timeouts`].
    pub handler_timeouts: i64,
    /// See [`ServerStats::handler_errors`].
    pub handler_errors: i64,
    /// See [`ServerStats::parse_errors`].
    pub parse_errors: i64,
    /// See [`ServerStats::active`].
    pub active: i64,
}

impl ServerStats {
    fn new() -> Io<ServerStats> {
        Io::new_mvar(0_i64).and_then(|served| {
            Io::new_mvar(0_i64).and_then(move |read_timeouts| {
                Io::new_mvar(0_i64).and_then(move |handler_timeouts| {
                    Io::new_mvar(0_i64).and_then(move |handler_errors| {
                        Io::new_mvar(0_i64).and_then(move |parse_errors| {
                            Io::new_mvar(0_i64).map(move |active| ServerStats {
                                served,
                                read_timeouts,
                                handler_timeouts,
                                handler_errors,
                                parse_errors,
                                active,
                            })
                        })
                    })
                })
            })
        })
    }

    /// Reads all counters (not atomically across cells).
    pub fn snapshot(&self) -> Io<StatsSnapshot> {
        let s = *self;
        conch_combinators::with_mvar(s.served, Io::pure).and_then(move |served| {
            conch_combinators::with_mvar(s.read_timeouts, Io::pure).and_then(move |read_timeouts| {
                conch_combinators::with_mvar(s.handler_timeouts, Io::pure).and_then(
                    move |handler_timeouts| {
                        conch_combinators::with_mvar(s.handler_errors, Io::pure).and_then(
                            move |handler_errors| {
                                conch_combinators::with_mvar(s.parse_errors, Io::pure).and_then(
                                    move |parse_errors| {
                                        conch_combinators::with_mvar(s.active, Io::pure).map(
                                            move |active| StatsSnapshot {
                                                served,
                                                read_timeouts,
                                                handler_timeouts,
                                                handler_errors,
                                                parse_errors,
                                                active,
                                            },
                                        )
                                    },
                                )
                            },
                        )
                    },
                )
            })
        })
    }
}

fn bump(cell: MVar<i64>) -> Io<()> {
    modify_mvar(cell, |n| Io::pure(n + 1))
}

impl IntoValue for ServerStats {
    fn into_value(self) -> Value {
        Value::List(vec![
            self.served.into_value(),
            self.read_timeouts.into_value(),
            self.handler_timeouts.into_value(),
            self.handler_errors.into_value(),
            self.parse_errors.into_value(),
            self.active.into_value(),
        ])
    }
}

impl FromValue for ServerStats {
    fn from_value(v: Value) -> Option<Self> {
        match v {
            Value::List(xs) if xs.len() == 6 => {
                let mut it = xs.into_iter();
                Some(ServerStats {
                    served: MVar::from_value(it.next()?)?,
                    read_timeouts: MVar::from_value(it.next()?)?,
                    handler_timeouts: MVar::from_value(it.next()?)?,
                    handler_errors: MVar::from_value(it.next()?)?,
                    parse_errors: MVar::from_value(it.next()?)?,
                    active: MVar::from_value(it.next()?)?,
                })
            }
            _ => None,
        }
    }
}

impl IntoValue for StatsSnapshot {
    fn into_value(self) -> Value {
        Value::List(vec![
            Value::Int(self.served),
            Value::Int(self.read_timeouts),
            Value::Int(self.handler_timeouts),
            Value::Int(self.handler_errors),
            Value::Int(self.parse_errors),
            Value::Int(self.active),
        ])
    }
}

impl FromValue for StatsSnapshot {
    fn from_value(v: Value) -> Option<Self> {
        match v {
            Value::List(xs) if xs.len() == 6 => {
                let ints: Option<Vec<i64>> = xs.into_iter().map(|x| x.as_int()).collect();
                let ints = ints?;
                Some(StatsSnapshot {
                    served: ints[0],
                    read_timeouts: ints[1],
                    handler_timeouts: ints[2],
                    handler_errors: ints[3],
                    parse_errors: ints[4],
                    active: ints[5],
                })
            }
            _ => None,
        }
    }
}

impl IntoValue for Server {
    fn into_value(self) -> Value {
        Value::Pair(
            Box::new(Value::ThreadId(self.acceptor)),
            Box::new(self.stats.into_value()),
        )
    }
}

impl FromValue for Server {
    fn from_value(v: Value) -> Option<Self> {
        match v {
            Value::Pair(t, s) => Some(Server {
                acceptor: t.as_thread_id()?,
                stats: ServerStats::from_value(*s)?,
            }),
            _ => None,
        }
    }
}

/// A running server: the acceptor's thread id plus the shared counters.
#[derive(Debug, Clone, Copy)]
pub struct Server {
    /// The acceptor thread (kill it to stop accepting).
    pub acceptor: ThreadId,
    /// Shared counters.
    pub stats: ServerStats,
}

impl Server {
    /// Stops accepting new connections (in-flight requests finish).
    ///
    /// `accept` blocks on an `MVar`, an interruptible operation, so the
    /// `KillThread` lands even though the acceptor spends its life
    /// blocked — the whole reason §5.3 exists.
    pub fn shutdown(&self) -> Io<()> {
        kill_thread(self.acceptor)
    }

    /// Waits (by polling the active counter) until every in-flight
    /// connection has finished.
    pub fn drain(&self) -> Io<()> {
        let active = self.stats.active;
        fn wait(active: MVar<i64>) -> Io<()> {
            conch_combinators::with_mvar(active, Io::pure).and_then(move |n| {
                if n == 0 {
                    Io::unit()
                } else {
                    Io::sleep(100).then(wait(active))
                }
            })
        }
        wait(active)
    }
}

/// Starts the server: forks the acceptor loop and returns immediately.
pub fn start(listener: Listener, h: Handler, config: ServerConfig) -> Io<Server> {
    ServerStats::new().and_then(move |stats| {
        Io::fork(accept_loop(listener, h, config, stats))
            .map(move |acceptor| Server { acceptor, stats })
    })
}

fn accept_loop(listener: Listener, h: Handler, config: ServerConfig, stats: ServerStats) -> Io<()> {
    listener.accept().and_then(move |conn| {
        let worker = handle_connection(conn, Rc::clone(&h), config, stats);
        Io::fork(worker).then(accept_loop(listener, h, config, stats))
    })
}

/// Handles one connection: the case study's core choreography.
pub fn handle_connection(
    conn: Connection,
    h: Handler,
    config: ServerConfig,
    stats: ServerStats,
) -> Io<()> {
    let body = bump(stats.active).then(finally(serve_one(conn, h, config, stats), move || {
        modify_mvar(stats.active, |n| Io::pure(n - 1))
    }));
    // A worker must never crash the server: swallow anything uncaught.
    body.catch(|_| Io::unit())
}

fn serve_one(conn: Connection, h: Handler, config: ServerConfig, stats: ServerStats) -> Io<()> {
    timeout(config.read_timeout, conn.read_request_text()).and_then(move |text| match text {
        None => bump(stats.read_timeouts).then(conn.send_response(Response::status(408).render())),
        Some(text) => match parse_request(&text) {
            Err(_) => {
                bump(stats.parse_errors).then(conn.send_response(Response::status(400).render()))
            }
            Ok(req) => {
                // §9 warns that a universal `catch` inside timed code can
                // intercept the timeout mechanism itself. Our `timeout`
                // kills the racing computation with KillThread, so the
                // handler guard must re-throw that and convert only
                // genuine handler failures into 500s. The guard *tags*
                // the outcome (Left = crashed, Right = answered) so that
                // exactly one counter is bumped per request, at send time.
                let guarded = h(req)
                    .map(conch_combinators::Either::<Response, Response>::Right)
                    .catch(move |e| {
                        if e.is_kill_thread() {
                            Io::throw(e)
                        } else {
                            Io::pure(conch_combinators::Either::Left(Response {
                                status: 500,
                                body: format!("handler failed: {e}"),
                            }))
                        }
                    });
                timeout(config.handler_timeout, guarded).and_then(move |resp| match resp {
                    None => bump(stats.handler_timeouts)
                        .then(conn.send_response(Response::status(504).render())),
                    Some(conch_combinators::Either::Right(resp)) => {
                        bump(stats.served).then(conn.send_response(resp.render()))
                    }
                    Some(conch_combinators::Either::Left(resp)) => {
                        bump(stats.handler_errors).then(conn.send_response(resp.render()))
                    }
                })
            }
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use conch_runtime::prelude::*;

    fn hello_handler() -> Handler {
        handler(|req| Io::pure(Response::ok(format!("hello {}", req.path))))
    }

    fn run_one_request(
        h: Handler,
        cfg: ServerConfig,
        request_io: impl Fn(Connection) -> Io<()> + 'static,
    ) -> (String, StatsSnapshot) {
        let mut rt = Runtime::new();
        let prog = Listener::bind().and_then(move |l| {
            start(l, h, cfg).and_then(move |server| {
                l.connect().and_then(move |conn| {
                    Io::fork(request_io(conn))
                        .then(conn.read_response())
                        .and_then(move |resp| {
                            server
                                .shutdown()
                                .then(server.drain())
                                .then(server.stats.snapshot())
                                .map(move |snap| (resp, snap))
                        })
                })
            })
        });
        rt.run(prog).unwrap()
    }

    #[test]
    fn serves_a_simple_request() {
        let (resp, snap) = run_one_request(hello_handler(), ServerConfig::default(), |c| {
            c.send_text(Request::get("/x").render())
        });
        assert!(resp.contains("200 OK"), "got {resp}");
        assert!(resp.ends_with("hello /x"));
        assert_eq!(snap.served, 1);
        assert_eq!(snap.active, 0);
    }

    #[test]
    fn malformed_request_gets_400() {
        let (resp, snap) = run_one_request(hello_handler(), ServerConfig::default(), |c| {
            c.send_text("NONSENSE\r\n\r\n")
        });
        assert!(resp.contains("400"), "got {resp}");
        assert_eq!(snap.parse_errors, 1);
    }

    #[test]
    fn stalled_client_gets_408() {
        let (resp, snap) = run_one_request(hello_handler(), ServerConfig::default(), |c| {
            // Send half a request and stall forever.
            c.send_text("GET / HT")
        });
        assert!(resp.contains("408"), "got {resp}");
        assert_eq!(snap.read_timeouts, 1);
    }

    #[test]
    fn slow_handler_gets_504() {
        let slow = handler(|_| Io::sleep(1_000_000).map(|_| Response::ok("too late")));
        let (resp, snap) = run_one_request(slow, ServerConfig::default(), |c| {
            c.send_text(Request::get("/").render())
        });
        assert!(resp.contains("504"), "got {resp}");
        assert_eq!(snap.handler_timeouts, 1);
        assert_eq!(snap.served, 0);
    }

    #[test]
    fn crashing_handler_gets_500() {
        let crashing = handler(|_| Io::<Response>::throw(Exception::error_call("bug in handler")));
        let (resp, snap) = run_one_request(crashing, ServerConfig::default(), |c| {
            c.send_text(Request::get("/").render())
        });
        assert!(resp.contains("500"), "got {resp}");
        assert!(resp.contains("bug in handler"));
        assert_eq!(snap.handler_errors, 1);
    }

    #[test]
    fn slow_client_within_budget_is_served() {
        let cfg = ServerConfig {
            read_timeout: 100_000,
            ..ServerConfig::default()
        };
        let (resp, snap) = run_one_request(hello_handler(), cfg, |c| {
            c.send_text_slowly(Request::get("/slow").render(), 100)
        });
        assert!(resp.contains("200"), "got {resp}");
        assert_eq!(snap.served, 1);
        assert_eq!(snap.read_timeouts, 0);
    }

    #[test]
    fn serves_many_concurrent_connections() {
        let mut rt = Runtime::new();
        let n: i64 = 8;
        let prog = Listener::bind().and_then(move |l| {
            start(l, hello_handler(), ServerConfig::default()).and_then(move |server| {
                // n clients, each on its own thread, each reporting success.
                Io::new_mvar(0_i64).and_then(move |done| {
                    conch_runtime::io::for_each(n as u64, move |i| {
                        let client = l.connect().and_then(move |conn| {
                            conn.send_text(Request::get(format!("/{i}")).render())
                                .then(conn.read_response())
                                .and_then(move |resp| {
                                    assert!(resp.contains("200"), "got {resp}");
                                    modify_mvar(done, |d| Io::pure(d + 1))
                                })
                        });
                        Io::fork(client)
                    })
                    .then(wait_for(done, n))
                    .then(server.shutdown())
                    .then(server.drain())
                    .then(server.stats.snapshot())
                })
            })
        });
        fn wait_for(done: MVar<i64>, n: i64) -> Io<()> {
            conch_combinators::with_mvar(done, Io::pure).and_then(move |d| {
                if d >= n {
                    Io::unit()
                } else {
                    Io::sleep(50).then(wait_for(done, n))
                }
            })
        }
        let snap = rt.run(prog).unwrap();
        assert_eq!(snap.served, n);
        assert_eq!(snap.active, 0);
    }

    #[test]
    fn shutdown_stops_accepting_but_not_inflight() {
        let mut rt = Runtime::new();
        // A slow-ish handler; shutdown arrives mid-request; the in-flight
        // request still completes.
        let slowish = handler(|_| Io::sleep(5_000).map(|_| Response::ok("done")));
        let prog = Listener::bind().and_then(move |l| {
            start(l, slowish, ServerConfig::default()).and_then(move |server| {
                l.connect().and_then(move |conn| {
                    Io::fork(conn.send_text(Request::get("/").render()))
                        .then(Io::sleep(1_000)) // request is now in flight
                        .then(server.shutdown())
                        .then(conn.read_response())
                        .and_then(move |resp| server.drain().then(Io::pure(resp)))
                })
            })
        });
        let resp = rt.run(prog).unwrap();
        assert!(resp.contains("200"), "got {resp}");
    }
}
