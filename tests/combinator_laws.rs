//! Property tests for the §7 combinators under adversarial scheduling
//! and random asynchronous-exception injection (experiments E3–E5).
//!
//! The common harness runs a victim computation built from the
//! combinators while a killer thread fires `KillThread` after a random
//! number of scheduler steps (implemented as a random `compute` delay),
//! across many seeds. The properties are the ones the paper's
//! abstractions promise:
//!
//! * `finally`/`bracket`: the finalizer/release runs **exactly once** on
//!   every path (E3);
//! * `bracket`: acquisitions and releases balance — no leaked resource
//!   (E3);
//! * `modify_mvar`: the lock is never lost and the state is never
//!   half-updated (E1/E2);
//! * nested `timeout`s: inner expiry never disturbs the outer result
//!   shape, and timers do not leak (E5).

use std::cell::RefCell;
use std::rc::Rc;

use conch_combinators::{bracket, finally, modify_mvar, timeout};
use conch_runtime::prelude::*;
use proptest::prelude::*;

/// Runs `victim` (forked masked, so it can install handlers, then
/// unmasked inside) while a killer fires after `delay` compute steps.
/// Returns when both the victim is dead/done and the killer finished.
fn run_under_fire(victim: Io<()>, delay: u64, seed: u64) -> Runtime {
    let cfg = RuntimeConfig::new().random_scheduling(seed).quantum(3);
    let mut rt = Runtime::with_config(cfg);
    let prog = Io::new_empty_mvar::<i64>().and_then(move |done| {
        let body = victim.catch(|_| Io::unit()).then(done.put(1));
        Io::<ThreadId>::block(Io::fork(body)).and_then(move |victim_tid| {
            Io::compute(delay)
                .then(Io::throw_to(victim_tid, Exception::kill_thread()))
                .then(done.take())
                .map(|_| ())
        })
    });
    rt.run(prog).expect("harness must not wedge");
    rt
}

fn counter() -> (Rc<RefCell<i64>>, impl Fn() -> Io<()> + Clone) {
    let c = Rc::new(RefCell::new(0_i64));
    let c2 = Rc::clone(&c);
    (c, move || {
        let c3 = Rc::clone(&c2);
        Io::effect(move || {
            *c3.borrow_mut() += 1;
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// E3: `finally`'s finalizer runs exactly once whether the body
    /// completes, is killed mid-body, or is killed before starting.
    #[test]
    fn finally_runs_exactly_once_under_fire(
        delay in 0u64..400,
        body_len in 0u64..200,
        seed in 0u64..10_000,
    ) {
        let (count, bump) = counter();
        // The body opens an unmask window (finally masks around it would
        // be wrong — finally itself unmasks the body).
        let victim = finally(Io::compute(body_len), bump);
        run_under_fire(victim, delay, seed);
        prop_assert_eq!(*count.borrow(), 1);
    }

    /// E3: bracket acquire/release balance under fire — whatever was
    /// acquired is released, and nothing is released twice.
    #[test]
    fn bracket_balances_under_fire(
        delay in 0u64..400,
        body_len in 0u64..200,
        seed in 0u64..10_000,
    ) {
        let open = Rc::new(RefCell::new(0_i64));
        let peak = Rc::new(RefCell::new(0_i64));
        let (o1, o2, o3) = (Rc::clone(&open), Rc::clone(&open), Rc::clone(&open));
        let p1 = Rc::clone(&peak);
        let victim = bracket(
            Io::effect(move || {
                *o1.borrow_mut() += 1;
                let now = *o1.borrow();
                let mut pk = p1.borrow_mut();
                if now > *pk { *pk = now; }
                7_i64
            }),
            move |_| {
                let o = Rc::clone(&o2);
                Io::effect(move || { *o.borrow_mut() -= 1; })
            },
            move |_| Io::compute(body_len),
        );
        run_under_fire(victim.map(|_| ()), delay, seed);
        let _ = o3;
        prop_assert_eq!(*open.borrow(), 0, "leaked or double-released");
        prop_assert!(*peak.borrow() <= 1);
    }

    /// E1/E2: `modify_mvar` never loses the lock and never exposes a
    /// torn state: afterwards the MVar is full, holding either the old
    /// or the new value.
    #[test]
    fn modify_mvar_atomic_under_fire(
        delay in 0u64..400,
        body_len in 0u64..200,
        seed in 0u64..10_000,
    ) {
        let cfg = RuntimeConfig::new().random_scheduling(seed).quantum(3);
        let mut rt = Runtime::with_config(cfg);
        let prog = Io::new_mvar(100_i64).and_then(move |m| {
            let worker = modify_mvar(m, move |v| {
                Io::compute(body_len).then(Io::pure(v + 11))
            })
            .catch(|_| Io::unit());
            Io::fork(worker).and_then(move |w| {
                Io::compute(delay)
                    .then(Io::throw_to(w, Exception::kill_thread()))
                    .then(Io::sleep(1_000_000))
                    .then(m.try_take())
            })
        });
        let final_state = rt.run(prog).expect("harness must not wedge");
        prop_assert!(
            final_state == Some(100) || final_state == Some(111),
            "lock lost or state torn: {:?}", final_state
        );
    }

    /// E5: nested timeouts — the outer timeout's verdict depends only on
    /// the outer budget vs. the actual runtime, never on the inner
    /// timeout's machinery.
    #[test]
    fn nested_timeouts_do_not_interfere(
        inner_budget in 1u64..2_000,
        outer_budget in 1u64..2_000,
        work in 1u64..2_000,
        seed in 0u64..10_000,
    ) {
        let cfg = RuntimeConfig::new().random_scheduling(seed);
        let mut rt = Runtime::with_config(cfg);
        let prog = timeout(outer_budget, timeout(inner_budget, Io::sleep(work).map(|_| 1_i64)))
            // Let every killed loser finish dying before main exits, so
            // the leak accounting below sees all threads.
            .and_then(|r| Io::sleep(10_000_000).then(Io::pure(r)));
        let result = rt.run(prog).expect("must not wedge");
        // Virtual time is exact, so the expected shape is decidable.
        // Races at exactly-equal deadlines may go either way, so strict
        // inequalities only.
        if work < inner_budget && work < outer_budget {
            prop_assert_eq!(result, Some(Some(1)));
        } else if inner_budget < work && inner_budget < outer_budget {
            prop_assert_eq!(result, Some(None), "inner should have fired alone");
        } else if outer_budget < work && outer_budget < inner_budget {
            prop_assert_eq!(result, None, "outer should have fired alone");
        }
        // No thread leaked: after the run only the main thread finished.
        prop_assert_eq!(rt.stats().died_threads + rt.stats().finished_threads,
            rt.stats().forks + 1);
    }

    /// Deterministic programs produce identical results under every
    /// scheduling policy (scheduler-independence of sequential code).
    #[test]
    fn sequential_programs_are_schedule_independent(seed in 0u64..10_000, q in 1u64..40) {
        let run = |cfg: RuntimeConfig| {
            let mut rt = Runtime::with_config(cfg);
            rt.feed_input("abc");
            let prog = Io::get_char().and_then(|c1| {
                Io::put_char(c1)
                    .then(Io::compute(50))
                    .then(Io::get_char())
                    .and_then(move |c2| Io::put_char(c2).then(Io::pure((c1, c2))))
            });
            let r = rt.run(prog).unwrap();
            (r, rt.output().to_owned())
        };
        let base = run(RuntimeConfig::new());
        let alt = run(RuntimeConfig::new().random_scheduling(seed).quantum(q));
        prop_assert_eq!(base, alt);
    }

    /// Mask nesting is idempotent (§5.2: "no counting of scopes"):
    /// `block (block m)` observes the same masking states as `block m`.
    #[test]
    fn mask_nesting_is_idempotent(depth in 1usize..6, seed in 0u64..1_000) {
        let build = |n: usize| {
            let mut io: Io<bool> = Io::masking_state();
            for _ in 0..n {
                io = Io::<bool>::block(io);
            }
            io.and_then(|inside| Io::masking_state().map(move |outside| (inside, outside)))
        };
        let cfg = RuntimeConfig::new().random_scheduling(seed);
        let mut rt = Runtime::with_config(cfg);
        let once = rt.run(build(1)).unwrap();
        let many = rt.run(build(depth)).unwrap();
        prop_assert_eq!(once, (true, false));
        prop_assert_eq!(many, (true, false));
    }
}

/// E3, deterministic corner: a finalizer that *itself* blocks is still
/// executed to completion because `finally` masks it.
#[test]
fn blocking_finalizer_completes() {
    let mut rt = Runtime::new();
    let prog = Io::new_mvar(0_i64).and_then(|log| {
        Io::new_empty_mvar::<i64>().and_then(move |gate| {
            // Somebody eventually opens the gate.
            let opener = Io::sleep(500).then(gate.put(1));
            let victim = finally(Io::compute(10_000), move || {
                gate.take().then(modify_mvar(log, |n| Io::pure(n + 1)))
            })
            .catch(|_| Io::unit());
            Io::fork(opener)
                .then(Io::<ThreadId>::block(Io::fork(victim)))
                .and_then(move |v| {
                    Io::throw_to(v, Exception::kill_thread())
                        .then(Io::sleep(1_000_000))
                        .then(log.take())
                })
        })
    });
    assert_eq!(rt.run(prog).unwrap(), 1);
}

/// The §5.3 fine print: inside `block`, an interruptible `takeMVar` can
/// be interrupted only *while the MVar is empty*; once full it wins.
#[test]
fn interruptible_window_closes_when_resource_appears() {
    for seed in 0..30 {
        let cfg = RuntimeConfig::new().random_scheduling(seed).quantum(2);
        let mut rt = Runtime::with_config(cfg);
        let prog = Io::new_empty_mvar::<i64>().and_then(|m| {
            Io::new_empty_mvar::<String>().and_then(move |out| {
                let victim = Io::<()>::block(
                    m.take()
                        .and_then(move |v| out.put(format!("took {v}")))
                        .catch(move |e| out.put(format!("interrupted by {e}"))),
                );
                Io::<ThreadId>::block(Io::fork(victim)).and_then(move |v| {
                    Io::fork(Io::sleep(10).then(m.put(5)))
                        .then(Io::sleep(20))
                        .then(Io::throw_to(v, Exception::kill_thread()))
                        .then(out.take())
                })
            })
        });
        let outcome = rt.run(prog).unwrap();
        // Whichever way the race goes, the outcome is one of exactly two
        // clean states — never a taken-then-interrupted mixture.
        assert!(
            outcome == "took 5" || outcome == "interrupted by KillThread",
            "seed {seed}: unexpected outcome {outcome}"
        );
    }
}
