//! The production-scale serving plane: N accept shards over keep-alive
//! [`FrameConnection`]s.
//!
//! The classic server accounts per *connection* through one stats cell
//! behind one accept loop; at 100k+ concurrent simulated clients that
//! single transactional `MVar<StatsSnapshot>` is the measured
//! bottleneck (every accept and every outcome serializes on it), and a
//! one-request-per-connection wire model pays a channel handoff per
//! byte. This module scales both axes:
//!
//! * **Sharding** — [`ShardedListener`] carries one bounded
//!   `Mailbox<FrameConnection>` accept queue *per shard*, and
//!   [`start_sharded`] forks one accept loop and one [`ServerStats`]
//!   cell per shard. Connections on different shards never contend on
//!   a stats cell or an accept queue.
//! * **Keep-alive + pipelining** — a connection carries many requests
//!   ([`FrameConnection`] frames concatenate into one byte stream);
//!   accounting moves from per-connection to **per-request**: a request
//!   enters the law when its final `\r\n\r\n` has been parsed out of
//!   the stream (`accepted += 1, active += 1` in one masked
//!   transaction) and leaves it through the same [`finish`] commit
//!   point the classic server uses.
//! * **Bounded per-connection allocation** — each connection reuses one
//!   read buffer (drained in place per parsed request) and one response
//!   buffer (flushed whenever the parse buffer holds no further
//!   complete request, so `k` pipelined requests cost one outbound
//!   channel send — a batched wakeup for the waiting client, not `k`).
//!
//! ## The quiescent-aggregate conservation law
//!
//! Per shard the law is the classic one: once `active == 0`, every
//! accepted request recorded exactly one outcome. The sharded audit
//! runs the classic protocol *per shard* and then sums:
//! [`ShardedServer::shutdown_sync`] kills every acceptor with the §9
//! synchronous throw (no shard can account another request),
//! [`ShardedServer::drain`] waits for every shard's `active` to reach
//! zero, and [`ShardedServer::aggregate`] sums the per-shard snapshots
//! with [`StatsSnapshot::merge`]. Each snapshot is taken from a
//! quiesced, no-longer-written cell, so the *sum* obeys the same law —
//! `aggregate.conserved()` — without ever needing a cross-shard atomic
//! read. The `sharded_pipeline` explorer space in `conch-faults`
//! certifies this on every schedule of a kill×schedule product,
//! including a `KillThread` landing between two pipelined requests.

use std::rc::Rc;

use conch_actors::Mailbox;
use conch_combinators::{timeout, Chan, Either};
use conch_runtime::exception::Exception;
use conch_runtime::ids::ThreadId;
use conch_runtime::io::{for_each, Io};
use conch_runtime::mvar::MVar;
use conch_runtime::value::{FromValue, IntoValue, Value};

use crate::http::{parse_request, Request, Response};
use crate::net::FrameConnection;
use crate::server::{finish, wait_active_zero, Handler, Outcome, ServerStats, StatsSnapshot};

/// Per-request budgets for the sharded plane (virtual microseconds).
/// Queue capacity is a property of the [`ShardedListener`]; shard count
/// is a property of whoever binds it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardConfig {
    /// Budget for reading the next wire segment off a keep-alive
    /// connection. An idle connection that times out with an empty
    /// buffer closes silently (normal keep-alive expiry, no request in
    /// the law); a timeout with a partial request buffered is answered
    /// `408` and accounted `accepted + read_timeout` in one transaction.
    pub read_timeout: u64,
    /// Budget for the handler to produce a response.
    pub handler_timeout: u64,
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig {
            read_timeout: 10_000,
            handler_timeout: 50_000,
        }
    }
}

/// N bounded accept queues, one per shard. Clients pick a shard (the
/// load driver routes round-robin; a real frontend would hash); the
/// bounded mailbox is the backpressure: `connect` blocks while the
/// shard's queue is full.
#[derive(Debug, Clone)]
pub struct ShardedListener {
    queues: Vec<Mailbox<FrameConnection>>,
}

impl ShardedListener {
    /// Binds `shards` accept queues of `queue_capacity` connections each.
    pub fn bind(shards: usize, queue_capacity: i64) -> Io<ShardedListener> {
        assert!(shards >= 1, "a sharded listener needs at least one shard");
        let mut io: Io<Vec<Mailbox<FrameConnection>>> = Io::pure(Vec::new());
        for _ in 0..shards {
            io = io.and_then(move |mut qs| {
                Mailbox::<FrameConnection>::new(queue_capacity).map(move |q| {
                    qs.push(q);
                    qs
                })
            });
        }
        io.map(|queues| ShardedListener { queues })
    }

    pub fn shard_count(&self) -> usize {
        self.queues.len()
    }

    /// The shard's accept queue (for feeders that cache the handle).
    pub fn queue(&self, shard: usize) -> Mailbox<FrameConnection> {
        self.queues[shard]
    }

    /// Client side: open a connection on the given shard. Blocks while
    /// the shard's queue is full (backpressure, not shedding).
    pub fn connect(&self, shard: usize) -> Io<FrameConnection> {
        let q = self.queue(shard);
        FrameConnection::open().and_then(move |conn| q.send(conn).map(move |_| conn))
    }

    /// Hands an already-open connection to a shard's queue — the
    /// fault-injection entry point, mirroring `Listener::inject`: the
    /// connection's whole wire history can be composed before the
    /// server ever sees it.
    pub fn inject(&self, shard: usize, conn: FrameConnection) -> Io<()> {
        self.queue(shard).send(conn)
    }
}

impl IntoValue for ShardedListener {
    fn into_value(self) -> Value {
        self.queues.into_value()
    }
}

impl FromValue for ShardedListener {
    fn from_value(v: Value) -> Option<Self> {
        Some(ShardedListener {
            queues: Vec::<Mailbox<FrameConnection>>::from_value(v)?,
        })
    }
}

/// One shard of a running [`ShardedServer`]: its acceptor thread, its
/// private stats cell, and its worker registry (every connection
/// handler the acceptor ever forked — kill-storm targets).
#[derive(Debug, Clone, Copy)]
pub struct ShardHandle {
    pub acceptor: ThreadId,
    pub stats: ServerStats,
    pub workers: MVar<Value>,
}

impl IntoValue for ShardHandle {
    fn into_value(self) -> Value {
        Value::List(vec![
            Value::ThreadId(self.acceptor),
            self.stats.into_value(),
            self.workers.into_value(),
        ])
    }
}

impl FromValue for ShardHandle {
    fn from_value(v: Value) -> Option<Self> {
        match v {
            Value::List(xs) if xs.len() == 3 => {
                let mut it = xs.into_iter();
                Some(ShardHandle {
                    acceptor: it.next()?.as_thread_id()?,
                    stats: ServerStats::from_value(it.next()?)?,
                    workers: MVar::from_value(it.next()?)?,
                })
            }
            _ => None,
        }
    }
}

/// A running sharded server: one [`ShardHandle`] per accept shard.
#[derive(Debug, Clone)]
pub struct ShardedServer {
    pub shards: Vec<ShardHandle>,
}

impl IntoValue for ShardedServer {
    fn into_value(self) -> Value {
        self.shards.into_value()
    }
}

impl FromValue for ShardedServer {
    fn from_value(v: Value) -> Option<Self> {
        Some(ShardedServer {
            shards: Vec::<ShardHandle>::from_value(v)?,
        })
    }
}

impl ShardedServer {
    /// Stops every shard's acceptor with the §9 *synchronous* throw, in
    /// shard order — the audit-grade shutdown: once this returns, no
    /// shard can account another connection, so each shard's `accepted`
    /// is final (in-flight requests still run to their outcome).
    pub fn shutdown_sync(&self) -> Io<()> {
        let mut io = Io::unit();
        for sh in &self.shards {
            io = io.then(Io::throw_to_sync(sh.acceptor, Exception::kill_thread()));
        }
        io
    }

    /// Waits until every shard has `active == 0`. Shards quiesce
    /// independently; polling them in order is fine because `active`
    /// never rises again after [`shutdown_sync`](Self::shutdown_sync)
    /// has returned and the shard's own queue has drained.
    pub fn drain(&self) -> Io<()> {
        let mut io = Io::unit();
        for sh in &self.shards {
            io = io.then(wait_active_zero(sh.stats));
        }
        io
    }

    /// The quiescent aggregate: per-shard snapshots summed with
    /// [`StatsSnapshot::merge`]. Meaningful as a conservation-law
    /// witness only after `shutdown_sync` + `drain` (each cell must be
    /// final); the explorer space certifies exactly that protocol.
    pub fn aggregate(&self) -> Io<StatsSnapshot> {
        let mut io = Io::pure(StatsSnapshot::default());
        for sh in &self.shards {
            let stats = sh.stats;
            io = io.and_then(move |acc| stats.snapshot().map(move |s| acc.merge(&s)));
        }
        io
    }

    /// The per-shard quiescent snapshots, in shard order — the
    /// imbalance probe behind the skewed-arrival bench row. Same
    /// quiescence caveat as [`aggregate`](Self::aggregate).
    pub fn aggregate_per_shard(&self) -> Io<Vec<StatsSnapshot>> {
        let mut io: Io<Vec<StatsSnapshot>> = Io::pure(Vec::new());
        for sh in &self.shards {
            let stats = sh.stats;
            io = io.and_then(move |mut acc| {
                stats.snapshot().map(move |s| {
                    acc.push(s);
                    acc
                })
            });
        }
        io
    }

    /// Every connection-handler thread id ever forked, across all
    /// shards in shard order — the kill-storm target list.
    pub fn worker_ids(&self) -> Io<Vec<ThreadId>> {
        let mut io: Io<Vec<ThreadId>> = Io::pure(Vec::new());
        for sh in &self.shards {
            let workers = sh.workers;
            io = io.and_then(move |mut acc| {
                conch_combinators::with_mvar(workers, Io::pure).map(move |v| {
                    if let Value::List(xs) = v {
                        acc.extend(xs.into_iter().filter_map(|x| x.as_thread_id()));
                    }
                    acc
                })
            });
        }
        io
    }
}

/// Starts one accept loop + stats cell per listener shard.
pub fn start_sharded(l: &ShardedListener, h: Handler, cfg: ShardConfig) -> Io<ShardedServer> {
    let mut io: Io<Vec<ShardHandle>> = Io::pure(Vec::new());
    for q in l.queues.iter().copied() {
        let h = Rc::clone(&h);
        io = io.and_then(move |mut shards| {
            ServerStats::new().and_then(move |stats| {
                Io::new_mvar(Value::List(Vec::new())).and_then(move |workers| {
                    Io::fork(shard_accept_loop(q, h, cfg, stats, workers)).map(move |acceptor| {
                        shards.push(ShardHandle {
                            acceptor,
                            stats,
                            workers,
                        });
                        shards
                    })
                })
            })
        });
    }
    io.map(|shards| ShardedServer { shards })
}

/// Appends a worker to the shard's registry without the rollback clone
/// the classic plane's `register_worker` pays. The combinators restore
/// the taken value if the update throws, which costs a full copy of the
/// accumulated list *per accept* — O(n²) over a shard's lifetime, and
/// the measured dominant cost at 100k connections per shard. Here the
/// update is a pure push running entirely masked between `take` and
/// `put`: it cannot throw, so there is nothing to roll back. A kill can
/// only land while `take` still waits, before the value is held.
fn register_worker(workers: MVar<Value>, tid: ThreadId) -> Io<()> {
    Io::block(workers.take().and_then(move |v| {
        let mut xs = match v {
            Value::List(xs) => xs,
            _ => Vec::new(),
        };
        xs.push(Value::ThreadId(tid));
        workers.put(Value::List(xs))
    }))
}

/// One shard's acceptor: pop a connection, fork its handler, loop.
/// Runs masked so a shutdown `KillThread` can only land while the
/// `recv` *waits* (an interruptible operation). Unlike the classic
/// acceptor there is no accounting here at all — requests, not
/// connections, enter the law, and they do so inside the handler when
/// parsed. A kill between `recv` and `fork` therefore cannot strand
/// anything: an unforked connection simply has no requests in the law.
fn shard_accept_loop(
    q: Mailbox<FrameConnection>,
    h: Handler,
    cfg: ShardConfig,
    stats: ServerStats,
    workers: MVar<Value>,
) -> Io<()> {
    let h2 = Rc::clone(&h);
    Io::block(q.recv().and_then(move |conn| {
        let worker = handle_frame_connection(conn, h, cfg, stats);
        Io::fork(worker).and_then(move |tid| register_worker(workers, tid))
    }))
    .and_then(move |_| shard_accept_loop(q, h2, cfg, stats, workers))
}

/// One keep-alive connection, start to close. Forked masked (mask
/// inheritance from the acceptor); only the per-request serve runs
/// unblocked. The top-level catch absorbs a `KillThread` that lands at
/// a blocking point with *no request mid-flight* — while the accept
/// transaction's `take` still waits (nothing committed) or while the
/// frame read blocks (the next request was never parsed, so it was
/// never accepted) — tearing the connection down without touching the
/// conservation law. A kill *during* a request is handled inside
/// [`conn_loop`]: the catch there records `Killed` through [`finish`].
pub fn handle_frame_connection(
    conn: FrameConnection,
    h: Handler,
    cfg: ShardConfig,
    stats: ServerStats,
) -> Io<()> {
    conn_loop(conn, h, cfg, stats, String::new(), false, String::new()).catch(|_| Io::unit())
}

/// The keep-alive request loop. `buf` accumulates inbound bytes and is
/// drained in place per parsed request; `fin` records an already-seen
/// FIN (frames behind it may still hold complete requests); `respbuf`
/// batches rendered responses until no complete request remains
/// buffered, then flushes once.
fn conn_loop(
    conn: FrameConnection,
    h: Handler,
    cfg: ShardConfig,
    stats: ServerStats,
    mut buf: String,
    fin: bool,
    respbuf: String,
) -> Io<()> {
    if let Some(pos) = buf.find("\r\n\r\n") {
        // A complete request is buffered: it enters the conservation
        // law now, in one masked transaction. From here exactly one
        // outcome is guaranteed: the unblocked serve either returns one
        // (possibly timeout/500-shaped) or a kill lands and the catch
        // turns it into `Killed`; either way `finish` commits the
        // outcome with the active decrement.
        let rest = buf.split_off(pos + 4);
        let req_text = buf;
        let h2 = Rc::clone(&h);
        return stats
            .txn(|s| {
                s.accepted += 1;
                s.active += 1;
            })
            .then(
                Io::unblock(serve_request(req_text, h, cfg))
                    .catch(|_| Io::pure((Outcome::Killed, String::new()))),
            )
            .and_then(move |(outcome, resp)| {
                finish(stats, outcome).then(if outcome == Outcome::Killed {
                    // Torn down mid-request: the outcome is recorded;
                    // the connection dies without flushing.
                    Io::unit()
                } else {
                    let mut respbuf = respbuf;
                    respbuf.push_str(&resp);
                    conn_loop(conn, h2, cfg, stats, rest, fin, respbuf)
                })
            });
    }
    // No complete request buffered: flush the batched responses (one
    // channel send wakes the client once for the whole pipelined run;
    // sends never block, so flushing is safe under the mask).
    let flush = if respbuf.is_empty() {
        Io::unit()
    } else {
        conn.send_response_frame(respbuf)
    };
    if fin {
        return flush.then(if buf.is_empty() {
            Io::unit()
        } else {
            // Trailing partial request, then FIN: the peer hung up
            // mid-request. Accept-and-conclude in one transaction —
            // `active` never rises, so nothing can tear.
            stats.txn(|s| {
                s.accepted += 1;
                s.aborted += 1;
            })
        });
    }
    // Read exactly one frame per iteration, so the timeout budget is
    // per wire segment and — crucially — `buf` reflects every byte that
    // has actually arrived when the budget lapses: a frame that lands
    // mid-wait re-enters the loop (re-evaluating the partial/idle
    // decision against the grown buffer) instead of being discarded
    // with the killed read.
    let had_partial = !buf.is_empty();
    flush.then(
        timeout(cfg.read_timeout, conn.recv_frame()).and_then(move |r| match r {
            Some((frame, fin)) => {
                let mut buf = buf;
                buf.push_str(&frame);
                conn_loop(conn, h, cfg, stats, buf, fin, String::new())
            }
            None if had_partial => {
                // Stalled mid-request: answer 408 and account the
                // partial request, again in one accept-and-conclude
                // transaction.
                stats
                    .txn(|s| {
                        s.accepted += 1;
                        s.read_timeouts += 1;
                    })
                    .then(conn.send_response_frame(Response::status(408).render()))
            }
            // Idle keep-alive expiry: no bytes buffered, no request in
            // the law — close silently.
            None => Io::unit(),
        }),
    )
}

/// Serves one already-parsed-out request text, unmasked. Mirrors the
/// classic `serve_one` guard choreography (§9: re-throw the timeout
/// mechanism's `KillThread`, convert genuine handler failures to 500s)
/// but returns the rendered response instead of sending it — the
/// masked loop owns the response buffer and the flush policy.
fn serve_request(text: String, h: Handler, cfg: ShardConfig) -> Io<(Outcome, String)> {
    match parse_request(&text) {
        Err(_) => Io::pure((Outcome::ParseError, Response::status(400).render())),
        Ok(req) => {
            let guarded = h(req).map(Either::<Response, Response>::Right).catch(|e| {
                if e.is_kill_thread() {
                    Io::throw(e)
                } else {
                    Io::pure(Either::Left(Response {
                        status: 500,
                        body: format!("handler failed: {e}"),
                        retry_after: None,
                    }))
                }
            });
            timeout(cfg.handler_timeout, guarded).map(|resp| match resp {
                None => (Outcome::HandlerTimeout, Response::status(504).render()),
                Some(Either::Right(r)) => (Outcome::Served, r.render()),
                Some(Either::Left(r)) => (Outcome::HandlerError, r.render()),
            })
        }
    }
}

// ---------------------------------------------------------------------
// The synthetic production-scale load driver
// ---------------------------------------------------------------------

/// Shape of a load run: `clients` keep-alive connections spread over
/// `shards`, each carrying `requests_per_conn` pipelined requests in a
/// single FIN-terminated frame, arrivals paced `arrival_gap` virtual
/// microseconds apart *per shard* (so the virtual makespan is
/// `(clients / shards) × arrival_gap` — sharding buys virtual-time
/// throughput linearly, on top of splitting the stats-cell contention).
#[derive(Debug, Clone, Copy)]
pub struct LoadConfig {
    pub clients: usize,
    pub shards: usize,
    pub requests_per_conn: usize,
    pub arrival_gap: u64,
    pub queue_capacity: i64,
    pub server: ShardConfig,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            clients: 1_000,
            shards: 4,
            requests_per_conn: 10,
            arrival_gap: 100,
            queue_capacity: 1_024,
            server: ShardConfig::default(),
        }
    }
}

/// Runs the full load against `h` and returns `(oks, aggregate)`:
/// the number of `200` responses every client collected, and the
/// quiescent-aggregate snapshot after the audit protocol. Per shard
/// one feeder thread paces connections in and one collector thread
/// reads each connection's single batched response frame; the whole
/// run quiesces before the aggregate is taken, so
/// `aggregate.conserved()` is the conservation-law verdict.
pub fn sharded_load(h: Handler, cfg: LoadConfig) -> Io<(i64, StatsSnapshot)> {
    assert!(cfg.shards >= 1 && cfg.requests_per_conn >= 1);
    ShardedListener::bind(cfg.shards, cfg.queue_capacity).and_then(move |l| {
        start_sharded(&l, h, cfg.server).and_then(move |server| {
            Chan::<i64>::new().and_then(move |report| {
                let mut forks = Io::unit();
                for shard in 0..cfg.shards {
                    let conns = per_shard(cfg.clients, cfg.shards, shard) as u64;
                    let q = l.queue(shard);
                    forks = forks.then(Chan::<FrameConnection>::new().and_then(move |pipe| {
                        Io::fork(feeder(q, pipe, conns, cfg))
                            .then(Io::fork(collector(pipe, conns, report)))
                            .map(|_| ())
                    }));
                }
                forks
                    .then(sum_reports(report, cfg.shards as u64, 0))
                    .and_then(move |oks| {
                        server
                            .shutdown_sync()
                            .then(server.drain())
                            .then(server.aggregate())
                            .map(move |agg| (oks, agg))
                    })
            })
        })
    })
}

/// Connections shard `i` carries: an even split, remainder to the
/// lowest-numbered shards.
pub(crate) fn per_shard(clients: usize, shards: usize, i: usize) -> usize {
    clients / shards + usize::from(i < clients % shards)
}

/// Connections shard `i` carries under a skewed arrival pattern: shard
/// 0 is the hot shard taking `hot_percent`% of all clients, the rest
/// split the remainder evenly (remainder-of-the-remainder to the
/// lowest-numbered cold shards). With one shard the skew is vacuous.
pub fn per_shard_skewed(clients: usize, shards: usize, i: usize, hot_percent: usize) -> usize {
    assert!(hot_percent <= 100);
    if shards == 1 {
        return clients;
    }
    let hot = clients * hot_percent / 100;
    if i == 0 {
        return hot;
    }
    per_shard(clients - hot, shards - 1, i - 1)
}

/// [`sharded_load`] with a skewed client split: `hot_percent`% of the
/// clients arrive on shard 0 (see [`per_shard_skewed`]). Returns
/// `(oks, aggregate, per_shard)` — the per-shard quiescent snapshots
/// expose the `accepted` imbalance the skew creates, the measurement
/// baseline for future cross-shard balancing.
pub fn sharded_load_skewed(
    h: Handler,
    cfg: LoadConfig,
    hot_percent: usize,
) -> Io<(i64, StatsSnapshot, Vec<StatsSnapshot>)> {
    assert!(cfg.shards >= 1 && cfg.requests_per_conn >= 1);
    ShardedListener::bind(cfg.shards, cfg.queue_capacity).and_then(move |l| {
        start_sharded(&l, h, cfg.server).and_then(move |server| {
            Chan::<i64>::new().and_then(move |report| {
                let mut forks = Io::unit();
                for shard in 0..cfg.shards {
                    let conns =
                        per_shard_skewed(cfg.clients, cfg.shards, shard, hot_percent) as u64;
                    let q = l.queue(shard);
                    forks = forks.then(Chan::<FrameConnection>::new().and_then(move |pipe| {
                        Io::fork(feeder(q, pipe, conns, cfg))
                            .then(Io::fork(collector(pipe, conns, report)))
                            .map(|_| ())
                    }));
                }
                forks
                    .then(sum_reports(report, cfg.shards as u64, 0))
                    .and_then(move |oks| {
                        server
                            .shutdown_sync()
                            .then(server.drain())
                            .then(server.aggregate_per_shard())
                            .map(move |per_shard| {
                                let agg = per_shard
                                    .iter()
                                    .fold(StatsSnapshot::default(), |acc, s| acc.merge(s));
                                (oks, agg, per_shard)
                            })
                    })
            })
        })
    })
}

/// One shard's load feeder: every `arrival_gap` µs, open a connection,
/// pre-write its entire pipelined run as one FIN-terminated frame
/// (channel sends never block, so composing the wire history costs no
/// interleaving), enqueue it on the shard, and pass the handle to the
/// collector.
fn feeder(
    q: Mailbox<FrameConnection>,
    pipe: Chan<FrameConnection>,
    conns: u64,
    cfg: LoadConfig,
) -> Io<()> {
    let one = Request::get("/bench").render();
    let frame = one.repeat(cfg.requests_per_conn);
    for_each(conns, move |_| {
        let frame = frame.clone();
        Io::sleep(cfg.arrival_gap).then(FrameConnection::open().and_then(move |conn| {
            conn.send_frame_fin(frame)
                .then(q.send(conn))
                .then(pipe.send(conn))
        }))
    })
}

/// One shard's collector: for each connection the feeder opened, read
/// its single batched response frame and count the `200`s, then report
/// the shard total.
fn collector(pipe: Chan<FrameConnection>, conns: u64, report: Chan<i64>) -> Io<()> {
    fn go(pipe: Chan<FrameConnection>, left: u64, acc: i64, report: Chan<i64>) -> Io<()> {
        if left == 0 {
            return report.send(acc);
        }
        pipe.recv().and_then(move |conn| {
            conn.read_response_frame().and_then(move |resp| {
                let got = resp.matches("HTTP/1.0 200").count() as i64;
                go(pipe, left - 1, acc + got, report)
            })
        })
    }
    go(pipe, conns, 0, report)
}

fn sum_reports(report: Chan<i64>, left: u64, acc: i64) -> Io<i64> {
    if left == 0 {
        return Io::pure(acc);
    }
    report
        .recv()
        .and_then(move |n| sum_reports(report, left - 1, acc + n))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::handler;
    use conch_runtime::prelude::*;

    fn hello() -> Handler {
        handler(|req| Io::pure(Response::ok(format!("hello {}", req.path))))
    }

    fn start_one_shard() -> Io<(ShardedListener, ShardedServer)> {
        ShardedListener::bind(1, 16)
            .and_then(|l| start_sharded(&l, hello(), ShardConfig::default()).map(move |s| (l, s)))
    }

    fn audit(server: ShardedServer) -> Io<StatsSnapshot> {
        server
            .shutdown_sync()
            .then(server.drain())
            .then(server.aggregate())
    }

    #[test]
    fn pipelined_requests_batch_into_one_response_frame() {
        let mut rt = Runtime::new();
        let prog = start_one_shard().and_then(|(l, server)| {
            let frame = Request::get("/a").render().repeat(3);
            l.connect(0).and_then(move |conn| {
                conn.send_frame_fin(frame)
                    .then(conn.read_response_frame())
                    .and_then(move |resp| audit(server).map(move |agg| (resp, agg)))
            })
        });
        let (resp, agg) = rt.run(prog).unwrap();
        assert_eq!(resp.matches("HTTP/1.0 200").count(), 3, "got {resp}");
        assert_eq!(agg.accepted, 3);
        assert_eq!(agg.served, 3);
        assert!(agg.conserved(), "{agg:?}");
    }

    #[test]
    fn interactive_keep_alive_flushes_per_request() {
        let mut rt = Runtime::new();
        let prog = start_one_shard().and_then(|(l, server)| {
            l.connect(0).and_then(move |conn| {
                conn.send_frame(Request::get("/one").render())
                    .then(conn.read_response_frame())
                    .and_then(move |first| {
                        conn.send_frame_fin(Request::get("/two").render())
                            .then(conn.read_response_frame())
                            .and_then(move |second| {
                                audit(server).map(move |agg| (first, second, agg))
                            })
                    })
            })
        });
        let (first, second, agg) = rt.run(prog).unwrap();
        assert!(first.contains("hello /one"), "got {first}");
        assert!(second.contains("hello /two"), "got {second}");
        assert_eq!(agg.served, 2);
        assert!(agg.conserved(), "{agg:?}");
    }

    #[test]
    fn request_spanning_frames_is_reassembled() {
        let mut rt = Runtime::new();
        let prog = start_one_shard().and_then(|(l, server)| {
            let text = Request::get("/split").render();
            let (a, b) = text.split_at(7);
            let (a, b) = (a.to_owned(), b.to_owned());
            l.connect(0).and_then(move |conn| {
                conn.send_frame(a)
                    .then(conn.send_frame_fin(b))
                    .then(conn.read_response_frame())
                    .and_then(move |resp| audit(server).map(move |agg| (resp, agg)))
            })
        });
        let (resp, agg) = rt.run(prog).unwrap();
        assert!(resp.contains("hello /split"), "got {resp}");
        assert_eq!(agg.accepted, 1);
        assert!(agg.conserved(), "{agg:?}");
    }

    #[test]
    fn partial_request_then_fin_counts_as_aborted() {
        let mut rt = Runtime::new();
        let prog = start_one_shard().and_then(|(l, server)| {
            l.connect(0).and_then(move |conn| {
                // The abort is an accept-and-conclude transaction that
                // never raises `active`, so `drain` cannot wait for it;
                // park briefly so the handler reaches the FIN branch
                // before the audit reads the cell.
                conn.send_frame_fin("GET /half HT")
                    .then(Io::sleep(100))
                    .then(audit(server))
            })
        });
        let agg = rt.run(prog).unwrap();
        assert_eq!(agg.accepted, 1);
        assert_eq!(agg.aborted, 1);
        assert!(agg.conserved(), "{agg:?}");
    }

    #[test]
    fn stalled_partial_request_times_out_with_408() {
        let mut rt = Runtime::new();
        let prog = ShardedListener::bind(1, 16).and_then(|l| {
            let cfg = ShardConfig {
                read_timeout: 1_000,
                ..ShardConfig::default()
            };
            start_sharded(&l, hello(), cfg).and_then(move |server| {
                l.connect(0).and_then(move |conn| {
                    conn.send_frame("GET /slow HT")
                        .then(conn.read_response_frame())
                        .and_then(move |resp| audit(server).map(move |agg| (resp, agg)))
                })
            })
        });
        let (resp, agg) = rt.run(prog).unwrap();
        assert!(resp.contains("408"), "got {resp}");
        assert_eq!(agg.read_timeouts, 1);
        assert!(agg.conserved(), "{agg:?}");
    }

    #[test]
    fn idle_connection_expires_silently_outside_the_law() {
        let mut rt = Runtime::new();
        let prog = ShardedListener::bind(1, 16).and_then(|l| {
            let cfg = ShardConfig {
                read_timeout: 1_000,
                ..ShardConfig::default()
            };
            start_sharded(&l, hello(), cfg).and_then(move |server| {
                // Connect, send nothing, let the keep-alive budget lapse.
                l.connect(0).then(Io::sleep(5_000)).then(audit(server))
            })
        });
        let agg = rt.run(prog).unwrap();
        assert_eq!(agg.accepted, 0, "{agg:?}");
        assert!(agg.conserved(), "{agg:?}");
    }

    #[test]
    fn load_runs_spread_over_shards_and_conserve() {
        let mut rt = Runtime::new();
        let cfg = LoadConfig {
            clients: 40,
            shards: 4,
            requests_per_conn: 5,
            arrival_gap: 10,
            ..LoadConfig::default()
        };
        let (oks, agg) = rt.run(sharded_load(hello(), cfg)).unwrap();
        assert_eq!(oks, 200);
        assert_eq!(agg.accepted, 200);
        assert_eq!(agg.served, 200);
        assert!(agg.conserved(), "{agg:?}");
    }

    #[test]
    fn uneven_client_counts_split_across_shards() {
        assert_eq!(per_shard(10, 3, 0), 4);
        assert_eq!(per_shard(10, 3, 1), 3);
        assert_eq!(per_shard(10, 3, 2), 3);
        let mut rt = Runtime::new();
        let cfg = LoadConfig {
            clients: 7,
            shards: 3,
            requests_per_conn: 2,
            arrival_gap: 10,
            ..LoadConfig::default()
        };
        let (oks, agg) = rt.run(sharded_load(hello(), cfg)).unwrap();
        assert_eq!(oks, 14);
        assert!(agg.conserved(), "{agg:?}");
    }
}
