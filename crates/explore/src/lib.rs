//! # conch-explore
//!
//! Bounded schedule exploration ("model checking", in the style of loom
//! and shuttle) for [`conch-runtime`](conch_runtime), the Rust
//! reproduction of *Asynchronous Exceptions in Haskell* (Marlow, Peyton
//! Jones, Moran & Reppy, PLDI 2001).
//!
//! The paper's semantics (Figures 4 and 5) is nondeterministic in
//! exactly two places:
//!
//! 1. **Which thread steps next** — the soup evaluation context picks an
//!    arbitrary runnable thread.
//! 2. **When a pending asynchronous exception lands** — the (Receive)
//!    rule may fire at any step boundary of an unmasked thread.
//!
//! This crate enumerates those choices systematically. An [`Explorer`]
//! installs a scripted [`Decider`](conch_runtime::decide::Decider) into
//! a fresh deterministic [`Runtime`](conch_runtime::scheduler::Runtime)
//! per schedule and walks the choice tree depth-first, subject to
//! bounds (schedule count, branch-point depth, preemption budget, step
//! budget — see [`ExploreConfig`]). Sleep-set pruning skips
//! interleavings that only reorder *independent* steps (different
//! `MVar`s, disjoint effects — see
//! [`StepFootprint`](conch_runtime::decide::StepFootprint)), so the
//! count in the final [`Report`] reflects distinct behaviours, not raw
//! permutations.
//!
//! Every execution is summarized by a [`Schedule`] — the exact list of
//! choices taken — which works as a *failure certificate*: it replays
//! byte-for-byte in a new `Runtime` ([`Explorer::replay`]), serializes
//! to a compact text form (`t1.d-.t0`), and is automatically shrunk to
//! a minimal failing schedule when a property fails.
//!
//! Because an execution is a pure function of its schedule, the search
//! is embarrassingly parallel: [`Explorer::check_parallel`] fans the
//! same DFS out over OS threads with prefix-based work stealing, with
//! coverage counts and certificates bit-identical to the sequential
//! search for any worker count (see `DESIGN.md` for the argument).
//!
//! When the space is too large to enumerate, a sampling [`Strategy`]
//! (PCT priority sampling, uniform random, swarm — see
//! [`Strategy::Pct`]) draws seeded schedules through the same driver
//! instead: every sampled failure yields the same replayable,
//! shrinkable certificate, and reports stay bit-identical across
//! worker counts.
//!
//! ```
//! use conch_explore::{Explorer, TestCase, RunOutcome};
//! use conch_runtime::prelude::*;
//!
//! // Race: does the child's 'b' or the main thread's 'a' print first?
//! let result = Explorer::new().check(|| {
//!     TestCase::new(
//!         Io::fork(Io::put_char('b')).then(Io::put_char('a')).then(Io::sleep(1)),
//!         |out: &RunOutcome<()>| {
//!             if out.output == "ba" {
//!                 Err("child won the race".into())
//!             } else {
//!                 Ok(())
//!             }
//!         },
//!     )
//! });
//! let failure = result.expect_fail();
//! // The minimal certificate replays deterministically:
//! let (outcome, _) = Explorer::new().replay(
//!     TestCase::new(
//!         Io::fork(Io::put_char('b')).then(Io::put_char('a')).then(Io::sleep(1)),
//!         |_: &RunOutcome<()>| Ok(()),
//!     ),
//!     &failure.schedule,
//! );
//! assert_eq!(outcome.output, "ba");
//! ```

mod clocks;
mod dpor;
mod driver;
pub mod explorer;
mod frontier;
mod pool;
pub mod props;
mod sample;
pub mod schedule;

pub use crate::explorer::{
    effective_workers, CheckResult, ExploreConfig, Explorer, Failure, Reduction, Report,
    RunOutcome, Strategy, TestCase, Timing,
};
pub use crate::schedule::{Choice, ParseScheduleError, Schedule};
