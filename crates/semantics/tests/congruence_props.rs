//! Property tests for Figure 3's structural-congruence laws (experiment
//! F3) over randomly generated process terms, and structural invariants
//! of the transition rules (F4/F5) over random walks.

use std::rc::Rc;

use conch_semantics::congruence::{congruent, to_soup};
use conch_semantics::engine::{random_run, State};
use conch_semantics::process::{Mark, ProcTerm};
use conch_semantics::rules::{enabled_transitions, RuleConfig};
use conch_semantics::term::build as tb;
use conch_semantics::term::{Exc, MVarName, Term, TidName};
use proptest::prelude::*;

// ------------------------------------------------------------------
// Random process terms
// ------------------------------------------------------------------

/// Small object-language terms to sit inside threads and MVars.
fn term_strategy() -> impl Strategy<Value = Rc<Term>> {
    prop_oneof![
        Just(tb::ret(tb::unit())),
        (0i64..5).prop_map(|n| tb::ret(tb::int(n))),
        prop::char::range('a', 'c').prop_map(|c| tb::put_char(tb::ch(c))),
        (0u32..3).prop_map(|m| tb::take_mvar(tb::mvar(MVarName(m)))),
        (0u32..3).prop_map(|m| tb::put_mvar(tb::mvar(MVarName(m)), tb::unit())),
        (0u32..3).prop_map(|t| tb::throw_to(tb::tid(TidName(t)), tb::exc("E"))),
        Just(tb::block(tb::ret(tb::unit()))),
    ]
}

/// Atoms with names drawn from small, possibly-overlapping pools. To
/// keep processes well-formed (no duplicate names), atoms get distinct
/// name indices by position; ν-binders are layered on top.
fn atom(idx: u32) -> impl Strategy<Value = ProcTerm> {
    term_strategy().prop_flat_map(move |t| {
        prop_oneof![
            Just(ProcTerm::Thread(
                TidName(idx),
                Rc::clone(&t),
                Mark::Runnable
            )),
            Just(ProcTerm::Thread(TidName(idx), Rc::clone(&t), Mark::Stuck)),
            Just(ProcTerm::Dead(TidName(idx))),
            Just(ProcTerm::EmptyMVar(MVarName(idx))),
            Just(ProcTerm::FullMVar(MVarName(idx), Rc::clone(&t))),
            Just(ProcTerm::InFlight(TidName(idx), Exc::new("E"))),
        ]
    })
}

/// A parallel composition of 1–5 distinct atoms, with random tree shape
/// and random ν-binders wrapped around prefixes.
fn proc_strategy() -> impl Strategy<Value = ProcTerm> {
    prop::collection::vec(any::<bool>(), 1..5)
        .prop_flat_map(|shape| {
            let n = shape.len() as u32;
            let atoms: Vec<_> = (0..n).map(atom).collect();
            (atoms, Just(shape))
        })
        .prop_map(|(atoms, shape)| {
            let mut it = atoms.into_iter();
            let mut p = it.next().expect("at least one atom");
            for (a, left) in it.zip(shape) {
                p = if left {
                    ProcTerm::par(a, p)
                } else {
                    ProcTerm::par(p, a)
                };
            }
            p
        })
}

const MAIN: TidName = TidName(0);

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    /// (Comm): P | Q ≡ Q | P.
    #[test]
    fn comm_law(p in proc_strategy(), q_idx in 100u32..110) {
        let q = ProcTerm::EmptyMVar(MVarName(q_idx));
        let pq = ProcTerm::par(p.clone(), q.clone());
        let qp = ProcTerm::par(q, p);
        prop_assert!(congruent(&pq, &qp, MAIN));
    }

    /// (Assoc): P | (Q | R) ≡ (P | Q) | R.
    #[test]
    fn assoc_law(p in proc_strategy()) {
        let q = ProcTerm::Dead(TidName(200));
        let r = ProcTerm::EmptyMVar(MVarName(201));
        let left = ProcTerm::par(p.clone(), ProcTerm::par(q.clone(), r.clone()));
        let right = ProcTerm::par(ProcTerm::par(p, q), r);
        prop_assert!(congruent(&left, &right, MAIN));
    }

    /// (Extrude): (νm.P) | Q ≡ νm.(P | Q) when m ∉ fn(Q).
    #[test]
    fn extrude_law(p in proc_strategy(), bound in 300u32..310) {
        // Wrap p's MVar name `bound`… p doesn't use it, which is fine:
        // restriction of an unused name is still congruence-relevant.
        let inner = ProcTerm::par(ProcTerm::EmptyMVar(MVarName(bound)), p.clone());
        let q = ProcTerm::Dead(TidName(400));
        let left = ProcTerm::par(
            ProcTerm::NuMVar(MVarName(bound), Box::new(inner.clone())),
            q.clone(),
        );
        let right = ProcTerm::NuMVar(MVarName(bound), Box::new(ProcTerm::par(inner, q)));
        prop_assert!(congruent(&left, &right, MAIN));
    }

    /// (Alpha): renaming a bound name preserves congruence.
    #[test]
    fn alpha_law(p in proc_strategy(), a in 500u32..505, b in 505u32..510) {
        let mk = |name: u32| {
            ProcTerm::NuMVar(
                MVarName(name),
                Box::new(ProcTerm::par(
                    ProcTerm::FullMVar(MVarName(name), tb::ret(tb::unit())),
                    p.clone(),
                )),
            )
        };
        prop_assert!(congruent(&mk(a), &mk(b), MAIN));
    }

    /// Congruence is reflexive and flattening is deterministic.
    #[test]
    fn congruence_reflexive(p in proc_strategy()) {
        prop_assert!(congruent(&p, &p, MAIN));
        prop_assert_eq!(to_soup(&p, MAIN), to_soup(&p, MAIN));
    }

    /// Swapping the two halves of any Par node anywhere in the term
    /// preserves congruence (congruence-closure of Comm).
    #[test]
    fn comm_inside_nu(p in proc_strategy(), bound in 600u32..605) {
        let a = ProcTerm::EmptyMVar(MVarName(bound));
        let left = ProcTerm::NuMVar(
            MVarName(bound),
            Box::new(ProcTerm::par(a.clone(), p.clone())),
        );
        let right = ProcTerm::NuMVar(MVarName(bound), Box::new(ProcTerm::par(p, a)));
        prop_assert!(congruent(&left, &right, MAIN));
    }
}

// ------------------------------------------------------------------
// Structural invariants of the transition system
// ------------------------------------------------------------------

fn program_strategy() -> impl Strategy<Value = Rc<Term>> {
    // Small well-formed closed programs.
    let leaf = prop_oneof![
        Just(tb::ret(tb::unit())),
        prop::char::range('a', 'c').prop_map(|c| tb::put_char(tb::ch(c))),
        Just(tb::throw(tb::exc("E"))),
        Just(tb::get_char()),
    ];
    leaf.prop_recursive(3, 12, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| tb::seq(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| tb::catch(a, tb::lam("_e", b))),
            inner.clone().prop_map(tb::block),
            inner.clone().prop_map(tb::unblock),
            inner.clone().prop_map(|a| tb::seq(
                tb::bind(
                    tb::fork(a),
                    tb::lam("t", tb::throw_to(tb::var("t"), tb::exc("K")))
                ),
                tb::ret(tb::unit())
            )),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Random walks through the LTS preserve well-formedness: every
    /// in-flight exception targets a known thread, thread names are
    /// unique by construction (BTreeMap), and a terminal state is
    /// exactly "main is dead".
    #[test]
    fn random_walks_preserve_wellformedness(
        prog in program_strategy(),
        seed in 0u64..10_000,
    ) {
        let init = State::new(prog, "xyz");
        let cfg = RuleConfig::default();
        let run = random_run(&init, seed, 300, &cfg);
        let soup = &run.state.soup;
        for (target, _) in &soup.inflight {
            prop_assert!(
                soup.threads.contains_key(target),
                "in-flight exception to unknown thread {target}"
            );
        }
        if run.terminated {
            prop_assert!(soup.threads.is_empty());
            prop_assert!(soup.mvars.is_empty());
            prop_assert!(soup.inflight.is_empty());
        }
        // Enumeration from the final state must not panic and must be
        // empty iff terminal or deadlocked.
        let succ = enabled_transitions(&soup.clone(), &run.state.input, &cfg);
        if run.terminated || run.deadlocked {
            prop_assert!(succ.is_empty());
        }
    }

    /// Determinism: the same seed yields the same walk.
    #[test]
    fn random_walks_deterministic(prog in program_strategy(), seed in 0u64..1_000) {
        let a = random_run(&State::new(prog.clone(), "x"), seed, 100, &RuleConfig::default());
        let b = random_run(&State::new(prog, "x"), seed, 100, &RuleConfig::default());
        prop_assert_eq!(a.steps, b.steps);
    }
}
