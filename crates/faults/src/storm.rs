//! Exception storms: bursts of `throwTo KillThread` at worker threads.
//!
//! The §11 fault-tolerance story run in reverse — instead of a
//! supervisor keeping workers alive, an adversary tries to kill them
//! at the worst possible moment, and the server's bracket discipline
//! has to keep the counters conserved anyway. Each potential strike is
//! an injector decision, so in explore mode the engine enumerates every
//! subset of workers × every delivery interleaving.
//!
//! Striking a worker that already finished is deliberately fine:
//! thread ids are generation-tagged, so the `throwTo` is a no-op
//! rather than friendly fire against an unrelated thread that reused
//! the slot.
//!
//! Against the supervised pool ([`kill_storm_pooled`]) the storm also
//! targets the **pool supervisor itself** — a supervisor is a thread
//! like any other, and the tree must heal around its death. Those
//! strikes are delivered with the §9 *synchronous* `throwTo`: a pool
//! worker outlives any one connection, so an asynchronous strike still
//! in flight when the storm "ends" could land on a connection accepted
//! *after* the episode (the audit's healthy probe). That would not be
//! a fault-tolerance failure, just an unanswerable client — so the
//! pooled storm is over when it returns.

use conch_combinators::kill_thread;
use conch_httpd::pool::PooledServer;
use conch_httpd::server::Server;
use conch_runtime::exception::Exception;
use conch_runtime::ids::ThreadId;
use conch_runtime::io::Io;

use crate::inject::Injector;

/// One storm pass over an explicit target list: for every thread, ask
/// the injector whether to strike it with `KillThread`. Returns how
/// many strikes were delivered (thrown — a strike at an
/// already-finished thread still counts, and is still harmless).
/// `sync` selects the §9 synchronous `throwTo` for each strike.
pub fn kill_storm_targets(tids: Vec<ThreadId>, inj: &Injector, sync: bool) -> Io<i64> {
    strike_each(inj.clone(), sync, tids.into_iter(), 0)
}

/// One storm pass: every worker the server has ever forked is a
/// potential target.
pub fn kill_storm(server: &Server, inj: &Injector) -> Io<i64> {
    let inj = inj.clone();
    server
        .worker_ids()
        .and_then(move |tids| kill_storm_targets(tids, &inj, false))
}

/// One storm pass against the supervised pool: every worker
/// incarnation ever started *and* the current pool-supervisor
/// incarnation are potential targets (the root is spared — it is the
/// trusted base that heals the tree). Strikes are synchronous; see the
/// module docs for why.
pub fn kill_storm_pooled(server: &PooledServer, inj: &Injector) -> Io<i64> {
    let inj = inj.clone();
    let server = *server;
    server.worker_ids().and_then(move |mut tids| {
        server.pool_supervisor_ids().and_then(move |sups| {
            tids.extend(sups);
            kill_storm_targets(tids, &inj, true)
        })
    })
}

fn strike_each(
    inj: Injector,
    sync: bool,
    mut tids: std::vec::IntoIter<ThreadId>,
    kills: i64,
) -> Io<i64> {
    match tids.next() {
        None => Io::pure(kills),
        Some(tid) => inj.strike().and_then(move |hit| {
            if hit {
                let strike = if sync {
                    Io::throw_to_sync(tid, Exception::kill_thread())
                } else {
                    kill_thread(tid)
                };
                strike.and_then(move |_| strike_each(inj, sync, tids, kills + 1))
            } else {
                strike_each(inj, sync, tids, kills)
            }
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::prepared_connection;
    use crate::fault::ConnFault;
    use conch_httpd::http::Response;
    use conch_httpd::net::Listener;
    use conch_httpd::server::{handler, start, ServerConfig};
    use conch_runtime::prelude::*;

    #[test]
    fn storm_kills_live_workers_and_counters_conserve() {
        let mut rt = Runtime::new();
        let cfg = ServerConfig {
            read_timeout: 10_000,
            handler_timeout: 10_000,
            ..ServerConfig::default()
        };
        // A stalled connection parks a worker in its read; the storm
        // kills it; the counters must still conserve (killed, not
        // leaked).
        let prog = Listener::bind().and_then(move |l| {
            start(l, handler(|_| Io::pure(Response::ok("hi"))), cfg).and_then(move |server| {
                prepared_connection(ConnFault::Stall, "/x").and_then(move |conn| {
                    l.inject(conn)
                        .then(Io::sleep(100)) // let the worker park in the read
                        .then(kill_storm(&server, &Injector::scripted([1])))
                        .and_then(move |kills| {
                            server
                                .drain()
                                .then(server.shutdown())
                                .then(server.stats.snapshot())
                                .map(move |snap| (kills, snap))
                        })
                })
            })
        });
        let (kills, snap) = rt.run(prog).unwrap();
        assert_eq!(kills, 1);
        assert_eq!(snap.killed, 1, "{snap:?}");
        assert!(snap.conserved(), "{snap:?}");
    }

    #[test]
    fn storm_against_finished_workers_is_a_no_op() {
        let mut rt = Runtime::new();
        let cfg = ServerConfig::default();
        // Serve a request to completion, then storm the (finished)
        // worker: the strike is thrown but lands nowhere.
        let prog = Listener::bind().and_then(move |l| {
            start(l, handler(|_| Io::pure(Response::ok("hi"))), cfg).and_then(move |server| {
                prepared_connection(ConnFault::None, "/x").and_then(move |conn| {
                    l.inject(conn)
                        .then(conn.read_response())
                        .then(server.drain())
                        .then(kill_storm(&server, &Injector::scripted([1])))
                        .and_then(move |kills| {
                            server
                                .shutdown()
                                .then(server.stats.snapshot())
                                .map(move |snap| (kills, snap))
                        })
                })
            })
        });
        let (kills, snap) = rt.run(prog).unwrap();
        assert_eq!(kills, 1, "the strike is thrown even at a finished worker");
        assert_eq!(snap.served, 1);
        assert_eq!(
            snap.killed, 0,
            "a dead slot must absorb the strike: {snap:?}"
        );
        assert!(snap.conserved(), "{snap:?}");
    }

    #[test]
    fn pooled_storm_strikes_worker_and_supervisor_and_pool_heals() {
        use conch_httpd::pool::{start_pooled, PoolConfig};
        let mut rt = Runtime::new();
        let cfg = PoolConfig {
            workers: 1,
            queue_capacity: 2,
            server: ServerConfig::default(),
            ..PoolConfig::default()
        };
        // Strike both targets: the one worker and the pool supervisor.
        // The root restarts the pool; a follow-up request is served and
        // the counters conserve.
        let prog = Listener::bind().and_then(move |l| {
            start_pooled(l, handler(|_| Io::pure(Response::ok("hi"))), cfg).and_then(
                move |server| {
                    prepared_connection(ConnFault::Stall, "/x").and_then(move |conn| {
                        l.inject(conn)
                            .then(Io::sleep(100))
                            .then(kill_storm_pooled(&server, &Injector::scripted([1, 1])))
                            .and_then(move |kills| {
                                prepared_connection(ConnFault::None, "/again").and_then(
                                    move |probe| {
                                        l.inject(probe).then(probe.read_response()).and_then(
                                            move |resp| {
                                                server
                                                    .shutdown_sync()
                                                    .then(server.drain())
                                                    .then(server.stats.snapshot())
                                                    .and_then(move |snap| {
                                                        server
                                                            .stop_sync()
                                                            .map(move |_| (kills, resp, snap))
                                                    })
                                            },
                                        )
                                    },
                                )
                            })
                    })
                },
            )
        });
        let (kills, resp, snap) = rt.run(prog).unwrap();
        assert_eq!(kills, 2, "worker and pool supervisor both struck");
        assert!(resp.contains("200"), "got {resp}");
        assert_eq!(
            snap.killed, 1,
            "the stalled connection died with its worker: {snap:?}"
        );
        assert!(snap.conserved(), "{snap:?}");
    }

    #[test]
    fn quiet_injector_spares_everyone() {
        let mut rt = Runtime::new();
        let prog = Listener::bind().and_then(move |l| {
            start(
                l,
                handler(|_| Io::pure(Response::ok("hi"))),
                ServerConfig::default(),
            )
            .and_then(move |server| {
                prepared_connection(ConnFault::None, "/x").and_then(move |conn| {
                    l.inject(conn)
                        .then(conn.read_response())
                        .then(server.drain())
                        .then(kill_storm(&server, &Injector::quiet()))
                })
            })
        });
        assert_eq!(rt.run(prog).unwrap(), 0);
    }
}
