//! Scratch harness: compare reduction modes on the exploration
//! workloads. Used to size the benchmark workloads.

use conch_bench::{
    accept_loop_workload, explore_reduced, explore_workload, log_fanin_workload, pipeline_workload,
};
use conch_explore::Reduction;
use std::time::Instant;

fn row(
    name: &str,
    r: Reduction,
    workers: usize,
    f: impl Fn() -> conch_runtime::io::Io<i64> + Sync,
) {
    let t = Instant::now();
    let rep = explore_reduced(r, None, workers, f);
    println!(
        "{name:24} {r:?}x{workers}: explored={} pruned={} complete={} races={} backtracks={} steps={} in {:?}",
        rep.explored,
        rep.pruned,
        rep.complete,
        rep.stats.races_detected,
        rep.stats.backtracks_installed,
        rep.steps,
        t.elapsed()
    );
}

fn fan_workload(workers: u64) -> conch_runtime::io::Io<i64> {
    use conch_runtime::io::Io;
    // N independent workers, each putting one value into a private
    // MVar; main forks all of them, then collects and sums. The
    // workers' steps are pairwise independent — the DPOR showcase.
    fn build(i: u64, n: u64, acc: conch_runtime::io::Io<i64>) -> conch_runtime::io::Io<i64> {
        if i == n {
            return acc;
        }
        Io::new_empty_mvar::<i64>().and_then(move |resp| {
            Io::fork(resp.put(i as i64 + 1)).then(build(
                i + 1,
                n,
                acc.and_then(move |sum| resp.take().map(move |v| sum + v)),
            ))
        })
    }
    build(0, workers, conch_runtime::io::Io::pure(0))
}

fn b9k_workload(workers: u64) -> conch_runtime::io::Io<i64> {
    use conch_runtime::exception::Exception;
    use conch_runtime::io::Io;
    // explore_workload generalized to k workers on one shared MVar:
    // worker i adds 10^i, main kills worker 1 mid-flight and reads the
    // survivors' arithmetic.
    fn spawn(i: u64, n: u64, m: conch_runtime::MVar<i64>, acc: Io<i64>) -> Io<i64> {
        if i == n {
            return acc;
        }
        let delta = 10_i64.pow(i as u32);
        Io::fork(
            m.take()
                .and_then(move |v| m.put(v + delta))
                .catch(|_| Io::unit()),
        )
        .and_then(move |w| {
            let kill = if i == 0 {
                Io::throw_to(w, Exception::kill_thread())
            } else {
                Io::unit()
            };
            spawn(i + 1, n, m, acc.and_then(move |_| kill.then(Io::pure(0))))
        })
    }
    Io::new_mvar(0_i64).and_then(move |m| {
        spawn(0, workers, m, Io::pure(0))
            .then(Io::sleep(5))
            .then(m.take())
    })
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let which = args.get(1).map(String::as_str).unwrap_or("all");
    if which == "log" {
        let n: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(4);
        let logs: u64 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(4);
        row("log", Reduction::SleepSets, 1, move || {
            log_fanin_workload(n, logs)
        });
        row("log", Reduction::SleepSets, 4, move || {
            log_fanin_workload(n, logs)
        });
        row("log", Reduction::Dpor, 1, move || {
            log_fanin_workload(n, logs)
        });
        row("log", Reduction::Dpor, 4, move || {
            log_fanin_workload(n, logs)
        });
    }
    if which == "b9k" {
        let n: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(3);
        row("b9k", Reduction::SleepSets, 1, move || b9k_workload(n));
        row("b9k", Reduction::Dpor, 1, move || b9k_workload(n));
        row("b9k", Reduction::Dpor, 4, move || b9k_workload(n));
    }
    if which == "fan" {
        let n: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(4);
        row("fan", Reduction::SleepSets, 1, move || fan_workload(n));
        row("fan", Reduction::Dpor, 1, move || fan_workload(n));
        row("fan", Reduction::Dpor, 4, move || fan_workload(n));
    }
    if which == "all" || which == "b9" {
        row(
            "explore_workload",
            Reduction::SleepSets,
            1,
            explore_workload,
        );
        row("explore_workload", Reduction::Dpor, 1, explore_workload);
        row("explore_workload", Reduction::Dpor, 4, explore_workload);
    }
    if which == "all" || which == "pipe" {
        let stages: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(4);
        row("pipeline", Reduction::SleepSets, 1, move || {
            pipeline_workload(stages)
        });
        row("pipeline", Reduction::Dpor, 1, move || {
            pipeline_workload(stages)
        });
        row("pipeline", Reduction::Dpor, 4, move || {
            pipeline_workload(stages)
        });
    }
    if which == "all" || which == "accept" {
        let clients: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(3);
        row("accept_loop", Reduction::SleepSets, 1, move || {
            accept_loop_workload(clients)
        });
        row("accept_loop", Reduction::SleepSets, 4, move || {
            accept_loop_workload(clients)
        });
        row("accept_loop", Reduction::Dpor, 1, move || {
            accept_loop_workload(clients)
        });
        row("accept_loop", Reduction::Dpor, 4, move || {
            accept_loop_workload(clients)
        });
    }
}
