//! Program states — Figure 2 of the paper, plus the §6.3 extensions.
//!
//! Two representations:
//!
//! * [`ProcTerm`] — the syntactic process calculus with parallel
//!   composition `P | Q` and restriction `νx.P`, exactly as in Figure 2.
//!   Used to state and test the structural-congruence laws of Figure 3.
//! * [`Soup`] — the canonical "chemical solution" form: a flat multiset of
//!   threads, `MVar`s and in-flight exceptions, with restriction handled
//!   by a fresh-name supply. The transition rules operate on `Soup`s.
//!
//! §6.3 adds two pieces of state: threads carry a runnable (∘) or stuck
//! (⊛) marker, and an exception thrown but not yet received floats as a
//! separate process `⌈t ⇐ e⌉` ([`Soup::inflight`]).

use std::collections::{BTreeMap, BTreeSet};
use std::rc::Rc;

use crate::term::{Exc, MVarName, Term, TidName};

/// The ∘/⊛ marker of §6.3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Mark {
    /// ∘ — the thread may make transitions.
    Runnable,
    /// ⊛ — the thread is stuck (blocked `takeMVar`/`putMVar`, waiting
    /// `getChar`/`putChar`/`sleep`); only (Interrupt) or the relevant
    /// labelled rule can revive it.
    Stuck,
}

/// A process term of Figure 2 (with the Figure 5 in-flight exception).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProcTerm {
    /// `⟨M⟩t` — a thread of computation named `t`.
    Thread(TidName, Rc<Term>, Mark),
    /// `⊘t` — a finished thread named `t`.
    Dead(TidName),
    /// `⟨⟩m` — an empty `MVar` named `m`.
    EmptyMVar(MVarName),
    /// `⟨M⟩m` — a full `MVar` named `m` holding `M`.
    FullMVar(MVarName, Rc<Term>),
    /// `⌈t ⇐ e⌉` — exception `e` in flight towards thread `t` (§6.3).
    InFlight(TidName, Exc),
    /// `P | Q` — parallel composition.
    Par(Box<ProcTerm>, Box<ProcTerm>),
    /// `νt.P` — restriction of a thread name.
    NuTid(TidName, Box<ProcTerm>),
    /// `νm.P` — restriction of an `MVar` name.
    NuMVar(MVarName, Box<ProcTerm>),
}

impl ProcTerm {
    /// `P | Q`, taking ownership.
    pub fn par(p: ProcTerm, q: ProcTerm) -> ProcTerm {
        ProcTerm::Par(Box::new(p), Box::new(q))
    }
}

/// The state of one thread in a [`Soup`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThreadState {
    /// The thread's remaining computation.
    pub term: Rc<Term>,
    /// Runnable or stuck.
    pub mark: Mark,
}

/// The canonical flattened program state.
///
/// All process atoms of a [`ProcTerm`], with ν-bound names resolved
/// against a monotone fresh-name supply. Equality on `Soup`s is used by
/// the model checker to deduplicate states.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Soup {
    /// Live threads, by name.
    pub threads: BTreeMap<TidName, ThreadState>,
    /// Finished threads `⊘t`.
    pub dead: BTreeSet<TidName>,
    /// `MVar`s: `None` = empty, `Some(M)` = full holding `M`.
    pub mvars: BTreeMap<MVarName, Option<Rc<Term>>>,
    /// Exceptions in flight, as a sorted multiset of `(target, exc)`.
    pub inflight: Vec<(TidName, Exc)>,
    /// The distinguished main thread.
    pub main: TidName,
    /// Fresh-name supply for `ν` (thread names).
    pub next_tid: u32,
    /// Fresh-name supply for `ν` (`MVar` names).
    pub next_mvar: u32,
}

impl Soup {
    /// The initial state: one runnable main thread running `term`.
    pub fn initial(term: Rc<Term>) -> Soup {
        let main = TidName(0);
        let mut threads = BTreeMap::new();
        threads.insert(
            main,
            ThreadState {
                term,
                mark: Mark::Runnable,
            },
        );
        Soup {
            threads,
            dead: BTreeSet::new(),
            mvars: BTreeMap::new(),
            inflight: Vec::new(),
            main,
            next_tid: 1,
            next_mvar: 0,
        }
    }

    /// Allocates a fresh thread name (the `ν u` of rule (Fork)).
    pub fn fresh_tid(&mut self) -> TidName {
        let t = TidName(self.next_tid);
        self.next_tid += 1;
        t
    }

    /// Allocates a fresh `MVar` name (the `ν m` of rule (NewMVar)).
    pub fn fresh_mvar(&mut self) -> MVarName {
        let m = MVarName(self.next_mvar);
        self.next_mvar += 1;
        m
    }

    /// Adds an in-flight exception, keeping the multiset sorted.
    pub fn add_inflight(&mut self, t: TidName, e: Exc) {
        let pos = self
            .inflight
            .binary_search(&(t, e.clone()))
            .unwrap_or_else(|p| p);
        self.inflight.insert(pos, (t, e));
    }

    /// Is the main thread finished (normally or by an uncaught throw)?
    pub fn main_finished(&self) -> bool {
        self.dead.contains(&self.main)
    }

    /// Is this a terminal state: no transition can ever fire again?
    ///
    /// True when the main thread is dead (then (Proc GC) reaps the rest)
    /// — callers treat that as normal termination.
    pub fn is_terminal(&self) -> bool {
        self.main_finished()
    }

    /// Renders the soup in the paper's notation.
    pub fn render(&self) -> String {
        let mut parts: Vec<String> = Vec::new();
        for (t, st) in &self.threads {
            let mark = match st.mark {
                Mark::Runnable => "°",
                Mark::Stuck => "⊛",
            };
            let main = if *t == self.main { "*" } else { "" };
            parts.push(format!("⟨{}⟩{}{}{}", st.term, t, mark, main));
        }
        for t in &self.dead {
            parts.push(format!("⊘{t}"));
        }
        for (m, contents) in &self.mvars {
            match contents {
                None => parts.push(format!("⟨⟩{m}")),
                Some(v) => parts.push(format!("⟨{v}⟩{m}")),
            }
        }
        for (t, e) in &self.inflight {
            parts.push(format!("⌈{t} ⇐ {e}⌉"));
        }
        parts.join(" | ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::build::*;

    #[test]
    fn initial_soup_has_main_runnable() {
        let s = Soup::initial(ret(unit()));
        assert_eq!(s.threads.len(), 1);
        assert_eq!(s.threads[&s.main].mark, Mark::Runnable);
        assert!(!s.main_finished());
    }

    #[test]
    fn fresh_names_are_distinct() {
        let mut s = Soup::initial(ret(unit()));
        let t1 = s.fresh_tid();
        let t2 = s.fresh_tid();
        assert_ne!(t1, t2);
        let m1 = s.fresh_mvar();
        let m2 = s.fresh_mvar();
        assert_ne!(m1, m2);
    }

    #[test]
    fn inflight_multiset_is_sorted() {
        let mut s = Soup::initial(ret(unit()));
        s.add_inflight(TidName(2), Exc::new("B"));
        s.add_inflight(TidName(1), Exc::new("A"));
        s.add_inflight(TidName(2), Exc::new("A"));
        let rendered: Vec<_> = s.inflight.iter().map(|(t, e)| format!("{t}{e}")).collect();
        assert_eq!(rendered, ["t1A", "t2A", "t2B"]);
    }

    #[test]
    fn render_uses_paper_notation() {
        let mut s = Soup::initial(ret(unit()));
        let m = s.fresh_mvar();
        s.mvars.insert(m, None);
        s.add_inflight(s.main, Exc::kill_thread());
        let r = s.render();
        assert!(r.contains("⟨(return ())⟩t0"), "got {r}");
        assert!(r.contains("⟨⟩m0"));
        assert!(r.contains("⌈t0 ⇐ KillThread⌉"));
    }

    #[test]
    fn terminal_when_main_dead() {
        let mut s = Soup::initial(ret(unit()));
        s.threads.remove(&s.main);
        s.dead.insert(s.main);
        assert!(s.is_terminal());
    }
}
