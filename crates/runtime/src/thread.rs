//! Per-thread state: the §8 implementation design.
//!
//! Each green thread carries exactly the data §8.1 prescribes:
//!
//! * a **frame stack** with bind frames, catch frames (which record the
//!   masking state at the time they were pushed), and block/unblock
//!   frames (represented as `Frame::Restore`: "set the masking state to
//!   this when control returns here");
//! * the current **masking state** (blocked or unblocked);
//! * a FIFO **queue of pending asynchronous exceptions** waiting to be
//!   delivered.
//!
//! `Thread::enter_block`/`Thread::enter_unblock` implement the 4-step
//! algorithm of §8.1 including the adjacent-frame collapse (step 3) that
//! lets mask-recursive functions run in constant stack space. The collapse
//! can be disabled ([`crate::config::RuntimeConfig::collapse_mask_frames`])
//! for the ablation benchmark.

use std::collections::VecDeque;

use crate::decide::StepFootprint;
use crate::exception::Exception;
use crate::ids::{MVarId, ThreadId};
use crate::io::{Action, Handler, Kont};
use crate::value::Value;

/// The asynchronous-exception masking state of a thread (§5.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MaskState {
    /// Asynchronous exceptions may be delivered (the initial state).
    Unblocked,
    /// Delivery is postponed; only interruptible operations that actually
    /// block can receive exceptions (§5.3).
    Blocked,
}

/// A frame on a thread's control stack (§8).
pub(crate) enum Frame {
    /// The continuation of `>>=`.
    Bind(Kont),
    /// A `catch` frame: handler plus the masking state when pushed, which
    /// is restored before the handler runs (§8, "Extend the catch frame to
    /// include the state ... of asynchronous exceptions").
    Catch {
        handler: Handler,
        saved_mask: MaskState,
    },
    /// A block/unblock frame: on return (normal or exceptional), set the
    /// masking state to the recorded value. `Restore(Unblocked)` is the
    /// paper's "unblock frame", `Restore(Blocked)` its "block frame".
    Restore(MaskState),
}

impl std::fmt::Debug for Frame {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Frame::Bind(_) => write!(f, "Bind"),
            Frame::Catch { saved_mask, .. } => write!(f, "Catch(saved={saved_mask:?})"),
            Frame::Restore(s) => write!(f, "Restore({s:?})"),
        }
    }
}

/// How an exception came to be raised in a thread.
///
/// The paper keeps one `Exception` type but §8 (thunk treatment) and §9
/// (the exceptions-vs-alerts alternative) both need to know whether a
/// given raise was the deterministic result of running the code
/// (synchronous) or an external interruption (asynchronous).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RaiseOrigin {
    /// Raised by `throw` or by pure evaluation: re-running the same code
    /// would raise it again (§8: safe to overwrite a thunk with it).
    Sync,
    /// Delivered by `throwTo` (or deadlock recovery): an external event
    /// that says nothing about the interrupted code itself.
    Async,
}

/// What the thread will do at its next step.
#[derive(Debug)]
pub(crate) enum Code {
    /// Interpret this action.
    Run(Action),
    /// Return this value to the top frame.
    ReturnVal(Value),
    /// Unwind the stack with this exception.
    Raise(Exception, RaiseOrigin),
}

/// Why a thread cannot currently run (the ⊛ state of §6.3).
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum StuckReason {
    /// Waiting in `takeMVar` on an empty `MVar`.
    TakeMVar(MVarId),
    /// Waiting in `putMVar` on a full `MVar` (the value travels in the
    /// cell's put queue).
    PutMVar(MVarId),
    /// Sleeping until the virtual clock reaches `wake_at`.
    Sleep {
        /// Absolute virtual time (µs) at which to wake.
        wake_at: u64,
    },
    /// Waiting in `getChar` for console input.
    GetChar,
    /// Waiting in a synchronous `throwTo` (§9 variant) for the target to
    /// receive the exception.
    SyncThrow {
        /// The thread we threw to.
        target: ThreadId,
    },
}

impl StuckReason {
    /// Human-readable description for deadlock reports.
    pub fn describe(&self) -> String {
        match self {
            StuckReason::TakeMVar(m) => format!("blocked in takeMVar on {m}"),
            StuckReason::PutMVar(m) => format!("blocked in putMVar on {m}"),
            StuckReason::Sleep { wake_at } => format!("sleeping until t={wake_at}"),
            StuckReason::GetChar => "blocked in getChar".to_owned(),
            StuckReason::SyncThrow { target } => {
                format!("waiting for synchronous throwTo to {target}")
            }
        }
    }
}

/// Scheduling status of a thread.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Status {
    /// May be chosen by the scheduler (∘ in §6.3).
    Runnable,
    /// Blocked on a resource (⊛ in §6.3); always interruptible.
    Stuck(StuckReason),
}

/// An asynchronous exception queued for delivery (§8.2).
#[derive(Debug)]
pub(crate) struct PendingExc {
    /// The exception to raise in the target.
    pub exc: Exception,
    /// For the synchronous `throwTo` design (§9): the thread to wake once
    /// this exception has been received.
    pub notify: Option<ThreadId>,
    /// Global step count at enqueue time, for delivery-latency stats.
    pub enqueued_step: u64,
}

/// One green thread.
pub(crate) struct Thread {
    pub tid: ThreadId,
    pub code: Code,
    pub stack: Vec<Frame>,
    pub mask: MaskState,
    pub pending: VecDeque<PendingExc>,
    pub status: Status,
    /// Count of `Restore` frames currently on the stack (for the §8.1
    /// max-mask-frames statistic).
    pub mask_frames: usize,
    /// Cached [`StepFootprint`] of the next step. Maintained by the
    /// scheduler: refreshed whenever the thread is (re-)enqueued on the
    /// run queue, and guaranteed fresh only while the thread sits there
    /// (nothing mutates a queued thread's code or stack).
    pub footprint: StepFootprint,
}

impl Thread {
    /// A fresh thread about to run `action`, unblocked and runnable.
    #[cfg(test)]
    pub fn new(tid: ThreadId, action: Action) -> Self {
        Thread::with_buffers(tid, action, Vec::new(), VecDeque::new())
    }

    /// Like [`Thread::new`], but reusing recycled stack/pending buffers
    /// (emptied, capacity retained) from previously finished threads, so
    /// fork-heavy workloads stop paying one heap allocation per frame
    /// stack per thread.
    pub fn with_buffers(
        tid: ThreadId,
        action: Action,
        stack: Vec<Frame>,
        pending: VecDeque<PendingExc>,
    ) -> Self {
        debug_assert!(stack.is_empty() && pending.is_empty());
        Thread {
            tid,
            code: Code::Run(action),
            stack,
            mask: MaskState::Unblocked,
            pending,
            status: Status::Runnable,
            mask_frames: 0,
            footprint: StepFootprint::Local,
        }
    }

    /// Reinitializes a recycled thread in place for a new spawn: same
    /// effect as [`Thread::with_buffers`] on the thread's own buffers,
    /// without moving the (boxed) thread. The stack and pending queue
    /// must already be empty — retirement clears them, keeping capacity.
    pub fn reinit(&mut self, tid: ThreadId, action: Action) {
        debug_assert!(self.stack.is_empty() && self.pending.is_empty());
        self.tid = tid;
        self.code = Code::Run(action);
        self.mask = MaskState::Unblocked;
        self.status = Status::Runnable;
        self.mask_frames = 0;
        self.footprint = StepFootprint::Local;
    }

    /// Pushes a frame, maintaining the mask-frame count.
    pub fn push_frame(&mut self, frame: Frame) {
        if matches!(frame, Frame::Restore(_)) {
            self.mask_frames += 1;
        }
        self.stack.push(frame);
    }

    /// Pops a frame, maintaining the mask-frame count.
    pub fn pop_frame(&mut self) -> Option<Frame> {
        let f = self.stack.pop();
        if matches!(f, Some(Frame::Restore(_))) {
            self.mask_frames -= 1;
        }
        f
    }

    /// Enters a `block` scope: the §8.1 algorithm.
    ///
    /// Returns `true` if an adjacent frame was collapsed (step 3's removal)
    /// — the quantity the ablation bench counts.
    pub fn enter_block(&mut self, collapse: bool) -> bool {
        // Step 1: already blocked => nothing to do.
        if self.mask == MaskState::Blocked {
            return false;
        }
        // Step 2: set the state.
        self.mask = MaskState::Blocked;
        // Step 3: collapse an adjacent "block frame" (Restore(Blocked))
        // instead of pushing an "unblock frame" (Restore(Unblocked)).
        if collapse && matches!(self.stack.last(), Some(Frame::Restore(MaskState::Blocked))) {
            self.pop_frame();
            true
        } else {
            self.push_frame(Frame::Restore(MaskState::Unblocked));
            false
        }
    }

    /// Enters an `unblock` scope: the dual of [`Thread::enter_block`].
    pub fn enter_unblock(&mut self, collapse: bool) -> bool {
        if self.mask == MaskState::Unblocked {
            return false;
        }
        self.mask = MaskState::Unblocked;
        if collapse
            && matches!(
                self.stack.last(),
                Some(Frame::Restore(MaskState::Unblocked))
            )
        {
            self.pop_frame();
            true
        } else {
            self.push_frame(Frame::Restore(MaskState::Blocked));
            false
        }
    }

    /// Is this thread currently stuck?
    pub fn is_stuck(&self) -> bool {
        matches!(self.status, Status::Stuck(_))
    }

    /// Takes the first pending exception, if any.
    pub fn take_pending(&mut self) -> Option<PendingExc> {
        self.pending.pop_front()
    }
}

impl std::fmt::Debug for Thread {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Thread")
            .field("tid", &self.tid)
            .field("mask", &self.mask)
            .field("status", &self.status)
            .field("stack_depth", &self.stack.len())
            .field("pending", &self.pending.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh() -> Thread {
        Thread::new(crate::ids::tid(0), Action::Pure(Value::Unit))
    }

    #[test]
    fn starts_unblocked_runnable() {
        let t = fresh();
        assert_eq!(t.mask, MaskState::Unblocked);
        assert_eq!(t.status, Status::Runnable);
        assert!(t.stack.is_empty());
    }

    #[test]
    fn block_pushes_unblock_frame() {
        let mut t = fresh();
        let collapsed = t.enter_block(true);
        assert!(!collapsed);
        assert_eq!(t.mask, MaskState::Blocked);
        assert!(matches!(
            t.stack.last(),
            Some(Frame::Restore(MaskState::Unblocked))
        ));
        assert_eq!(t.mask_frames, 1);
    }

    #[test]
    fn nested_block_is_noop() {
        let mut t = fresh();
        t.enter_block(true);
        let depth = t.stack.len();
        t.enter_block(true);
        // §5.2: no counting of scopes — second block changes nothing.
        assert_eq!(t.stack.len(), depth);
        assert_eq!(t.mask, MaskState::Blocked);
    }

    #[test]
    fn unblock_in_tail_position_collapses_block_scope() {
        // §8.1 reversed step 3: an unblock whose stack top is the enclosing
        // block's unblock-frame removes it instead of pushing.
        let mut t = fresh();
        t.enter_block(true);
        let collapsed = t.enter_unblock(true);
        assert!(collapsed);
        assert_eq!(t.mask, MaskState::Unblocked);
        assert!(t.stack.is_empty());
        assert_eq!(t.mask_frames, 0);
    }

    #[test]
    fn unblock_in_non_tail_position_pushes_block_frame() {
        // With an intervening frame (a pending `>>=` continuation), the
        // collapse cannot fire and a block-frame is pushed.
        let mut t = fresh();
        t.enter_block(true);
        t.push_frame(Frame::Bind(Box::new(Action::Pure)));
        let collapsed = t.enter_unblock(true);
        assert!(!collapsed);
        assert_eq!(t.mask, MaskState::Unblocked);
        assert!(matches!(
            t.stack.last(),
            Some(Frame::Restore(MaskState::Blocked))
        ));
        assert_eq!(t.mask_frames, 2);
    }

    #[test]
    fn block_collapses_adjacent_block_frame() {
        // §8.1 step 3 exactly: inside an unblock scope (which pushed a
        // block-frame), a tail-position block removes that frame.
        let mut t = fresh();
        t.mask = MaskState::Blocked;
        t.enter_unblock(true); // pushes Restore(Blocked)
        assert_eq!(t.stack.len(), 1);
        let collapsed = t.enter_block(true);
        assert!(collapsed);
        assert!(t.stack.is_empty());
        assert_eq!(t.mask_frames, 0);
        assert_eq!(t.mask, MaskState::Blocked);
    }

    #[test]
    fn no_collapse_grows_stack() {
        let mut t = fresh();
        t.enter_block(false);
        t.enter_unblock(false);
        let collapsed = t.enter_block(false);
        assert!(!collapsed);
        assert_eq!(t.stack.len(), 3);
        assert_eq!(t.mask_frames, 3);
    }

    #[test]
    fn collapse_keeps_recursion_constant_space() {
        let mut t = fresh();
        t.enter_block(true);
        for _ in 0..1000 {
            t.enter_unblock(true);
            t.enter_block(true);
        }
        assert_eq!(t.stack.len(), 1);
    }

    #[test]
    fn without_collapse_recursion_grows_linearly() {
        let mut t = fresh();
        t.enter_block(false);
        for _ in 0..100 {
            t.enter_unblock(false);
            t.enter_block(false);
        }
        assert_eq!(t.stack.len(), 201);
    }

    #[test]
    fn pending_is_fifo() {
        let mut t = fresh();
        t.pending.push_back(PendingExc {
            exc: Exception::custom("first"),
            notify: None,
            enqueued_step: 0,
        });
        t.pending.push_back(PendingExc {
            exc: Exception::custom("second"),
            notify: None,
            enqueued_step: 0,
        });
        assert_eq!(t.take_pending().unwrap().exc, Exception::custom("first"));
        assert_eq!(t.take_pending().unwrap().exc, Exception::custom("second"));
        assert!(t.take_pending().is_none());
    }

    #[test]
    fn stuck_reason_descriptions() {
        assert!(StuckReason::TakeMVar(MVarId(1))
            .describe()
            .contains("takeMVar"));
        assert!(StuckReason::Sleep { wake_at: 5 }.describe().contains('5'));
        assert!(StuckReason::GetChar.describe().contains("getChar"));
    }
}
