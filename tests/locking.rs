//! Experiment E1 end-to-end: the §5.1 locking race at *both* levels.
//!
//! The formal level (model checker) proves the naive pattern racy and
//! the safe pattern race-free by exhaustive exploration; the runtime
//! level reproduces the same dichotomy statistically across hundreds of
//! seeded schedules. Together they show the paper's central worked
//! example holds in this reproduction.

use conch_combinators::{modify_mvar, modify_mvar_naive};
use conch_runtime::prelude::*;
use conch_semantics::engine::{check_safety, CheckResult, ExploreConfig, State};
use conch_semantics::programs::{lock_scenario, naive_lock_update, safe_lock_update};
use conch_semantics::rules::RuleName;

// ------------------------------------------------------------------
// Formal level
// ------------------------------------------------------------------

#[test]
fn model_checker_finds_the_naive_race() {
    let prog = lock_scenario(|m| naive_lock_update(m, 2));
    let cfg = ExploreConfig::default();
    let result = check_safety(&State::new(prog, ""), &cfg, |s| s.is_deadlocked(&cfg.rules));
    match result {
        CheckResult::Violation { trace, state, .. } => {
            // The counterexample must show the asynchronous delivery and
            // end with an empty MVar and a stuck main thread.
            let rules: Vec<RuleName> = trace.iter().map(|s| s.rule).collect();
            assert!(
                rules.contains(&RuleName::Receive) || rules.contains(&RuleName::Interrupt),
                "counterexample without asynchronous delivery: {rules:?}"
            );
            assert!(
                state.contains("⟨⟩m"),
                "final state should have an empty MVar: {state}"
            );
            assert!(
                state.contains('⊛'),
                "final state should have a stuck thread: {state}"
            );
        }
        CheckResult::Safe { .. } => panic!("naive locking must be racy"),
    }
}

#[test]
fn model_checker_proves_safe_locking() {
    let prog = lock_scenario(|m| safe_lock_update(m, 2));
    let cfg = ExploreConfig::default();
    let result = check_safety(&State::new(prog, ""), &cfg, |s| s.is_deadlocked(&cfg.rules));
    match result {
        CheckResult::Safe { complete, states } => {
            assert!(complete, "exploration truncated at {states} states");
            assert!(states > 50, "suspiciously small state space: {states}");
        }
        CheckResult::Violation { trace, .. } => {
            let rules: Vec<_> = trace.iter().map(|s| s.rule.to_string()).collect();
            panic!("safe locking raced: {rules:?}");
        }
    }
}

#[test]
fn safe_locking_state_space_is_larger_but_safe() {
    // Sanity on the experiment itself: both searches explore nontrivial
    // state spaces (the safe one isn't vacuously safe).
    let cfg = ExploreConfig::default();
    let naive_states = match check_safety(
        &State::new(lock_scenario(|m| naive_lock_update(m, 1)), ""),
        &cfg,
        |_| false,
    ) {
        CheckResult::Safe { states, .. } => states,
        CheckResult::Violation { .. } => unreachable!("predicate is const false"),
    };
    let safe_states = match check_safety(
        &State::new(lock_scenario(|m| safe_lock_update(m, 1)), ""),
        &cfg,
        |_| false,
    ) {
        CheckResult::Safe { states, .. } => states,
        CheckResult::Violation { .. } => unreachable!("predicate is const false"),
    };
    assert!(naive_states > 100);
    assert!(safe_states > 100);
}

// ------------------------------------------------------------------
// Runtime level
// ------------------------------------------------------------------

/// Runs one locking trial; returns whether the MVar survived full.
fn runtime_trial(seed: u64, safe: bool, work: u64) -> bool {
    let cfg = RuntimeConfig::new().random_scheduling(seed).quantum(2);
    let mut rt = Runtime::with_config(cfg);
    let prog = Io::new_mvar(0_i64).and_then(move |m| {
        let body = move |n: i64| Io::compute(work).then(Io::pure(n + 1));
        let update = if safe {
            modify_mvar(m, body)
        } else {
            modify_mvar_naive(m, body)
        };
        let worker = update.catch(|_| Io::unit());
        Io::fork(worker).and_then(move |w| {
            Io::throw_to(w, Exception::kill_thread())
                .then(Io::sleep(1_000_000))
                .then(m.try_take())
                .map(|v| v.is_some())
        })
    });
    rt.run(prog).unwrap()
}

#[test]
fn runtime_reproduces_the_naive_race() {
    let lost = (0..300)
        .filter(|&seed| !runtime_trial(seed, false, 20))
        .count();
    assert!(
        lost > 0,
        "expected at least one schedule to lose the lock with the naive pattern"
    );
}

#[test]
fn runtime_safe_pattern_never_loses_the_lock() {
    for seed in 0..300 {
        assert!(
            runtime_trial(seed, true, 20),
            "seed {seed}: safe pattern lost the lock"
        );
    }
}

#[test]
fn contended_safe_locking_is_exception_safe() {
    // Several workers hammer one counter while a killer sprays
    // exceptions; at quiescence the MVar is full and holds a value
    // consistent with "every completed update applied exactly once".
    for seed in 0..25 {
        let cfg = RuntimeConfig::new().random_scheduling(seed).quantum(3);
        let mut rt = Runtime::with_config(cfg);
        let prog = Io::new_mvar(0_i64).and_then(move |m| {
            let spawn_worker = move || {
                let w =
                    modify_mvar(m, |n| Io::compute(30).then(Io::pure(n + 1))).catch(|_| Io::unit());
                Io::fork(w)
            };
            spawn_worker().and_then(move |w1| {
                spawn_worker().and_then(move |w2| {
                    spawn_worker().and_then(move |w3| {
                        Io::throw_to(w1, Exception::kill_thread())
                            .then(Io::throw_to(w3, Exception::kill_thread()))
                            .then(Io::sleep(1_000_000))
                            .then(m.try_take())
                            .map(move |v| {
                                let _ = w2;
                                v
                            })
                    })
                })
            })
        });
        let v = rt.run(prog).unwrap();
        match v {
            Some(n) => assert!((0..=3).contains(&n), "seed {seed}: impossible count {n}"),
            None => panic!("seed {seed}: lock lost under contention"),
        }
    }
}
