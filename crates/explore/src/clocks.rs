//! Vector-clock happens-before tracking and race detection over one
//! executed run — the analysis half of dynamic partial-order reduction
//! (Flanagan & Godefroid, POPL 2005), adapted to the runtime's
//! [`StepFootprint`] dependence relation.
//!
//! The driver logs every executed *non-invisible* step as an
//! [`ExecEvent`]: thread-local steps commute with everything and can
//! never participate in a race, so they are skipped at the source, and
//! delivery transitions are never logged (the nondeterminism of where a
//! pending exception lands is carried entirely by the explicit
//! `Choice::Deliver` branch points, which the DPOR engine branches both
//! ways unconditionally).
//!
//! Happens-before is the transitive closure of
//!
//! * **program order** — consecutive steps of one thread,
//! * **dependence** — logged steps that may not commute
//!   ([`events_dependent`]), and
//! * **creation** — a forked thread's first step follows its parent's
//!   `fork` ([`Birth`]).
//!
//! # Why not just [`StepFootprint::dependent`]?
//!
//! The footprint relation is the right one for sleep sets, where a
//! conservative answer only costs pruning. For DPOR the cost structure
//! is inverted: every spurious dependence is a spurious race, every
//! spurious race installs a backtrack flag, and every flag spawns a
//! run — conservatism *multiplies* the schedule count instead of
//! shaving the reduction. So the analyzer uses a sharper, tid-aware
//! relation ([`events_dependent`]) that exploits what the log knows and
//! the footprint lattice cannot express:
//!
//! * `Throw(t)` only touches `t`'s pending queue: it is dependent on
//!   every step *of `t`* and on other throws at `t`, but commutes with
//!   unrelated threads. (A throw whose target was not runnable is
//!   already coarsened to `Effect` at the source — the eager
//!   (Interrupt) rule may then cancel a wait on an arbitrary resource.)
//! * `Terminal` of a non-main thread ends that thread and wakes its
//!   sync-throw notifiers: dependent on the steps of any thread that
//!   ever threw at it, and on nothing else. The *main* thread's
//!   terminal stops the world — dependent on everything.
//! * Everything else falls back to the same-resource conflicts of the
//!   footprint relation.
//!
//! Two logged steps in different threads form a **race** when they are
//! dependent but *not* happens-before ordered: executing them in the
//! other order is a genuinely different behaviour that some schedule
//! must cover. For each race the analysis reports the branch point at
//! which the earlier step was chosen (when it was chosen at one — a
//! forced step has no alternatives, and classic DPOR then relies on the
//! race re-appearing at an earlier, branchable point of some other
//! run), so the search can install a backtrack entry there instead of
//! branching on every enabled alternative everywhere.

use conch_runtime::decide::StepFootprint;

/// One logged step of an executed run.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ExecEvent {
    /// The thread that took the step.
    pub tid: u64,
    /// The step's footprint.
    pub fp: StepFootprint,
    /// Index into the run's branch-point record when this step was
    /// chosen at a branch point; `None` for forced steps (sole runnable
    /// thread, preemption-bound or depth-budget forcing).
    pub point: Option<u32>,
    /// For a `throwTo` step only: the target was not runnable when the
    /// throw executed. The eager (Interrupt) rule may then cancel the
    /// target's wait — an effect on whatever resource it was blocked
    /// on, which the analyzer recovers from the target's last logged
    /// event (the blocking operation itself, since blocking operations
    /// are never local).
    pub blocked_target: bool,
}

/// A thread observed for the first time, with the event that created it.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Birth {
    pub tid: u64,
    /// Index into the event log of the parent's `fork` step, when the
    /// step executed immediately before the thread first appeared was a
    /// fork. `None` (no creation edge, which only *over*-approximates
    /// concurrency and so over-explores, never under-explores) otherwise.
    pub parent_event: Option<u32>,
}

/// A reversible race: the branch point of the earlier step, and the
/// thread whose later dependent step should be tried there instead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct RaceFlag {
    /// Index into the run's branch-point record.
    pub point: u32,
    /// The thread of the later step of the race.
    pub later_tid: u64,
    /// Flanagan–Godefroid's E set: threads whose *first* event after
    /// the branch point already happens-before the later step of the
    /// race (always includes `later_tid` itself). When `later_tid` is
    /// not enabled at the branch point, forcing any one enabled witness
    /// makes progress toward the reversal — a far narrower fallback
    /// than flagging every untried sibling.
    pub witnesses: Vec<u64>,
}

/// The result of analyzing one run.
#[derive(Debug, Default)]
pub(crate) struct RaceAnalysis {
    /// Backtrack requests, in log order (deduplicated).
    pub flags: Vec<RaceFlag>,
    /// Total dependent-but-unordered pairs found, including those at
    /// forced (unbranchable) steps — the `races_detected` telemetry.
    pub races: u64,
}

/// A dense vector clock: one component per thread index.
type Clock = Vec<u32>;

fn join(into: &mut Clock, other: &Clock) {
    if into.len() < other.len() {
        into.resize(other.len(), 0);
    }
    for (a, b) in into.iter_mut().zip(other) {
        *a = (*a).max(*b);
    }
}

/// The DPOR dependence relation over logged events of *different*
/// threads (see the module docs for the case-by-case justification).
/// Must over-approximate true non-commutation, or reversals get lost;
/// must stay sharp, or the search degenerates toward full enumeration.
///
/// `main` is the main thread's id (its terminal stops the world);
/// `a_res`/`b_res` name the wait resource a blocked-target throw may
/// cancel (see [`ExecEvent::blocked_target`]).
fn events_dependent(
    a: &ExecEvent,
    b: &ExecEvent,
    a_res: Option<StepFootprint>,
    b_res: Option<StepFootprint>,
    main: u64,
) -> bool {
    use StepFootprint::*;
    debug_assert_ne!(a.tid, b.tid);
    if a.fp == Effect || b.fp == Effect {
        return true;
    }
    if let Throw(t) = a.fp {
        if t.index() == b.tid || matches!(b.fp, Throw(u) if u.index() == t.index()) {
            return true;
        }
    }
    if let Throw(t) = b.fp {
        if t.index() == a.tid {
            return true;
        }
    }
    // A throw at a blocked target may cancel the target's wait on
    // `res`: it conflicts with any step touching that resource.
    if let Some(res) = a_res {
        if !res.independent(b.fp) {
            return true;
        }
    }
    if let Some(res) = b_res {
        if !res.independent(a.fp) {
            return true;
        }
    }
    // The main thread's terminal stops the world: whether another step
    // lands before or after it is observable. A non-main terminal is
    // dependent only with its own thread's history and with throws at
    // it — both covered by the rules above: a thrower's post-wake
    // events are physically ordered after the terminal that woke it,
    // and its pre-throw events conflict (if at all) through their own
    // resources.
    if (a.fp == Terminal && a.tid == main) || (b.fp == Terminal && b.tid == main) {
        return true;
    }
    match (a.fp, b.fp) {
        (Terminal, _) | (_, Terminal) => false,
        (Throw(_), _) | (_, Throw(_)) => false,
        // Oracle steps are never logged (their nondeterminism lives in
        // the explicit arm branch point), but treat them as confined to
        // their thread should one ever appear.
        (Local | Mask | Raise | Oracle, _) | (_, Local | Mask | Raise | Oracle) => false,
        (MVar(x), MVar(y)) => x == y,
        (Alloc, Alloc) | (Console, Console) | (Time, Time) | (Fork, Fork) => true,
        _ => false,
    }
}

/// Detect every race of one executed run.
///
/// This is a deterministic function of the log alone — the cornerstone
/// of the parallel determinism argument in `DESIGN.md`: two workers
/// replaying the same choice prefix produce the same log, hence the
/// same flags, for any interleaving of workers.
pub(crate) fn analyze(events: &[ExecEvent], births: &[Birth]) -> RaceAnalysis {
    let mut analysis = RaceAnalysis::default();
    if events.len() < 2 {
        return analysis;
    }

    // The main thread is the first ever observed; its terminal stops
    // the world. Collect (target, thrower) pairs for the terminal-wake
    // rule of `events_dependent`.
    let main = births.first().map(|b| b.tid).unwrap_or(0);

    // The wait resource a blocked-target throw may cancel: the target's
    // last logged event before the throw is the blocking operation
    // itself (blocking operations are never local). A dead target
    // (Terminal) makes the throw a no-op — no extra dependence; an
    // unnameable wait falls back to Effect (dependent on everything).
    let wait_res: Vec<Option<StepFootprint>> = events
        .iter()
        .enumerate()
        .map(|(n, e)| {
            if !e.blocked_target {
                return None;
            }
            let StepFootprint::Throw(t) = e.fp else {
                return None;
            };
            let target = t.index();
            match events[..n].iter().rev().find(|p| p.tid == target) {
                Some(p) => match p.fp {
                    StepFootprint::Terminal => None,
                    fp
                    @ (StepFootprint::MVar(_) | StepFootprint::Console | StepFootprint::Time) => {
                        Some(fp)
                    }
                    _ => Some(StepFootprint::Effect),
                },
                None => Some(StepFootprint::Effect),
            }
        })
        .collect();

    // Dense thread indices, in order of first appearance in the log.
    let mut tids: Vec<u64> = Vec::new();
    let thread_index = |tids: &mut Vec<u64>, tid: u64| -> usize {
        match tids.iter().position(|&t| t == tid) {
            Some(i) => i,
            None => {
                tids.push(tid);
                tids.len() - 1
            }
        }
    };

    // Per-event post clocks, the running per-thread clocks, and each
    // thread's executed-event count (its own clock component).
    let mut post: Vec<Clock> = Vec::with_capacity(events.len());
    let mut thread_clock: Vec<Clock> = Vec::new();
    let mut thread_seq: Vec<u32> = Vec::new();
    // Per-event sequence number within its thread (1-based).
    let mut seq: Vec<u32> = Vec::with_capacity(events.len());
    // Races at branchable points, as (earlier, later) event indices;
    // flags are built after the pass, once every post clock is final.
    let mut race_pairs: Vec<(usize, usize)> = Vec::new();

    for (n, e) in events.iter().enumerate() {
        let t = thread_index(&mut tids, e.tid);
        if t == thread_clock.len() {
            // First event of this thread: inherit the creating fork's
            // clock, if known.
            let mut c = Clock::new();
            if let Some(b) = births.iter().find(|b| b.tid == e.tid) {
                if let Some(p) = b.parent_event {
                    if let Some(pc) = post.get(p as usize) {
                        c = pc.clone();
                    }
                }
            }
            thread_clock.push(c);
            thread_seq.push(0);
        }

        // Walk earlier events newest-first, folding dependent events'
        // clocks into an accumulator as we go: event `i` races with `n`
        // exactly when it is dependent and *not yet* covered by the
        // accumulated clock — i.e. no chain of later dependent events
        // (or program order) already orders it before `n`.
        let mut acc = thread_clock[t].clone();
        for i in (0..n).rev() {
            let ei = &events[i];
            if ei.tid == e.tid || !events_dependent(ei, e, wait_res[i], wait_res[n], main) {
                continue;
            }
            let ti = thread_index(&mut tids, ei.tid);
            if acc.get(ti).copied().unwrap_or(0) < seq[i] {
                analysis.races += 1;
                if ei.point.is_some() {
                    race_pairs.push((i, n));
                }
            }
            join(&mut acc, &post[i]);
        }

        // Commit: bump this thread's own component and store the post
        // clock.
        thread_seq[t] += 1;
        if acc.len() <= t {
            acc.resize(t + 1, 0);
        }
        acc[t] = thread_seq[t];
        seq.push(thread_seq[t]);
        thread_clock[t] = acc.clone();
        post.push(acc);
    }

    // Build the flags, deduplicated on (point, later_tid), with each
    // flag's witness set: the threads whose first event strictly after
    // the earlier step is happens-before the later step (computed from
    // the now-final post clocks; the later step always witnesses
    // itself).
    for (i, n) in race_pairs {
        let point = events[i]
            .point
            .expect("race pair recorded at a branch point");
        let later_tid = events[n].tid;
        if analysis
            .flags
            .iter()
            .any(|f| f.point == point && f.later_tid == later_tid)
        {
            continue;
        }
        let mut witnesses: Vec<u64> = Vec::new();
        let mut seen: Vec<u64> = Vec::new();
        for (j, ej) in events.iter().enumerate().take(n + 1).skip(i + 1) {
            if seen.contains(&ej.tid) {
                continue;
            }
            seen.push(ej.tid);
            let tj = tids
                .iter()
                .position(|&t| t == ej.tid)
                .expect("every logged thread has an index");
            if post[n].get(tj).copied().unwrap_or(0) >= seq[j] {
                witnesses.push(ej.tid);
            }
        }
        analysis.flags.push(RaceFlag {
            point,
            later_tid,
            witnesses,
        });
    }
    analysis
}

#[cfg(test)]
mod tests {
    use super::*;
    use conch_runtime::ids::MVarId;

    fn ev(tid: u64, fp: StepFootprint, point: Option<u32>) -> ExecEvent {
        ExecEvent {
            tid,
            fp,
            point,
            blocked_target: false,
        }
    }

    fn has_flag(a: &RaceAnalysis, point: u32, later_tid: u64) -> bool {
        a.flags
            .iter()
            .any(|f| f.point == point && f.later_tid == later_tid)
    }

    #[test]
    fn two_console_steps_race() {
        let log = [
            ev(0, StepFootprint::Console, Some(0)),
            ev(1, StepFootprint::Console, None),
        ];
        let a = analyze(&log, &[]);
        assert_eq!(a.races, 1);
        assert_eq!(a.flags.len(), 1);
        assert!(has_flag(&a, 0, 1));
        // The later step always witnesses itself.
        assert_eq!(a.flags[0].witnesses, vec![1]);
    }

    #[test]
    fn program_order_is_not_a_race() {
        let log = [
            ev(0, StepFootprint::Console, Some(0)),
            ev(0, StepFootprint::Console, Some(1)),
        ];
        let a = analyze(&log, &[]);
        assert_eq!(a.races, 0);
        assert!(a.flags.is_empty());
    }

    #[test]
    fn independent_steps_do_not_race() {
        let log = [
            ev(0, StepFootprint::MVar(MVarId::from_index(1)), Some(0)),
            ev(1, StepFootprint::MVar(MVarId::from_index(2)), None),
        ];
        let a = analyze(&log, &[]);
        assert_eq!(a.races, 0);
    }

    #[test]
    fn dependence_chains_order_distant_events() {
        // t0:m1 → t1:m1 (dependent, adjacent) → t1:m2 → t2:m2. The
        // pair (t0:m1, t1:m1) races and (t1:m2, t2:m2) races, but
        // t0:m1 does NOT race with anything in t2: it is ordered before
        // t2:m2 only through... actually t0:m1 and t2:m2 are
        // independent (different MVars), so only the two adjacent
        // races exist.
        let log = [
            ev(0, StepFootprint::MVar(MVarId::from_index(1)), Some(0)),
            ev(1, StepFootprint::MVar(MVarId::from_index(1)), Some(1)),
            ev(1, StepFootprint::MVar(MVarId::from_index(2)), None),
            ev(2, StepFootprint::MVar(MVarId::from_index(2)), Some(2)),
        ];
        let a = analyze(&log, &[]);
        assert_eq!(a.races, 2);
        // Only the first race yields a flag: the earlier event of the
        // second race (t1:m2) was not taken at a branchable point
        // (`point = None`), so there is nothing to reverse there.
        assert_eq!(a.flags.len(), 1);
        assert!(has_flag(&a, 0, 1));
    }

    #[test]
    fn happens_before_via_intermediate_suppresses_race() {
        // t0:console, then t1:effect (dependent on both sides), then
        // t2:console. t0's console is ordered before t2's console via
        // the effect, so only two races are reported: (t0, t1) and
        // (t1, t2).
        let log = [
            ev(0, StepFootprint::Console, Some(0)),
            ev(1, StepFootprint::Effect, Some(1)),
            ev(2, StepFootprint::Console, Some(2)),
        ];
        let a = analyze(&log, &[]);
        assert_eq!(a.races, 2);
        assert!(has_flag(&a, 0, 1));
        assert!(has_flag(&a, 1, 2));
    }

    #[test]
    fn fork_creates_happens_before() {
        // Parent forks (event 0), child prints (event 1), parent prints
        // (event 2). The child's console step inherits the fork's clock,
        // but fork→console is independent... use Effect to force
        // dependence checking: parent's fork then child console and
        // parent console race with each other, but NOT with the fork
        // (fork is independent of console). With the birth edge the
        // child's console still races with the parent's later console.
        let log = [
            ev(0, StepFootprint::Fork, Some(0)),
            ev(1, StepFootprint::Console, Some(1)),
            ev(0, StepFootprint::Console, None),
        ];
        let births = [Birth {
            tid: 1,
            parent_event: Some(0),
        }];
        let a = analyze(&log, &births);
        // console(child) vs console(parent): dependent, concurrent.
        assert_eq!(a.races, 1);
        assert_eq!(a.flags.len(), 1);
        assert!(has_flag(&a, 1, 0));
    }

    #[test]
    fn birth_edge_orders_child_after_forks_past() {
        // t0: console (event 0), t0: fork (event 1), t1 (child):
        // console (event 2). The child inherits the fork's clock, which
        // includes t0's console via program order — no race.
        let log = [
            ev(0, StepFootprint::Console, Some(0)),
            ev(0, StepFootprint::Fork, Some(1)),
            ev(1, StepFootprint::Console, None),
        ];
        let births = [Birth {
            tid: 1,
            parent_event: Some(1),
        }];
        let a = analyze(&log, &births);
        assert_eq!(a.races, 0, "creation edge must order the child");
    }

    #[test]
    fn missing_birth_edge_over_approximates_to_a_race() {
        // Same log, no birth edge: the child's console looks concurrent
        // with the parent's — a spurious race, which is the sound
        // direction (extra exploration, never missed behaviour).
        let log = [
            ev(0, StepFootprint::Console, Some(0)),
            ev(0, StepFootprint::Fork, Some(1)),
            ev(1, StepFootprint::Console, None),
        ];
        let a = analyze(&log, &[]);
        assert_eq!(a.races, 1);
    }
}
