//! Execution statistics.
//!
//! Stats make the paper's informal performance claims measurable:
//! `max_mask_frames` quantifies the §8.1 frame-collapse optimization,
//! `async_deliveries`/`interrupted_blocked` separate the (Receive) and
//! (Interrupt) delivery paths, and `delivery_latency` samples back the
//! §2/§10 async-vs-polling comparison.

/// Counters accumulated by a [`Runtime`](crate::scheduler::Runtime) run.
///
/// # Examples
///
/// ```
/// use conch_runtime::prelude::*;
///
/// let mut rt = Runtime::new();
/// rt.run(Io::compute(100)).unwrap();
/// assert!(rt.stats().steps >= 100);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Stats {
    /// Total interpreter small-steps executed.
    pub steps: u64,
    /// Times the scheduler switched from one thread to another.
    pub context_switches: u64,
    /// Threads created with `forkIO` (excluding the main thread).
    pub forks: u64,
    /// Threads that finished normally.
    pub finished_threads: u64,
    /// Threads that died with an uncaught exception (rule (Throw GC)).
    pub died_threads: u64,
    /// Of `died_threads`, those torn down by an uncaught `KillThread` —
    /// the scheduler's exit-reason classification the actor layer's
    /// `ExitReason::Killed` mirrors.
    pub kill_thread_deaths: u64,
    /// Of `died_threads`, those that died of an uncaught `ExitSignal`,
    /// i.e. a link cascade reached a non-trapping actor.
    pub exit_signal_deaths: u64,
    /// Asynchronous exceptions delivered to *runnable* threads
    /// (rule (Receive)).
    pub async_deliveries: u64,
    /// Asynchronous exceptions delivered to *stuck* threads
    /// (rule (Interrupt)) — i.e. interruptible operations interrupted.
    pub interrupted_blocked: u64,
    /// Synchronous `throw`s raised.
    pub sync_throws: u64,
    /// Exceptions caught by `catch` handlers.
    pub catches: u64,
    /// `throwTo` calls issued (async and sync designs combined).
    pub throwtos: u64,
    /// takeMVar/putMVar operations that completed.
    pub mvar_ops: u64,
    /// Times a thread blocked on an MVar, sleep, console or sync-throw.
    pub blocks: u64,
    /// Deepest frame stack observed on any thread.
    pub max_stack_depth: usize,
    /// Deepest count of mask (block/unblock) frames observed on any
    /// thread's stack — the quantity §8.1's optimization keeps constant.
    pub max_mask_frames: usize,
    /// Block/unblock frame pushes avoided by the §8.1 collapse.
    pub mask_frames_collapsed: u64,
    /// Sum and count of delivery latencies: interpreter steps between a
    /// `throwTo` enqueue and the exception being raised in the target.
    pub delivery_latency_total: u64,
    /// Number of latency samples in `delivery_latency_total`.
    pub delivery_latency_samples: u64,
    /// High-water mark of the thread-table slot count. With slot
    /// reclamation this tracks the peak number of *concurrent* threads,
    /// not the total number ever forked — the bound that keeps a
    /// long-running fork-per-connection server at constant memory.
    pub max_thread_slots: usize,
    /// High-water mark of the sleeper heap length. Eager compaction of
    /// interrupted sleepers keeps this proportional to the number of
    /// *live* sleepers, not the total number of timeouts ever started.
    pub max_sleeper_heap: usize,
    /// Timer-wheel operations performed: sleeper insertions plus
    /// entries popped at expiry (stale entries included — a lazy
    /// cancellation is paid for at its pop). The denominator for the
    /// `timer_ops_per_sec` throughput the benchmarks report.
    pub timer_ops: u64,
    /// Happens-before races detected by a schedule explorer's dynamic
    /// partial-order reduction over runs of this runtime (pairs of
    /// dependent, causally-unordered steps). Zero for plain runs; the
    /// explorer accumulates it here so worker totals merge with the
    /// same commutative rule as every other counter.
    pub races_detected: u64,
    /// Backtrack points installed by dynamic partial-order reduction:
    /// distinct (schedule prefix, alternative) pairs the race analysis
    /// asked the search to explore. Zero for plain runs.
    pub backtracks_installed: u64,
    /// Schedules drawn by a schedule explorer's sampling strategy
    /// (PCT/uniform/swarm). Zero for plain runs and for exhaustive
    /// exploration; under sampling it equals the explored count.
    pub sampled: u64,
    /// Distinct schedules among the sampled ones, read off a shared
    /// hash set at the end of a sampling exploration (not a per-run
    /// counter, so it merges by `max`, like a high-water mark).
    pub distinct_schedules: u64,
}

impl Stats {
    /// Folds `other` into `self`: counters add, high-water marks take the
    /// maximum. This is the aggregation the parallel schedule explorer
    /// uses to combine per-run statistics from many worker-owned
    /// runtimes into one deterministic total — addition and `max` are
    /// commutative and associative, so the merged result is independent
    /// of the order workers finish in.
    pub fn merge(&mut self, other: &Stats) {
        self.steps += other.steps;
        self.context_switches += other.context_switches;
        self.forks += other.forks;
        self.finished_threads += other.finished_threads;
        self.died_threads += other.died_threads;
        self.kill_thread_deaths += other.kill_thread_deaths;
        self.exit_signal_deaths += other.exit_signal_deaths;
        self.async_deliveries += other.async_deliveries;
        self.interrupted_blocked += other.interrupted_blocked;
        self.sync_throws += other.sync_throws;
        self.catches += other.catches;
        self.throwtos += other.throwtos;
        self.mvar_ops += other.mvar_ops;
        self.blocks += other.blocks;
        self.max_stack_depth = self.max_stack_depth.max(other.max_stack_depth);
        self.max_mask_frames = self.max_mask_frames.max(other.max_mask_frames);
        self.mask_frames_collapsed += other.mask_frames_collapsed;
        self.delivery_latency_total += other.delivery_latency_total;
        self.delivery_latency_samples += other.delivery_latency_samples;
        self.max_thread_slots = self.max_thread_slots.max(other.max_thread_slots);
        self.max_sleeper_heap = self.max_sleeper_heap.max(other.max_sleeper_heap);
        self.timer_ops += other.timer_ops;
        self.races_detected += other.races_detected;
        self.backtracks_installed += other.backtracks_installed;
        self.sampled += other.sampled;
        self.distinct_schedules = self.distinct_schedules.max(other.distinct_schedules);
    }

    /// Mean steps between `throwTo` and delivery, if any were delivered.
    pub fn mean_delivery_latency(&self) -> Option<f64> {
        if self.delivery_latency_samples == 0 {
            None
        } else {
            Some(self.delivery_latency_total as f64 / self.delivery_latency_samples as f64)
        }
    }

    /// Total asynchronous deliveries over both paths.
    pub fn total_deliveries(&self) -> u64 {
        self.async_deliveries + self.interrupted_blocked
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_mean_empty_is_none() {
        assert_eq!(Stats::default().mean_delivery_latency(), None);
    }

    #[test]
    fn latency_mean_computes() {
        let s = Stats {
            delivery_latency_total: 30,
            delivery_latency_samples: 3,
            ..Stats::default()
        };
        assert_eq!(s.mean_delivery_latency(), Some(10.0));
    }

    #[test]
    fn merge_adds_counters_and_maxes_high_water_marks() {
        let mut a = Stats {
            steps: 10,
            forks: 1,
            mvar_ops: 4,
            max_stack_depth: 7,
            max_thread_slots: 3,
            delivery_latency_total: 5,
            delivery_latency_samples: 1,
            ..Stats::default()
        };
        let b = Stats {
            steps: 32,
            forks: 2,
            mvar_ops: 1,
            max_stack_depth: 4,
            max_thread_slots: 9,
            delivery_latency_total: 15,
            delivery_latency_samples: 2,
            ..Stats::default()
        };
        let mut ab = a.clone();
        ab.merge(&b);
        assert_eq!(ab.steps, 42);
        assert_eq!(ab.forks, 3);
        assert_eq!(ab.mvar_ops, 5);
        assert_eq!(ab.max_stack_depth, 7);
        assert_eq!(ab.max_thread_slots, 9);
        assert_eq!(ab.mean_delivery_latency(), Some(20.0 / 3.0));

        // Order-independent: b.merge(a) == a.merge(b).
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);

        // Identity: merging the default is a no-op.
        a.merge(&Stats::default());
        assert_eq!(a.steps, 10);
    }

    #[test]
    fn total_deliveries_sums_paths() {
        let s = Stats {
            async_deliveries: 2,
            interrupted_blocked: 3,
            ..Stats::default()
        };
        assert_eq!(s.total_deliveries(), 5);
    }
}
