//! The paper-adjacent extensions: thunks (§8), alerts (§9), semaphores
//! (§4) and supervision (§11).
//!
//! Run with `cargo run --example extensions`.

use conch::prelude::*;
use conch_combinators::{catch_sync, supervise, Sem, Supervised, Thunk};
use conch_runtime::io::for_each;

fn main() {
    thunks_survive_interruption();
    alerts_vs_exceptions();
    semaphore_pool();
    supervised_service();
}

/// §8: a shared thunk forced by a doomed thread reverts; a later forcer
/// re-evaluates and still gets the value. A thunk that fails on its own
/// becomes sticky.
fn thunks_survive_interruption() {
    let mut rt = Runtime::new();
    let prog = Io::new_mvar(0_i64).and_then(|evals| {
        let body = move || {
            conch_combinators::modify_mvar(evals, |n| Io::pure(n + 1))
                .then(Io::compute(2_000))
                .then(Io::pure("expensive result".to_owned()))
        };
        Thunk::suspend(body, move |t| {
            let t2 = t.clone();
            let doomed = t.force().map(|_| ()).catch(|_| Io::unit());
            Io::<ThreadId>::block(Io::fork(doomed)).and_then(move |f| {
                Io::sleep(0)
                    .then(Io::throw_to(f, Exception::kill_thread()))
                    .then(Io::sleep(100))
                    .then(t2.force())
                    .and_then(move |v| evals.take().map(move |e| (v, e)))
            })
        })
    });
    let (v, evals) = rt.run(prog).unwrap();
    println!("[thunk] value after interrupted force: {v:?} (evaluations: {evals})");
    assert_eq!(v, "expensive result");
}

/// §9: `catch_sync` handles the code's own errors but cannot swallow an
/// interruption — a universal handler that is still kill-safe.
fn alerts_vs_exceptions() {
    let mut rt = Runtime::new();
    let prog = Io::new_empty_mvar::<String>().and_then(|out| {
        let worker = catch_sync(Io::<()>::unblock(Io::compute(1_000_000)), |e| {
            println!("[alerts] sync handler saw: {e} (never printed)");
            Io::unit()
        })
        .map(|_| "finished".to_owned())
        .catch(|e| Io::pure(format!("stopped by {e}")))
        .and_then(move |s| out.put(s));
        Io::<ThreadId>::block(Io::fork(worker))
            .and_then(move |w| Io::throw_to(w, Exception::custom("Shutdown")).then(out.take()))
    });
    let fate = rt.run(prog).unwrap();
    println!("[alerts] worker with universal catch_sync: {fate}");
    assert_eq!(fate, "stopped by Shutdown");
}

/// §4: a 3-unit semaphore gates 10 workers; peak concurrency never
/// exceeds 3, and exceptions cannot leak units thanks to `Sem::with`.
fn semaphore_pool() {
    let mut rt = Runtime::new();
    let prog = Sem::new(3).and_then(|sem| {
        Io::new_mvar(0_i64).and_then(move |inside| {
            Io::new_mvar(0_i64).and_then(move |peak| {
                Io::new_mvar(0_i64).and_then(move |done| {
                    for_each(10, move |i| {
                        let job = sem.with(move || {
                            conch_combinators::modify_mvar(inside, |n| Io::pure(n + 1))
                                .then(conch_combinators::with_mvar(inside, move |n| {
                                    conch_combinators::modify_mvar(peak, move |p| {
                                        Io::pure(p.max(n))
                                    })
                                    .then(Io::pure(n))
                                }))
                                .then(Io::sleep(50 + i * 3))
                                .then(conch_combinators::modify_mvar(inside, |n| Io::pure(n - 1)))
                                .then(Io::pure(0_i64))
                        });
                        Io::fork(
                            job.then(conch_combinators::modify_mvar(done, |d| Io::pure(d + 1))),
                        )
                    })
                    .then(wait_for(done, 10))
                    .then(peak.take())
                    .and_then(move |p| sem.available().map(move |a| (p, a)))
                })
            })
        })
    });
    let (peak, available) = rt.run(prog).unwrap();
    println!(
        "[sem]   10 jobs through a 3-unit pool: peak concurrency {peak}, units back: {available}"
    );
    assert!(peak <= 3);
    assert_eq!(available, 3);
}

fn wait_for(done: MVar<i64>, n: i64) -> Io<()> {
    conch_combinators::with_mvar(done, Io::pure).and_then(move |d| {
        if d >= n {
            Io::unit()
        } else {
            Io::sleep(20).then(wait_for(done, n))
        }
    })
}

/// §11: a flaky service under supervision — restarted through its own
/// crashes, but still terminable from outside.
fn supervised_service() {
    let mut rt = Runtime::new();
    let prog = Io::new_mvar(0_i64).and_then(|attempts| {
        supervise(10, move || {
            conch_combinators::modify_mvar_with(attempts, |n| Io::pure((n + 1, n + 1))).and_then(
                |n| {
                    if n < 4 {
                        Io::throw(Exception::error_call(format!("crash #{n}")))
                    } else {
                        Io::pure(n)
                    }
                },
            )
        })
        .and_then(move |outcome| attempts.take().map(move |a| (outcome, a)))
    });
    let (outcome, attempts) = rt.run(prog).unwrap();
    match outcome {
        Supervised::Finished(n) => {
            println!("[super] service came up on attempt {n} (total attempts: {attempts})");
            assert_eq!(n, 4);
        }
        Supervised::GaveUp(e) => panic!("supervision gave up: {e}"),
    }
}
