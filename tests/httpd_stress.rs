//! Experiment S1: the §11 fault-tolerant server under randomized load
//! and randomized scheduling.
//!
//! Invariants checked on every schedule:
//!
//! * every client receives exactly one well-formed HTTP response;
//! * the response class matches the client's behaviour (200 for good,
//!   408 for stallers, 400 for garbage, 500 for crash routes);
//! * after shutdown + drain no worker is still active;
//! * the server process itself never wedges (the run terminates).

use conch_httpd::client::{garbage_client, good_client, stalling_client, trickling_client};
use conch_httpd::http::Response;
use conch_httpd::net::Listener;
use conch_httpd::server::{handler, start, Handler, ServerConfig, StatsSnapshot};
use conch_runtime::io::{for_each, sequence};
use conch_runtime::prelude::*;
use proptest::prelude::*;

fn routes() -> Handler {
    handler(|req| match req.path.as_str() {
        "/crash" => Io::<Response>::throw(Exception::error_call("boom")),
        "/slow" => Io::sleep(1_000_000).map(|_| Response::ok("late")),
        "/work" => Io::compute_returning(2_000, Response::ok("worked")),
        _ => Io::pure(Response::ok("fine")),
    })
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ClientKind {
    Good,
    Crash,
    Slow,
    Work,
    Stall,
    Trickle,
    Garbage,
}

fn spawn_client(kind: ClientKind, l: Listener, report: MVar<i64>) -> Io<()> {
    match kind {
        ClientKind::Good => good_client(l, "/".into(), report),
        ClientKind::Crash => good_client(l, "/crash".into(), report),
        ClientKind::Slow => good_client(l, "/slow".into(), report),
        ClientKind::Work => good_client(l, "/work".into(), report),
        ClientKind::Stall => stalling_client(l, report),
        ClientKind::Trickle => trickling_client(l, "/".into(), 50, report),
        ClientKind::Garbage => garbage_client(l, report),
    }
}

fn expected_status(kind: ClientKind) -> i64 {
    match kind {
        ClientKind::Good | ClientKind::Work | ClientKind::Trickle => 200,
        ClientKind::Crash => 500,
        ClientKind::Slow => 504,
        ClientKind::Stall => 408,
        ClientKind::Garbage => 400,
    }
}

fn kind_strategy() -> impl Strategy<Value = ClientKind> {
    prop_oneof![
        Just(ClientKind::Good),
        Just(ClientKind::Crash),
        Just(ClientKind::Slow),
        Just(ClientKind::Work),
        Just(ClientKind::Stall),
        Just(ClientKind::Trickle),
        Just(ClientKind::Garbage),
    ]
}

fn run_storm(kinds: Vec<ClientKind>, seed: u64) -> (Vec<i64>, Vec<i64>, StatsSnapshot) {
    let cfg = RuntimeConfig::new().random_scheduling(seed).quantum(7);
    let mut rt = Runtime::with_config(cfg);
    let n = kinds.len();
    let server_cfg = ServerConfig {
        read_timeout: 20_000,
        handler_timeout: 100_000,
        ..ServerConfig::default()
    };
    let kinds2 = kinds.clone();
    let prog = Listener::bind().and_then(move |l| {
        start(l, routes(), server_cfg).and_then(move |server| {
            Io::new_empty_mvar::<i64>().and_then(move |report| {
                let kinds3 = kinds2.clone();
                for_each(n as u64, move |i| {
                    Io::fork(spawn_client(kinds3[i as usize], l, report))
                })
                .then(sequence((0..n).map(|_| report.take()).collect()))
                .and_then(move |codes| {
                    server
                        .shutdown()
                        .then(server.drain())
                        .then(server.stats.snapshot())
                        .map(move |snap| (codes, snap))
                })
            })
        })
    });
    let (codes, snap) = rt.run(prog).expect("server run must terminate");
    let expect: Vec<i64> = kinds.iter().map(|k| expected_status(*k)).collect();
    (codes, expect, snap)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn storm_invariants(
        kinds in prop::collection::vec(kind_strategy(), 1..10),
        seed in 0u64..10_000,
    ) {
        let (mut codes, mut expect, snap) = run_storm(kinds.clone(), seed);
        // Every client answered with a well-formed response.
        prop_assert_eq!(codes.len(), expect.len());
        prop_assert!(codes.iter().all(|c| *c > 0), "garbled response: {:?}", codes);
        // The multiset of status codes matches the client mix exactly
        // (responses may arrive in any order).
        codes.sort_unstable();
        expect.sort_unstable();
        prop_assert_eq!(&codes, &expect, "kinds {:?} seed {}", kinds, seed);
        // No leaked workers.
        prop_assert_eq!(snap.active, 0);
        // Counter bookkeeping adds up.
        let total = snap.served + snap.read_timeouts + snap.handler_timeouts
            + snap.handler_errors + snap.parse_errors;
        prop_assert_eq!(total, kinds.len() as i64);
    }
}

#[test]
fn large_storm_deterministic() {
    use ClientKind::*;
    let kinds = vec![
        Good, Crash, Stall, Trickle, Garbage, Work, Slow, Good, Good, Crash, Stall, Work, Trickle,
        Garbage, Good, Work, Good, Crash, Stall, Good,
    ];
    let (mut codes, mut expect, snap) = run_storm(kinds, 42);
    codes.sort_unstable();
    expect.sort_unstable();
    assert_eq!(codes, expect);
    assert_eq!(snap.active, 0);
}

#[test]
fn server_survives_repeated_storms_in_one_runtime() {
    // Reusing a Runtime across runs: each run is a fresh server.
    for seed in 0..5 {
        use ClientKind::*;
        let (codes, expect, snap) = run_storm(vec![Good, Crash, Garbage, Stall], seed);
        let mut c = codes;
        let mut e = expect;
        c.sort_unstable();
        e.sort_unstable();
        assert_eq!(c, e, "seed {seed}");
        assert_eq!(snap.active, 0);
    }
}
