//! Restart supervision — the fault-tolerance idiom of the §11 case
//! study, packaged as a combinator.
//!
//! The paper's server survives crashing handlers by catching and
//! answering 500; a long-lived *service* survives them by being
//! restarted. [`supervise`] runs a body, restarts it when it dies with
//! an exception (up to a budget), and distinguishes — via
//! [`catch_sync`](crate::catch_sync)-style origin inspection — between
//! the body's own failures (restart) and an external `KillThread`
//! (honour it and stop), so a supervised service still shuts down
//! cleanly under `throwTo`/`timeout`.

use conch_runtime::exception::Exception;
use conch_runtime::io::Io;
use conch_runtime::value::{FromValue, IntoValue};
use conch_runtime::RaiseOrigin;

/// The outcome of a supervised run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Supervised<T> {
    /// The body completed with this value (after 0 or more restarts).
    Finished(T),
    /// The restart budget ran out; the last failure is attached.
    GaveUp(Exception),
}

impl<T: IntoValue> IntoValue for Supervised<T> {
    fn into_value(self) -> conch_runtime::Value {
        use conch_runtime::Value;
        match self {
            Supervised::Finished(t) => Value::Right(Box::new(t.into_value())),
            Supervised::GaveUp(e) => Value::Left(Box::new(Value::Exception(e))),
        }
    }
}

impl<T: FromValue> FromValue for Supervised<T> {
    fn from_value(v: conch_runtime::Value) -> Option<Self> {
        use conch_runtime::Value;
        match v {
            Value::Right(t) => Some(Supervised::Finished(T::from_value(*t)?)),
            Value::Left(e) => match *e {
                Value::Exception(e) => Some(Supervised::GaveUp(e)),
                _ => None,
            },
            _ => None,
        }
    }
}

/// Runs `body`, restarting it on *synchronous* failure up to `restarts`
/// times. Asynchronous exceptions (kills, timeouts) pass through with
/// their origin preserved — supervision protects against the service's
/// bugs, not against the supervisor's owner.
///
/// # Examples
///
/// ```
/// use conch_runtime::prelude::*;
/// use conch_combinators::{supervise, Supervised};
///
/// let mut rt = Runtime::new();
/// // A service that crashes twice, then succeeds.
/// let prog = Io::new_mvar(0_i64).and_then(|attempts| {
///     supervise(5, move || {
///         conch_combinators::modify_mvar_with(attempts, |n| Io::pure((n + 1, n + 1)))
///             .and_then(|n| {
///                 if n < 3 {
///                     Io::throw(Exception::error_call("crash"))
///                 } else {
///                     Io::pure(n * 10)
///                 }
///             })
///     })
/// });
/// assert_eq!(rt.run(prog).unwrap(), Supervised::Finished(30));
/// ```
pub fn supervise<T, F>(restarts: u32, body: F) -> Io<Supervised<T>>
where
    T: FromValue + IntoValue + 'static,
    F: Fn() -> Io<T> + 'static,
{
    let body = std::rc::Rc::new(body);
    go(restarts, body)
}

fn go<T>(restarts: u32, body: std::rc::Rc<dyn Fn() -> Io<T>>) -> Io<Supervised<T>>
where
    T: FromValue + IntoValue + 'static,
{
    let run = body();
    run.map(Supervised::Finished)
        .catch_info(move |e, origin| match origin {
            // External interruption: not ours to absorb.
            RaiseOrigin::Async => Io::rethrow(e, origin),
            RaiseOrigin::Sync => {
                if restarts == 0 {
                    Io::pure(Supervised::GaveUp(e))
                } else {
                    go(restarts - 1, body)
                }
            }
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{modify_mvar_with, timeout};
    use conch_runtime::prelude::*;

    fn flaky(attempts: MVar<i64>, succeed_after: i64) -> impl Fn() -> Io<i64> + 'static {
        move || {
            modify_mvar_with(attempts, |n| Io::pure((n + 1, n + 1))).and_then(move |n| {
                if n < succeed_after {
                    Io::throw(Exception::error_call("crash"))
                } else {
                    Io::pure(n)
                }
            })
        }
    }

    #[test]
    fn succeeds_without_restarts() {
        let mut rt = Runtime::new();
        let prog = supervise(3, || Io::pure(7_i64));
        assert_eq!(rt.run(prog).unwrap(), Supervised::Finished(7));
    }

    #[test]
    fn restarts_until_success() {
        let mut rt = Runtime::new();
        let prog = Io::new_mvar(0_i64).and_then(|attempts| supervise(5, flaky(attempts, 4)));
        assert_eq!(rt.run(prog).unwrap(), Supervised::Finished(4));
    }

    #[test]
    fn gives_up_when_budget_exhausted() {
        let mut rt = Runtime::new();
        let prog = Io::new_mvar(0_i64).and_then(|attempts| supervise(2, flaky(attempts, 100)));
        assert_eq!(
            rt.run(prog).unwrap(),
            Supervised::GaveUp(Exception::error_call("crash"))
        );
    }

    #[test]
    fn restart_count_is_exact() {
        let mut rt = Runtime::new();
        let prog = Io::new_mvar(0_i64).and_then(|attempts| {
            supervise(2, flaky(attempts, 100)).then(crate::with_mvar(attempts, Io::pure))
        });
        // 1 initial run + 2 restarts.
        assert_eq!(rt.run(prog).unwrap(), 3);
    }

    #[test]
    fn kill_is_not_absorbed_by_supervision() {
        let mut rt = Runtime::new();
        // A supervised forever-service: crashes on its own regularly, but
        // an external kill must end it despite the generous budget.
        let prog = Io::new_empty_mvar::<String>().and_then(|out| {
            let service = supervise(1_000_000, || {
                Io::<()>::unblock(Io::compute(100))
                    .then(Io::<i64>::throw(Exception::error_call("respawn me")))
            })
            .map(|_| "gave up".to_owned())
            .catch(|e| Io::pure(format!("ended by {e}")))
            .and_then(move |s| out.put(s));
            Io::<ThreadId>::block(Io::fork(service)).and_then(move |s| {
                Io::compute(5_000)
                    .then(Io::throw_to(s, Exception::kill_thread()))
                    .then(out.take())
            })
        });
        assert_eq!(rt.run(prog).unwrap(), "ended by KillThread");
    }

    #[test]
    fn timeout_over_supervision_fires() {
        let mut rt = Runtime::new();
        // Supervision keeps restarting a crashing sleeper; the timeout's
        // kill still terminates the whole supervised tree.
        let prog = timeout(
            500,
            supervise(1_000_000, || {
                Io::sleep(50).then(Io::<i64>::throw(Exception::error_call("again")))
            }),
        );
        assert_eq!(rt.run(prog).unwrap(), None);
        assert_eq!(rt.clock(), 500);
    }
}
