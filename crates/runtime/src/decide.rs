//! Externally-driven scheduling: the hook a model checker drives.
//!
//! Under [`SchedulingPolicy::External`](crate::config::SchedulingPolicy)
//! the runtime makes no scheduling decisions of its own: at every step
//! boundary it asks a [`Decider`] which runnable thread moves next, and
//! — when the chosen thread is unmasked with pending asynchronous
//! exceptions — whether the (Receive) rule fires *now* or is deferred to
//! a later step. Together those two choices span exactly the
//! nondeterminism of the paper's Figure 4/5 transition rules that the
//! scheduler otherwise resolves by round-robin or seeded randomness:
//!
//! * which runnable thread performs the next transition (the scheduling
//!   context choice of §6.2), and
//! * the program point at which a pending `throwTo` lands (the freedom
//!   of rule (Receive), which may fire "at any point").
//!
//! The (Interrupt) rule for *stuck* threads and the §5.3
//! interruptible-operation delivery stay eager: given a schedule, their
//! effect is deterministic, so exposing them as extra choice points
//! would only square the search space without adding behaviours — the
//! moment a stuck thread is interrupted is already fixed by when the
//! `throwTo` step itself is scheduled.
//!
//! Each runnable thread is presented as a [`ThreadView`] carrying a
//! [`StepFootprint`] — a conservative summary of what its *next* step
//! touches. Drivers use footprints for partial-order reduction: two
//! steps whose footprints are independent commute, so schedules that
//! differ only in their order need not both be explored.

use crate::ids::{MVarId, ThreadId};

/// What a thread's next small-step will touch, conservatively.
///
/// Footprints exist so that exploration drivers can prune: a step
/// classified [`StepFootprint::Local`] commutes with every step of every
/// other thread (provided neither thread has pending asynchronous
/// exceptions — a pending queue makes every step a potential delivery
/// point, which is why [`ThreadView::pending`] must be consulted
/// alongside the footprint). Anything the classifier is unsure about
/// must map to a conservative variant such as [`StepFootprint::Effect`],
/// which is treated as dependent on everything.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StepFootprint {
    /// A thread-local step: pushing/popping stack frames, pure
    /// computation, reading its own thread id or masking state.
    Local,
    /// A mask-state change (`block`/`unblock` entry). Local to the
    /// thread, but a delivery-relevant boundary, so kept distinct for
    /// trace readability.
    Mask,
    /// Unwinding: the next step pops a frame with an in-flight
    /// exception. Local to the thread.
    Raise,
    /// The thread's next step completes it (normal return or uncaught
    /// exception at an empty stack). Terminal steps end threads, wake
    /// sync-throw notifiers and — for the main thread — stop the world,
    /// so they are dependent on everything.
    Terminal,
    /// An operation on a specific `MVar`.
    MVar(MVarId),
    /// Allocation of a fresh `MVar` (ids are allocated globally, so two
    /// allocations conflict with each other but nothing else).
    Alloc,
    /// Console input or output.
    Console,
    /// The virtual clock: `sleep` or reading `now`.
    Time,
    /// Forking a thread (thread ids are allocated globally, so two forks
    /// conflict with each other).
    Fork,
    /// `throwTo`/`throwToSync` aimed at the given thread. Mutates the
    /// target's state, so dependent on everything the target does.
    Throw(ThreadId),
    /// A native [`Io::effect`](crate::io::Io::effect) closure: arbitrary
    /// observable side effects, dependent on everything.
    Effect,
    /// A scheduler-visible nondeterministic choice
    /// ([`Io::choose`](crate::io::Io::choose)): the oracle the fault
    /// plane branches on. The step itself touches only the choosing
    /// thread (the arm lands in its own continuation), so it commutes
    /// with every other thread's non-exception step — but it is a real
    /// branch point, never fast-forwarded: *which* arm was taken is a
    /// separate choice recorded by the driver.
    Oracle,
}

impl StepFootprint {
    /// Is this step safe to *fast-forward* — run ahead of every other
    /// enabled step without creating a branch point? True only for
    /// [`StepFootprint::Local`]: a local step neither touches shared
    /// state nor changes anything delivery-relevant about its own
    /// thread, so it commutes even with a `throwTo` aimed at it.
    ///
    /// [`StepFootprint::Mask`] and [`StepFootprint::Raise`] are *not*
    /// fast-forwardable, although they touch only their own thread: they
    /// change the thread's mask state or handler stack, and an exception
    /// thrown *before* versus *after* such a step lands against a
    /// different handler configuration — the orders are observably
    /// different (this is precisely the §7.1 window `bracket` closes by
    /// moving the acquire inside `block`).
    pub fn is_local(self) -> bool {
        matches!(self, StepFootprint::Local)
    }

    /// Conservative independence: `true` only when the two steps
    /// provably commute (run in either order, they reach the same
    /// machine state up to run-queue order and produce the same
    /// observable trace). Callers must additionally check that neither
    /// thread has pending asynchronous exceptions.
    pub fn independent(self, other: StepFootprint) -> bool {
        use StepFootprint::*;
        match (self, other) {
            // Terminal / Throw / Effect conflict with everything — in
            // particular a throw conflicts even with the target's local
            // steps, since it opens a delivery point at the target.
            (Terminal | Throw(_) | Effect, _) | (_, Terminal | Throw(_) | Effect) => false,
            // Steps confined to their own thread commute with any other
            // thread's non-exception step. An Oracle step is confined
            // too: the chosen arm flows into the choosing thread's own
            // continuation only (the choice itself is a driver-recorded
            // branch point, not a shared-state effect).
            (Local | Mask | Raise | Oracle, _) | (_, Local | Mask | Raise | Oracle) => true,
            // Same-resource conflicts.
            (MVar(a), MVar(b)) => a != b,
            (Alloc, Alloc) => false,
            (Console, Console) => false,
            (Time, Time) => false,
            (Fork, Fork) => false,
            // Distinct resources commute.
            (MVar(_) | Alloc | Console | Time | Fork, MVar(_) | Alloc | Console | Time | Fork) => {
                true
            }
        }
    }

    /// The complement of [`independent`](StepFootprint::independent):
    /// `true` when the two steps may not commute. This is the dependence
    /// relation a happens-before race detector (dynamic partial-order
    /// reduction) closes over: two executed steps are causally ordered
    /// exactly when a chain of dependent steps connects them, and a
    /// dependent, *unordered* pair is a race whose reversal must be
    /// explored.
    pub fn dependent(self, other: StepFootprint) -> bool {
        !self.independent(other)
    }
}

/// A runnable thread as shown to a [`Decider`].
#[derive(Debug, Clone, Copy)]
pub struct ThreadView {
    /// The thread's id.
    pub tid: ThreadId,
    /// What its next step will touch.
    pub footprint: StepFootprint,
    /// How many asynchronous exceptions are queued for it.
    pub pending: usize,
    /// Whether delivery is currently masked (`block`).
    pub masked: bool,
}

/// The external scheduling driver consulted under
/// [`SchedulingPolicy::External`](crate::config::SchedulingPolicy).
///
/// Implementations must be deterministic functions of their own state
/// and the arguments: the same sequence of calls with the same
/// arguments must yield the same answers, or replay guarantees break.
pub trait Decider {
    /// Picks the next thread to run one step, as an index into
    /// `runnable` (non-empty). `previous` is the thread that executed
    /// the immediately preceding step, whether or not it is still
    /// runnable — drivers use it for preemption bounding.
    fn choose_thread(&mut self, runnable: &[ThreadView], previous: Option<ThreadId>) -> usize;

    /// The chosen thread is unmasked with `view.pending > 0` queued
    /// exceptions: deliver the first one at this step (`true`, the
    /// (Receive) rule fires) or defer it and let the thread take its
    /// ordinary step (`false`)?
    fn deliver_now(&mut self, view: ThreadView) -> bool;

    /// The chosen thread's step is an [`Io::choose`](crate::io::Io::choose)
    /// oracle with `arms` alternatives: pick the arm (must be
    /// `< arms`). The default takes arm 0 — the "nothing unusual
    /// happens" convention — so deciders written before the fault plane
    /// keep their behaviour.
    fn choose_arm(&mut self, view: ThreadView, arms: u8) -> u8 {
        let _ = (view, arms);
        0
    }
}

/// A trivial [`Decider`]: always the first runnable thread, always
/// deliver pending exceptions immediately. Gives the same behaviour as
/// round-robin with a quantum of 1.
#[derive(Debug, Default, Clone)]
pub struct FirstRunnable;

impl Decider for FirstRunnable {
    fn choose_thread(&mut self, _runnable: &[ThreadView], _previous: Option<ThreadId>) -> usize {
        0
    }

    fn deliver_now(&mut self, _view: ThreadView) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::tid;

    #[test]
    fn locals_are_independent_of_non_exception_steps() {
        let benign = [
            StepFootprint::Local,
            StepFootprint::Mask,
            StepFootprint::Raise,
            StepFootprint::MVar(MVarId(1)),
            StepFootprint::Alloc,
            StepFootprint::Console,
            StepFootprint::Time,
            StepFootprint::Fork,
            StepFootprint::Oracle,
        ];
        for f in benign {
            assert!(StepFootprint::Local.independent(f));
            assert!(f.independent(StepFootprint::Local));
            assert!(StepFootprint::Oracle.independent(f));
            assert!(f.independent(StepFootprint::Oracle));
        }
        // But a throw conflicts even with local steps: it opens a
        // delivery point at its target.
        let throw = StepFootprint::Throw(tid(2));
        for f in [
            StepFootprint::Local,
            StepFootprint::Mask,
            StepFootprint::Raise,
        ] {
            assert!(!throw.independent(f));
            assert!(!f.independent(throw));
        }
    }

    #[test]
    fn only_plain_local_steps_fast_forward() {
        assert!(StepFootprint::Local.is_local());
        assert!(!StepFootprint::Mask.is_local());
        assert!(!StepFootprint::Raise.is_local());
        assert!(!StepFootprint::Effect.is_local());
        // An oracle is confined to its thread but is a real branch
        // point: fast-forwarding it would hide the arm choice.
        assert!(!StepFootprint::Oracle.is_local());
    }

    #[test]
    fn conflicts_are_symmetric_and_conservative() {
        let m1 = StepFootprint::MVar(MVarId(1));
        let m2 = StepFootprint::MVar(MVarId(2));
        assert!(!m1.independent(m1));
        assert!(m1.independent(m2));
        assert!(m2.independent(m1));
        assert!(!StepFootprint::Console.independent(StepFootprint::Console));
        assert!(!StepFootprint::Effect.independent(m1));
        assert!(!m1.independent(StepFootprint::Terminal));
        assert!(!StepFootprint::Fork.independent(StepFootprint::Fork));
        assert!(StepFootprint::Fork.independent(m1));
    }

    #[test]
    fn dependent_is_the_complement_of_independent() {
        let m1 = StepFootprint::MVar(MVarId(1));
        let m2 = StepFootprint::MVar(MVarId(2));
        assert!(m1.dependent(m1));
        assert!(!m1.dependent(m2));
        assert!(StepFootprint::Effect.dependent(StepFootprint::Local));
        assert!(StepFootprint::Throw(tid(1)).dependent(StepFootprint::Mask));
    }
}
