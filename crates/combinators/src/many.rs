//! N-ary generalizations of the §7.2 symmetric combinators.
//!
//! The paper closes §10 noting that higher-level speculative mechanisms
//! (QLisp's kill-a-whole-tree, parallel-or) "should be possible to build
//! … using our more primitive construct". These are those builds:
//! [`race_many`] is n-ary parallel-or (first of *n* wins, the rest are
//! killed), [`map_concurrently`] runs a batch and fails fast, killing
//! the surviving siblings if any branch raises.
//!
//! Both follow the §7.2 recipe exactly: fork under `block`, children
//! `catch (unblock …)` into a shared result `MVar`, the parent's wait
//! loop forwards parent-directed exceptions to every child, and the
//! wind-down `throwTo`s are the non-interruptible asynchronous kind.

use conch_runtime::exception::Exception;
use conch_runtime::ids::ThreadId;
use conch_runtime::io::Io;
use conch_runtime::mvar::MVar;
use conch_runtime::value::{FromValue, IntoValue, Value};

/// Tags a child's completion: Pair(index, Left err | Right value).
fn completion(idx: usize, res: Result<Value, Exception>) -> Value {
    let payload = match res {
        Ok(v) => Value::Right(Box::new(v)),
        Err(e) => Value::Left(Box::new(Value::Exception(e))),
    };
    Value::Pair(Box::new(Value::Int(idx as i64)), Box::new(payload))
}

fn split_completion(v: Value) -> (usize, Result<Value, Exception>) {
    match v {
        Value::Pair(idx, payload) => {
            let idx = idx.as_int().expect("completion index") as usize;
            match *payload {
                Value::Right(v) => (idx, Ok(*v)),
                Value::Left(e) => match *e {
                    Value::Exception(e) => (idx, Err(e)),
                    other => panic!("malformed completion error: {other}"),
                },
                other => panic!("malformed completion payload: {other}"),
            }
        }
        other => panic!("malformed completion: {other}"),
    }
}

fn spawn_children<T>(m: MVar<Value>, actions: Vec<Io<T>>) -> Io<Vec<ThreadId>>
where
    T: FromValue + IntoValue + 'static,
{
    fn go<T>(
        m: MVar<Value>,
        mut rest: std::vec::IntoIter<Io<T>>,
        idx: usize,
        mut acc: Vec<ThreadId>,
    ) -> Io<Vec<ThreadId>>
    where
        T: FromValue + IntoValue + 'static,
    {
        match rest.next() {
            None => Io::pure(acc),
            Some(a) => {
                let child = Io::unblock(a)
                    .and_then(move |r: T| m.put(completion(idx, Ok(r.into_value()))))
                    .catch(move |e| m.put(completion(idx, Err(e))));
                Io::fork(child).and_then(move |tid| {
                    acc.push(tid);
                    go(m, rest, idx + 1, acc)
                })
            }
        }
    }
    go(m, actions.into_iter(), 0, Vec::new())
}

/// The parent wait loop of §7.2, n-ary: forward parent-directed
/// exceptions to every child and resume waiting.
fn await_completion(m: MVar<Value>, tids: std::rc::Rc<Vec<ThreadId>>) -> Io<Value> {
    m.take().catch(move |e| {
        fn forward(tids: std::rc::Rc<Vec<ThreadId>>, i: usize, e: Exception) -> Io<()> {
            if i >= tids.len() {
                Io::unit()
            } else {
                let t = tids[i];
                Io::throw_to(t, e.clone()).and_then(move |_| forward(tids, i + 1, e))
            }
        }
        let tids2 = std::rc::Rc::clone(&tids);
        forward(std::rc::Rc::clone(&tids), 0, e).and_then(move |_| await_completion(m, tids2))
    })
}

fn kill_all(tids: std::rc::Rc<Vec<ThreadId>>) -> Io<()> {
    fn go(tids: std::rc::Rc<Vec<ThreadId>>, i: usize) -> Io<()> {
        if i >= tids.len() {
            Io::unit()
        } else {
            let t = tids[i];
            Io::throw_to(t, Exception::kill_thread()).and_then(move |_| go(tids, i + 1))
        }
    }
    go(tids, 0)
}

/// Runs all actions concurrently; returns `(index, value)` of the first
/// to finish and kills the rest. An exception from any child before a
/// winner exists propagates (after killing the others).
///
/// # Panics
///
/// Panics if `actions` is empty.
///
/// # Examples
///
/// ```
/// use conch_runtime::prelude::*;
/// use conch_combinators::race_many;
///
/// let mut rt = Runtime::new();
/// let prog = race_many(vec![
///     Io::sleep(300).map(|_| 'a'),
///     Io::sleep(100).map(|_| 'b'),
///     Io::sleep(200).map(|_| 'c'),
/// ]);
/// assert_eq!(rt.run(prog).unwrap(), (1, 'b'));
/// ```
pub fn race_many<T>(actions: Vec<Io<T>>) -> Io<(i64, T)>
where
    T: FromValue + IntoValue + 'static,
{
    assert!(!actions.is_empty(), "race_many of nothing can never finish");
    Io::new_empty_mvar::<Value>().and_then(move |m| {
        Io::block(spawn_children(m, actions).and_then(move |tids| {
            let tids = std::rc::Rc::new(tids);
            let tids2 = std::rc::Rc::clone(&tids);
            await_completion(m, tids).and_then(move |c| {
                let (idx, res) = split_completion(c);
                kill_all(tids2).then(match res {
                    Ok(v) => Io::pure((idx as i64, T::from_value_or_panic(v))),
                    Err(e) => Io::throw(e),
                })
            })
        }))
    })
}

/// Runs all actions concurrently and collects every result, in input
/// order. If any child raises, the others are killed and the exception
/// propagates (fail-fast `mapConcurrently`).
///
/// # Examples
///
/// ```
/// use conch_runtime::prelude::*;
/// use conch_combinators::map_concurrently;
///
/// let mut rt = Runtime::new();
/// let prog = map_concurrently(vec![
///     Io::sleep(30).map(|_| 1_i64),
///     Io::sleep(10).map(|_| 2_i64),
///     Io::sleep(20).map(|_| 3_i64),
/// ]);
/// assert_eq!(rt.run(prog).unwrap(), vec![1, 2, 3]);
/// ```
pub fn map_concurrently<T>(actions: Vec<Io<T>>) -> Io<Vec<T>>
where
    T: FromValue + IntoValue + 'static,
{
    let n = actions.len();
    if n == 0 {
        return Io::pure(Vec::new());
    }
    Io::new_empty_mvar::<Value>().and_then(move |m| {
        Io::block(spawn_children(m, actions).and_then(move |tids| {
            let tids = std::rc::Rc::new(tids);
            collect(m, tids, vec![None; n], n)
        }))
    })
}

fn collect<T>(
    m: MVar<Value>,
    tids: std::rc::Rc<Vec<ThreadId>>,
    mut slots: Vec<Option<Value>>,
    mut remaining: usize,
) -> Io<Vec<T>>
where
    T: FromValue + IntoValue + 'static,
{
    if remaining == 0 {
        let out: Vec<T> = slots
            .into_iter()
            .map(|s| T::from_value_or_panic(s.expect("all slots filled")))
            .collect();
        return Io::pure(out);
    }
    let tids2 = std::rc::Rc::clone(&tids);
    await_completion(m, tids).and_then(move |c| {
        let (idx, res) = split_completion(c);
        match res {
            Err(e) => kill_all(tids2).then(Io::throw(e)),
            Ok(v) => {
                slots[idx] = Some(v);
                remaining -= 1;
                collect(m, tids2, slots, remaining)
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use conch_runtime::prelude::*;

    #[test]
    fn race_many_first_wins() {
        let mut rt = Runtime::new();
        let prog = race_many(vec![
            Io::sleep(100).map(|_| 10_i64),
            Io::sleep(10).map(|_| 20_i64),
            Io::sleep(50).map(|_| 30_i64),
        ]);
        assert_eq!(rt.run(prog).unwrap(), (1, 20));
    }

    #[test]
    fn race_many_losers_are_killed() {
        let mut rt = Runtime::new();
        let prog = Io::new_mvar(0_i64).and_then(|progress| {
            let slowpoke = move |d: u64| {
                Io::sleep(d)
                    .then(modify_progress(progress))
                    .map(move |_| d as i64)
            };
            race_many(vec![slowpoke(10), slowpoke(10_000), slowpoke(20_000)]).and_then(move |w| {
                Io::sleep(100_000)
                    .then(crate::with_mvar(progress, Io::pure))
                    .map(move |p| (w, p))
            })
        });
        fn modify_progress(p: MVar<i64>) -> Io<()> {
            crate::modify_mvar(p, |n| Io::pure(n + 1))
        }
        let ((idx, _), progress) = rt.run(prog).unwrap();
        assert_eq!(idx, 0);
        assert_eq!(progress, 1, "losers must not have progressed");
    }

    #[test]
    fn race_many_propagates_child_exception() {
        let mut rt = Runtime::new();
        let prog = race_many(vec![
            Io::sleep(100).map(|_| 1_i64),
            Io::sleep(10).then(Io::<i64>::throw(Exception::error_call("child 1 died"))),
        ]);
        assert_eq!(
            rt.run(prog),
            Err(RunError::Uncaught(Exception::error_call("child 1 died")))
        );
    }

    #[test]
    fn race_many_single_element() {
        let mut rt = Runtime::new();
        let prog = race_many(vec![Io::pure(9_i64)]);
        assert_eq!(rt.run(prog).unwrap(), (0, 9));
    }

    #[test]
    #[should_panic(expected = "race_many of nothing")]
    fn race_many_empty_panics() {
        let _ = race_many(Vec::<Io<i64>>::new());
    }

    #[test]
    fn map_concurrently_preserves_order() {
        let mut rt = Runtime::new();
        let prog = map_concurrently(vec![
            Io::sleep(30).map(|_| 1_i64),
            Io::sleep(20).map(|_| 2_i64),
            Io::sleep(10).map(|_| 3_i64),
            Io::sleep(40).map(|_| 4_i64),
        ]);
        assert_eq!(rt.run(prog).unwrap(), vec![1, 2, 3, 4]);
        // They really ran concurrently: total time = max, not sum.
        assert_eq!(rt.clock(), 40);
    }

    #[test]
    fn map_concurrently_fails_fast() {
        let mut rt = Runtime::new();
        let prog = Io::new_mvar(0_i64).and_then(|done| {
            map_concurrently(vec![
                Io::sleep(5).then(Io::<i64>::throw(Exception::error_call("bad"))),
                Io::sleep(10_000)
                    .then(crate::modify_mvar(done, |n| Io::pure(n + 1)))
                    .map(|_| 0),
            ])
            .map(|_| -1_i64)
            .catch(|_| Io::pure(7))
            .and_then(move |r| {
                Io::sleep(100_000)
                    .then(crate::with_mvar(done, Io::pure))
                    .map(move |d| (r, d))
            })
        });
        let (r, survivors_done) = rt.run(prog).unwrap();
        assert_eq!(r, 7);
        assert_eq!(survivors_done, 0, "sibling must have been killed");
    }

    #[test]
    fn map_concurrently_empty_is_empty() {
        let mut rt = Runtime::new();
        let prog = map_concurrently(Vec::<Io<i64>>::new());
        assert_eq!(rt.run(prog).unwrap(), Vec::<i64>::new());
    }

    #[test]
    fn parent_exception_forwarded_to_all_children() {
        let mut rt = Runtime::new();
        // A racer over three blocked children; an outside thread throws
        // to the racer; all children receive it and the race ends with
        // that exception.
        let prog = Io::new_empty_mvar::<i64>().and_then(|never| {
            Io::new_empty_mvar::<String>().and_then(move |out| {
                let racer = race_many(vec![never.take(), never.take(), never.take()])
                    .map(|_| "won".to_owned())
                    .catch(|e| Io::pure(format!("racer got {e}")))
                    .and_then(move |s| out.put(s));
                Io::fork(racer).and_then(move |r| {
                    Io::sleep(100)
                        .then(Io::throw_to(r, Exception::custom("outside")))
                        .then(out.take())
                })
            })
        });
        assert_eq!(rt.run(prog).unwrap(), "racer got outside");
    }
}
