//! The §5.1 locking race, demonstrated empirically (experiment E1's
//! runtime half).
//!
//! Run with `cargo run --example lock_safety`.
//!
//! A worker updates an `MVar`-protected counter while a killer thread
//! fires `KillThread` at it. We sweep hundreds of seeded schedules for
//! three variants:
//!
//! * the paper's **naive** pattern (`takeMVar`/`catch`/`putMVar`), which
//!   has race windows where the lock is lost;
//! * the paper's **safe** pattern (`block` + `unblock` + interruptible
//!   `takeMVar`), which has none;
//! * the **masked** variant (§7.4) for mutable structures.
//!
//! The tally prints how often each variant lost the lock.

use conch::prelude::*;
use conch_combinators::{modify_mvar_masked, modify_mvar_naive};
use conch_runtime::io::Io;

/// One trial: returns `true` if the lock survived (MVar full afterwards).
fn trial(seed: u64, which: Variant) -> bool {
    let cfg = RuntimeConfig::new().random_scheduling(seed).quantum(2);
    let mut rt = Runtime::with_config(cfg);
    let prog = Io::new_mvar(0_i64).and_then(move |m| {
        let update = move || -> Io<()> {
            let body = |n: i64| Io::compute(20).then(Io::pure(n + 1));
            match which {
                Variant::Naive => modify_mvar_naive(m, body),
                Variant::Safe => modify_mvar(m, body),
                Variant::Masked => modify_mvar_masked(m, body),
            }
        };
        let worker = update().catch(|_| Io::unit());
        Io::fork(worker).and_then(move |w| {
            Io::throw_to(w, Exception::kill_thread())
                .then(Io::sleep(100_000)) // let the dust settle
                .then(m.try_take())
                .map(|contents| contents.is_some())
        })
    });
    rt.run(prog).unwrap()
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Variant {
    Naive,
    Safe,
    Masked,
}

fn main() {
    const TRIALS: u64 = 400;
    let mut lost = [0_u64; 3];
    for seed in 0..TRIALS {
        for (i, v) in [Variant::Naive, Variant::Safe, Variant::Masked]
            .into_iter()
            .enumerate()
        {
            if !trial(seed, v) {
                lost[i] += 1;
            }
        }
    }
    println!("schedules swept: {TRIALS} (random scheduling, quantum 2)");
    println!(
        "naive  (§5.1): lock lost in {:>3}/{} schedules  <- the race the paper describes",
        lost[0], TRIALS
    );
    println!(
        "safe   (§5.2): lock lost in {:>3}/{} schedules  <- block/unblock closes every window",
        lost[1], TRIALS
    );
    println!(
        "masked (§7.4): lock lost in {:>3}/{} schedules  <- update runs to completion",
        lost[2], TRIALS
    );

    assert!(
        lost[0] > 0,
        "expected the naive pattern to lose the lock on some schedule"
    );
    assert_eq!(lost[1], 0, "the safe pattern must never lose the lock");
    assert_eq!(lost[2], 0, "the masked pattern must never lose the lock");
    println!("verdict: reproduction of §5.1 confirmed — only the naive pattern races");
}
