//! Load-generation clients for the case study and the benchmarks.
//!
//! Each client style exercises a different failure mode of the paper's
//! server: well-behaved requests, stalled (slowloris) connections, slow
//! trickled requests, and garbage.

use conch_runtime::io::Io;
use conch_runtime::mvar::MVar;

use crate::http::Request;
use crate::net::Listener;

/// What a client run observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClientOutcome {
    /// Response with this status code.
    Status(u16),
    /// The response could not be parsed.
    Garbled,
}

/// Extracts the status code from a response's status line.
pub fn status_of(resp: &str) -> ClientOutcome {
    resp.strip_prefix("HTTP/1.0 ")
        .and_then(|rest| rest.split_whitespace().next())
        .and_then(|code| code.parse().ok())
        .map_or(ClientOutcome::Garbled, ClientOutcome::Status)
}

/// A well-behaved client: connect, send `GET path`, await the response,
/// record the status into `report`.
pub fn good_client(l: Listener, path: String, report: MVar<i64>) -> Io<()> {
    l.connect().and_then(move |conn| {
        conn.send_text(Request::get(path).render())
            .then(conn.read_response())
            .and_then(move |resp| match status_of(&resp) {
                ClientOutcome::Status(s) => report.put(i64::from(s)),
                ClientOutcome::Garbled => report.put(-1),
            })
    })
}

/// A stalling client: sends a partial request and never finishes. The
/// server's read timeout should answer 408.
pub fn stalling_client(l: Listener, report: MVar<i64>) -> Io<()> {
    l.connect().and_then(move |conn| {
        conn.send_text("GET /stall HTTP")
            .then(conn.read_response())
            .and_then(move |resp| match status_of(&resp) {
                ClientOutcome::Status(s) => report.put(i64::from(s)),
                ClientOutcome::Garbled => report.put(-1),
            })
    })
}

/// A trickling client: sends the whole request, but `gap` µs per
/// character. Served iff the total transfer fits the read budget.
pub fn trickling_client(l: Listener, path: String, gap: u64, report: MVar<i64>) -> Io<()> {
    l.connect().and_then(move |conn| {
        conn.send_text_slowly(Request::get(path).render(), gap)
            .then(conn.read_response())
            .and_then(move |resp| match status_of(&resp) {
                ClientOutcome::Status(s) => report.put(i64::from(s)),
                ClientOutcome::Garbled => report.put(-1),
            })
    })
}

/// A garbage client: sends bytes that are not HTTP.
pub fn garbage_client(l: Listener, report: MVar<i64>) -> Io<()> {
    l.connect().and_then(move |conn| {
        conn.send_text("%%% not http at all %%%\r\n\r\n")
            .then(conn.read_response())
            .and_then(move |resp| match status_of(&resp) {
                ClientOutcome::Status(s) => report.put(i64::from(s)),
                ClientOutcome::Garbled => report.put(-1),
            })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::Response;
    use crate::server::{handler, start, ServerConfig};
    use conch_runtime::prelude::*;

    fn echo_handler() -> crate::server::Handler {
        handler(|req| Io::pure(Response::ok(req.path)))
    }

    fn run_client(
        mk: impl FnOnce(Listener, MVar<i64>) -> Io<()> + 'static,
        cfg: ServerConfig,
    ) -> i64 {
        let mut rt = Runtime::new();
        let prog = Listener::bind().and_then(move |l| {
            start(l, echo_handler(), cfg).and_then(move |_server| {
                Io::new_empty_mvar::<i64>()
                    .and_then(move |report| Io::fork(mk(l, report)).then(report.take()))
            })
        });
        rt.run(prog).unwrap()
    }

    #[test]
    fn good_client_gets_200() {
        let code = run_client(
            |l, r| good_client(l, "/ok".into(), r),
            ServerConfig::default(),
        );
        assert_eq!(code, 200);
    }

    #[test]
    fn stalling_client_gets_408() {
        let code = run_client(stalling_client, ServerConfig::default());
        assert_eq!(code, 408);
    }

    #[test]
    fn garbage_client_gets_400() {
        let code = run_client(garbage_client, ServerConfig::default());
        assert_eq!(code, 400);
    }

    #[test]
    fn trickling_client_served_within_budget() {
        let code = run_client(
            |l, r| trickling_client(l, "/t".into(), 10, r),
            ServerConfig {
                read_timeout: 100_000,
                ..ServerConfig::default()
            },
        );
        assert_eq!(code, 200);
    }

    #[test]
    fn trickling_client_times_out_beyond_budget() {
        let code = run_client(
            |l, r| trickling_client(l, "/t".into(), 1_000, r),
            ServerConfig {
                read_timeout: 2_000,
                ..ServerConfig::default()
            },
        );
        assert_eq!(code, 408);
    }

    #[test]
    fn status_parser() {
        assert_eq!(
            status_of("HTTP/1.0 200 OK\r\n\r\nx"),
            ClientOutcome::Status(200)
        );
        assert_eq!(status_of("garbage"), ClientOutcome::Garbled);
    }
}
