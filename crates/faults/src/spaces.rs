//! Canonical fault × schedule spaces, shared by the explorer test
//! suite, the benchmark harness and `examples/fault_storm.rs` — one
//! definition, so the numbers CI pins and the numbers the docs quote
//! are the same program.
//!
//! Each space is a self-contained `Io` program: it starts an httpd
//! server, lets an [`Injector::Explore`] turn every injection site into
//! an explorer branch point, then audits the server with the quiescent
//! observation protocol. The returned triple is
//! `(fault episode code, healthy-probe status, counter snapshot)`;
//! [`holds_invariants`] is the property every schedule must satisfy.
//!
//! ## The observation protocol
//!
//! The audit tail of every space is `shutdown_sync → drain → snapshot`,
//! in that order:
//!
//! 1. **`shutdown_sync`** (§9 synchronous `throwTo`) returns only once
//!    the acceptor is dead, so `accepted` is final;
//! 2. **`drain`** waits for `active == 0` — and because a worker's
//!    outcome is recorded in the *same transaction* as its active
//!    decrement, drain returning means the books are closed;
//! 3. **`snapshot`** reads every counter in one atomic take/put.
//!
//! Weaker protocols are genuinely unsound — the explorer exhibited
//! torn-counter interleavings for both the asynchronous-shutdown and
//! the snapshot-before-drain variants while this module was built.

use conch_actors::{
    child_spec, spawn_actor_on, spawn_supervisor, ActorRef, ChildSpec, Mailbox, Strategy,
    Supervisor, SupervisorSpec,
};
use conch_httpd::client::{status_of, ClientOutcome};
use conch_httpd::http::{Request, Response};
use conch_httpd::net::{Connection, FrameConnection, Listener};
use conch_httpd::pool::{start_pooled, PoolConfig, PooledServer};
use conch_httpd::server::{handler, start, Server, ServerConfig, StatsSnapshot};
use conch_httpd::shard::{start_sharded, ShardConfig, ShardedListener, ShardedServer};
use conch_runtime::exception::Exception;
use conch_runtime::io::Io;
use conch_runtime::mvar::MVar;
use conch_runtime::value::Value;

use crate::client::{faulty_client, prepared_connection};
use crate::fault::ConnFault;
use crate::inject::Injector;
use crate::storm::{kill_storm, kill_storm_pooled, kill_storm_targets};

fn server_config() -> ServerConfig {
    ServerConfig {
        read_timeout: 1_000,
        handler_timeout: 5_000,
        ..ServerConfig::default()
    }
}

/// Sends a healthy request after the fault episode, then audits the
/// counters (see the module docs for why the order is load-bearing).
fn probe_and_snapshot(
    l: Listener,
    server: Server,
    fault_code: i64,
) -> Io<(i64, i64, StatsSnapshot)> {
    prepared_connection(ConnFault::None, "/probe").and_then(move |conn: Connection| {
        l.inject(conn)
            .then(conn.read_response())
            .and_then(move |resp| {
                let probe_code = match status_of(&resp) {
                    ClientOutcome::Status(code) => i64::from(code),
                    ClientOutcome::Garbled => -2,
                };
                server
                    .shutdown_sync()
                    .then(server.drain())
                    .then(server.stats.snapshot())
                    .map(move |snap| (fault_code, probe_code, snap))
            })
    })
}

/// One faulty visit — all five [`ConnFault`] arms (none / drop / stall
/// / mid-request close / garbage) as explorer branches — then the
/// healthy probe and the audit.
pub fn conn_fault_space() -> Io<(i64, i64, StatsSnapshot)> {
    Listener::bind().and_then(|l| {
        start(
            l,
            handler(|_| Io::pure(Response::ok("hi"))),
            server_config(),
        )
        .and_then(move |server| {
            faulty_client(l, &Injector::Explore, "/x".into(), 50_000)
                .and_then(move |code| probe_and_snapshot(l, server, code))
        })
    })
}

/// A stalled connection parks a worker in its read; a `KillThread`
/// storm (each strike an explorer branch) may kill it mid-read; then
/// the healthy probe and the audit.
pub fn storm_space() -> Io<(i64, i64, StatsSnapshot)> {
    Listener::bind().and_then(|l| {
        start(
            l,
            handler(|_| Io::pure(Response::ok("hi"))),
            server_config(),
        )
        .and_then(move |server| {
            prepared_connection(ConnFault::Stall, "/x").and_then(move |conn| {
                // The sleep parks this thread (a blocked switch is
                // free under preemption bounding), guaranteeing the
                // worker is forked and parked in its read — well
                // within the stall's read-timeout budget — before
                // the storm picks targets.
                l.inject(conn)
                    .then(Io::sleep(100))
                    .then(kill_storm(&server, &Injector::Explore))
                    .and_then(move |kills| probe_and_snapshot(l, server, kills))
            })
        })
    })
}

/// The recovery invariants every schedule of every space must satisfy:
///
/// * **liveness after faults** — the healthy probe is answered `200`
///   whatever fault fired and wherever the kills landed;
/// * **conservation / no leaks** — the audited snapshot satisfies
///   [`StatsSnapshot::conserved`]: `active == 0` (drain terminated, no
///   leaked worker or connection) and every accepted connection
///   recorded exactly one outcome.
pub fn holds_invariants(out: &(i64, i64, StatsSnapshot)) -> Result<(), String> {
    let (_, probe_code, snap) = out;
    if *probe_code != 200 {
        return Err(format!(
            "healthy probe after the fault episode got {probe_code}, want 200"
        ));
    }
    if !snap.conserved() {
        return Err(format!("counters not conserved: {snap:?}"));
    }
    Ok(())
}

/// The [`storm_space`] episode against the supervised worker pool
/// (`conch_httpd::pool`): a stalled connection parks the pool's single
/// worker in its read, then a synchronous `KillThread` storm — each
/// strike an explorer branch — targets the worker *and the pool
/// supervisor itself*. Whatever subset dies, the supervision tree must
/// restart enough of itself that the healthy probe is answered `200`
/// and the counters conserve ([`holds_invariants`], unchanged: the
/// pool commits outcomes through the same `finish` transaction).
pub fn supervised_pool_space() -> Io<(i64, i64, StatsSnapshot)> {
    let cfg = PoolConfig {
        workers: 1,
        queue_capacity: 2,
        max_restarts: 4,
        window: 1_000_000,
        server: server_config(),
    };
    Listener::bind().and_then(move |l| {
        start_pooled(l, handler(|_| Io::pure(Response::ok("hi"))), cfg).and_then(move |server| {
            prepared_connection(ConnFault::Stall, "/x").and_then(move |conn| {
                l.inject(conn)
                    .then(Io::sleep(100))
                    .then(kill_storm_pooled(&server, &Injector::Explore))
                    .and_then(move |kills| pooled_probe_and_snapshot(l, server, kills))
            })
        })
    })
}

/// [`probe_and_snapshot`] for the pooled server — same observation
/// protocol, then a full tree teardown so no supervisor or worker
/// outlives the audit.
fn pooled_probe_and_snapshot(
    l: Listener,
    server: PooledServer,
    fault_code: i64,
) -> Io<(i64, i64, StatsSnapshot)> {
    prepared_connection(ConnFault::None, "/probe").and_then(move |conn: Connection| {
        l.inject(conn)
            .then(conn.read_response())
            .and_then(move |resp| {
                let probe_code = match status_of(&resp) {
                    ClientOutcome::Status(code) => i64::from(code),
                    ClientOutcome::Garbled => -2,
                };
                server
                    .shutdown_sync()
                    .then(server.drain())
                    .then(server.stats.snapshot())
                    .and_then(move |snap| {
                        server
                            .stop_sync()
                            .map(move |_| (fault_code, probe_code, snap))
                    })
            })
    })
}

// -- the sharded plane -----------------------------------------------------

/// A `KillThread` between two pipelined requests on the sharded plane
/// (`conch_httpd::shard`): shard 0 receives one keep-alive connection
/// carrying **two** pipelined requests in a single FIN-terminated
/// frame; the handler sleeps mid-request, so a storm strike (struck or
/// spared — an explorer branch) can land while the *first* request is
/// in flight and the second sits parsed-but-unaccepted in the read
/// buffer. The per-request accounting must not lose either request
/// from the law, on any schedule:
///
/// * strike lands mid-serve → the in-flight request is recorded
///   `Killed` in the same transaction pattern as the classic server,
///   and the buffered second request — never parsed into the law —
///   simply dies with the connection;
/// * strike lands at a blocking point with nothing mid-flight → the
///   top-level catch tears the connection down with zero requests
///   accepted;
/// * no strike → both requests are served.
///
/// The audit then probes the *other* shard (liveness: shard 1 must be
/// unaffected) and checks the conservation law on the **quiescent
/// aggregate** (`shutdown_sync → drain → aggregate`) — the sharded
/// observation protocol, certified on every schedule.
pub fn sharded_pipeline_space() -> Io<(i64, i64, StatsSnapshot)> {
    let cfg = ShardConfig {
        read_timeout: 1_000,
        handler_timeout: 5_000,
    };
    ShardedListener::bind(2, 2).and_then(move |l| {
        start_sharded(
            &l,
            handler(|_| Io::sleep(1_000).then(Io::pure(Response::ok("hi")))),
            cfg,
        )
        .and_then(move |server| {
            FrameConnection::open().and_then(move |conn| {
                conn.send_frame_fin(Request::get("/a").render().repeat(2))
                    .then(l.inject(0, conn))
                    // Park main so the shard-0 handler is forked and
                    // mid-first-request (asleep in the handler) before
                    // the storm picks targets.
                    .then(Io::sleep(100))
                    .then(server.worker_ids())
                    .and_then({
                        let server = server.clone();
                        move |tids| {
                            kill_storm_targets(tids, &Injector::Explore, true)
                                .and_then(move |kills| sharded_probe_and_snapshot(l, server, kills))
                        }
                    })
            })
        })
    })
}

/// [`probe_and_snapshot`] for the sharded plane: the healthy probe goes
/// to shard 1 (the shard the fault episode never touched), then the
/// quiescent-aggregate audit — `shutdown_sync` over every acceptor,
/// `drain` until every shard's `active` is zero, and the per-shard
/// snapshots summed with `StatsSnapshot::merge`.
fn sharded_probe_and_snapshot(
    l: ShardedListener,
    server: ShardedServer,
    fault_code: i64,
) -> Io<(i64, i64, StatsSnapshot)> {
    FrameConnection::open().and_then(move |probe| {
        probe
            .send_frame_fin(Request::get("/probe").render())
            .then(l.inject(1, probe))
            .then(probe.read_response_frame())
            .and_then(move |resp| {
                let probe_code = match status_of(&resp) {
                    ClientOutcome::Status(code) => i64::from(code),
                    ClientOutcome::Garbled => -2,
                };
                server
                    .shutdown_sync()
                    .then(server.drain())
                    .then(server.aggregate())
                    .map(move |snap| (fault_code, probe_code, snap))
            })
    })
}

// -- the actor space -------------------------------------------------------

/// A supervised counter actor under fault injection: one
/// [`Io::choose`] site picks the episode — nothing, a poison message
/// (synchronous crash), an untrappable kill, or a wedge (the actor
/// sleeps on a slow message) followed by a kill. After the episode a
/// probe message must still be served (the supervisor restarted the
/// child on the *same* mailbox and state cell, so the counter reaches
/// exactly 4 — state transactionality across restarts), the
/// supervisor is shut down, and the audit checks that the child was
/// reaped (no orphans) and that the mailbox lost no capacity to the
/// kills (both `try_send`s into the emptied 2-slot mailbox must fit).
///
/// Returns `[counter, child-exit code, fit1, fit2, arm]`;
/// [`holds_actor_invariants`] pins the first four.
pub fn actor_space() -> Io<Vec<i64>> {
    Io::new_mvar(0_i64).and_then(|state| {
        Mailbox::<i64>::new(2).and_then(move |inbox| {
            let spec = SupervisorSpec::new(Strategy::OneForOne)
                .intensity(3, 1_000_000)
                .child(counter_child(state, inbox));
            spawn_supervisor(spec).and_then(move |sup| {
                inbox
                    .send(1)
                    .then(wait_counter(state, 2))
                    .then(Io::choose(4))
                    .and_then(move |arm| {
                        episode(sup, inbox, arm)
                            .then(inbox.send(1)) // the probe: +2, whoever serves it
                            .then(wait_counter(state, 4))
                            .and_then(move |n| {
                                current_child(sup).and_then(move |child| {
                                    sup.shutdown_sync().then(wait_child_dead(child)).and_then(
                                        move |code| {
                                            inbox.try_send(9).and_then(move |fit1| {
                                                inbox.try_send(9).map(move |fit2| {
                                                    vec![
                                                        n,
                                                        code,
                                                        i64::from(fit1),
                                                        i64::from(fit2),
                                                        arm,
                                                    ]
                                                })
                                            })
                                        },
                                    )
                                })
                            })
                    })
            })
        })
    })
}

/// The fault episode for [`actor_space`], by injector arm.
fn episode(sup: Supervisor, inbox: Mailbox<i64>, arm: i64) -> Io<()> {
    match arm {
        // Poison: the child crashes synchronously on the message.
        1 => inbox.send(-1),
        // Kill: untrappable asynchronous death of the current child.
        2 => current_child(sup).and_then(|child| child.kill_sync()),
        // Wedge then kill: the child parks in a long sleep first, so
        // the kill lands mid-computation rather than at the recv wait.
        3 => inbox
            .send(-2)
            .then(Io::sleep(50))
            .then(current_child(sup).and_then(|child| child.kill_sync())),
        _ => Io::unit(),
    }
}

/// The child spec for [`actor_space`]: `-1` crashes, `-2` wedges
/// (sleeps 5 000 virtual microseconds), anything else adds 2 to the
/// shared counter in one masked transaction.
fn counter_child(state: MVar<i64>, inbox: Mailbox<i64>) -> ChildSpec {
    child_spec(move || {
        spawn_actor_on(inbox, move |mb: Mailbox<i64>| counter_loop(mb, state)).map(|a| a.erase())
    })
}

fn counter_loop(mb: Mailbox<i64>, state: MVar<i64>) -> Io<()> {
    mb.recv().and_then(move |msg| match msg {
        -1 => Io::throw(Exception::error_call("poison")),
        -2 => Io::sleep(5_000).then(counter_loop(mb, state)),
        _ => Io::block(state.take().and_then(move |n| state.put(n + 2)))
            .then(counter_loop(mb, state)),
    })
}

fn wait_counter(state: MVar<i64>, at_least: i64) -> Io<i64> {
    Io::block(state.take().and_then(move |n| state.put(n).map(move |_| n))).and_then(move |n| {
        if n >= at_least {
            Io::pure(n)
        } else {
            Io::sleep(50).then(wait_counter(state, at_least))
        }
    })
}

/// The current child incarnation (polls: restarts swap it briefly).
fn current_child(sup: Supervisor) -> Io<ActorRef<Value>> {
    sup.child_refs().and_then(move |kids| match kids.first() {
        Some(kid) => Io::pure(*kid),
        None => Io::sleep(50).then(current_child(sup)),
    })
}

/// Polls until the child records an exit reason; 1 = killed, the code
/// the supervisor's shutdown sweep must produce.
fn wait_child_dead(child: ActorRef<Value>) -> Io<i64> {
    child.exit_reason().and_then(move |r| match r {
        Some(conch_runtime::exception::ExitReason::Killed) => Io::pure(1),
        Some(_) => Io::pure(2),
        None => Io::sleep(50).then(wait_child_dead(child)),
    })
}

/// The supervision invariants for [`actor_space`], on every schedule:
/// the counter reaches exactly 4 (restarts preserve the state cell and
/// the unconsumed queue), the child is reaped as `Killed` by the
/// supervisor's shutdown (no orphans), and the emptied mailbox still
/// has its full 2-slot capacity (kills leak no slots).
pub fn holds_actor_invariants(out: &[i64]) -> Result<(), String> {
    match out {
        [4, 1, 1, 1, _] => Ok(()),
        other => Err(format!(
            "want [counter=4, killed=1, fit=1, fit=1, _], got {other:?}"
        )),
    }
}

// -- the cross-shard kill space --------------------------------------------

/// A single-runtime model of the parallel plane's cross-shard
/// `throwTo` relay (`conch_runtime::parallel`): on the wall-clock
/// plane a kill crosses shards as a channel message and is delivered
/// by the destination runtime at its next epoch barrier — a step
/// boundary, exactly like a host-side `throwTo`. This space models
/// that drain protocol with explorer-visible pieces so DPOR can close
/// the schedule space the real OS-thread plane cannot enumerate:
///
/// * the **victim** is a worker on the "destination shard" — it arms
///   itself (bit 16), works (a sleep), and records completion (bit 1),
///   all inside a catch whose handler records the kill (bit 2) only if
///   the work never completed;
/// * the **relay** is the destination shard's barrier drain: it takes
///   one envelope off the channel `MVar` and, for a kill envelope,
///   waits for the victim to be armed and then delivers the `throwTo`;
///   bit 8 records the drain completing;
/// * the **arm** (an [`Io::choose`] site) picks the episode: `0` — no
///   kill crosses the channel; `1` — a kill races the victim's work;
///   `2` — a *late* kill: the victim is already done, a new tenant
///   thread (bit 4) has been forked — eligible to reuse the victim's
///   slot — and the relayed `throwTo` still names the old [`ThreadId`].
///   Generation tags make the stale delivery a no-op on every
///   schedule: the tenant must survive.
///
/// Returns `[outcome bits, arm]`;
/// [`holds_cross_shard_invariants`] pins the admissible combinations.
pub fn cross_shard_kill_space() -> Io<Vec<i64>> {
    Io::new_mvar(0_i64).and_then(|log| {
        Io::new_empty_mvar::<i64>().and_then(move |chan| {
            Io::fork(relay_victim(log)).and_then(move |victim| {
                Io::fork(kill_relay(chan, victim, log)).and_then(move |_relay| {
                    Io::choose(3).and_then(move |arm| {
                        let episode = match arm {
                            // A kill envelope races the victim's work.
                            1 => chan.put(1),
                            // The late kill: only after the victim has
                            // finished does the tenant fork and the
                            // (now stale) envelope cross the channel.
                            2 => wait_bits(log, 1)
                                .then(Io::fork(set_bit(log, 4)).map(|_| ()))
                                .then(chan.put(1)),
                            // No kill — the relay still drains.
                            _ => chan.put(0),
                        };
                        let settled = match arm {
                            // Either the work completed or the kill
                            // was recorded — plus the relay's drain.
                            1 => wait_either(log, 1, 2).then(wait_bits(log, 8)),
                            2 => wait_bits(log, 1 | 4 | 8),
                            _ => wait_bits(log, 1 | 8),
                        };
                        episode
                            .then(settled)
                            .then(Io::block(
                                log.take().and_then(move |n| log.put(n).map(move |_| n)),
                            ))
                            .map(move |bits| vec![bits, arm])
                    })
                })
            })
        })
    })
}

/// The victim worker: arm (bit 16), work (a sleep), complete (bit 1) —
/// under a catch that records a mid-work kill as bit 2. The handler
/// checks bit 1 first so a kill landing *after* completion (still
/// inside the catch scope) cannot double-record the outcome.
fn relay_victim(log: MVar<i64>) -> Io<()> {
    set_bit(log, 16)
        .then(Io::sleep(100))
        .then(set_bit(log, 1))
        .catch(move |_| {
            Io::block(
                log.take()
                    .and_then(move |n| log.put(if n & 1 != 0 { n } else { n | 2 })),
            )
        })
}

/// The destination shard's barrier drain: one envelope, then bit 8.
/// A kill envelope waits for the victim to be armed (its catch frame
/// is then live) before the step-boundary `throwTo` — mirroring how
/// the real relay only delivers at an epoch barrier, never mid-step.
fn kill_relay(chan: MVar<i64>, victim: conch_runtime::ids::ThreadId, log: MVar<i64>) -> Io<()> {
    chan.take()
        .and_then(move |code| {
            if code == 1 {
                wait_bits(log, 16).then(Io::throw_to(
                    victim,
                    Exception::error_call("cross-shard kill"),
                ))
            } else {
                Io::unit()
            }
        })
        .then(set_bit(log, 8))
}

/// ORs `bit` into the log in one masked transaction.
fn set_bit(log: MVar<i64>, bit: i64) -> Io<()> {
    Io::block(log.take().and_then(move |n| log.put(n | bit)))
}

/// Polls until every bit of `mask` is set.
fn wait_bits(log: MVar<i64>, mask: i64) -> Io<()> {
    Io::block(log.take().and_then(move |n| log.put(n).map(move |_| n))).and_then(move |n| {
        if n & mask == mask {
            Io::unit()
        } else {
            Io::sleep(50).then(wait_bits(log, mask))
        }
    })
}

/// Polls until at least one of the two bits is set.
fn wait_either(log: MVar<i64>, a: i64, b: i64) -> Io<()> {
    Io::block(log.take().and_then(move |n| log.put(n).map(move |_| n))).and_then(move |n| {
        if n & a != 0 || n & b != 0 {
            Io::unit()
        } else {
            Io::sleep(50).then(wait_either(log, a, b))
        }
    })
}

/// The cross-shard kill invariants, on every schedule. Bits: 16 armed,
/// 8 relay drained, 4 tenant survived, 2 killed mid-work, 1 completed.
///
/// * arm 0 (no kill): armed + completed + drained, nothing else;
/// * arm 1 (racing kill): exactly one of completed/killed — the
///   outcome is never lost and never double-counted;
/// * arm 2 (stale kill): the victim completed, the relayed `throwTo`
///   named a dead (possibly reused) slot, and the tenant survived it.
pub fn holds_cross_shard_invariants(out: &[i64]) -> Result<(), String> {
    const ARMED: i64 = 16;
    const DRAINED: i64 = 8;
    const TENANT: i64 = 4;
    const KILLED: i64 = 2;
    const DONE: i64 = 1;
    match out {
        [bits, 0] if *bits == ARMED | DRAINED | DONE => Ok(()),
        [bits, 1] if *bits == ARMED | DRAINED | DONE || *bits == ARMED | DRAINED | KILLED => Ok(()),
        [bits, 2] if *bits == ARMED | DRAINED | TENANT | DONE => Ok(()),
        other => Err(format!("inadmissible cross-shard outcome {other:?}")),
    }
}
