//! Exhaustive small-bound verification of the paper's claims with the
//! schedule explorer (`conch-explore`).
//!
//! Where `tests/conformance.rs` checks single schedules and
//! `tests/chaos.rs` samples random ones, these tests *enumerate* every
//! schedule (thread interleaving × asynchronous-delivery point) of small
//! programs and assert properties over all of them:
//!
//! * §5.3 — `block (takeMVar m)` on a **full** `MVar` is atomic: there
//!   is no delivery point between committing to the take and completing
//!   it, on any schedule.
//! * §7.1 — `bracket` releases on every path; a deliberately broken
//!   variant (acquire outside `block`) is caught, its failing schedule
//!   shrunk to a minimal certificate and replayed deterministically in a
//!   second `Runtime`.
//! * §7.2 — `both` and `either`/`race` behave correctly under every
//!   interleaving at small sizes.

use std::cell::RefCell;
use std::collections::BTreeSet;
use std::rc::Rc;

use conch_combinators::{both, bracket, race, Either};
use conch_explore::{props, ExploreConfig, Explorer, RunOutcome, Schedule, TestCase};
use conch_runtime::prelude::*;

// ---------------------------------------------------------------------
// §5.3: block (takeMVar m) on a full MVar admits no interruption.
// ---------------------------------------------------------------------

/// A sibling sprays a kill at the main thread while it performs
/// `block (takeMVar m >> putChar 't')` on a *full* `MVar`. Returns the
/// guarded result (`-1` if the kill was caught) and whether the value is
/// still in the `MVar` afterwards.
fn block_take_program() -> Io<(i64, bool)> {
    Io::new_mvar(7_i64).and_then(|m| {
        Io::my_thread_id().and_then(move |me| {
            Io::fork(Io::throw_to(me, Exception::kill_thread()))
                .then(Io::block(
                    m.take().and_then(|v| Io::put_char('t').map(move |_| v)),
                ))
                .catch(|_| Io::pure(-1))
                .and_then(move |r| m.try_take().map(move |left| (r, left.is_some())))
        })
    })
}

#[test]
fn block_take_on_full_mvar_is_atomic_on_every_schedule() {
    let outputs = Rc::new(RefCell::new(BTreeSet::new()));
    let result = Explorer::new().check(|| {
        let outputs = Rc::clone(&outputs);
        TestCase::new(
            block_take_program(),
            move |out: &RunOutcome<(i64, bool)>| {
                outputs.borrow_mut().insert(out.output.clone());
                match &out.result {
                    Ok((_, still_full)) => {
                        let took = out.output.contains('t');
                        if took && *still_full {
                            Err("'t' printed but the MVar still holds a value".into())
                        } else if !took && !*still_full {
                            // The §5.3 violation: the value was consumed but the
                            // take's continuation never ran — the exception landed
                            // *inside* the supposedly atomic block(takeMVar).
                            Err("MVar drained without completing block(takeMVar)".into())
                        } else {
                            Ok(())
                        }
                    }
                    // The kill may land after the guarded region (past the catch);
                    // that is outside this property's scope.
                    Err(RunError::Uncaught(_)) => Ok(()),
                    Err(e) => Err(e.to_string()),
                }
            },
        )
    });
    let report = result.expect_pass();
    assert!(
        report.complete,
        "the §5.3 check must be exhaustive, got {report}"
    );
    // Coverage sanity: we really did see both the kill-before-take and the
    // take-completed classes of schedule.
    let outputs = outputs.borrow();
    assert!(
        outputs.contains("") && outputs.contains("t"),
        "expected both outcome classes, saw {outputs:?}"
    );
}

// ---------------------------------------------------------------------
// §7.1: bracket releases on every path; a broken variant is caught,
// shrunk and replayed.
// ---------------------------------------------------------------------

/// A correct bracket: acquire ('a') inside `block`, release ('r') on
/// both the normal and the exceptional path.
fn good_bracket() -> Io<i64> {
    bracket(
        Io::put_char('a').map(|_| 0_i64),
        |_| Io::put_char('r'),
        |_| Io::pure(1_i64),
    )
}

/// The seeded bug: the acquire runs *outside* `block`, so an exception
/// landing between the acquire and the block leaks the resource — the
/// exact mistake §7.1's `bracket` exists to prevent.
fn broken_bracket() -> Io<i64> {
    Io::put_char('a').map(|_| 0_i64).and_then(|_| {
        Io::block(
            Io::unblock(Io::pure(1_i64))
                .catch(|e| Io::put_char('r').then(Io::throw(e)))
                .and_then(|r| Io::put_char('r').map(move |_| r)),
        )
    })
}

/// Fork a worker running `body` and immediately aim a kill at it; the
/// settling sleep returns only once the worker has finished or died.
fn killed_worker(body: Io<i64>) -> Io<()> {
    Io::fork(body.map(|_| ()).catch(|_| Io::unit()))
        .and_then(|w| Io::throw_to(w, Exception::kill_thread()))
        .then(Io::sleep(1))
}

#[test]
fn bracket_releases_on_every_schedule() {
    let result = Explorer::new().check(|| {
        TestCase::new(
            killed_worker(good_bracket()),
            props::releases_balanced('a', 'r'),
        )
    });
    let report = result.expect_pass();
    assert!(
        report.complete,
        "bracket check must be exhaustive: {report}"
    );
}

#[test]
fn broken_bracket_race_is_found_shrunk_and_replayed() {
    let explorer = Explorer::new();
    let result = explorer.check(|| {
        TestCase::new(
            killed_worker(broken_bracket()),
            props::releases_balanced('a', 'r'),
        )
    });
    let failure = result.expect_fail();
    assert!(
        failure.message.contains("unbalanced"),
        "{}",
        failure.message
    );
    assert!(
        failure.schedule.len() <= failure.original.len(),
        "shrinking must not grow the certificate"
    );

    // The certificate survives serialization…
    let text = failure.schedule.to_string();
    let parsed: Schedule = text.parse().expect("certificate text parses");
    assert_eq!(parsed, failure.schedule);

    // …and replays deterministically in a *second* Runtime: same leak,
    // twice in a row, from nothing but the choice list.
    let replayer = Explorer::new();
    let mut outputs = Vec::new();
    for _ in 0..2 {
        let (outcome, check) = replayer.replay(
            TestCase::new(
                killed_worker(broken_bracket()),
                props::releases_balanced('a', 'r'),
            ),
            &parsed,
        );
        assert!(check.is_err(), "replay must reproduce the violation");
        outputs.push(outcome.output);
    }
    assert_eq!(outputs[0], outputs[1], "replay must be deterministic");
    assert_eq!(
        outputs[0].matches('a').count(),
        outputs[0].matches('r').count() + 1,
        "the minimal schedule exhibits exactly the leaked acquire"
    );

    // Minimality: deleting any single choice from the shrunk schedule
    // makes the failure disappear.
    for i in 0..failure.schedule.len() {
        let mut candidate = failure.schedule.clone();
        candidate.choices.remove(i);
        let (_, check) = replayer.replay(
            TestCase::new(
                killed_worker(broken_bracket()),
                props::releases_balanced('a', 'r'),
            ),
            &candidate,
        );
        assert!(
            check.is_ok(),
            "choice {i} of certificate {} is redundant",
            failure.schedule
        );
    }
}

// ---------------------------------------------------------------------
// §7.2: both / either, exhaustively at small sizes.
// ---------------------------------------------------------------------

#[test]
fn both_returns_the_pair_on_every_schedule() {
    let outputs = Rc::new(RefCell::new(BTreeSet::new()));
    let result = Explorer::new().check(|| {
        let outputs = Rc::clone(&outputs);
        TestCase::new(
            both(
                Io::put_char('x').map(|_| 1_i64),
                Io::put_char('y').map(|_| 2_i64),
            ),
            move |out: &RunOutcome<(i64, i64)>| {
                outputs.borrow_mut().insert(out.output.clone());
                match &out.result {
                    Ok((1, 2)) => Ok(()),
                    other => Err(format!("expected Ok((1, 2)), got {other:?}")),
                }
            },
        )
    });
    let report = result.expect_pass();
    assert!(report.complete, "both() check must be exhaustive: {report}");
    let outputs = outputs.borrow();
    assert!(
        outputs.contains("xy") && outputs.contains("yx"),
        "both child orders must be reachable, saw {outputs:?}"
    );
}

#[test]
fn either_always_commits_to_one_winner() {
    let winners = Rc::new(RefCell::new(BTreeSet::new()));
    // race() is the biggest small program here (two children, a result
    // MVar, kills for both losers): its full space is ~10k schedules,
    // just over the default cap.
    let cfg = ExploreConfig {
        max_schedules: 50_000,
        ..ExploreConfig::default()
    };
    let result = Explorer::with_config(cfg).check(|| {
        let winners = Rc::clone(&winners);
        TestCase::new(
            race(Io::pure('l'), Io::pure('r')),
            move |out: &RunOutcome<Either<char, char>>| match &out.result {
                Ok(Either::Left('l')) => {
                    winners.borrow_mut().insert('l');
                    Ok(())
                }
                Ok(Either::Right('r')) => {
                    winners.borrow_mut().insert('r');
                    Ok(())
                }
                other => Err(format!("race produced {other:?}")),
            },
        )
    });
    let report = result.expect_pass();
    assert!(report.complete, "race() check must be exhaustive: {report}");
    let winners = winners.borrow();
    assert!(
        winners.contains(&'l') && winners.contains(&'r'),
        "both winners must be reachable, saw {winners:?}"
    );
}

// ---------------------------------------------------------------------
// §7.2 / ids: re-delivery to a dead-and-reused thread slot is a no-op.
// ---------------------------------------------------------------------

/// The `race`/`both` parent loop (`await_result`) re-throws any
/// asynchronous exception it receives to *both* children and resumes
/// waiting. Those children may long since have finished — and their
/// thread slots may have been reclaimed and handed to unrelated threads.
/// This program engineers exactly that hazard: the race's children
/// finish instantly, a bystander thread is forked afterwards (so on many
/// schedules it *reuses* a child's slot), and an outside poke hits the
/// racing parent mid-wait. The re-thrown poke then targets the
/// children's stale `ThreadId`s; only the generation tag in the id
/// stands between it and friendly fire against the bystander.
///
/// Returns (racer outcome, bystander token). The bystander must deliver
/// its token on every schedule — if a stale re-throw could land, the
/// bystander dies, the token never arrives, and the run deadlocks.
fn stale_redelivery_program() -> Io<(i64, i64)> {
    Io::new_empty_mvar::<i64>().and_then(|done| {
        Io::new_empty_mvar::<i64>().and_then(move |token| {
            // The poke may land anywhere in the racer — inside the race
            // or between the race and the `done.put` — so the catch
            // covers the put too and reports via the non-blocking
            // `try_put` (a no-op if the result already made it out).
            let racer = race(Io::pure(1_i64), Io::pure(2_i64))
                .map(|r| match r {
                    Either::Left(v) | Either::Right(v) => v,
                })
                .and_then(move |v| done.put(v))
                .catch(move |e| {
                    if e == Exception::custom("poke") {
                        done.try_put(-1).map(|_| ())
                    } else {
                        Io::throw(e)
                    }
                });
            Io::fork(racer).and_then(move |racer_id| {
                // Forked after the racer, so whenever the race's children
                // are already dead this thread takes over a freed slot.
                // The sleep keeps it alive (and killable) through the
                // poke window.
                let bystander = Io::sleep(50).then(token.put(42));
                Io::fork(bystander).and_then(move |_| {
                    Io::throw_to(racer_id, Exception::custom("poke"))
                        .then(done.take())
                        .and_then(move |r| token.take().map(move |t| (r, t)))
                })
            })
        })
    })
}

#[test]
fn stale_redelivery_to_reused_slot_is_a_noop_on_every_schedule() {
    // DPOR plus a preemption bound keeps the space tractable without
    // losing the hazard: reaching "children dead, slot reused, poke
    // mid-wait" needs a single preemption of the main thread (all other
    // switches happen at blocking points, which are free), and
    // exception-delivery points branch fully whatever the bound.
    let cfg = ExploreConfig {
        max_schedules: 200_000,
        preemption_bound: Some(2),
        strategy: conch_explore::Strategy::Exhaustive(conch_explore::Reduction::Dpor),
        ..ExploreConfig::default()
    };
    let result = Explorer::with_config(cfg).check(|| {
        TestCase::new(
            stale_redelivery_program(),
            |out: &RunOutcome<(i64, i64)>| match &out.result {
                Ok((r, 42)) if [1, 2, -1].contains(r) => Ok(()),
                Ok(other) => Err(format!("unexpected outcome {other:?}")),
                Err(e) => Err(format!(
                    "run failed (a stale re-throw likely killed the bystander): {e:?}"
                )),
            },
        )
    });
    let report = result.expect_pass();
    assert!(
        report.complete,
        "stale-redelivery check must be exhaustive: {report}"
    );
}

// ---------------------------------------------------------------------
// Bounds behave as documented.
// ---------------------------------------------------------------------

#[test]
fn preemption_bound_trades_coverage_for_speed() {
    let run = |bound: Option<usize>| {
        let cfg = ExploreConfig {
            preemption_bound: bound,
            ..ExploreConfig::default()
        };
        let result = Explorer::with_config(cfg)
            .check(|| TestCase::new(killed_worker(good_bracket()), props::terminates));
        result.report().clone()
    };
    let unbounded = run(None);
    let bounded = run(Some(0));
    assert!(
        bounded.explored <= unbounded.explored,
        "preemption bound must not enlarge the schedule space: {} vs {}",
        bounded.explored,
        unbounded.explored
    );
}
