//! The fault menus: what can go wrong, as enumerable arms.
//!
//! Each menu is a small enum with a fixed arm numbering. Arm `0` is
//! always the no-fault case, matching the
//! [`Io::choose`](conch_runtime::io::Io::choose) convention that arm
//! `0` is what happens when nobody is deciding (no decider installed —
//! i.e. outside exploration — every choice resolves to `0`).

use conch_httpd::http::Request;
use conch_runtime::value::{FromValue, IntoValue, Value};

/// A fault in the connection's wire behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnFault {
    /// No fault: a complete, well-formed request.
    None,
    /// The peer connects and immediately hangs up without sending a
    /// byte. The server's request read raises `ConnectionClosed` at
    /// once.
    Drop,
    /// The peer sends a partial request and then stalls forever
    /// (slowloris). Only the server's read timeout ends it.
    Stall,
    /// The peer sends a partial request and then closes mid-read.
    MidRequestClose,
    /// The peer sends bytes that are not HTTP (but does terminate the
    /// header block, so the server parses — and rejects — them).
    Garbage,
}

impl ConnFault {
    /// Number of arms in this menu, for [`Io::choose`](conch_runtime::io::Io::choose).
    pub const ARMS: u8 = 5;

    /// Decodes a chosen arm; out-of-range arms mean no fault.
    pub fn from_arm(arm: i64) -> ConnFault {
        match arm {
            1 => ConnFault::Drop,
            2 => ConnFault::Stall,
            3 => ConnFault::MidRequestClose,
            4 => ConnFault::Garbage,
            _ => ConnFault::None,
        }
    }

    /// This fault's arm number.
    pub fn arm(self) -> u8 {
        match self {
            ConnFault::None => 0,
            ConnFault::Drop => 1,
            ConnFault::Stall => 2,
            ConnFault::MidRequestClose => 3,
            ConnFault::Garbage => 4,
        }
    }

    /// The wire history a connection exhibiting this fault writes
    /// before the server sees it: `(request text, peer closes?)`.
    ///
    /// [`Stall`](ConnFault::Stall) is "partial text, never closed" —
    /// stalling forever needs no live sender thread, just bytes that
    /// stop coming; the virtual clock then runs straight to the
    /// server's read timeout.
    pub fn wire(self, path: &str) -> (String, bool) {
        match self {
            ConnFault::None => (Request::get(path).render(), false),
            ConnFault::Drop => (String::new(), true),
            ConnFault::Stall => (format!("GET {path} HT"), false),
            ConnFault::MidRequestClose => (format!("GET {path} HT"), true),
            ConnFault::Garbage => ("%%% not http %%%\r\n\r\n".to_owned(), false),
        }
    }
}

impl IntoValue for ConnFault {
    fn into_value(self) -> Value {
        Value::Int(i64::from(self.arm()))
    }
}

impl FromValue for ConnFault {
    fn from_value(v: Value) -> Option<Self> {
        Some(ConnFault::from_arm(v.as_int()?))
    }
}

/// A fault inside the request handler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HandlerFault {
    /// No fault: the real handler runs.
    None,
    /// The handler raises synchronously. The server's handler guard
    /// turns this into a 500.
    Crash,
    /// The handler wedges (a long virtual sleep) before answering. The
    /// server's handler timeout turns this into a 504.
    Wedge,
}

impl HandlerFault {
    /// Number of arms in this menu.
    pub const ARMS: u8 = 3;

    /// Decodes a chosen arm; out-of-range arms mean no fault.
    pub fn from_arm(arm: i64) -> HandlerFault {
        match arm {
            1 => HandlerFault::Crash,
            2 => HandlerFault::Wedge,
            _ => HandlerFault::None,
        }
    }

    /// This fault's arm number.
    pub fn arm(self) -> u8 {
        match self {
            HandlerFault::None => 0,
            HandlerFault::Crash => 1,
            HandlerFault::Wedge => 2,
        }
    }
}

impl IntoValue for HandlerFault {
    fn into_value(self) -> Value {
        Value::Int(i64::from(self.arm()))
    }
}

impl FromValue for HandlerFault {
    fn from_value(v: Value) -> Option<Self> {
        Some(HandlerFault::from_arm(v.as_int()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arms_round_trip() {
        for arm in 0..i64::from(ConnFault::ARMS) {
            assert_eq!(i64::from(ConnFault::from_arm(arm).arm()), arm);
        }
        for arm in 0..i64::from(HandlerFault::ARMS) {
            assert_eq!(i64::from(HandlerFault::from_arm(arm).arm()), arm);
        }
    }

    #[test]
    fn out_of_range_arms_are_no_fault() {
        assert_eq!(ConnFault::from_arm(99), ConnFault::None);
        assert_eq!(HandlerFault::from_arm(-1), HandlerFault::None);
    }

    #[test]
    fn wire_histories() {
        let (text, close) = ConnFault::None.wire("/x");
        assert!(text.starts_with("GET /x") && text.ends_with("\r\n\r\n"));
        assert!(!close);
        assert_eq!(ConnFault::Drop.wire("/x"), (String::new(), true));
        let (text, close) = ConnFault::MidRequestClose.wire("/x");
        assert!(!text.ends_with("\r\n\r\n") && close);
        let (text, close) = ConnFault::Garbage.wire("/x");
        assert!(text.ends_with("\r\n\r\n") && !close);
    }
}
