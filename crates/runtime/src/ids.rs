//! Identifiers for threads and `MVar`s.
//!
//! Both are small, copyable, ordered handles. In the paper's semantics
//! (Figure 2) they correspond to the restricted names `t` and `m`; in the
//! runtime they index slabs owned by the [`Runtime`](crate::scheduler::Runtime).

use std::fmt;

/// Identity of a green thread, as returned by `forkIO` and `myThreadId`.
///
/// `ThreadId`s support equality and ordering, as in Concurrent Haskell.
///
/// # Examples
///
/// ```
/// use conch_runtime::prelude::*;
///
/// let mut rt = Runtime::new();
/// let tid = rt.run(Io::fork(Io::pure(()))).unwrap();
/// let main = rt.main_thread_id();
/// assert_ne!(tid, main);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ThreadId(pub(crate) u64);

impl ThreadId {
    /// The raw index of this thread. Useful for logging and for the
    /// semantics bridge, which names threads `t0`, `t1`, ….
    pub fn index(self) -> u64 {
        self.0
    }
}

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "thread#{}", self.0)
    }
}

/// Identity of an `MVar` cell inside a [`Runtime`](crate::scheduler::Runtime).
///
/// This is the untyped handle; user code normally holds the typed wrapper
/// [`MVar<T>`](crate::mvar::MVar) instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MVarId(pub(crate) u64);

impl MVarId {
    /// The raw index of this `MVar`.
    pub fn index(self) -> u64 {
        self.0
    }
}

impl fmt::Display for MVarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "mvar#{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_ids_are_ordered() {
        assert!(ThreadId(0) < ThreadId(1));
        assert_eq!(ThreadId(3), ThreadId(3));
    }

    #[test]
    fn display_is_readable() {
        assert_eq!(ThreadId(2).to_string(), "thread#2");
        assert_eq!(MVarId(5).to_string(), "mvar#5");
    }

    #[test]
    fn index_round_trip() {
        assert_eq!(ThreadId(9).index(), 9);
        assert_eq!(MVarId(4).index(), 4);
    }
}
