//! # conch-semantics
//!
//! An executable transcription of the operational semantics of
//! *Asynchronous Exceptions in Haskell* (PLDI 2001), §6 — the paper's
//! central formal contribution and, per the paper, the first formal
//! account of a fully-asynchronous signalling mechanism.
//!
//! | Paper artifact | Module |
//! |---|---|
//! | Figure 1 — syntax of values and terms | [`term`] |
//! | Figure 2 — program states | [`process`] |
//! | Figure 3 — structural congruence | [`congruence`] |
//! | §6.2 inner semantics (`M ⇓ V`, `M ⇓ e`) | [`eval`] |
//! | §6.2/§6.3 evaluation contexts `Ê`/`E` | [`context`] |
//! | Figures 4 & 5 — transition rules | [`rules`] |
//! | exploration, model checking, conformance | [`engine`] |
//! | the paper's worked examples (§5.1 etc.) | [`programs`] |
//!
//! The transition system is *enumerable*: [`rules::enabled_transitions`]
//! returns every rule instance a state admits, so the [`engine`] can
//! model-check safety properties (finding, e.g., the §5.1 locking race as
//! a concrete counterexample trace) and decide whether an I/O trace
//! observed from the `conch-runtime` interpreter is admitted by the
//! formal semantics.
//!
//! ## Example: model-checking the §5.1 race
//!
//! ```
//! use conch_semantics::engine::{check_safety, CheckResult, ExploreConfig, State};
//! use conch_semantics::programs::{lock_scenario, naive_lock_update};
//!
//! let prog = lock_scenario(|m| naive_lock_update(m, 1));
//! let cfg = ExploreConfig::default();
//! let result = check_safety(&State::new(prog, ""), &cfg, |s| {
//!     s.is_deadlocked(&cfg.rules)
//! });
//! assert!(matches!(result, CheckResult::Violation { .. })); // the race!
//! ```

pub mod congruence;
pub mod context;
pub mod derivation;
pub mod engine;
pub mod equiv;
pub mod eval;
pub mod process;
pub mod programs;
pub mod rules;
pub mod term;

pub use crate::derivation::{derive, derive_first, derive_random, DerivStep, Derivation};
pub use crate::engine::{
    admits_trace, check_safety, random_run, CheckResult, ExploreConfig, Obs, State,
};
pub use crate::equiv::{trace_equivalent, trace_set, Truncated, TruncationLimit};
pub use crate::process::{Mark, ProcTerm, Soup};
pub use crate::rules::{enabled_transitions, Label, RuleConfig, RuleName, Transition};
pub use crate::term::{Exc, MVarName, Term, TidName};
