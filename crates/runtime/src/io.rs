//! The embedded `IO` monad.
//!
//! [`Io<T>`] is a deep embedding of Concurrent Haskell's `IO` actions
//! (§3–§5 of the paper): a tree of primitive operations that the
//! [`Runtime`](crate::scheduler::Runtime) interprets one small step at a
//! time. Because actions are *data*, the scheduler can suspend a thread
//! between any two steps — which is exactly what makes truly asynchronous
//! exceptions implementable: a `throwTo` can land at any step boundary,
//! including in the middle of a pure computation ([`Io::compute`]).
//!
//! The typed surface (`Io<T>`) is a zero-cost phantom wrapper over the
//! untyped `Action` tree; values are converted at the boundaries via
//! [`IntoValue`]/[`FromValue`].
//!
//! # Examples
//!
//! ```
//! use conch_runtime::prelude::*;
//!
//! // do { m <- newEmptyMVar; putMVar m 42; takeMVar m }
//! let prog = Io::new_empty_mvar::<i64>().and_then(|m| {
//!     m.put(42).and_then(move |_| m.take())
//! });
//! let mut rt = Runtime::new();
//! assert_eq!(rt.run(prog).unwrap(), 42);
//! ```

use std::marker::PhantomData;

use crate::exception::Exception;
use crate::ids::{MVarId, ThreadId};
use crate::mvar::MVar;
use crate::value::{FromValue, IntoValue, Value};

/// A continuation: the right-hand side of `>>=`.
pub(crate) type Kont = Box<dyn FnOnce(Value) -> Action>;

/// An exception handler: the second argument of `catch`. Receives the
/// exception together with how it was raised (see
/// [`RaiseOrigin`](crate::thread::RaiseOrigin)).
pub(crate) type Handler = Box<dyn FnOnce(Exception, crate::thread::RaiseOrigin) -> Action>;

/// The untyped action tree interpreted by the scheduler.
///
/// Each variant corresponds to a primitive of the paper's language
/// (Figure 1 plus the asynchronous-exception extension of §5 and the
/// measurement/baseline primitives motivated in §2 and §10).
pub(crate) enum Action {
    /// `return v`.
    Pure(Value),
    /// `m >>= k`.
    Bind(Box<Action>, Kont),
    /// `catch m h`.
    Catch(Box<Action>, Handler),
    /// `throw e` — raise a synchronous exception.
    Throw(Exception),
    /// Re-raise an exception preserving its recorded origin (used by
    /// library code that must pass an asynchronous exception along
    /// without laundering it into a synchronous one).
    Rethrow(Exception, crate::thread::RaiseOrigin),
    /// `throwTo t e` — asynchronous delivery, returns immediately (§5).
    ThrowTo(ThreadId, Exception),
    /// The §9 design alternative: synchronous `throwTo` that waits for
    /// the exception to be delivered (and is therefore interruptible).
    ThrowToSync(ThreadId, Exception),
    /// `block m` — scoped masking (§5.2).
    Block(Box<Action>),
    /// `unblock m` — scoped unmasking (§5.2).
    Unblock(Box<Action>),
    /// Reads the current masking state (true = blocked).
    GetMaskingState,
    /// `forkIO m`.
    Fork(Box<Action>),
    /// `myThreadId`.
    MyThreadId,
    /// `newEmptyMVar` (None) or `newMVar v` (Some).
    NewMVar(Option<Value>),
    /// `takeMVar m` — blocking, interruptible (§5.3).
    TakeMVar(MVarId),
    /// `putMVar m v` — blocking, interruptible (§5.3).
    PutMVar(MVarId, Value),
    /// Non-blocking take; returns `Nothing` when empty.
    TryTakeMVar(MVarId),
    /// Non-blocking put; returns `False` when full.
    TryPutMVar(MVarId, Value),
    /// `sleep d` — wait `d` virtual microseconds; interruptible.
    Sleep(u64),
    /// `getChar` — blocking on console input; interruptible.
    GetChar,
    /// `putChar c`.
    PutChar(char),
    /// Pure computation burning `steps` interpreter steps, then returning
    /// the given value. Models a long-running purely-functional
    /// evaluation — the code region where the paper argues polling is
    /// impossible and full asynchrony is required (§2).
    Compute { steps: u64, result: Value },
    /// An explicit polling point: in [`DeliveryMode::Polling`]
    /// (crate::config::DeliveryMode::Polling) this is the *only* place a
    /// runnable thread receives asynchronous exceptions. In fully
    /// asynchronous mode it is a no-op (delivery can happen anywhere).
    PollSafePoint,
    /// Voluntarily end the current scheduling quantum.
    Yield,
    /// Read the virtual clock (microseconds).
    Now,
    /// Escape hatch: run native Rust code atomically and return its value.
    Effect(Box<dyn FnOnce() -> Value>),
    /// A scheduler-visible nondeterministic choice among `0..arms`
    /// alternatives. Under external scheduling the installed
    /// [`Decider`](crate::decide::Decider) picks the arm
    /// ([`Decider::choose_arm`](crate::decide::Decider::choose_arm)), so
    /// an explorer can enumerate all of them; otherwise arm 0 is taken.
    /// This is the oracle primitive the fault-injection plane
    /// (`conch-faults`) builds on.
    Choose(u8),
}

impl std::fmt::Debug for Action {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            Action::Pure(v) => return write!(f, "Pure({v})"),
            Action::Bind(_, _) => "Bind",
            Action::Catch(_, _) => "Catch",
            Action::Throw(e) => return write!(f, "Throw({e})"),
            Action::Rethrow(e, o) => return write!(f, "Rethrow({e}, {o:?})"),
            Action::ThrowTo(t, e) => return write!(f, "ThrowTo({t}, {e})"),
            Action::ThrowToSync(t, e) => return write!(f, "ThrowToSync({t}, {e})"),
            Action::Block(_) => "Block",
            Action::Unblock(_) => "Unblock",
            Action::GetMaskingState => "GetMaskingState",
            Action::Fork(_) => "Fork",
            Action::MyThreadId => "MyThreadId",
            Action::NewMVar(_) => "NewMVar",
            Action::TakeMVar(m) => return write!(f, "TakeMVar({m})"),
            Action::PutMVar(m, v) => return write!(f, "PutMVar({m}, {v})"),
            Action::TryTakeMVar(m) => return write!(f, "TryTakeMVar({m})"),
            Action::TryPutMVar(m, v) => return write!(f, "TryPutMVar({m}, {v})"),
            Action::Sleep(d) => return write!(f, "Sleep({d})"),
            Action::GetChar => "GetChar",
            Action::PutChar(c) => return write!(f, "PutChar({c:?})"),
            Action::Compute { steps, .. } => return write!(f, "Compute({steps})"),
            Action::PollSafePoint => "PollSafePoint",
            Action::Yield => "Yield",
            Action::Now => "Now",
            Action::Effect(_) => "Effect",
            Action::Choose(n) => return write!(f, "Choose({n})"),
        };
        f.write_str(name)
    }
}

/// A typed `IO` action returning a `T`.
///
/// `Io<T>` values are inert descriptions; nothing happens until they are
/// passed to [`Runtime::run`](crate::scheduler::Runtime::run). Combine them
/// with [`Io::and_then`] (the paper's `>>=`), [`Io::catch`], and the
/// concurrency primitives.
///
/// # Examples
///
/// ```
/// use conch_runtime::prelude::*;
///
/// let prog = Io::pure(20_i64).map(|n| n * 2);
/// let mut rt = Runtime::new();
/// assert_eq!(rt.run(prog).unwrap(), 40);
/// ```
pub struct Io<T> {
    pub(crate) action: Action,
    marker: PhantomData<fn() -> T>,
}

impl<T> std::fmt::Debug for Io<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Io({:?})", self.action)
    }
}

impl<T> Io<T> {
    pub(crate) fn from_action(action: Action) -> Self {
        Io {
            action,
            marker: PhantomData,
        }
    }

    /// Forgets the result type, keeping the effects.
    pub fn erase(self) -> Io<Value> {
        Io::from_action(self.action)
    }
}

impl<T: IntoValue + 'static> Io<T> {
    /// `return v` — an action that does nothing and yields `v`.
    pub fn pure(v: T) -> Io<T> {
        Io::from_action(Action::Pure(v.into_value()))
    }
}

impl Io<()> {
    /// The do-nothing action, `return ()`.
    pub fn unit() -> Io<()> {
        Io::from_action(Action::Pure(Value::Unit))
    }

    /// `putChar c` — writes one character to the console.
    pub fn put_char(c: char) -> Io<()> {
        Io::from_action(Action::PutChar(c))
    }

    /// Writes a whole string, one `putChar` at a time.
    pub fn put_str(s: impl Into<String>) -> Io<()> {
        let s: String = s.into();
        let mut act = Io::unit();
        for c in s.chars().rev() {
            let rest = act;
            act = Io::put_char(c).then(rest);
        }
        act
    }

    /// Writes a string followed by a newline.
    pub fn put_str_ln(s: impl Into<String>) -> Io<()> {
        let mut s: String = s.into();
        s.push('\n');
        Io::put_str(s)
    }

    /// `sleep d` — suspends the thread for `d` virtual microseconds.
    ///
    /// Sleeping is an *interruptible* operation: an asynchronous exception
    /// wakes the sleeper immediately, even inside `block` (§5.3).
    pub fn sleep(micros: u64) -> Io<()> {
        Io::from_action(Action::Sleep(micros))
    }

    /// `throwTo t e` — queue exception `e` for thread `t` and return
    /// immediately (the asynchronous design chosen in §9).
    ///
    /// If `t` has already finished, the call trivially succeeds. `throwTo`
    /// is *not* interruptible.
    pub fn throw_to(t: ThreadId, e: Exception) -> Io<()> {
        Io::from_action(Action::ThrowTo(t, e))
    }

    /// The §9 design alternative: `throwTo` that *waits* until the target
    /// has actually received the exception.
    ///
    /// Because it can block indefinitely, it is an interruptible operation.
    /// A thread throwing to itself raises the exception immediately.
    pub fn throw_to_sync(t: ThreadId, e: Exception) -> Io<()> {
        Io::from_action(Action::ThrowToSync(t, e))
    }

    /// Burns `steps` interpreter steps of pure computation.
    ///
    /// In fully-asynchronous mode an exception can arrive at any of the
    /// intermediate steps; in polling mode it cannot — reproducing the §2
    /// argument that polling is incompatible with purely-functional code.
    pub fn compute(steps: u64) -> Io<()> {
        Io::from_action(Action::Compute {
            steps,
            result: Value::Unit,
        })
    }

    /// An explicit safe point (§7.4): in polling delivery mode, the only
    /// place a runnable thread checks for pending asynchronous exceptions.
    pub fn poll_safe_point() -> Io<()> {
        Io::from_action(Action::PollSafePoint)
    }

    /// Ends the current scheduling quantum, letting other threads run.
    pub fn yield_now() -> Io<()> {
        Io::from_action(Action::Yield)
    }
}

impl Io<char> {
    /// `getChar` — reads one character from the console.
    ///
    /// Blocks while no input is available; blocking on input is an
    /// interruptible operation (§5.3, rule (Stuck GetChar)).
    pub fn get_char() -> Io<char> {
        Io::from_action(Action::GetChar)
    }
}

impl Io<ThreadId> {
    /// `forkIO m` — runs `m` in a new thread, returning its `ThreadId`.
    ///
    /// The child starts in the *unblocked* masking state, runnable, and its
    /// final result or uncaught exception is discarded (rules (Return GC)
    /// and (Throw GC)).
    pub fn fork<A>(body: Io<A>) -> Io<ThreadId> {
        Io::from_action(Action::Fork(Box::new(body.action)))
    }

    /// `myThreadId` — the calling thread's own id.
    pub fn my_thread_id() -> Io<ThreadId> {
        Io::from_action(Action::MyThreadId)
    }
}

impl Io<bool> {
    /// Reads the current masking state: `true` inside `block`, `false`
    /// inside `unblock` or at top level.
    pub fn masking_state() -> Io<bool> {
        Io::from_action(Action::GetMaskingState)
    }
}

impl Io<i64> {
    /// Reads the virtual clock, in microseconds since the runtime started.
    pub fn now() -> Io<i64> {
        Io::from_action(Action::Now)
    }

    /// A scheduler-visible nondeterministic choice: yields some arm in
    /// `0..arms`.
    ///
    /// Under [`SchedulingPolicy::External`](crate::config::SchedulingPolicy)
    /// the installed [`Decider`](crate::decide::Decider) picks the arm via
    /// [`choose_arm`](crate::decide::Decider::choose_arm), which lets
    /// `conch-explore` enumerate every alternative as a first-class branch
    /// point (fault × schedule exploration). Without a decider — or under
    /// any other scheduling policy — the choice resolves to arm `0`, so
    /// programs are deterministic by default and arm `0` should encode
    /// "nothing unusual happens".
    ///
    /// `arms` must be at least 1.
    pub fn choose(arms: u8) -> Io<i64> {
        assert!(arms >= 1, "Io::choose needs at least one arm");
        Io::from_action(Action::Choose(arms))
    }
}

impl Io<()> {
    /// `newEmptyMVar` — allocates a fresh, empty `MVar`.
    pub fn new_empty_mvar<T: FromValue + IntoValue + 'static>() -> Io<MVar<T>> {
        Io::from_action(Action::NewMVar(None))
    }

    /// `newMVar v` — allocates a fresh `MVar` already containing `v`.
    pub fn new_mvar<T: FromValue + IntoValue + 'static>(v: T) -> Io<MVar<T>> {
        Io::from_action(Action::NewMVar(Some(v.into_value())))
    }
}

impl<T: FromValue + 'static> Io<T> {
    /// `m >>= k` — sequencing. Runs `self`, passes its result to `k`.
    pub fn and_then<U, F>(self, k: F) -> Io<U>
    where
        F: FnOnce(T) -> Io<U> + 'static,
    {
        Io::from_action(Action::Bind(
            Box::new(self.action),
            Box::new(move |v| k(T::from_value_or_panic(v)).action),
        ))
    }

    /// `m >> n` — sequencing that discards the first result.
    pub fn then<U: 'static>(self, next: Io<U>) -> Io<U> {
        self.and_then(move |_| next)
    }

    /// `fmap` — applies a pure function to the result.
    pub fn map<U, F>(self, f: F) -> Io<U>
    where
        U: IntoValue + 'static,
        F: FnOnce(T) -> U + 'static,
    {
        self.and_then(move |t| Io::pure(f(t)))
    }
}

impl<T> Io<T> {
    /// `throw e` — raises a synchronous exception.
    ///
    /// Typed at any result because it never returns normally.
    pub fn throw(e: Exception) -> Io<T> {
        Io::from_action(Action::Throw(e))
    }

    /// `catch m h` — runs `m`; if it raises an exception (synchronous or
    /// asynchronous), runs the handler `h` with it.
    ///
    /// Per §8, the catch frame records the masking state at entry and
    /// restores it before the handler runs, so a handler inside `block`
    /// always starts blocked even if the exception was raised inside an
    /// inner `unblock`.
    pub fn catch<H>(self, h: H) -> Io<T>
    where
        H: FnOnce(Exception) -> Io<T> + 'static,
    {
        Io::from_action(Action::Catch(
            Box::new(self.action),
            Box::new(move |e, _origin| h(e).action),
        ))
    }

    /// Like [`Io::catch`], but the handler also learns whether the
    /// exception was raised synchronously (by the code itself) or
    /// delivered asynchronously by `throwTo`.
    ///
    /// This is the hook for the §9 "exceptions vs alerts" design
    /// alternative and for the §8 thunk treatment, both built in
    /// `conch-combinators`.
    pub fn catch_info<H>(self, h: H) -> Io<T>
    where
        H: FnOnce(Exception, crate::thread::RaiseOrigin) -> Io<T> + 'static,
    {
        Io::from_action(Action::Catch(
            Box::new(self.action),
            Box::new(move |e, origin| h(e, origin).action),
        ))
    }

    /// Re-raises `e` with an explicit origin, so a handler can pass an
    /// asynchronous exception along without making it look synchronous.
    pub fn rethrow(e: Exception, origin: crate::thread::RaiseOrigin) -> Io<T> {
        Io::from_action(Action::Rethrow(e, origin))
    }

    /// `block m` — runs `m` with asynchronous exceptions blocked (§5.2).
    ///
    /// Scoped and idempotent: nesting `block` inside `block` has no further
    /// effect, and the previous masking state is restored on exit, whether
    /// the exit is normal or exceptional. Interruptible operations inside
    /// `m` may still receive asynchronous exceptions *while blocked on an
    /// unavailable resource* (§5.3).
    pub fn block(m: Io<T>) -> Io<T> {
        Io::from_action(Action::Block(Box::new(m.action)))
    }

    /// `unblock m` — runs `m` with asynchronous exceptions deliverable
    /// (§5.2). Always unblocks, regardless of nesting depth.
    pub fn unblock(m: Io<T>) -> Io<T> {
        Io::from_action(Action::Unblock(Box::new(m.action)))
    }

    /// Runs arbitrary Rust code atomically within one interpreter step.
    ///
    /// This is an escape hatch for tests and instrumentation (e.g. pushing
    /// to a shared log). The closure runs exactly once, with asynchronous
    /// exceptions unable to interrupt it mid-flight.
    pub fn effect<F>(f: F) -> Io<T>
    where
        T: IntoValue + 'static,
        F: FnOnce() -> T + 'static,
    {
        Io::from_action(Action::Effect(Box::new(move || f().into_value())))
    }

    /// Burns `steps` interpreter steps of pure computation, then yields
    /// `result` — a pure evaluation with a known outcome.
    pub fn compute_returning(steps: u64, result: T) -> Io<T>
    where
        T: IntoValue,
    {
        Io::from_action(Action::Compute {
            steps,
            result: result.into_value(),
        })
    }
}

/// Sequences a vector of actions, collecting the results.
///
/// # Examples
///
/// ```
/// use conch_runtime::prelude::*;
/// use conch_runtime::io::sequence;
///
/// let prog = sequence(vec![Io::pure(1_i64), Io::pure(2), Io::pure(3)]);
/// let mut rt = Runtime::new();
/// assert_eq!(rt.run(prog).unwrap(), vec![1, 2, 3]);
/// ```
pub fn sequence<T>(actions: Vec<Io<T>>) -> Io<Vec<T>>
where
    T: FromValue + IntoValue + 'static,
{
    fn go<T>(mut acts: std::vec::IntoIter<Io<T>>, mut acc: Vec<T>) -> Io<Vec<T>>
    where
        T: FromValue + IntoValue + 'static,
    {
        match acts.next() {
            None => Io::pure(acc),
            Some(a) => a.and_then(move |t| {
                acc.push(t);
                go(acts, acc)
            }),
        }
    }
    go(actions.into_iter(), Vec::new())
}

/// Runs `body(i)` for each `i` in `0..n`, discarding results.
pub fn for_each<F, A>(n: u64, body: F) -> Io<()>
where
    F: Fn(u64) -> Io<A> + 'static,
    A: FromValue + 'static,
{
    fn go<F, A>(i: u64, n: u64, body: F) -> Io<()>
    where
        F: Fn(u64) -> Io<A> + 'static,
        A: FromValue + 'static,
    {
        if i >= n {
            Io::unit()
        } else {
            body(i).and_then(move |_| go(i + 1, n, body))
        }
    }
    go(0, n, body)
}

/// Runs `body` `n` times, discarding results (`replicateM_`).
pub fn replicate<F, A>(n: u64, body: F) -> Io<()>
where
    F: Fn() -> Io<A> + 'static,
    A: FromValue + 'static,
{
    for_each(n, move |_| body())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::Runtime;

    #[test]
    fn pure_and_map() {
        let mut rt = Runtime::new();
        assert_eq!(rt.run(Io::pure(5_i64).map(|n| n + 1)).unwrap(), 6);
    }

    #[test]
    fn bind_threads_values() {
        let mut rt = Runtime::new();
        let prog = Io::pure(3_i64).and_then(|a| Io::pure(4_i64).map(move |b| a * b));
        assert_eq!(rt.run(prog).unwrap(), 12);
    }

    #[test]
    fn put_str_emits_in_order() {
        let mut rt = Runtime::new();
        rt.run(Io::put_str("abc")).unwrap();
        assert_eq!(rt.output(), "abc");
    }

    #[test]
    fn put_str_ln_appends_newline() {
        let mut rt = Runtime::new();
        rt.run(Io::put_str_ln("hi")).unwrap();
        assert_eq!(rt.output(), "hi\n");
    }

    #[test]
    fn sequence_collects_in_order() {
        let mut rt = Runtime::new();
        let prog = sequence(vec![Io::pure(1_i64), Io::pure(2), Io::pure(3)]);
        assert_eq!(rt.run(prog).unwrap(), vec![1, 2, 3]);
    }

    #[test]
    fn for_each_counts() {
        let mut rt = Runtime::new();
        let prog = Io::new_mvar(0_i64).and_then(|m| {
            for_each(5, move |_| m.take().and_then(move |n| m.put(n + 1))).then(m.take())
        });
        assert_eq!(rt.run(prog).unwrap(), 5);
    }

    #[test]
    fn effect_runs_native_code() {
        let mut rt = Runtime::new();
        let prog = Io::effect(|| 99_i64);
        assert_eq!(rt.run(prog).unwrap(), 99);
    }

    #[test]
    fn compute_returning_yields_result() {
        let mut rt = Runtime::new();
        let prog = Io::compute_returning(100, 7_i64);
        assert_eq!(rt.run(prog).unwrap(), 7);
    }

    #[test]
    fn debug_render_is_nonempty() {
        let io = Io::pure(1_i64);
        assert!(!format!("{io:?}").is_empty());
    }

    #[test]
    fn choose_defaults_to_arm_zero() {
        // Without an external decider the oracle always collapses to
        // arm 0, so programs stay deterministic by default.
        let mut rt = Runtime::new();
        assert_eq!(rt.run(Io::choose(4)).unwrap(), 0);
    }
}
