//! Exception values.
//!
//! The paper (following \[15\], "imprecise exceptions") uses a single
//! `Exception` datatype for both synchronous exceptions (raised by `throw`
//! or by pure evaluation via `raise`) and asynchronous exceptions
//! (delivered by `throwTo`). Section 9 discusses splitting the two in the
//! type system; like the paper, we keep one type and record *how* an
//! exception arrived separately (see [`crate::stats::Stats`]).

use std::error::Error;
use std::fmt;

/// An exception of the embedded language.
///
/// Exceptions compare by structural equality, which is what `catch`
/// handlers typically need.
///
/// # Examples
///
/// ```
/// use conch_runtime::exception::Exception;
///
/// let e = Exception::error_call("boom");
/// assert_eq!(e, Exception::error_call("boom"));
/// assert_ne!(e, Exception::kill_thread());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Exception {
    kind: ExceptionKind,
}

/// The kinds of exception the runtime and the paper's examples use.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ExceptionKind {
    /// `KillThread` — the exception `either` sends to the losing child (§7.2).
    KillThread,
    /// A timeout notification (used by the HTTP server; the paper's
    /// `timeout` combinator itself needs no exception, see §7.3).
    Timeout,
    /// `error` calls / user errors with a message.
    ErrorCall(String),
    /// Division by zero and friends, raised by pure evaluation.
    Arithmetic(ArithError),
    /// A pattern-match failure in pure code (Figure 1's inner language).
    PatternMatchFail,
    /// Raised when the runtime detects that a thread is blocked forever
    /// (deadlock). Mirrors GHC's `BlockedIndefinitelyOnMVar`.
    BlockedIndefinitely,
    /// Stack exhaustion (§2, resource exhaustion).
    StackOverflow,
    /// Heap exhaustion (§2, resource exhaustion).
    HeapOverflow,
    /// A user pressing the interrupt key (§2, user interrupt).
    UserInterrupt,
    /// An application-defined exception identified by name.
    Custom(String),
    /// An actor exit signal: the thread with spawn sequence `from`
    /// terminated with `reason`. This is the typed payload a linked
    /// actor delivers to its peers via `throwTo` — the Erlang-style
    /// layer ("An Exceptional Actor System") built on the paper's
    /// asynchronous exceptions. A trapping actor converts it into a
    /// mailbox message instead of dying (see `conch-actors`).
    ExitSignal {
        /// Spawn sequence number of the terminated thread.
        from: u64,
        /// Why it terminated.
        reason: Box<ExitReason>,
    },
}

/// Why a thread (actor) terminated — the payload of
/// [`ExceptionKind::ExitSignal`] and the classification the scheduler
/// records on the (Throw GC) path.
///
/// The three-way split mirrors Erlang: `Normal` exits do not kill
/// linked peers, `Killed` marks an asynchronous `KillThread` (the
/// untrappable `exit(Pid, kill)` analogue), and `Crashed` carries the
/// uncaught exception itself.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ExitReason {
    /// The thread's body returned normally.
    Normal,
    /// The thread died with this uncaught exception.
    Crashed(Box<Exception>),
    /// The thread was torn down by an asynchronous `KillThread`.
    Killed,
}

impl ExitReason {
    /// `true` for every reason except [`ExitReason::Normal`].
    pub fn is_abnormal(&self) -> bool {
        !matches!(self, ExitReason::Normal)
    }
}

impl fmt::Display for ExitReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExitReason::Normal => write!(f, "normal"),
            ExitReason::Crashed(e) => write!(f, "crashed: {e}"),
            ExitReason::Killed => write!(f, "killed"),
        }
    }
}

/// Arithmetic failure modes for [`ExceptionKind::Arithmetic`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArithError {
    /// Division by zero.
    DivideByZero,
    /// Integer overflow.
    Overflow,
}

impl Exception {
    /// Creates an exception of the given kind.
    pub fn new(kind: ExceptionKind) -> Self {
        Exception { kind }
    }

    /// The `KillThread` exception (§7.2).
    pub fn kill_thread() -> Self {
        Exception::new(ExceptionKind::KillThread)
    }

    /// A timeout exception.
    pub fn timeout() -> Self {
        Exception::new(ExceptionKind::Timeout)
    }

    /// A user error carrying a message.
    pub fn error_call(msg: impl Into<String>) -> Self {
        Exception::new(ExceptionKind::ErrorCall(msg.into()))
    }

    /// A division-by-zero exception.
    pub fn divide_by_zero() -> Self {
        Exception::new(ExceptionKind::Arithmetic(ArithError::DivideByZero))
    }

    /// The deadlock exception, mirroring GHC's `BlockedIndefinitelyOnMVar`.
    pub fn blocked_indefinitely() -> Self {
        Exception::new(ExceptionKind::BlockedIndefinitely)
    }

    /// An application-defined exception identified by `name`.
    pub fn custom(name: impl Into<String>) -> Self {
        Exception::new(ExceptionKind::Custom(name.into()))
    }

    /// An exit signal from the thread with spawn sequence `from`.
    pub fn exit_signal(from: u64, reason: ExitReason) -> Self {
        Exception::new(ExceptionKind::ExitSignal {
            from,
            reason: Box::new(reason),
        })
    }

    /// The kind of this exception.
    pub fn kind(&self) -> &ExceptionKind {
        &self.kind
    }

    /// Returns `true` if this is the `KillThread` exception.
    pub fn is_kill_thread(&self) -> bool {
        self.kind == ExceptionKind::KillThread
    }

    /// Returns `true` if this is a timeout exception.
    pub fn is_timeout(&self) -> bool {
        self.kind == ExceptionKind::Timeout
    }

    /// Returns `true` if this is an exit signal.
    pub fn is_exit_signal(&self) -> bool {
        matches!(self.kind, ExceptionKind::ExitSignal { .. })
    }

    /// The `(from, reason)` payload of an exit signal, if this is one.
    pub fn as_exit_signal(&self) -> Option<(u64, &ExitReason)> {
        match &self.kind {
            ExceptionKind::ExitSignal { from, reason } => Some((*from, reason)),
            _ => None,
        }
    }
}

impl From<ExceptionKind> for Exception {
    fn from(kind: ExceptionKind) -> Self {
        Exception::new(kind)
    }
}

impl fmt::Display for Exception {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            ExceptionKind::KillThread => write!(f, "KillThread"),
            ExceptionKind::Timeout => write!(f, "Timeout"),
            ExceptionKind::ErrorCall(m) => write!(f, "ErrorCall({m:?})"),
            ExceptionKind::Arithmetic(ArithError::DivideByZero) => {
                write!(f, "divide by zero")
            }
            ExceptionKind::Arithmetic(ArithError::Overflow) => write!(f, "overflow"),
            ExceptionKind::PatternMatchFail => write!(f, "pattern match failure"),
            ExceptionKind::BlockedIndefinitely => {
                write!(f, "thread blocked indefinitely")
            }
            ExceptionKind::StackOverflow => write!(f, "stack overflow"),
            ExceptionKind::HeapOverflow => write!(f, "heap overflow"),
            ExceptionKind::UserInterrupt => write!(f, "user interrupt"),
            ExceptionKind::Custom(name) => write!(f, "{name}"),
            ExceptionKind::ExitSignal { from, reason } => {
                write!(f, "ExitSignal(thread#{from}, {reason})")
            }
        }
    }
}

impl Error for Exception {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equality_is_structural() {
        assert_eq!(Exception::kill_thread(), Exception::kill_thread());
        assert_eq!(Exception::error_call("x"), Exception::error_call("x"));
        assert_ne!(Exception::error_call("x"), Exception::error_call("y"));
        assert_ne!(Exception::custom("a"), Exception::custom("b"));
    }

    #[test]
    fn predicates() {
        assert!(Exception::kill_thread().is_kill_thread());
        assert!(!Exception::timeout().is_kill_thread());
        assert!(Exception::timeout().is_timeout());
    }

    #[test]
    fn display_is_informative() {
        assert_eq!(Exception::kill_thread().to_string(), "KillThread");
        assert_eq!(
            Exception::error_call("bad").to_string(),
            "ErrorCall(\"bad\")"
        );
        assert_eq!(Exception::divide_by_zero().to_string(), "divide by zero");
        assert_eq!(Exception::custom("MyExc").to_string(), "MyExc");
    }

    #[test]
    fn kind_accessor() {
        let e = Exception::custom("E");
        assert_eq!(e.kind(), &ExceptionKind::Custom("E".into()));
    }

    #[test]
    fn implements_error_trait() {
        fn takes_error<E: std::error::Error>(_: E) {}
        takes_error(Exception::timeout());
    }

    #[test]
    fn exit_signal_accessors_and_display() {
        let crash = ExitReason::Crashed(Box::new(Exception::error_call("boom")));
        let e = Exception::exit_signal(7, crash.clone());
        assert!(e.is_exit_signal());
        assert!(!e.is_kill_thread());
        assert_eq!(e.as_exit_signal(), Some((7, &crash)));
        assert_eq!(
            e.to_string(),
            "ExitSignal(thread#7, crashed: ErrorCall(\"boom\"))"
        );
        assert_eq!(
            Exception::exit_signal(1, ExitReason::Killed).to_string(),
            "ExitSignal(thread#1, killed)"
        );
        assert!(Exception::kill_thread().as_exit_signal().is_none());
    }

    #[test]
    fn exit_reason_abnormality() {
        assert!(!ExitReason::Normal.is_abnormal());
        assert!(ExitReason::Killed.is_abnormal());
        assert!(ExitReason::Crashed(Box::new(Exception::timeout())).is_abnormal());
        assert_eq!(ExitReason::Normal.to_string(), "normal");
    }
}
