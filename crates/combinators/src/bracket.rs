//! Bracketing abstractions (§7.1): `finally`, `later`, `bracket`.
//!
//! These are transcriptions of the paper's Haskell definitions. `finally`
//! is, per the paper:
//!
//! ```haskell
//! finally a b = block (do
//!   r <- catch (unblock a) (\e -> do { b; throw e })
//!   b
//!   return r)
//! ```
//!
//! The finalizer runs inside `block` so that a second asynchronous
//! exception cannot prevent it from completing — "in a signal handler,
//! signals of the same type are normally disabled".
//!
//! Because Rust's `Io` values are single-use (they own `FnOnce`
//! continuations), actions used on more than one control path — the
//! finalizer, a `bracket` release — are taken as factories
//! (`Fn() -> Io<_>`) rather than as `Io` values.

use conch_runtime::exception::Exception;
use conch_runtime::io::Io;
use conch_runtime::value::{FromValue, IntoValue};

/// `finally a b` — run `a`, then *whatever happens* run the finalizer.
///
/// The finalizer runs exactly once: after `a` succeeds, or after `a`
/// raises (synchronously or asynchronously), before the exception is
/// re-thrown. It runs with asynchronous exceptions blocked.
///
/// # Examples
///
/// ```
/// use conch_runtime::prelude::*;
/// use conch_combinators::finally;
///
/// let mut rt = Runtime::new();
/// let prog = Io::new_mvar(0_i64).and_then(|count| {
///     finally(
///         Io::<i64>::throw(Exception::error_call("boom")),
///         move || count.take().and_then(move |n| count.put(n + 1)),
///     )
///     .catch(move |_| count.take())
/// });
/// assert_eq!(rt.run(prog).unwrap(), 1); // finalizer ran exactly once
/// ```
pub fn finally<A, B, F>(action: Io<A>, finalizer: F) -> Io<A>
where
    A: FromValue + IntoValue + 'static,
    B: FromValue + 'static,
    F: Fn() -> Io<B> + 'static,
{
    let finalizer = std::rc::Rc::new(finalizer);
    let on_err = std::rc::Rc::clone(&finalizer);
    Io::block(
        Io::unblock(action)
            .catch(move |e| (*on_err)().then(Io::throw(e)))
            .and_then(move |r| (*finalizer)().then(Io::pure(r))),
    )
}

/// `later b a` — `finally` with the arguments reversed (§7.1).
pub fn later<A, B, F>(finalizer: F, action: Io<A>) -> Io<A>
where
    A: FromValue + IntoValue + 'static,
    B: FromValue + 'static,
    F: Fn() -> Io<B> + 'static,
{
    finally(action, finalizer)
}

/// `bracket acquire release use` — acquire a resource, operate on it, free
/// it (§7.1).
///
/// The release runs whether `use` succeeds or raises; the acquire runs
/// inside `block`, so it either completes (and the release is guaranteed)
/// or raises before the resource exists — the atomicity the paper
/// demands of `openFile`.
///
/// # Examples
///
/// ```
/// use conch_runtime::prelude::*;
/// use conch_combinators::bracket;
///
/// let mut rt = Runtime::new();
/// let prog = Io::new_mvar(0_i64).and_then(|open_count| {
///     bracket(
///         open_count.take().and_then(move |n| open_count.put(n + 1)).map(|_| 7_i64),
///         move |_| open_count.take().and_then(move |n| open_count.put(n - 1)),
///         |handle| Io::pure(handle * 2),
///     )
///     .and_then(move |r| open_count.take().map(move |opens| (r, opens)))
/// });
/// assert_eq!(rt.run(prog).unwrap(), (14, 0)); // used, and closed again
/// ```
pub fn bracket<A, B, C, R, U>(acquire: Io<A>, release: R, use_resource: U) -> Io<C>
where
    A: FromValue + IntoValue + Clone + 'static,
    B: FromValue + 'static,
    C: FromValue + IntoValue + 'static,
    R: Fn(A) -> Io<B> + 'static,
    U: FnOnce(A) -> Io<C> + 'static,
{
    let release = std::rc::Rc::new(release);
    Io::block(acquire.and_then(move |a| {
        let a2 = a.clone();
        let a3 = a.clone();
        let on_err = std::rc::Rc::clone(&release);
        Io::unblock(use_resource(a))
            .catch(move |e| (*on_err)(a2).then(Io::throw(e)))
            .and_then(move |r| (*release)(a3).then(Io::pure(r)))
    }))
}

/// Like [`bracket`], but the release runs *only* when `use` raises an
/// exception (GHC's `bracketOnError`).
pub fn bracket_on_error<A, B, C, R, U>(acquire: Io<A>, release: R, use_resource: U) -> Io<C>
where
    A: FromValue + IntoValue + Clone + 'static,
    B: FromValue + 'static,
    C: FromValue + IntoValue + 'static,
    R: FnOnce(A) -> Io<B> + 'static,
    U: FnOnce(A) -> Io<C> + 'static,
{
    Io::block(acquire.and_then(move |a| {
        let a2 = a.clone();
        Io::unblock(use_resource(a)).catch(move |e| release(a2).then(Io::throw(e)))
    }))
}

/// `onException` — run `cleanup` only if `action` raises, then re-throw.
///
/// Unlike [`finally`], the success path runs no extra code. The cleanup
/// runs with asynchronous exceptions blocked.
pub fn on_exception<A, B, F>(action: Io<A>, cleanup: F) -> Io<A>
where
    A: FromValue + IntoValue + 'static,
    B: FromValue + 'static,
    F: FnOnce() -> Io<B> + 'static,
{
    Io::block(Io::unblock(action).catch(move |e| cleanup().then(Io::throw(e))))
}

/// `safePoint` (§7.4) — a window during which pending asynchronous
/// exceptions can be delivered, for use inside long masked sections.
///
/// Defined exactly as in the paper: `safePoint = unblock (return ())`.
pub fn safe_point() -> Io<()> {
    Io::unblock(Io::unit())
}

/// `killThread t` — send the `KillThread` exception to `t`.
pub fn kill_thread(t: conch_runtime::ids::ThreadId) -> Io<()> {
    Io::throw_to(t, Exception::kill_thread())
}

#[cfg(test)]
mod tests {
    use super::*;
    use conch_runtime::prelude::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    fn counter() -> (Rc<RefCell<i64>>, impl Fn() -> Io<()>) {
        let c = Rc::new(RefCell::new(0));
        let c2 = Rc::clone(&c);
        (c, move || {
            let c3 = Rc::clone(&c2);
            Io::effect(move || {
                *c3.borrow_mut() += 1;
            })
        })
    }

    #[test]
    fn finally_runs_on_success() {
        let mut rt = Runtime::new();
        let (count, fin) = counter();
        let prog = finally(Io::pure(5_i64), fin);
        assert_eq!(rt.run(prog).unwrap(), 5);
        assert_eq!(*count.borrow(), 1);
    }

    #[test]
    fn finally_runs_on_sync_exception_then_rethrows() {
        let mut rt = Runtime::new();
        let (count, fin) = counter();
        let prog = finally(Io::<i64>::throw(Exception::error_call("x")), fin);
        let r = rt.run(prog);
        assert_eq!(r, Err(RunError::Uncaught(Exception::error_call("x"))));
        assert_eq!(*count.borrow(), 1);
    }

    #[test]
    fn finally_runs_on_async_exception() {
        let mut rt = Runtime::new();
        let (count, fin) = counter();
        // Child is forked masked; finally's unblock opens the window.
        let prog = Io::new_empty_mvar::<i64>().and_then(move |done| {
            let body = finally(Io::compute(10_000), fin)
                .catch(move |_| Io::unit())
                .then(done.put(1));
            Io::<ThreadId>::block(Io::fork(body)).and_then(move |child| {
                Io::throw_to(child, Exception::kill_thread()).then(done.take())
            })
        });
        assert_eq!(rt.run(prog).unwrap(), 1);
        assert_eq!(*count.borrow(), 1);
    }

    #[test]
    fn finally_finalizer_runs_exactly_once_on_each_path() {
        let mut rt = Runtime::new();
        let (count, fin) = counter();
        let prog = finally(Io::pure(0_i64), fin);
        rt.run(prog).unwrap();
        assert_eq!(*count.borrow(), 1);
    }

    #[test]
    fn later_is_finally_reversed() {
        let mut rt = Runtime::new();
        let (count, fin) = counter();
        let prog = later(fin, Io::pure(3_i64));
        assert_eq!(rt.run(prog).unwrap(), 3);
        assert_eq!(*count.borrow(), 1);
    }

    #[test]
    fn bracket_releases_on_success() {
        let mut rt = Runtime::new();
        let log: Rc<RefCell<Vec<&'static str>>> = Rc::new(RefCell::new(Vec::new()));
        let l1 = Rc::clone(&log);
        let l2 = Rc::clone(&log);
        let l3 = Rc::clone(&log);
        let prog = bracket(
            Io::effect(move || {
                l1.borrow_mut().push("open");
                42_i64
            }),
            move |_| {
                let l = Rc::clone(&l2);
                Io::effect(move || l.borrow_mut().push("close"))
            },
            move |h| {
                Io::effect(move || {
                    l3.borrow_mut().push("work");
                    h + 1
                })
            },
        );
        assert_eq!(rt.run(prog).unwrap(), 43);
        assert_eq!(*log.borrow(), ["open", "work", "close"]);
    }

    #[test]
    fn bracket_releases_on_exception() {
        let mut rt = Runtime::new();
        let (count, _) = counter();
        let c = Rc::clone(&count);
        let prog = bracket(
            Io::pure(1_i64),
            move |_| {
                let c2 = Rc::clone(&c);
                Io::effect(move || {
                    *c2.borrow_mut() += 1;
                })
            },
            |_| Io::<i64>::throw(Exception::error_call("use failed")),
        );
        assert!(rt.run(prog).is_err());
        assert_eq!(*count.borrow(), 1);
    }

    #[test]
    fn bracket_on_error_skips_release_on_success() {
        let mut rt = Runtime::new();
        let (count, _) = counter();
        let c = Rc::clone(&count);
        let prog = bracket_on_error(
            Io::pure(1_i64),
            move |_| {
                let c2 = Rc::clone(&c);
                Io::effect(move || {
                    *c2.borrow_mut() += 1;
                })
            },
            |h| Io::pure(h * 2),
        );
        assert_eq!(rt.run(prog).unwrap(), 2);
        assert_eq!(*count.borrow(), 0);
    }

    #[test]
    fn bracket_on_error_releases_on_failure() {
        let mut rt = Runtime::new();
        let (count, _) = counter();
        let c = Rc::clone(&count);
        let prog = bracket_on_error(
            Io::pure(1_i64),
            move |_| {
                let c2 = Rc::clone(&c);
                Io::effect(move || {
                    *c2.borrow_mut() += 1;
                })
            },
            |_| Io::<i64>::throw(Exception::error_call("nope")),
        );
        assert!(rt.run(prog).is_err());
        assert_eq!(*count.borrow(), 1);
    }

    #[test]
    fn on_exception_only_fires_on_error() {
        let mut rt = Runtime::new();
        let (count, _) = counter();
        let c1 = Rc::clone(&count);
        let c2 = Rc::clone(&count);
        let ok = on_exception(Io::pure(1_i64), move || {
            let c = Rc::clone(&c1);
            Io::effect(move || {
                *c.borrow_mut() += 1;
            })
        });
        assert_eq!(rt.run(ok).unwrap(), 1);
        assert_eq!(*count.borrow(), 0);
        let bad = on_exception(Io::<i64>::throw(Exception::error_call("e")), move || {
            let c = Rc::clone(&c2);
            Io::effect(move || {
                *c.borrow_mut() += 1;
            })
        });
        assert!(rt.run(bad).is_err());
        assert_eq!(*count.borrow(), 1);
    }

    #[test]
    fn safe_point_delivers_pending_exception() {
        let mut rt = Runtime::new();
        // Inside block, a queued exception fires exactly at the safe point.
        let prog = Io::<String>::block(Io::my_thread_id().and_then(|me| {
            Io::throw_to(me, Exception::custom("ping"))
                .then(Io::compute(100)) // protected
                .then(safe_point()) // fires here
                .then(Io::pure("no exception".to_owned()))
                .catch(|e| Io::pure(format!("caught {e}")))
        }));
        assert_eq!(rt.run(prog).unwrap(), "caught ping");
    }

    #[test]
    fn kill_thread_sends_kill() {
        let mut rt = Runtime::new();
        let prog = Io::new_empty_mvar::<String>().and_then(|report| {
            let child = Io::new_empty_mvar::<i64>()
                .and_then(|hole| hole.take())
                .map(|_| String::new())
                .catch(|e| Io::pure(e.to_string()))
                .and_then(move |s| report.put(s));
            Io::fork(child)
                .and_then(move |tid| Io::sleep(5).then(kill_thread(tid)).then(report.take()))
        });
        assert_eq!(rt.run(prog).unwrap(), "KillThread");
    }
}
