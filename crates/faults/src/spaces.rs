//! Canonical fault × schedule spaces, shared by the explorer test
//! suite, the benchmark harness and `examples/fault_storm.rs` — one
//! definition, so the numbers CI pins and the numbers the docs quote
//! are the same program.
//!
//! Each space is a self-contained `Io` program: it starts an httpd
//! server, lets an [`Injector::Explore`] turn every injection site into
//! an explorer branch point, then audits the server with the quiescent
//! observation protocol. The returned triple is
//! `(fault episode code, healthy-probe status, counter snapshot)`;
//! [`holds_invariants`] is the property every schedule must satisfy.
//!
//! ## The observation protocol
//!
//! The audit tail of every space is `shutdown_sync → drain → snapshot`,
//! in that order:
//!
//! 1. **`shutdown_sync`** (§9 synchronous `throwTo`) returns only once
//!    the acceptor is dead, so `accepted` is final;
//! 2. **`drain`** waits for `active == 0` — and because a worker's
//!    outcome is recorded in the *same transaction* as its active
//!    decrement, drain returning means the books are closed;
//! 3. **`snapshot`** reads every counter in one atomic take/put.
//!
//! Weaker protocols are genuinely unsound — the explorer exhibited
//! torn-counter interleavings for both the asynchronous-shutdown and
//! the snapshot-before-drain variants while this module was built.

use conch_httpd::client::{status_of, ClientOutcome};
use conch_httpd::http::Response;
use conch_httpd::net::{Connection, Listener};
use conch_httpd::server::{handler, start, Server, ServerConfig, StatsSnapshot};
use conch_runtime::io::Io;

use crate::client::{faulty_client, prepared_connection};
use crate::fault::ConnFault;
use crate::inject::Injector;
use crate::storm::kill_storm;

fn server_config() -> ServerConfig {
    ServerConfig {
        read_timeout: 1_000,
        handler_timeout: 5_000,
        ..ServerConfig::default()
    }
}

/// Sends a healthy request after the fault episode, then audits the
/// counters (see the module docs for why the order is load-bearing).
fn probe_and_snapshot(
    l: Listener,
    server: Server,
    fault_code: i64,
) -> Io<(i64, i64, StatsSnapshot)> {
    prepared_connection(ConnFault::None, "/probe").and_then(move |conn: Connection| {
        l.inject(conn)
            .then(conn.read_response())
            .and_then(move |resp| {
                let probe_code = match status_of(&resp) {
                    ClientOutcome::Status(code) => i64::from(code),
                    ClientOutcome::Garbled => -2,
                };
                server
                    .shutdown_sync()
                    .then(server.drain())
                    .then(server.stats.snapshot())
                    .map(move |snap| (fault_code, probe_code, snap))
            })
    })
}

/// One faulty visit — all five [`ConnFault`] arms (none / drop / stall
/// / mid-request close / garbage) as explorer branches — then the
/// healthy probe and the audit.
pub fn conn_fault_space() -> Io<(i64, i64, StatsSnapshot)> {
    Listener::bind().and_then(|l| {
        start(
            l,
            handler(|_| Io::pure(Response::ok("hi"))),
            server_config(),
        )
        .and_then(move |server| {
            faulty_client(l, &Injector::Explore, "/x".into(), 50_000)
                .and_then(move |code| probe_and_snapshot(l, server, code))
        })
    })
}

/// A stalled connection parks a worker in its read; a `KillThread`
/// storm (each strike an explorer branch) may kill it mid-read; then
/// the healthy probe and the audit.
pub fn storm_space() -> Io<(i64, i64, StatsSnapshot)> {
    Listener::bind().and_then(|l| {
        start(
            l,
            handler(|_| Io::pure(Response::ok("hi"))),
            server_config(),
        )
        .and_then(move |server| {
            prepared_connection(ConnFault::Stall, "/x").and_then(move |conn| {
                // The sleep parks this thread (a blocked switch is
                // free under preemption bounding), guaranteeing the
                // worker is forked and parked in its read — well
                // within the stall's read-timeout budget — before
                // the storm picks targets.
                l.inject(conn)
                    .then(Io::sleep(100))
                    .then(kill_storm(&server, &Injector::Explore))
                    .and_then(move |kills| probe_and_snapshot(l, server, kills))
            })
        })
    })
}

/// The recovery invariants every schedule of every space must satisfy:
///
/// * **liveness after faults** — the healthy probe is answered `200`
///   whatever fault fired and wherever the kills landed;
/// * **conservation / no leaks** — the audited snapshot satisfies
///   [`StatsSnapshot::conserved`]: `active == 0` (drain terminated, no
///   leaked worker or connection) and every accepted connection
///   recorded exactly one outcome.
pub fn holds_invariants(out: &(i64, i64, StatsSnapshot)) -> Result<(), String> {
    let (_, probe_code, snap) = out;
    if *probe_code != 200 {
        return Err(format!(
            "healthy probe after the fault episode got {probe_code}, want 200"
        ));
    }
    if !snap.conserved() {
        return Err(format!("counters not conserved: {snap:?}"));
    }
    Ok(())
}
