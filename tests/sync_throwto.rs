//! Experiment B2's functional half: the §9 design alternative —
//! synchronous `throwTo` — behaves as the paper describes.
//!
//! §9's claims, each tested below:
//!
//! 1. the synchronous version "provides a guarantee that the target
//!    thread has received the exception" before the caller resumes;
//! 2. it is an *interruptible* operation (it can block indefinitely);
//! 3. "the asynchronous version can easily be implemented in terms of
//!    the synchronous one simply by forking a new thread to perform the
//!    throwTo";
//! 4. a thread throwing synchronously to itself raises immediately (the
//!    special case the semantics would need);
//! 5. throwing to a finished thread trivially succeeds in both designs.

use conch_runtime::prelude::*;
use std::cell::RefCell;
use std::rc::Rc;

/// Claim 1: after `throw_to_sync` returns, the target has the exception.
#[test]
fn sync_throwto_guarantees_receipt() {
    for seed in 0..25 {
        let cfg = RuntimeConfig::new().random_scheduling(seed).quantum(3);
        let mut rt = Runtime::with_config(cfg);
        let received = Rc::new(RefCell::new(false));
        let r2 = Rc::clone(&received);
        let prog = Io::new_empty_mvar::<i64>().and_then(move |done| {
            let r3 = Rc::clone(&r2);
            let victim = Io::<()>::unblock(Io::compute(1_000_000))
                .catch(move |_| {
                    Io::effect(move || {
                        *r3.borrow_mut() = true;
                    })
                })
                .then(done.put(1));
            Io::<ThreadId>::block(Io::fork(victim)).and_then(move |v| {
                let r4 = Rc::clone(&r2);
                Io::throw_to_sync(v, Exception::kill_thread())
                    // At this exact moment the exception must have been
                    // received (the handler may still be running, but the
                    // *delivery* — the raise — has happened).
                    .then(Io::effect(move || *r4.borrow()))
                    .and_then(move |seen| done.take().map(move |_| seen))
            })
        });
        let _seen_at_return = rt.run(prog).unwrap();
        // Delivery means the raise replaced the victim's continuation;
        // the handler effect itself may run a step later. What is
        // guaranteed observable: at least one delivery happened before
        // throw_to_sync returned.
        assert!(rt.stats().total_deliveries() >= 1, "seed {seed}");
        assert!(*received.borrow(), "seed {seed}: exception never handled");
    }
}

/// Claims 1 and 2 together: the caller *waits* on an unreceptive target
/// (one that is masked and never blocks), and while waiting it is itself
/// interruptible — a third thread can kill the stuck thrower.
///
/// Note on the victim: a masked thread that never unmasks and never
/// blocks keeps the run queue busy forever, so the test cannot use
/// virtual-time sleeps to sequence events — the killer paces itself with
/// `compute` instead (scheduler steps always advance).
#[test]
fn sync_throwto_blocks_and_is_interruptible() {
    let mut rt = Runtime::new();
    let prog = Io::new_empty_mvar::<String>().and_then(|out| {
        // Victim: masked, runnable, unreceptive. (A masked *stuck* thread
        // would still be interruptible per §5.3, so spinning is the only
        // truly unreceptive state.)
        let victim = Io::<()>::block(Io::compute(u64::MAX));
        Io::fork(victim).and_then(move |v| {
            let thrower = Io::throw_to_sync(v, Exception::custom("A"))
                .map(|_| "delivered".to_owned())
                .catch(|e| Io::pure(format!("thrower killed by {e}")))
                .and_then(move |s| out.put(s));
            Io::fork(thrower).and_then(move |t| {
                // Pace by steps, not virtual time: the spinner never lets
                // the clock advance.
                Io::compute(500)
                    .then(Io::throw_to(t, Exception::kill_thread()))
                    .then(out.take())
            })
        })
    });
    // The thrower never completed its sync throw (the victim is
    // unreceptive) — it died *waiting*, which proves it was blocked, and
    // the kill proves the wait is interruptible.
    assert_eq!(rt.run(prog).unwrap(), "thrower killed by KillThread");
}

/// Claim 3: async throwTo = fork (sync throwTo). The derived version
/// passes the same observable test as the primitive one.
#[test]
fn async_derivable_from_sync() {
    fn async_via_fork(t: ThreadId, e: Exception) -> Io<()> {
        Io::fork(Io::throw_to_sync(t, e)).map(|_| ())
    }
    for seed in 0..25 {
        let cfg = RuntimeConfig::new().random_scheduling(seed).quantum(3);
        let mut rt = Runtime::with_config(cfg);
        let prog = Io::new_empty_mvar::<String>().and_then(|out| {
            let victim = Io::new_empty_mvar::<i64>()
                .and_then(|hole| hole.take())
                .map(|_| String::new())
                .catch(|e| Io::pure(format!("got {e}")))
                .and_then(move |s| out.put(s));
            Io::fork(victim).and_then(move |v| {
                Io::sleep(10)
                    .then(async_via_fork(v, Exception::custom("Derived")))
                    .then(out.take())
            })
        });
        assert_eq!(rt.run(prog).unwrap(), "got Derived", "seed {seed}");
    }
}

/// Claim 4: self-throw raises immediately.
#[test]
fn sync_self_throw_raises_immediately() {
    let mut rt = Runtime::new();
    let prog = Io::my_thread_id()
        .and_then(|me| {
            Io::throw_to_sync(me, Exception::custom("SelfSync"))
                .then(Io::pure("survived".to_owned()))
        })
        .catch(|e| {
            Io::pure(if e == Exception::custom("SelfSync") {
                "raised".to_owned()
            } else {
                "other".to_owned()
            })
        });
    assert_eq!(rt.run(prog).unwrap(), "raised");
}

/// Claim 4 contrast: the *asynchronous* self-throw queues and only fires
/// at the next delivery point, so masked code continues first.
#[test]
fn async_self_throw_is_deferred() {
    let mut rt = Runtime::new();
    let log = Rc::new(RefCell::new(Vec::<&'static str>::new()));
    let (l1, l2) = (Rc::clone(&log), Rc::clone(&log));
    let prog = Io::<()>::block(Io::my_thread_id().and_then(move |me| {
        Io::throw_to(me, Exception::custom("SelfAsync"))
            .then(Io::effect(move || l1.borrow_mut().push("after-throw")))
            .then(Io::<()>::unblock(Io::unit()))
            .then(Io::effect(|| ()))
    }))
    .catch(move |_| Io::effect(move || l2.borrow_mut().push("handler")));
    rt.run(prog).unwrap();
    assert_eq!(*log.borrow(), ["after-throw", "handler"]);
}

/// Claim 5: both designs trivially succeed against dead threads.
#[test]
fn both_designs_succeed_on_dead_targets() {
    let mut rt = Runtime::new();
    let prog = Io::fork(Io::unit()).and_then(|t| {
        Io::sleep(10)
            .then(Io::throw_to(t, Exception::kill_thread()))
            .then(Io::throw_to_sync(t, Exception::kill_thread()))
            .then(Io::pure(1_i64))
    });
    assert_eq!(rt.run(prog).unwrap(), 1);
}

/// Multiple sync throwers queue up against one target and all eventually
/// return as the target drains its pending exceptions handler by handler.
#[test]
fn multiple_sync_throwers_all_complete() {
    let mut rt = Runtime::new();
    let prog = Io::new_mvar(0_i64).and_then(|completions| {
        // Victim: loops forever in unmasked compute, catching each
        // exception and continuing.
        fn resilient(n: u64) -> Io<()> {
            if n == 0 {
                Io::unit()
            } else {
                Io::<()>::unblock(Io::compute(10_000)).catch(move |_| resilient(n - 1))
            }
        }
        Io::<ThreadId>::block(Io::fork(resilient(5))).and_then(move |v| {
            let thrower = move || {
                Io::throw_to_sync(v, Exception::custom("S"))
                    .then(conch_combinators::modify_mvar(completions, |n| {
                        Io::pure(n + 1)
                    }))
            };
            Io::fork(thrower())
                .then(Io::fork(thrower()))
                .then(Io::fork(thrower()))
                .then(Io::sleep(1_000_000))
                .then(completions.take())
        })
    });
    assert_eq!(rt.run(prog).unwrap(), 3);
}
