//! B3 — fully-asynchronous delivery vs the polling baseline (§2, §10).
//!
//! Two sides of the paper's core argument against semi-asynchronous
//! (Java/Modula-3/PThreads-deferred) designs:
//!
//! * **Latency**: time from `throwTo` to the victim's death. For the
//!   polling design this grows linearly with the poll interval; for the
//!   fully-asynchronous design it is flat and small.
//! * **Overhead**: polling taxes pure computation even when no exception
//!   ever arrives; full asynchrony costs nothing on the no-exception
//!   path. Expected crossover: the finer you poll (lower latency), the
//!   higher the tax — the paper's point that you cannot have both.

use conch_bench::{kill_round_async, polled_victim_round, polling_overhead, run};
use conch_runtime::{DeliveryMode, RuntimeConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_delivery_latency(c: &mut Criterion) {
    let mut group = c.benchmark_group("delivery_latency_round");
    group.bench_function("fully_async", |b| {
        b.iter(|| run(RuntimeConfig::new(), kill_round_async()))
    });
    for &interval in &[10_u64, 100, 1_000, 10_000] {
        group.bench_with_input(
            BenchmarkId::new("polling", interval),
            &interval,
            |b, &interval| {
                b.iter(|| {
                    let cfg = RuntimeConfig::new().delivery_mode(DeliveryMode::Polling);
                    run(cfg, polled_victim_round(interval))
                })
            },
        );
    }
    group.finish();

    // The latency table in interpreter steps (the B3 series).
    let (_, rt) = run(RuntimeConfig::new(), kill_round_async());
    println!(
        "B3 latency (steps): fully_async = {:.1}",
        rt.stats().mean_delivery_latency().unwrap_or(f64::NAN)
    );
    for &interval in &[10_u64, 100, 1_000, 10_000] {
        let cfg = RuntimeConfig::new().delivery_mode(DeliveryMode::Polling);
        let (_, rt) = run(cfg, polled_victim_round(interval));
        println!(
            "B3 latency (steps): polling interval={interval} -> {:.1}",
            rt.stats().mean_delivery_latency().unwrap_or(f64::NAN)
        );
    }
}

fn bench_polling_tax(c: &mut Criterion) {
    const TOTAL: u64 = 100_000;
    let mut group = c.benchmark_group("pure_compute_tax");
    group.bench_function("no_polling_fully_async", |b| {
        b.iter(|| run(RuntimeConfig::new(), polling_overhead(TOTAL, 0)))
    });
    for &chunk in &[10_u64, 100, 1_000] {
        group.bench_with_input(
            BenchmarkId::new("poll_every", chunk),
            &chunk,
            |b, &chunk| {
                b.iter(|| {
                    let cfg = RuntimeConfig::new().delivery_mode(DeliveryMode::Polling);
                    run(cfg, polling_overhead(TOTAL, chunk))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_delivery_latency, bench_polling_tax);
criterion_main!(benches);
