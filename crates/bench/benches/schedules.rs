//! B9 — schedule-exploration throughput (`conch-explore`).
//!
//! Measures how fast the explorer enumerates the schedule space of a
//! three-thread workload (two workers contending on one `MVar`, plus a
//! `throwTo` aimed at one of them): explored schedules per second and
//! the sleep-set pruning ratio, with and without a preemption bound,
//! sequentially and across worker threads (the prefix-splitting
//! work-stealing engine — see DESIGN.md).
//!
//! Besides the timing output, writes `BENCH_explore.json` at the
//! workspace root with the headline numbers, for EXPERIMENTS.md.
//! Sequential rows carry `workers: 1`; parallel rows add a `speedup`
//! field (sequential unbounded seconds / this row's seconds). The
//! coverage counters are identical in every row of a config — that is
//! the parallel engine's determinism contract, and CI asserts it.
//!
//! With `BENCH_SMOKE` set in the environment, the Criterion timing
//! loops are skipped and each configuration is explored exactly once to
//! produce the JSON — CI uses this to assert the exact explored/pruned/
//! complete counts without depending on machine speed.

use std::time::Instant;

use conch_bench::{explore_once, explore_once_parallel};
use criterion::Criterion;

/// Worker counts for the parallel rows. 1 is included deliberately: it
/// runs the same work-stealing engine and must reproduce the
/// sequential row's counters and (near enough) its time.
const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn bench_exploration(c: &mut Criterion) {
    let mut group = c.benchmark_group("schedule_exploration");
    group.bench_function("three_thread_mvar_throwto", |b| {
        b.iter(|| explore_once(None))
    });
    group.bench_function("three_thread_mvar_throwto_pb2", |b| {
        b.iter(|| explore_once(Some(2)))
    });
    group.bench_function("three_thread_mvar_throwto_workers4", |b| {
        b.iter(|| explore_once_parallel(None, 4))
    });
    group.finish();
}

/// One measured exploration per configuration, written as a small JSON
/// report next to the workspace `Cargo.toml`.
fn emit_json() {
    let mut rows = Vec::new();
    let mut sequential_unbounded_secs = None;
    for (name, bound) in [
        ("unbounded", None),
        ("preemption_bound_2", Some(2)),
        ("preemption_bound_0", Some(0)),
    ] {
        let start = Instant::now();
        let report = explore_once(bound);
        let secs = start.elapsed().as_secs_f64();
        if bound.is_none() {
            sequential_unbounded_secs = Some(secs);
        }
        let per_sec = report.explored as f64 / secs.max(1e-9);
        let denominator = (report.explored + report.pruned).max(1);
        let pruning_ratio = report.pruned as f64 / denominator as f64;
        rows.push(format!(
            concat!(
                "    {{\"config\": \"{}\", \"workers\": 1, \"explored\": {}, ",
                "\"pruned\": {}, \"truncated\": {}, \"complete\": {}, ",
                "\"seconds\": {:.6}, \"schedules_per_sec\": {:.1}, ",
                "\"pruning_ratio\": {:.4}}}"
            ),
            name,
            report.explored,
            report.pruned,
            report.truncated,
            report.complete,
            secs,
            per_sec,
            pruning_ratio,
        ));
    }
    // Parallel rows: same unbounded config through the work-stealing
    // engine at several worker counts. Counters must match the
    // sequential row exactly; `speedup` is relative to it.
    let base_secs = sequential_unbounded_secs.expect("unbounded row ran");
    for workers in WORKER_COUNTS {
        let start = Instant::now();
        let report = explore_once_parallel(None, workers);
        let secs = start.elapsed().as_secs_f64();
        let per_sec = report.explored as f64 / secs.max(1e-9);
        rows.push(format!(
            concat!(
                "    {{\"config\": \"unbounded_parallel\", \"workers\": {}, ",
                "\"explored\": {}, \"pruned\": {}, \"truncated\": {}, ",
                "\"complete\": {}, \"seconds\": {:.6}, ",
                "\"schedules_per_sec\": {:.1}, \"speedup\": {:.2}}}"
            ),
            workers,
            report.explored,
            report.pruned,
            report.truncated,
            report.complete,
            secs,
            per_sec,
            base_secs / secs.max(1e-9),
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"schedule_exploration\",\n  \"workload\": \
         \"3 threads, 1 MVar, 1 throwTo\",\n  \"results\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_explore.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

fn main() {
    if std::env::var_os("BENCH_SMOKE").is_none() {
        let mut criterion = Criterion::default();
        bench_exploration(&mut criterion);
    }
    emit_json();
}
