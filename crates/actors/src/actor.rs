//! Actors: a mailbox, a thread, and an exit protocol.
//!
//! [`spawn_actor`] forks a thread whose body runs inside a *shell*
//! that implements the Erlang exit protocol on the paper's
//! primitives:
//!
//! * The shell runs **masked** (`block`), so asynchronous exceptions —
//!   `KillThread` from a supervisor or storm, `ExitSignal` from a
//!   linked peer — land only at interruptible points: mailbox waits,
//!   sleeps, blocked takes. This is the §7.4 discipline that lets the
//!   exit bookkeeping below run to completion on *every* termination
//!   path, the role `bracket` plays for scalar acquire/release.
//! * On any exit — normal return, synchronous crash, asynchronous
//!   kill — the shell classifies an [`ExitReason`], atomically marks
//!   the actor's control cell dead (taking the registered peer list
//!   *exactly once*), then notifies: linked peers get
//!   `throwTo(ExitSignal)` on abnormal exits, monitors get a [`Down`]
//!   message on every exit. Finally the original exception (if any) is
//!   re-raised with its original origin, so the runtime's (Throw GC)
//!   accounting and exit-reason counters see the true cause of death.
//! * Registration races are settled by the control cell: [`link`] /
//!   [`monitor`] against an already-dead actor observe the recorded
//!   reason and deliver immediately — never zero times, never twice.
//!
//! Trap-exits: an actor that wants to *observe* peer deaths instead
//! of dying with them masks (which the shell already provides) and
//! receives with [`Mailbox::recv_trapping`], which converts an
//! `ExitSignal` landing at the wait into a [`Signal::Exit`] message.

use conch_runtime::exception::{Exception, ExitReason};
use conch_runtime::ids::ThreadId;
use conch_runtime::io::Io;
use conch_runtime::mvar::MVar;
use conch_runtime::value::{FromValue, IntoValue, Value};
use conch_runtime::RaiseOrigin;

use crate::mailbox::Mailbox;

/// A monitor notification: the actor spawned as thread `from`
/// terminated with `reason`; `mref` is the reference the watcher chose
/// at [`monitor`] time (supervisors use the child's spec index).
#[derive(Debug, Clone, PartialEq)]
pub struct Down {
    /// Watcher-chosen monitor reference.
    pub mref: i64,
    /// Spawn sequence number of the dead actor's thread.
    pub from: u64,
    /// Why it died.
    pub reason: ExitReason,
}

impl IntoValue for Down {
    fn into_value(self) -> Value {
        Value::List(vec![
            Value::Int(self.mref),
            Value::Int(self.from as i64),
            self.reason.into_value(),
        ])
    }
}

impl FromValue for Down {
    fn from_value(v: Value) -> Option<Self> {
        match v {
            Value::List(xs) if xs.len() == 3 => {
                let mut it = xs.into_iter();
                Some(Down {
                    mref: it.next()?.as_int()?,
                    from: it.next()?.as_int()? as u64,
                    reason: ExitReason::from_value(it.next()?)?,
                })
            }
            _ => None,
        }
    }
}

/// What a trapping receive yields: an ordinary message, or a trapped
/// exit signal from a linked peer (see [`Mailbox::recv_trapping`]).
#[derive(Debug, Clone, PartialEq)]
pub enum Signal<M> {
    /// An ordinary mailbox message.
    Msg(M),
    /// A trapped `ExitSignal`.
    Exit {
        /// Spawn sequence number of the dead peer.
        from: u64,
        /// Why it died.
        reason: ExitReason,
    },
}

impl<M: IntoValue> IntoValue for Signal<M> {
    fn into_value(self) -> Value {
        match self {
            Signal::Msg(m) => Value::Left(Box::new(m.into_value())),
            Signal::Exit { from, reason } => Value::Right(Box::new(Value::Pair(
                Box::new(Value::Int(from as i64)),
                Box::new(reason.into_value()),
            ))),
        }
    }
}

impl<M: FromValue> FromValue for Signal<M> {
    fn from_value(v: Value) -> Option<Self> {
        match v {
            Value::Left(m) => Some(Signal::Msg(M::from_value(*m)?)),
            Value::Right(p) => match *p {
                Value::Pair(from, reason) => Some(Signal::Exit {
                    from: from.as_int()? as u64,
                    reason: ExitReason::from_value(*reason)?,
                }),
                _ => None,
            },
            _ => None,
        }
    }
}

/// A handle on a running (or dead) actor: its thread, its mailbox and
/// its control cell. Copyable; stale handles are harmless — `throwTo`
/// at a retired thread slot is a no-op, and the control cell remembers
/// the exit reason forever.
pub struct ActorRef<M> {
    tid: ThreadId,
    mailbox: Mailbox<M>,
    /// `Left(List(entries))` while alive — the registered links and
    /// monitors; `Right(reason)` once dead.
    ctl: MVar<Value>,
}

impl<M> Clone for ActorRef<M> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<M> Copy for ActorRef<M> {}

impl<M> std::fmt::Debug for ActorRef<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ActorRef({})", self.tid)
    }
}

impl<M> IntoValue for ActorRef<M> {
    fn into_value(self) -> Value {
        Value::List(vec![
            Value::ThreadId(self.tid),
            self.mailbox.into_value(),
            Value::MVar(self.ctl.id()),
        ])
    }
}

impl<M> FromValue for ActorRef<M> {
    fn from_value(v: Value) -> Option<Self> {
        match v {
            Value::List(xs) if xs.len() == 3 => {
                let mut it = xs.into_iter();
                Some(ActorRef {
                    tid: it.next()?.as_thread_id()?,
                    mailbox: Mailbox::from_value(it.next()?)?,
                    ctl: MVar::from_id(it.next()?.as_mvar_id()?),
                })
            }
            _ => None,
        }
    }
}

// -- control-cell encodings ------------------------------------------------

fn alive(entries: Vec<Value>) -> Value {
    Value::Left(Box::new(Value::List(entries)))
}

fn dead(reason: ExitReason) -> Value {
    Value::Right(Box::new(reason.into_value()))
}

fn link_entry(peer: ThreadId) -> Value {
    Value::Pair(Box::new(Value::Int(0)), Box::new(Value::ThreadId(peer)))
}

fn monitor_entry(mref: i64, watcher: Mailbox<Down>) -> Value {
    Value::Pair(
        Box::new(Value::Int(1)),
        Box::new(Value::Pair(
            Box::new(Value::Int(mref)),
            Box::new(watcher.into_value()),
        )),
    )
}

/// Registers `entry` in `ctl` if the actor is alive; otherwise returns
/// the recorded exit reason so the caller can deliver immediately.
/// Registered-or-immediate is exclusive, which is where "monitors fire
/// exactly once" comes from even when registration races death.
fn add_entry(ctl: MVar<Value>, entry: Value) -> Io<Option<ExitReason>> {
    Io::block(ctl.take().and_then(move |v| match v {
        Value::Left(entries) => {
            let mut xs = match *entries {
                Value::List(xs) => xs,
                _ => Vec::new(),
            };
            xs.push(entry);
            ctl.put(alive(xs)).map(|_| None)
        }
        Value::Right(reason) => {
            let r = ExitReason::from_value((*reason).clone());
            ctl.put(Value::Right(reason)).map(move |_| r)
        }
        other => panic!("actor control cell has shape {}", other.shape()),
    }))
}

/// Marks the actor dead and returns the peers to notify — or `None`
/// if some earlier exit already claimed them. The single transaction
/// is the exactly-once source for every notification.
fn claim_entries(ctl: MVar<Value>, reason: ExitReason) -> Io<Option<Vec<Value>>> {
    Io::block(ctl.take().and_then(move |v| match v {
        Value::Left(entries) => {
            let xs = match *entries {
                Value::List(xs) => xs,
                _ => Vec::new(),
            };
            ctl.put(dead(reason)).map(move |_| Some(xs))
        }
        already @ Value::Right(_) => ctl.put(already).map(|_| None),
        other => panic!("actor control cell has shape {}", other.shape()),
    }))
}

/// Delivers one death notice, retrying on interruption. The commit
/// inside (a `throwTo`, or a mailbox-send transaction) happens at most
/// once per call chain: an exception can only abort *before* the
/// commit, so the retry never double-delivers. A dying actor absorbs
/// further kills here — killing the already-dying is a no-op, as in
/// Erlang.
fn deliver_one(entry: Value, me: u64, reason: ExitReason) -> Io<()> {
    let (entry2, reason2) = (entry.clone(), reason.clone());
    let attempt = match entry {
        Value::Pair(tag, payload) => match (*tag, *payload) {
            (Value::Int(0), Value::ThreadId(peer)) => {
                if reason.is_abnormal() {
                    Io::throw_to(peer, Exception::exit_signal(me, reason))
                } else {
                    // Erlang: 'normal' exit signals do not disturb links.
                    Io::unit()
                }
            }
            (Value::Int(1), Value::Pair(mref, watcher)) => {
                let mref = mref.as_int().unwrap_or(0);
                match Mailbox::<Down>::from_value(*watcher) {
                    Some(mb) => mb.send(Down {
                        mref,
                        from: me,
                        reason,
                    }),
                    None => Io::unit(),
                }
            }
            _ => Io::unit(),
        },
        _ => Io::unit(),
    };
    attempt.catch(move |_| deliver_one(entry2, me, reason2))
}

fn deliver_all(mut entries: Vec<Value>, me: u64, reason: ExitReason) -> Io<()> {
    match entries.pop() {
        None => Io::unit(),
        Some(e) => {
            let r = reason.clone();
            deliver_one(e, me, r).then(deliver_all(entries, me, reason))
        }
    }
}

/// The exit path: claim the peer list (exactly once) and notify
/// everyone. Runs masked — the shell is inside `block`, and every
/// blocking step on this path is either retried (`deliver_one`) or
/// pre-commit-abortable (`claim_entries`' take).
fn notify_exit(ctl: MVar<Value>, me: u64, reason: ExitReason) -> Io<()> {
    claim_entries(ctl, reason.clone()).and_then(move |claimed| match claimed {
        Some(entries) => deliver_all(entries, me, reason),
        None => Io::unit(),
    })
}

fn classify(e: &Exception, origin: RaiseOrigin) -> ExitReason {
    if origin == RaiseOrigin::Async && e.is_kill_thread() {
        ExitReason::Killed
    } else {
        ExitReason::Crashed(Box::new(e.clone()))
    }
}

/// The shell wrapped around every actor body (see module docs).
fn actor_shell(ctl: MVar<Value>, body: Io<()>) -> Io<()> {
    Io::block(Io::my_thread_id().and_then(move |me| {
        body.map(|_| (ExitReason::Normal, None))
            .catch_info(|e, origin| {
                let reason = classify(&e, origin);
                let is_async = origin == RaiseOrigin::Async;
                Io::pure((reason, Some((e, is_async))))
            })
            .and_then(
                move |(reason, rethrow): (ExitReason, Option<(Exception, bool)>)| {
                    notify_exit(ctl, me.index(), reason).then(match rethrow {
                        None => Io::unit(),
                        Some((e, true)) => Io::rethrow(e, RaiseOrigin::Async),
                        Some((e, false)) => Io::rethrow(e, RaiseOrigin::Sync),
                    })
                },
            )
    }))
}

/// Spawns an actor with a fresh mailbox of the given capacity. The
/// body runs masked (see module docs); exceptions land only at its
/// interruptible points, mailbox waits above all.
pub fn spawn_actor<M, F>(capacity: i64, body: F) -> Io<ActorRef<M>>
where
    M: FromValue + IntoValue + 'static,
    F: FnOnce(Mailbox<M>) -> Io<()> + 'static,
{
    Mailbox::new(capacity).and_then(move |mb| spawn_actor_on(mb, body))
}

/// Spawns an actor consuming an existing mailbox — the shape shared
/// work queues use (several pool workers, one queue), and the shape
/// supervisors use to give a restarted child its predecessor's
/// unconsumed messages.
pub fn spawn_actor_on<M, F>(mb: Mailbox<M>, body: F) -> Io<ActorRef<M>>
where
    M: FromValue + IntoValue + 'static,
    F: FnOnce(Mailbox<M>) -> Io<()> + 'static,
{
    Io::new_mvar(alive(Vec::new())).and_then(move |ctl| {
        // Fork under `block` so the child *inherits* the mask: a kill
        // aimed at a freshly spawned actor is deferred until the body's
        // first interruptible point, by which time the shell's exit
        // bookkeeping is installed. Without this, a fast kill could land
        // before the shell's own `block` executes and the actor would
        // die without ever marking its control cell.
        Io::block(Io::fork(actor_shell(ctl, body(mb)))).map(move |tid| ActorRef {
            tid,
            mailbox: mb,
            ctl,
        })
    })
}

/// Links two actors: if either dies abnormally, the other receives an
/// `ExitSignal` via `throwTo` — death by default, a [`Signal::Exit`]
/// message if the survivor traps. If one is already dead with an
/// abnormal reason, the signal is delivered to the other immediately.
pub fn link<A, B>(a: &ActorRef<A>, b: &ActorRef<B>) -> Io<()> {
    let (ta, tb) = (a.tid, b.tid);
    let (ca, cb) = (a.ctl, b.ctl);
    add_entry(ca, link_entry(tb)).and_then(move |a_dead| {
        add_entry(cb, link_entry(ta)).and_then(move |b_dead| {
            let signal_b = match a_dead {
                Some(r) if r.is_abnormal() => {
                    Io::throw_to(tb, Exception::exit_signal(ta.index(), r))
                }
                _ => Io::unit(),
            };
            let signal_a = match b_dead {
                Some(r) if r.is_abnormal() => {
                    Io::throw_to(ta, Exception::exit_signal(tb.index(), r))
                }
                _ => Io::unit(),
            };
            signal_b.then(signal_a)
        })
    })
}

/// Registers `watcher` to receive a [`Down`] message (tagged `mref`)
/// when `target` dies — immediately, if it already has. Fires exactly
/// once per monitor call, on every schedule: registration and death
/// race through the same control-cell transaction.
pub fn monitor<A>(target: &ActorRef<A>, watcher: Mailbox<Down>, mref: i64) -> Io<()> {
    let (tid, ctl) = (target.tid, target.ctl);
    add_entry(ctl, monitor_entry(mref, watcher)).and_then(move |already| match already {
        None => Io::unit(),
        Some(reason) => deliver_one(monitor_entry(mref, watcher), tid.index(), reason),
    })
}

impl<M: FromValue + IntoValue + 'static> ActorRef<M> {
    /// The actor's thread id.
    pub fn tid(&self) -> ThreadId {
        self.tid
    }

    /// The actor's mailbox.
    pub fn mailbox(&self) -> Mailbox<M> {
        self.mailbox
    }

    /// Enqueues a message for this actor (blocking backpressure).
    pub fn send(&self, m: M) -> Io<()> {
        self.mailbox.send(m)
    }

    /// The recorded exit reason, or `None` while the actor lives.
    /// "Dead" here means the shell has *committed* its exit — the
    /// strongest fact the no-orphan audits poll for.
    pub fn exit_reason(&self) -> Io<Option<ExitReason>> {
        let ctl = self.ctl;
        Io::block(ctl.take().and_then(move |v| {
            let r = match &v {
                Value::Right(reason) => ExitReason::from_value((**reason).clone()),
                _ => None,
            };
            ctl.put(v).map(move |_| r)
        }))
    }

    /// Sends the untrappable `KillThread` (asynchronous).
    pub fn kill(&self) -> Io<()> {
        Io::throw_to(self.tid, Exception::kill_thread())
    }

    /// Sends `KillThread` with the §9 synchronous `throwTo`: returns
    /// once the exception is delivered (or the actor is already gone).
    pub fn kill_sync(&self) -> Io<()> {
        Io::throw_to_sync(self.tid, Exception::kill_thread())
    }

    /// Erases the message type, for heterogeneous child lists.
    pub fn erase(&self) -> ActorRef<Value> {
        ActorRef {
            tid: self.tid,
            mailbox: self.mailbox.cast(),
            ctl: self.ctl,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use conch_runtime::scheduler::Runtime;

    fn run<T: FromValue + IntoValue + 'static>(io: Io<T>) -> T {
        Runtime::new().run(io).unwrap()
    }

    /// Polls until the actor records an exit reason (tests only).
    fn wait_dead<M: FromValue + IntoValue + 'static>(a: ActorRef<M>) -> Io<ExitReason> {
        a.exit_reason().and_then(move |r| match r {
            Some(r) => Io::pure(r),
            None => Io::sleep(10).then(wait_dead(a)),
        })
    }

    #[test]
    fn normal_exit_records_reason() {
        let got = run(spawn_actor(1, |_mb: Mailbox<i64>| Io::unit()).and_then(wait_dead));
        assert_eq!(got, ExitReason::Normal);
    }

    #[test]
    fn crash_records_exception() {
        let got = run(spawn_actor(1, |_mb: Mailbox<i64>| {
            Io::throw(Exception::error_call("boom"))
        })
        .and_then(wait_dead));
        assert_eq!(
            got,
            ExitReason::Crashed(Box::new(Exception::error_call("boom")))
        );
    }

    #[test]
    fn kill_records_killed() {
        let got = run(spawn_actor(1, |mb: Mailbox<i64>| mb.recv().map(|_| ()))
            .and_then(|a| a.kill_sync().then(wait_dead(a))));
        assert_eq!(got, ExitReason::Killed);
    }

    #[test]
    fn monitor_fires_on_crash() {
        let got = run(Mailbox::<Down>::new(2).and_then(|watcher| {
            spawn_actor(1, |mb: Mailbox<i64>| {
                mb.recv().then(Io::throw(Exception::error_call("die")))
            })
            .and_then(move |a| {
                monitor(&a, watcher, 42)
                    .then(a.send(0))
                    .then(watcher.recv())
            })
        }));
        assert_eq!(got.mref, 42);
        assert!(got.reason.is_abnormal());
    }

    #[test]
    fn monitor_on_already_dead_actor_fires_immediately() {
        let got = run(Mailbox::<Down>::new(2).and_then(|watcher| {
            spawn_actor(1, |_mb: Mailbox<i64>| Io::unit()).and_then(move |a| {
                // Wait until the exit has committed, then register.
                wait_dead(a)
                    .then(monitor(&a, watcher, 7))
                    .then(watcher.recv())
            })
        }));
        assert_eq!(
            got,
            Down {
                mref: 7,
                from: got.from,
                reason: ExitReason::Normal
            }
        );
    }

    #[test]
    fn link_kills_non_trapping_peer() {
        // b waits forever; when a crashes, the exit signal cascades.
        let got = run(
            spawn_actor(1, |mb: Mailbox<i64>| mb.recv().map(|_| ())).and_then(|b| {
                spawn_actor(1, |_mb: Mailbox<i64>| {
                    Io::throw(Exception::error_call("crash"))
                })
                .and_then(move |a| link(&a, &b).then(wait_dead(b)))
            }),
        );
        match got {
            ExitReason::Crashed(e) => assert!(e.is_exit_signal()),
            other => panic!("expected crashed-by-signal, got {other:?}"),
        }
    }

    #[test]
    fn trapping_peer_survives_and_observes() {
        let got = run(spawn_actor(2, |mb: Mailbox<i64>| {
            // Trap: convert the incoming exit signal into a message and
            // report its reason tag on our own mailbox... instead we
            // just exit normally after observing it.
            mb.recv_trapping().map(|sig| {
                assert!(matches!(sig, Signal::Exit { .. }));
            })
        })
        .and_then(|b| {
            spawn_actor(1, |_mb: Mailbox<i64>| Io::throw(Exception::error_call("x")))
                .and_then(move |a| link(&a, &b).then(wait_dead(b)))
        }));
        // The trapping actor observed the signal and finished normally.
        assert_eq!(got, ExitReason::Normal);
    }

    #[test]
    fn normal_exit_does_not_signal_links() {
        let got = run(
            spawn_actor(1, |mb: Mailbox<i64>| mb.recv().map(|_| ())).and_then(|b| {
                spawn_actor(1, |_mb: Mailbox<i64>| Io::unit()).and_then(move |a| {
                    link(&a, &b)
                        .then(wait_dead(a))
                        // b must still be alive and serviceable.
                        .then(b.send(1))
                        .then(wait_dead(b))
                })
            }),
        );
        assert_eq!(got, ExitReason::Normal);
    }
}
