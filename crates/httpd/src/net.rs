//! The simulated network substrate.
//!
//! The paper's web-server case study ran on real sockets; here (per the
//! repro substitution in DESIGN.md) a [`Connection`] is a pair of `Chan`s
//! — request characters flowing to the server, response text flowing
//! back — and a [`Listener`] is a `Chan` of connections. Everything is
//! built from `MVar`s, so blocking accepts and reads are *interruptible
//! operations* in the §5.3 sense, which is precisely what lets the
//! server time them out.

use conch_combinators::Chan;
use conch_runtime::exception::Exception;
use conch_runtime::io::Io;
use conch_runtime::value::{FromValue, IntoValue, Value};

/// The in-band end-of-transmission sentinel a closing client pushes
/// onto its request channel (ASCII EOT). Never part of an HTTP
/// request, so the server can tell "peer hung up" from request bytes.
pub(crate) const EOT: char = '\u{4}';

/// The exception [`Connection::read_request_text`] raises when the
/// peer closed the connection mid-request.
pub fn connection_closed() -> Exception {
    Exception::custom("ConnectionClosed")
}

/// One simulated TCP connection.
///
/// The server reads request characters from `inbound` and writes the
/// rendered response to `outbound`; the client does the reverse.
#[derive(Debug, Clone, Copy)]
pub struct Connection {
    /// Client → server request characters.
    pub inbound: Chan<char>,
    /// Server → client response text (one message per response).
    pub outbound: Chan<String>,
}

impl Connection {
    /// Allocates a fresh connection (both channels empty).
    pub fn open() -> Io<Connection> {
        Chan::<char>::new().and_then(|inbound| {
            Chan::<String>::new().map(move |outbound| Connection { inbound, outbound })
        })
    }

    /// Client side: send raw request text, one character at a time.
    pub fn send_text(&self, text: impl Into<String>) -> Io<()> {
        let text: String = text.into();
        let inbound = self.inbound;
        let mut io = Io::unit();
        for c in text.chars().rev() {
            let rest = io;
            io = inbound.send(c).then(rest);
        }
        io
    }

    /// Client side: send text slowly — `gap` virtual microseconds between
    /// characters. This is the slowloris-style client the paper's
    /// timeouts defend against.
    ///
    /// The gap paces *between* characters: the first character goes out
    /// immediately, so `n` characters take `(n - 1) * gap` microseconds
    /// (an earlier version slept before the first character too, adding
    /// a spurious `gap` of latency to every request).
    pub fn send_text_slowly(&self, text: impl Into<String>, gap: u64) -> Io<()> {
        let chars: Vec<char> = text.into().chars().collect();
        let inbound = self.inbound;
        fn go(
            inbound: Chan<char>,
            mut chars: std::vec::IntoIter<char>,
            gap: u64,
            first: bool,
        ) -> Io<()> {
            match chars.next() {
                None => Io::unit(),
                Some(c) => {
                    let pace = if first { Io::unit() } else { Io::sleep(gap) };
                    pace.then(inbound.send(c))
                        .and_then(move |_| go(inbound, chars, gap, false))
                }
            }
        }
        go(inbound, chars.into_iter(), gap, true)
    }

    /// Client side: close the connection. The server's next (or
    /// in-progress) request read raises [`connection_closed`] instead of
    /// waiting forever for bytes that will never come.
    pub fn close(&self) -> Io<()> {
        self.inbound.send(EOT)
    }

    /// Client side: wait for the response text.
    pub fn read_response(&self) -> Io<String> {
        self.outbound.recv()
    }

    /// Server side: read request characters until the header-terminating
    /// blank line (`\r\n\r\n`), returning the accumulated text.
    ///
    /// # Errors (as `Io` exceptions)
    ///
    /// Raises [`connection_closed`] if the peer [`close`](Self::close)s
    /// the connection before the request is complete.
    pub fn read_request_text(&self) -> Io<String> {
        let inbound = self.inbound;
        fn go(inbound: Chan<char>, mut acc: String) -> Io<String> {
            inbound.recv().and_then(move |c| {
                if c == EOT {
                    return Io::throw(connection_closed());
                }
                acc.push(c);
                if acc.ends_with("\r\n\r\n") {
                    Io::pure(acc)
                } else {
                    go(inbound, acc)
                }
            })
        }
        go(inbound, String::new())
    }

    /// Server side: send the response text.
    pub fn send_response(&self, text: impl Into<String>) -> Io<()> {
        self.outbound.send(text.into())
    }
}

impl FromValue for Connection {
    fn from_value(v: Value) -> Option<Self> {
        match v {
            Value::Pair(i, o) => Some(Connection {
                inbound: Chan::from_value(*i)?,
                outbound: Chan::from_value(*o)?,
            }),
            _ => None,
        }
    }
}

impl IntoValue for Connection {
    fn into_value(self) -> Value {
        Value::Pair(
            Box::new(self.inbound.into_value()),
            Box::new(self.outbound.into_value()),
        )
    }
}

/// A keep-alive connection whose unit of transfer is a *frame* (one
/// simulated TCP segment carrying a string of bytes) instead of a
/// single character.
///
/// [`Connection`] moves one `MVar` handoff per byte — perfect for the
/// slowloris/timeout studies, hopeless at a million requests per run.
/// A `FrameConnection` carries a whole pipelined batch of requests in
/// one channel message, and the server replies with one frame per
/// flushed batch of responses, so the wire cost of `k` pipelined
/// requests is O(1) channel operations, not O(bytes). Framing does not
/// change the byte-stream semantics: frames concatenate to the same
/// stream the char model would carry, a request may span several
/// frames, and one frame may hold several requests.
///
/// Close is in-band, like [`Connection::close`]: the final frame ends
/// with the [`EOT`] sentinel (a piggybacked FIN), or a lone-EOT frame
/// is sent. EOT never appears mid-frame.
#[derive(Debug, Clone, Copy)]
pub struct FrameConnection {
    /// Client → server request frames.
    pub inbound: Chan<String>,
    /// Server → client response frames.
    pub outbound: Chan<String>,
}

impl FrameConnection {
    /// Allocates a fresh connection (both channels empty).
    pub fn open() -> Io<FrameConnection> {
        Chan::<String>::new().and_then(|inbound| {
            Chan::<String>::new().map(move |outbound| FrameConnection { inbound, outbound })
        })
    }

    /// Client side: send one frame of request bytes.
    pub fn send_frame(&self, text: impl Into<String>) -> Io<()> {
        let text: String = text.into();
        debug_assert!(!text.contains(EOT), "EOT may only terminate a frame");
        self.inbound.send(text)
    }

    /// Client side: send a final frame with the FIN piggybacked — the
    /// bytes followed by the in-band [`EOT`]. After this the server
    /// will serve every complete request in the stream and then close.
    pub fn send_frame_fin(&self, text: impl Into<String>) -> Io<()> {
        let mut text: String = text.into();
        debug_assert!(!text.contains(EOT), "EOT may only terminate a frame");
        text.push(EOT);
        self.inbound.send(text)
    }

    /// Client side: close without sending further bytes (a bare FIN).
    pub fn close(&self) -> Io<()> {
        self.inbound.send(EOT.to_string())
    }

    /// Client side: wait for the next response frame. One frame may
    /// carry several pipelined responses back to back.
    pub fn read_response_frame(&self) -> Io<String> {
        self.outbound.recv()
    }

    /// Server side: receive the next raw frame. Returns the payload
    /// bytes and whether the frame carried the FIN.
    pub fn recv_frame(&self) -> Io<(String, bool)> {
        self.inbound.recv().map(|mut frame| {
            let fin = frame.ends_with(EOT);
            if fin {
                frame.pop();
                debug_assert!(!frame.contains(EOT), "EOT may only terminate a frame");
            }
            (frame, fin)
        })
    }

    /// Server side: send one frame of response bytes. Channel sends
    /// never block, so a masked server loop can flush safely.
    pub fn send_response_frame(&self, text: impl Into<String>) -> Io<()> {
        self.outbound.send(text.into())
    }
}

impl FromValue for FrameConnection {
    fn from_value(v: Value) -> Option<Self> {
        match v {
            Value::Pair(i, o) => Some(FrameConnection {
                inbound: Chan::from_value(*i)?,
                outbound: Chan::from_value(*o)?,
            }),
            _ => None,
        }
    }
}

impl IntoValue for FrameConnection {
    fn into_value(self) -> Value {
        Value::Pair(
            Box::new(self.inbound.into_value()),
            Box::new(self.outbound.into_value()),
        )
    }
}

/// The accept queue: clients push fresh connections, the server pops
/// them. Accepting blocks on an `MVar` inside the `Chan`, so it is
/// interruptible — a graceful shutdown simply `throwTo`s the acceptor.
#[derive(Debug, Clone, Copy)]
pub struct Listener {
    accept_queue: Chan<Connection>,
}

impl Listener {
    /// Creates a listener with an empty accept queue.
    pub fn bind() -> Io<Listener> {
        Chan::<Connection>::new().map(|accept_queue| Listener { accept_queue })
    }

    /// Client side: open a connection to this listener.
    pub fn connect(&self) -> Io<Connection> {
        let q = self.accept_queue;
        Connection::open().and_then(move |conn| q.send(conn).map(move |_| conn))
    }

    /// Server side: wait for the next connection.
    pub fn accept(&self) -> Io<Connection> {
        self.accept_queue.recv()
    }

    /// Hands an already-open connection to the accept queue.
    ///
    /// This is the fault-injection entry point: a test (or
    /// `conch-faults`) can compose the connection's entire wire history
    /// — a full request, a truncated one, garbage, or a bare close —
    /// *before* the server ever sees it. Because `Chan` sends never
    /// block, the composition runs with no other thread runnable, so a
    /// schedule explorer pays no interleaving cost for the bytes
    /// themselves; the nondeterminism stays where it belongs, in which
    /// fault was chosen and how the server's threads interleave.
    pub fn inject(&self, conn: Connection) -> Io<()> {
        self.accept_queue.send(conn)
    }
}

impl FromValue for Listener {
    fn from_value(v: Value) -> Option<Self> {
        Some(Listener {
            accept_queue: Chan::from_value(v)?,
        })
    }
}

impl IntoValue for Listener {
    fn into_value(self) -> Value {
        self.accept_queue.into_value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use conch_combinators::timeout;
    use conch_runtime::prelude::*;

    #[test]
    fn request_text_round_trip() {
        let mut rt = Runtime::new();
        let prog = Connection::open().and_then(|c| {
            c.send_text("GET / HTTP/1.0\r\n\r\n")
                .then(c.read_request_text())
        });
        assert_eq!(rt.run(prog).unwrap(), "GET / HTTP/1.0\r\n\r\n");
    }

    #[test]
    fn response_round_trip() {
        let mut rt = Runtime::new();
        let prog = Connection::open().and_then(|c| {
            c.send_response("HTTP/1.0 200 OK\r\n\r\n")
                .then(c.read_response())
        });
        assert_eq!(rt.run(prog).unwrap(), "HTTP/1.0 200 OK\r\n\r\n");
    }

    #[test]
    fn slow_send_advances_clock() {
        let mut rt = Runtime::new();
        let prog = Connection::open().and_then(|c| {
            Io::fork(c.send_text_slowly("ab\r\n\r\n", 100)).then(c.read_request_text())
        });
        assert_eq!(rt.run(prog).unwrap(), "ab\r\n\r\n");
        // 6 characters paced at 100µs between characters: 500µs total.
        assert!(rt.clock() >= 500);
    }

    #[test]
    fn slow_send_paces_between_characters_not_before() {
        // Regression: the first character must go out at t=0, so a
        // single character costs no virtual time at all, and n
        // characters cost exactly (n-1)·gap.
        let mut rt = Runtime::new();
        let prog = Connection::open()
            .and_then(|c| Io::fork(c.send_text_slowly("x", 1_000_000)).then(c.inbound.recv()));
        assert_eq!(rt.run(prog).unwrap(), 'x');
        assert_eq!(
            rt.clock(),
            0,
            "gap must not be charged before the first char"
        );

        let mut rt = Runtime::new();
        let prog = Connection::open().and_then(|c| {
            Io::fork(c.send_text_slowly("ab\r\n\r\n", 100)).then(c.read_request_text())
        });
        assert_eq!(rt.run(prog).unwrap(), "ab\r\n\r\n");
        assert_eq!(
            rt.clock(),
            500,
            "6 chars at gap 100 must take exactly 500µs"
        );
    }

    #[test]
    fn closed_connection_raises_on_read() {
        let mut rt = Runtime::new();
        let prog = Connection::open().and_then(|c| {
            Io::fork(c.send_text("GET / HT").then(c.close()))
                .then(c.read_request_text())
                .map(|_| "completed".to_owned())
                .catch(|e| Io::pure(format!("{e}")))
        });
        assert_eq!(rt.run(prog).unwrap(), "ConnectionClosed");
    }

    #[test]
    fn reading_partial_request_can_time_out() {
        let mut rt = Runtime::new();
        // Client sends only half a request, then stalls forever.
        let prog = Connection::open().and_then(|c| {
            Io::fork(c.send_text("GET / HT")).then(timeout(1_000, c.read_request_text()))
        });
        assert_eq!(rt.run(prog).unwrap(), None);
    }

    #[test]
    fn listener_hands_out_connections() {
        let mut rt = Runtime::new();
        let prog = Listener::bind().and_then(|l| {
            // Client thread connects and sends; server accepts and reads.
            let client = l
                .connect()
                .and_then(|c| c.send_text("GET /a HTTP/1.0\r\n\r\n"));
            Io::fork(client)
                .then(l.accept())
                .and_then(|c| c.read_request_text())
        });
        assert_eq!(rt.run(prog).unwrap(), "GET /a HTTP/1.0\r\n\r\n");
    }

    #[test]
    fn accept_blocks_until_connect() {
        let mut rt = Runtime::new();
        let prog = Listener::bind().and_then(|l| {
            Io::fork(Io::sleep(50).then(l.connect().map(|_| ())))
                .then(l.accept())
                .map(|_| true)
        });
        assert!(rt.run(prog).unwrap());
        assert!(rt.clock() >= 50);
    }
}
