//! Offline stand-in for the `criterion` crate.
//!
//! Provides the measurement surface the workspace's benches use —
//! `Criterion`, `benchmark_group`, `bench_function`,
//! `bench_with_input`, `Throughput`, `BenchmarkId`, `black_box`, and
//! the `criterion_group!`/`criterion_main!` macros — with a simple
//! warm-up + timed-batch measurement loop and plain-text output.
//! No statistics beyond mean time per iteration are computed.

use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a computed value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation for a benchmark group (reported per-element).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark's display identifier.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Just the parameter, for single-function groups.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Anything usable as a benchmark name: `&str`, `String`, [`BenchmarkId`].
pub trait IntoBenchId {
    /// The rendered name.
    fn into_bench_id(self) -> String;
}

impl IntoBenchId for &str {
    fn into_bench_id(self) -> String {
        self.to_owned()
    }
}

impl IntoBenchId for String {
    fn into_bench_id(self) -> String {
        self
    }
}

impl IntoBenchId for BenchmarkId {
    fn into_bench_id(self) -> String {
        self.id
    }
}

/// The timing loop handed to bench closures.
pub struct Bencher {
    /// Mean nanoseconds per iteration, filled by [`Bencher::iter`].
    mean_ns: f64,
    iters: u64,
    measure_for: Duration,
}

impl Bencher {
    /// Times `routine`: a short warm-up, then batches until the
    /// measurement window closes.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..3 {
            black_box(routine());
        }
        let mut iters: u64 = 0;
        let start = Instant::now();
        loop {
            black_box(routine());
            iters += 1;
            if start.elapsed() >= self.measure_for {
                break;
            }
        }
        let total = start.elapsed();
        self.iters = iters;
        self.mean_ns = total.as_nanos() as f64 / iters as f64;
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotates subsequent benches with per-iteration throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Accepted for compatibility; the shim's sample count is its
    /// measurement window, so this is a no-op.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for compatibility; no-op.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_bench_id());
        let result = self.criterion.run_one(&full, self.throughput, &mut f);
        self.criterion.results.push(result);
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I, F>(&mut self, id: impl IntoBenchId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (reporting already happened per-bench).
    pub fn finish(&mut self) {}
}

/// One completed measurement.
#[derive(Clone, Debug)]
pub struct BenchResult {
    /// Full `group/bench` name.
    pub name: String,
    /// Mean nanoseconds per iteration.
    pub mean_ns: f64,
    /// Iterations measured.
    pub iters: u64,
}

/// The top-level benchmark driver.
pub struct Criterion {
    measure_for: Duration,
    results: Vec<BenchResult>,
}

impl Default for Criterion {
    fn default() -> Self {
        let ms = std::env::var("CRITERION_SHIM_MEASURE_MS")
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
            .unwrap_or(300);
        Criterion {
            measure_for: Duration::from_millis(ms),
            results: Vec::new(),
        }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            throughput: None,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = id.into_bench_id();
        let result = self.run_one(&name, None, &mut f);
        self.results.push(result);
        self
    }

    /// All measurements taken so far.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    fn run_one<F>(&mut self, name: &str, throughput: Option<Throughput>, f: &mut F) -> BenchResult
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            mean_ns: 0.0,
            iters: 0,
            measure_for: self.measure_for,
        };
        f(&mut b);
        let per_elem = match throughput {
            Some(Throughput::Elements(n)) | Some(Throughput::Bytes(n)) if n > 0 => {
                format!(
                    " ({:.1} ns/elem, {:.0} elem/s)",
                    b.mean_ns / n as f64,
                    n as f64 * 1e9 / b.mean_ns
                )
            }
            _ => String::new(),
        };
        println!(
            "bench {name:<50} {:>12.0} ns/iter [{} iters]{per_elem}",
            b.mean_ns, b.iters
        );
        BenchResult {
            name: name.to_owned(),
            mean_ns: b.mean_ns,
            iters: b.iters,
        }
    }
}

/// Declares a group-runner function over the listed bench functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something() {
        std::env::set_var("CRITERION_SHIM_MEASURE_MS", "5");
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        assert_eq!(c.results().len(), 1);
        assert!(c.results()[0].iters > 0);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        std::env::set_var("CRITERION_SHIM_MEASURE_MS", "5");
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Elements(10));
        g.bench_function("a", |b| b.iter(|| black_box(0)));
        g.bench_with_input(BenchmarkId::from_parameter(3), &3u64, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        g.finish();
        assert_eq!(c.results().len(), 2);
    }
}
