//! B1 — the §8.1 frame-collapse optimization (ablation).
//!
//! A mask-recursive loop (`block` re-entered through `unblock` in tail
//! position) runs with the collapse on and off. Expected shape: with the
//! collapse the loop runs in constant stack (max mask frames ≤ 2) and is
//! at least as fast; without it the stack grows linearly and time grows
//! superlinearly once frame pushes and the eventual unwind dominate.

use conch_bench::{mask_recursive_loop, run};
use conch_runtime::RuntimeConfig;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_mask_collapse(c: &mut Criterion) {
    let mut group = c.benchmark_group("mask_frame_collapse");
    for &n in &[100_u64, 1_000, 10_000] {
        group.bench_with_input(BenchmarkId::new("collapse_on", n), &n, |b, &n| {
            b.iter(|| {
                let cfg = RuntimeConfig::new().collapse_mask_frames(true);
                run(cfg, mask_recursive_loop(black_box(n)))
            })
        });
        group.bench_with_input(BenchmarkId::new("collapse_off", n), &n, |b, &n| {
            b.iter(|| {
                let cfg = RuntimeConfig::new().collapse_mask_frames(false);
                run(cfg, mask_recursive_loop(black_box(n)))
            })
        });
    }
    group.finish();

    // Report the stack shape once (the non-time half of B1).
    for &n in &[100_u64, 1_000, 10_000] {
        let (_, rt_on) = run(
            RuntimeConfig::new().collapse_mask_frames(true),
            mask_recursive_loop(n),
        );
        let (_, rt_off) = run(
            RuntimeConfig::new().collapse_mask_frames(false),
            mask_recursive_loop(n),
        );
        println!(
            "B1 shape: n={n}: max mask frames collapse_on={} collapse_off={} (collapsed pushes: {})",
            rt_on.stats().max_mask_frames,
            rt_off.stats().max_mask_frames,
            rt_on.stats().mask_frames_collapsed,
        );
    }
}

fn bench_plain_mask_entry(c: &mut Criterion) {
    // The raw cost of entering/leaving one block scope, amortized.
    c.bench_function("block_scope_entry_exit_x100", |b| {
        b.iter(|| {
            let io = conch_runtime::io::replicate(100, || {
                conch_runtime::Io::<()>::block(conch_runtime::Io::unit())
            });
            run(RuntimeConfig::new(), io)
        })
    });
}

criterion_group!(benches, bench_mask_collapse, bench_plain_mask_entry);
criterion_main!(benches);
