//! An access log fed through a `Chan` and drained by a logger thread.
//!
//! Demonstrates the channel-plus-worker idiom the paper's case study
//! relies on: request workers `send` log entries without blocking on
//! I/O, a dedicated logger thread drains them, and shutdown is a
//! `KillThread` at the logger — safe because `Chan::recv` blocks in an
//! interruptible `takeMVar` (§5.3).

use conch_combinators::Chan;
use conch_runtime::io::Io;
use conch_runtime::mvar::MVar;
use conch_runtime::value::{FromValue, IntoValue, Value};

/// One access-log entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogEntry {
    /// Request path.
    pub path: String,
    /// Response status.
    pub status: i64,
    /// Virtual timestamp (µs).
    pub at: i64,
}

impl LogEntry {
    /// Renders in common-log-ish format.
    pub fn render(&self) -> String {
        format!("{} \"{}\" {}", self.at, self.path, self.status)
    }
}

impl IntoValue for LogEntry {
    fn into_value(self) -> Value {
        (self.path, self.status, self.at).into_value()
    }
}

impl FromValue for LogEntry {
    fn from_value(v: Value) -> Option<Self> {
        let (path, status, at) = <(String, i64, i64)>::from_value(v)?;
        Some(LogEntry { path, status, at })
    }
}

/// A running access log: a channel to send entries to, the collected
/// lines, and the logger's thread id for shutdown.
#[derive(Debug, Clone, Copy)]
pub struct AccessLog {
    chan: Chan<LogEntry>,
    lines: MVar<Value>,
    logger: conch_runtime::ThreadId,
}

impl AccessLog {
    /// Starts the logger thread; entries accumulate in an MVar-held list.
    pub fn start() -> Io<AccessLog> {
        Chan::<LogEntry>::new().and_then(|chan| {
            Io::new_mvar::<Value>(Value::List(Vec::new())).and_then(move |lines| {
                fn drain(chan: Chan<LogEntry>, lines: MVar<Value>) -> Io<()> {
                    chan.recv().and_then(move |entry| {
                        conch_combinators::modify_mvar(lines, move |v: Value| {
                            let mut xs = match v {
                                Value::List(xs) => xs,
                                other => panic!("malformed log store: {other}"),
                            };
                            xs.push(Value::Str(entry.render()));
                            Io::pure(Value::List(xs))
                        })
                        .and_then(move |_| drain(chan, lines))
                    })
                }
                Io::fork(drain(chan, lines)).map(move |logger| AccessLog {
                    chan,
                    lines,
                    logger,
                })
            })
        })
    }

    /// Records one entry (timestamped with the virtual clock).
    pub fn record(&self, path: impl Into<String>, status: i64) -> Io<()> {
        let chan = self.chan;
        let path = path.into();
        Io::now().and_then(move |at| chan.send(LogEntry { path, status, at }))
    }

    /// Stops the logger thread (pending entries may be dropped — flush
    /// by sleeping first if exactness matters).
    pub fn shutdown(&self) -> Io<()> {
        conch_combinators::kill_thread(self.logger)
    }

    /// The rendered log lines so far.
    pub fn lines(&self) -> Io<Vec<String>> {
        conch_combinators::with_mvar(self.lines, |v: Value| {
            let xs = match v {
                Value::List(xs) => xs,
                other => panic!("malformed log store: {other}"),
            };
            Io::pure(
                xs.into_iter()
                    .map(|x| match x {
                        Value::Str(s) => s,
                        other => panic!("malformed log line: {other}"),
                    })
                    .collect::<Vec<String>>(),
            )
        })
    }
}

impl IntoValue for AccessLog {
    fn into_value(self) -> Value {
        Value::Pair(
            Box::new(self.chan.into_value()),
            Box::new(Value::Pair(
                Box::new(Value::MVar(self.lines.id())),
                Box::new(Value::ThreadId(self.logger)),
            )),
        )
    }
}

impl FromValue for AccessLog {
    fn from_value(v: Value) -> Option<Self> {
        match v {
            Value::Pair(chan, rest) => match *rest {
                Value::Pair(lines, logger) => Some(AccessLog {
                    chan: Chan::from_value(*chan)?,
                    lines: MVar::from_id(lines.as_mvar_id()?),
                    logger: logger.as_thread_id()?,
                }),
                _ => None,
            },
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use conch_runtime::prelude::*;

    #[test]
    fn entries_are_recorded_in_order() {
        let mut rt = Runtime::new();
        let prog = AccessLog::start().and_then(|log| {
            log.record("/a", 200)
                .then(log.record("/b", 404))
                .then(Io::sleep(100)) // let the logger drain
                .then(log.lines())
                .and_then(move |lines| log.shutdown().then(Io::pure(lines)))
        });
        let lines = rt.run(prog).unwrap();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"/a\" 200"), "{lines:?}");
        assert!(lines[1].contains("\"/b\" 404"), "{lines:?}");
    }

    #[test]
    fn concurrent_writers_all_land() {
        let mut rt = Runtime::new();
        let prog = AccessLog::start().and_then(|log| {
            conch_runtime::io::for_each(10, move |i| Io::fork(log.record(format!("/r{i}"), 200)))
                .then(Io::sleep(1_000))
                .then(log.lines())
        });
        let lines = rt.run(prog).unwrap();
        assert_eq!(lines.len(), 10);
    }

    #[test]
    fn shutdown_stops_draining() {
        let mut rt = Runtime::new();
        let prog = AccessLog::start().and_then(|log| {
            log.record("/before", 200)
                .then(Io::sleep(100))
                .then(log.shutdown())
                .then(Io::sleep(100))
                .then(log.record("/after", 200)) // sent but never drained
                .then(Io::sleep(100))
                .then(log.lines())
        });
        let lines = rt.run(prog).unwrap();
        assert_eq!(lines.len(), 1);
        assert!(lines[0].contains("/before"));
    }

    #[test]
    fn timestamps_use_virtual_clock() {
        let mut rt = Runtime::new();
        let prog = AccessLog::start().and_then(|log| {
            Io::sleep(500)
                .then(log.record("/timed", 200))
                .then(Io::sleep(100))
                .then(log.lines())
        });
        let lines = rt.run(prog).unwrap();
        assert!(lines[0].starts_with("500 "), "{lines:?}");
    }
}
