//! Finding, shrinking and replaying a masking bug by exhaustive
//! schedule exploration.
//!
//! Run with `cargo run --example explore_races`. Pass `--workers N` to
//! spread the exploration over `N` OS threads (default: available
//! parallelism) — the counts and the certificate below come out
//! identical for every `N`; only the wall-clock time changes. Pass
//! `--reduction {sleep,dpor}` to pick the schedule-space reduction
//! (default: sleep sets); with `dpor` the sleep-set baseline is run
//! too and the reduction ratio is printed.
//!
//! The victim is a hand-rolled resource guard with the classic mistake
//! §7.1 warns about: the **acquire runs outside `block`**, so an
//! asynchronous exception landing between the acquire and the start of
//! the protected region leaks the resource. Random stress tests hit
//! that window occasionally; the explorer hits it *always*, and hands
//! back a minimal, replayable schedule certificate.

use conch::explore::{props, CheckResult, ExploreConfig, Explorer, Reduction, TestCase};
use conch::prelude::*;
use conch_combinators::bracket;

/// The buggy guard: acquire ('a') unmasked, release ('r') afterwards.
/// Compare with [`conch_combinators::bracket`], which wraps the acquire
/// in `block`.
fn unmasked_acquire_guard() -> Io<i64> {
    Io::put_char('a').map(|_| 0_i64).and_then(|_| {
        Io::block(
            Io::unblock(Io::pure(1_i64))
                .catch(|e| Io::put_char('r').then(Io::throw(e)))
                .and_then(|r| Io::put_char('r').map(move |_| r)),
        )
    })
}

/// The correct §7.1 bracket over the same resource.
fn proper_bracket() -> Io<i64> {
    bracket(
        Io::put_char('a').map(|_| 0_i64),
        |_| Io::put_char('r'),
        |_| Io::pure(1_i64),
    )
}

/// Fork a worker running `body` and aim a `KillThread` at it; the
/// settling sleep ends the run once the worker finished or died.
fn under_fire(body: Io<i64>) -> Io<()> {
    Io::fork(body.map(|_| ()).catch(|_| Io::unit()))
        .and_then(|w| Io::throw_to(w, Exception::kill_thread()))
        .then(Io::sleep(1))
}

/// `--workers N` (0, the default, lets `check_parallel` pick the
/// machine's available parallelism) and `--reduction {sleep,dpor}`
/// from the command line.
fn cli_args() -> (usize, Reduction) {
    let mut workers = 0;
    let mut reduction = Reduction::SleepSets;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--workers" {
            let value = args.next().unwrap_or_else(|| {
                eprintln!("--workers needs a number");
                std::process::exit(2);
            });
            workers = value.parse().unwrap_or_else(|_| {
                eprintln!("--workers needs a number, got {value:?}");
                std::process::exit(2);
            });
        } else if arg == "--reduction" {
            reduction = match args.next().as_deref() {
                Some("sleep") => Reduction::SleepSets,
                Some("dpor") => Reduction::Dpor,
                other => {
                    eprintln!("--reduction needs 'sleep' or 'dpor', got {other:?}");
                    std::process::exit(2);
                }
            };
        }
    }
    (workers, reduction)
}

fn explorer_for(reduction: Reduction) -> Explorer {
    Explorer::with_config(ExploreConfig {
        reduction,
        ..ExploreConfig::default()
    })
}

fn main() {
    let (workers, reduction) = cli_args();
    let explorer = explorer_for(reduction);
    println!("reduction: {reduction:?}, workers: {workers}");

    // The correct bracket survives every schedule.
    println!("\n== proper bracket ==");
    let ok = explorer.check_parallel(workers, || {
        TestCase::new(
            under_fire(proper_bracket()),
            props::releases_balanced('a', 'r'),
        )
    });
    match &ok {
        CheckResult::Passed(report) => {
            println!("every acquire released on every schedule: {report}");
            if reduction == Reduction::Dpor {
                // Run the sleep-set baseline on the same program so the
                // summary can state the reduction directly.
                let baseline = explorer_for(Reduction::SleepSets)
                    .check_parallel(workers, || {
                        TestCase::new(
                            under_fire(proper_bracket()),
                            props::releases_balanced('a', 'r'),
                        )
                    })
                    .expect_pass()
                    .clone();
                println!(
                    "sleep-set baseline explored {}, DPOR explored {} — reduction ratio {:.2}x \
                     ({} races detected, {} backtracks installed)",
                    baseline.explored,
                    report.explored,
                    report.reduction_ratio(&baseline),
                    report.stats.races_detected,
                    report.stats.backtracks_installed,
                );
            }
        }
        CheckResult::Failed(f) => println!("unexpectedly failed: {}", f.message),
    }

    // The buggy guard does not.
    println!("\n== unmasked-acquire guard ==");
    let bad = explorer.check_parallel(workers, || {
        TestCase::new(
            under_fire(unmasked_acquire_guard()),
            props::releases_balanced('a', 'r'),
        )
    });
    let failure = bad.expect_fail();
    println!("violation found: {}", failure.message);
    println!(
        "  original certificate: {} ({} choices)",
        failure.original,
        failure.original.len()
    );
    println!(
        "  shrunk    certificate: {} ({} choices)",
        failure.schedule,
        failure.schedule.len()
    );
    println!("  coverage: {}", failure.report);

    // Replay the minimal certificate in a fresh Runtime: the leak is
    // reproduced deterministically from the choice list alone.
    let (outcome, check) = explorer.replay(
        TestCase::new(
            under_fire(unmasked_acquire_guard()),
            props::releases_balanced('a', 'r'),
        ),
        &failure.schedule,
    );
    println!(
        "\nreplayed schedule {} in a second runtime:",
        failure.schedule
    );
    println!(
        "  output: {:?} (the 'a' with no matching 'r' is the leak)",
        outcome.output
    );
    println!("  verdict: {}", check.unwrap_err());
}
