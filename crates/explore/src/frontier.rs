//! Work distribution for parallel schedule exploration.
//!
//! A [`WorkItem`] is a frozen, replayable description of an unexplored
//! region of the schedule tree: a choice prefix (plain `Send` data), the
//! sleep-set entries accumulated along it, the prefix's DFS key, and
//! optionally the branch point whose remaining alternatives the item
//! covers. Items partition the schedule space — every schedule belongs
//! to exactly one item's subtree — so per-run counters aggregated
//! across workers are independent of how items are distributed, and the
//! `Io`/`Value` `Rc` graphs never have to cross a thread: each worker
//! rebuilds its program from the factory and replays the prefix.
//!
//! The [`Frontier`] is the shared pool: a LIFO stack of items behind a
//! mutex/condvar (LIFO keeps freshly split subtrees — the deepest,
//! chunkiest work — at the top), the atomic run counters, the
//! DFS-earliest failure candidate, and the merged runtime statistics.
//!
//! # Determinism
//!
//! Which step boundaries become branch points is a function of the
//! executed path alone (see [`crate::driver`]), so the set of runs, the
//! per-point `sleeping` lists, and each run's step count are all
//! independent of how the tree is carved into items. Counters are sums
//! over that fixed set, hence bit-identical for any worker count. For
//! failures, every run is ranked by its [DFS key](dfs_key); workers keep
//! only the lexicographically smallest failing run and prune subtrees
//! that are strictly later, so the surviving candidate is exactly the
//! run the sequential DFS would have failed on first.

use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard};

use conch_runtime::stats::Stats;

use crate::driver::{Point, SleepEntry};
use crate::schedule::{Choice, Schedule};

/// Poison-tolerant lock: a worker that panicked mid-item has already
/// flagged the search as stopped (see [`Frontier::request_stop`]), and
/// the data under each mutex stays structurally sound, so survivors
/// take the lock anyway, observe the stop flag, and drain out.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// One node of a DFS stack: a branch point plus the index of the
/// alternative currently being explored below it.
///
/// A node may carry a *restriction*: an explicit child order (the
/// DPOR backtrack set, default choice first) that replaces "every
/// alternative in `alts` order". Restricted nodes are how each DPOR
/// round walks only the subtree its backtrack sets justify while
/// reusing the whole DFS machinery — sleep entries, donation, keys.
#[derive(Debug, Clone)]
pub(crate) struct Node {
    pub point: Point,
    /// For scheduling nodes: index into `point.alts` of the current
    /// choice. Unused for delivery nodes. Maintained even under a
    /// restriction, so [`key_index`](Node::key_index) always ranks by
    /// full-`alts` position and failure keys stay comparable across
    /// reduction modes.
    chosen_idx: usize,
    /// The explicit child order (thread ids) and the position of the
    /// current child in it; `None` explores all of `alts`.
    restrict: Option<(Vec<u64>, usize)>,
    /// The node's remaining alternatives were donated to another worker
    /// as a [`WorkItem`]; locally it is exhausted.
    pub sealed: bool,
}

impl Node {
    pub fn from_point(point: Point) -> Self {
        let chosen_idx = match point.chosen {
            Choice::Thread(t) => point
                .alts
                .iter()
                .position(|&(a, _)| a == t)
                .expect("recorded choice must be among its alternatives"),
            // Delivery and arm nodes track their current alternative in
            // `point.chosen` itself.
            Choice::Deliver(_) | Choice::Arm(_) => 0,
        };
        Node {
            point,
            chosen_idx,
            restrict: None,
            sealed: false,
        }
    }

    /// A scheduling node restricted to `order` (the executed default
    /// choice first, then the backtrack entries in canonical order).
    /// Every entry must name a thread in `point.alts`.
    pub fn restricted(point: Point, order: Vec<u64>) -> Self {
        debug_assert!(!point.is_delivery() && !point.is_arm());
        debug_assert_eq!(
            Some(order[0]),
            match point.chosen {
                Choice::Thread(t) => Some(t),
                _ => None,
            }
        );
        let chosen_idx = point
            .alts
            .iter()
            .position(|&(a, _)| a == order[0])
            .expect("restricted choice must be among the point's alternatives");
        Node {
            point,
            chosen_idx,
            restrict: Some((order, 0)),
            sealed: false,
        }
    }

    pub fn choice(&self) -> Choice {
        if self.point.is_delivery() || self.point.is_arm() {
            self.point.chosen
        } else {
            Choice::Thread(self.point.alts[self.chosen_idx].0)
        }
    }

    /// Visit the alternatives already explored at this node (to be
    /// slept in sibling subtrees). Delivery and arm alternatives are
    /// not threads, so they contribute no sleep entries.
    pub fn each_explored(&self, mut f: impl FnMut(SleepEntry)) {
        if self.point.is_delivery() || self.point.is_arm() {
            return;
        }
        match &self.restrict {
            None => {
                for &entry in &self.point.alts[..self.chosen_idx] {
                    f(entry);
                }
            }
            Some((order, pos)) => {
                for &tid in &order[..*pos] {
                    if let Some(&entry) = self.point.alts.iter().find(|&&(a, _)| a == tid) {
                        f(entry);
                    }
                }
            }
        }
    }

    /// Position of the current alternative in this node's exploration
    /// order: the DFS visits smaller key indices first, so
    /// concatenating them along a path yields a key that orders whole
    /// runs by sequential visit order (see [`dfs_key`]).
    pub fn key_index(&self) -> u32 {
        match self.point.chosen {
            Choice::Deliver(true) => 0,
            Choice::Deliver(false) => 1,
            Choice::Arm(a) => a as u32,
            Choice::Thread(_) => self.chosen_idx as u32,
        }
    }

    /// Move to the next unexplored alternative. Returns `false` when the
    /// node is exhausted (or its remainder was donated away).
    pub fn advance(&mut self) -> bool {
        if self.sealed {
            return false;
        }
        if self.point.is_delivery() {
            // Deliver-now is explored first; defer second; then done.
            if self.point.chosen == Choice::Deliver(true) {
                self.point.chosen = Choice::Deliver(false);
                true
            } else {
                false
            }
        } else if let Choice::Arm(a) = self.point.chosen {
            // Arms are explored in ascending order, 0 first.
            if a + 1 < self.point.arms {
                self.point.chosen = Choice::Arm(a + 1);
                true
            } else {
                false
            }
        } else if let Some((order, pos)) = &mut self.restrict {
            loop {
                *pos += 1;
                let Some(&tid) = order.get(*pos) else {
                    return false;
                };
                if self.point.sleeping.contains(&tid) {
                    continue;
                }
                let Some(i) = self.point.alts.iter().position(|&(a, _)| a == tid) else {
                    continue;
                };
                self.chosen_idx = i;
                return true;
            }
        } else {
            match (self.chosen_idx + 1..self.point.alts.len())
                .find(|&i| !self.point.sleeping.contains(&self.point.alts[i].0))
            {
                Some(i) => {
                    self.chosen_idx = i;
                    true
                }
                None => false,
            }
        }
    }
}

/// The DFS key of a recorded path: one entry per branch point — the
/// position of the taken alternative in that point's exploration order.
/// The sequential DFS visits runs in lexicographic key order, so
/// "found earlier sequentially" is exactly "lexicographically smaller".
pub(crate) fn dfs_key(record: &[Point]) -> Vec<u32> {
    record.iter().map(point_key).collect()
}

pub(crate) fn point_key(p: &Point) -> u32 {
    match p.chosen {
        Choice::Deliver(now) => {
            if now {
                0
            } else {
                1
            }
        }
        Choice::Arm(a) => a as u32,
        Choice::Thread(t) => {
            p.alts
                .iter()
                .position(|&(a, _)| a == t)
                .expect("recorded choice must be among its alternatives") as u32
        }
    }
}

/// A replayable region of the schedule tree, handed between workers.
/// Only plain data — no `Rc`, no program values.
pub(crate) struct WorkItem {
    /// Choices leading to the region's root, replayed verbatim.
    pub prefix: Vec<Choice>,
    /// Sleep-set entries accumulated along the prefix
    /// (`(script position, entry)` pairs, ascending).
    pub base_sleep: Vec<(usize, SleepEntry)>,
    /// DFS key of the prefix (one entry per prefix choice).
    pub base_key: Vec<u32>,
    /// The branch point whose remaining alternatives this item covers;
    /// `None` for the root item (the whole tree).
    pub node: Option<Node>,
}

impl WorkItem {
    pub fn root() -> Self {
        WorkItem {
            prefix: Vec::new(),
            base_sleep: Vec::new(),
            base_key: Vec::new(),
            node: None,
        }
    }
}

/// The DFS-earliest property failure seen so far.
pub(crate) struct FailureCandidate {
    pub key: Vec<u32>,
    /// The full (unshrunk) schedule of the failing run.
    pub schedule: Schedule,
    /// The property's message on that run.
    pub message: String,
}

struct QueueState {
    items: Vec<WorkItem>,
    /// Workers currently processing an item. The search is over when
    /// the queue is empty *and* nobody is busy (a busy worker may still
    /// donate new items).
    busy: usize,
}

/// One node of the DPOR run-path trie.
#[derive(Default)]
struct TrieNode {
    /// Outgoing edges: the choices actually taken from this node by
    /// registered runs.
    edges: Vec<(Choice, u32)>,
    /// Number of alternatives available at this node's branch point —
    /// `alts.len()` for scheduling points, 2 for delivery points; 0
    /// until some registered run passes through and reports it. Every
    /// run through a given choice prefix sees the same branch point
    /// there (branch-point structure is a function of the path), so
    /// the value is well-defined.
    candidates: u32,
    /// A registered run's choice path ends exactly here.
    run_end: bool,
    /// The node's backtrack set: thread ids some race analysis asked to
    /// force here, in canonical order (appended round by round, sorted
    /// within each round). Append-only, so the exploration order of
    /// already-present children never changes between rounds.
    backtrack: Vec<u64>,
    /// `true` iff the last round barrier grew the backtrack set of this
    /// node *or of some node below it* — i.e. the current round's tree
    /// differs from the previous round's somewhere in this subtree.
    /// Subtrees with `dirty_below == false` were walked to completion
    /// by an earlier round and have not changed since, so re-executing
    /// them contributes nothing; the round DFS skips them wholesale
    /// ([`Frontier::dpor_subtree_clean`]). The root starts dirty so the
    /// first round explores.
    dirty_below: bool,
}

/// Shared state specific to dynamic partial-order reduction
/// ([`Reduction::Dpor`](crate::explorer::Reduction)): the registry of
/// executed run paths, per-node backtrack sets, and the insertions
/// requested during the current round.
///
/// # Determinism
///
/// The search proceeds in *rounds*. Within a round the backtrack sets
/// are frozen, so the round's tree is fixed and the work-stealing DFS
/// over it is deterministic (the [`Frontier`] queue discipline). The
/// insertions a run requests are a pure function of its choice path,
/// and only the *first* registration of a path emits them, so the set
/// of pending insertions at the end of a round is a set union —
/// independent of worker count and timing. The barrier
/// ([`Frontier::dpor_apply_pending`]) folds that set in canonically
/// (grouped per node, new tids sorted ascending, appended), so the next
/// round's tree is again a deterministic function of the previous one.
/// By induction every counter and the DFS-earliest failure certificate
/// are bit-identical for any worker count.
struct DporShared {
    nodes: Vec<TrieNode>,
    /// Backtrack insertions requested during the current round:
    /// `(trie node, thread id)` pairs, applied at the round barrier.
    pending: Vec<(u32, u64)>,
}

/// Shared state of one (possibly parallel) exploration.
pub(crate) struct Frontier {
    workers: usize,
    queue: Mutex<QueueState>,
    available: Condvar,
    /// Workers currently blocked waiting for an item — the signal that
    /// busy workers should split their subtrees.
    starving: AtomicUsize,
    stopped: AtomicBool,
    has_failure: AtomicBool,
    explored: AtomicUsize,
    pruned: AtomicUsize,
    truncated: AtomicUsize,
    steps: AtomicU64,
    /// Wall-clock nanoseconds spent executing (replaying) schedules,
    /// summed over workers — telemetry only, never part of the
    /// determinism contract.
    replay_ns: AtomicU64,
    /// Wall-clock nanoseconds spent in race analysis (DPOR only).
    analysis_ns: AtomicU64,
    /// Faults injected across all explored runs: non-default oracle
    /// arms taken (`Choice::Arm(k)` with `k > 0`, the fault plane's
    /// "something goes wrong" arms). A sum over the fixed run set, so
    /// bit-identical for any worker count.
    faults: AtomicU64,
    failure: Mutex<Option<FailureCandidate>>,
    stats: Mutex<Stats>,
    dpor: Mutex<DporShared>,
    /// Next sample index to hand out (sampling strategies only). The
    /// counter partitions the fixed index set `0..max_schedules` across
    /// workers; each sample's behaviour is a pure function of its
    /// index, so the partition never changes the run set.
    next_sample: AtomicUsize,
    /// Hashes of every sampled schedule — the `distinct_schedules`
    /// counter. Shared (not per-worker) so duplicates across workers
    /// collapse the same way they do sequentially.
    sampled_hashes: Mutex<HashSet<u64>>,
}

impl Frontier {
    /// A frontier holding just the root item.
    pub fn new(workers: usize) -> Self {
        Frontier {
            workers,
            queue: Mutex::new(QueueState {
                items: vec![WorkItem::root()],
                busy: 0,
            }),
            available: Condvar::new(),
            starving: AtomicUsize::new(0),
            stopped: AtomicBool::new(false),
            has_failure: AtomicBool::new(false),
            explored: AtomicUsize::new(0),
            pruned: AtomicUsize::new(0),
            truncated: AtomicUsize::new(0),
            steps: AtomicU64::new(0),
            replay_ns: AtomicU64::new(0),
            analysis_ns: AtomicU64::new(0),
            faults: AtomicU64::new(0),
            failure: Mutex::new(None),
            stats: Mutex::new(Stats::default()),
            dpor: Mutex::new(DporShared {
                nodes: vec![TrieNode {
                    dirty_below: true,
                    ..TrieNode::default()
                }],
                pending: Vec::new(),
            }),
            next_sample: AtomicUsize::new(0),
            sampled_hashes: Mutex::new(HashSet::new()),
        }
    }

    /// Claim the next sample index, or `None` once `total` samples have
    /// been handed out (or a stop was requested). Sampling's equivalent
    /// of [`next_item`](Frontier::next_item): workers race on the
    /// counter, but since sample `i` behaves identically whoever runs
    /// it, the race is coverage-invisible.
    pub fn claim_sample(&self, total: usize) -> Option<usize> {
        if self.is_stopped() {
            return None;
        }
        let index = self.next_sample.fetch_add(1, Ordering::Relaxed);
        if index < total {
            Some(index)
        } else {
            None
        }
    }

    /// Record one sampled schedule's hash for the distinctness counter.
    pub fn note_schedule_hash(&self, hash: u64) {
        lock(&self.sampled_hashes).insert(hash);
    }

    /// Distinct schedules among the sampled ones.
    pub fn distinct_schedules(&self) -> usize {
        lock(&self.sampled_hashes).len()
    }

    /// Pop an item, or block until one is donated. Returns `None` when
    /// the search is over: stop requested, or queue empty with no busy
    /// worker left to donate. A returned item MUST be paired with a
    /// later [`finish_item`](Frontier::finish_item).
    pub fn next_item(&self) -> Option<WorkItem> {
        let mut q = lock(&self.queue);
        loop {
            if self.stopped.load(Ordering::Acquire) {
                return None;
            }
            if let Some(item) = q.items.pop() {
                q.busy += 1;
                return Some(item);
            }
            if q.busy == 0 {
                return None;
            }
            self.starving.fetch_add(1, Ordering::Relaxed);
            q = self.available.wait(q).unwrap_or_else(|e| e.into_inner());
            self.starving.fetch_sub(1, Ordering::Relaxed);
        }
    }

    /// Declare the item from the matching [`next_item`](Frontier::next_item)
    /// done (fully explored, donated away, or abandoned on stop).
    pub fn finish_item(&self) {
        let mut q = lock(&self.queue);
        q.busy -= 1;
        if q.busy == 0 {
            // Wake starving workers so they can observe termination.
            self.available.notify_all();
        }
    }

    /// Donate several items in one lock acquisition — a donor splitting
    /// for multiple starving thieves batches its chunks so each thief
    /// wakes to a multi-schedule region instead of contending for
    /// single splits.
    pub fn push_batch(&self, items: Vec<WorkItem>) {
        if items.is_empty() {
            return;
        }
        let n = items.len();
        let mut q = lock(&self.queue);
        q.items.extend(items);
        drop(q);
        if n == 1 {
            self.available.notify_one();
        } else {
            self.available.notify_all();
        }
    }

    /// Fold a worker's accumulated wall-clock telemetry into the
    /// totals (`replay` = schedule execution, `analysis` = race
    /// analysis; both in nanoseconds).
    pub fn add_timing(&self, replay_ns: u64, analysis_ns: u64) {
        self.replay_ns.fetch_add(replay_ns, Ordering::Relaxed);
        self.analysis_ns.fetch_add(analysis_ns, Ordering::Relaxed);
    }

    /// Accumulated (replay, analysis) wall-clock seconds.
    pub fn timing(&self) -> (f64, f64) {
        (
            self.replay_ns.load(Ordering::Relaxed) as f64 / 1e9,
            self.analysis_ns.load(Ordering::Relaxed) as f64 / 1e9,
        )
    }

    /// Should busy workers split their subtrees? True when some worker
    /// is starving; always false for a single-worker search, so the
    /// `workers = 1` engine is the sequential DFS, bit for bit.
    pub fn hungry(&self) -> bool {
        self.workers > 1 && self.starving.load(Ordering::Relaxed) > 0
    }

    /// How many workers are blocked waiting for an item right now — the
    /// batch size a donor should aim for when splitting its stack, so
    /// one donation pass feeds every thief at once.
    pub fn starving(&self) -> usize {
        if self.workers > 1 {
            self.starving.load(Ordering::Relaxed)
        } else {
            0
        }
    }

    /// Abort the search (a global cap was hit, or a worker panicked).
    pub fn request_stop(&self) {
        self.stopped.store(true, Ordering::Release);
        drop(lock(&self.queue));
        self.available.notify_all();
    }

    pub fn is_stopped(&self) -> bool {
        self.stopped.load(Ordering::Acquire)
    }

    /// Record one executed run. `choices` is the run's full schedule,
    /// from which the injected-fault count (non-default oracle arms) is
    /// tallied.
    pub fn note_run(&self, depth_hit: bool, run_steps: u64, choices: &[Choice]) {
        self.explored.fetch_add(1, Ordering::Relaxed);
        if depth_hit {
            self.truncated.fetch_add(1, Ordering::Relaxed);
        }
        self.steps.fetch_add(run_steps, Ordering::Relaxed);
        let faults = choices
            .iter()
            .filter(|c| matches!(c, Choice::Arm(a) if *a > 0))
            .count() as u64;
        if faults > 0 {
            self.faults.fetch_add(faults, Ordering::Relaxed);
        }
    }

    pub fn add_pruned(&self, n: usize) {
        if n > 0 {
            self.pruned.fetch_add(n, Ordering::Relaxed);
        }
    }

    pub fn explored(&self) -> usize {
        self.explored.load(Ordering::Relaxed)
    }

    pub fn pruned(&self) -> usize {
        self.pruned.load(Ordering::Relaxed)
    }

    pub fn truncated(&self) -> usize {
        self.truncated.load(Ordering::Relaxed)
    }

    pub fn steps(&self) -> u64 {
        self.steps.load(Ordering::Relaxed)
    }

    pub fn faults(&self) -> u64 {
        self.faults.load(Ordering::Relaxed)
    }

    /// Offer a failing run; kept only if DFS-earlier than the current
    /// candidate.
    pub fn offer_failure(&self, key: Vec<u32>, schedule: Schedule, message: String) {
        let mut slot = lock(&self.failure);
        let earlier = match slot.as_ref() {
            None => true,
            Some(best) => key < best.key,
        };
        if earlier {
            *slot = Some(FailureCandidate {
                key,
                schedule,
                message,
            });
            self.has_failure.store(true, Ordering::Release);
        }
    }

    pub fn has_failure(&self) -> bool {
        self.has_failure.load(Ordering::Acquire)
    }

    /// `true` iff a failure candidate exists and `prefix_key` is
    /// strictly DFS-later — no run under that prefix can precede the
    /// candidate, so its whole subtree may be skipped. (A prefix *of*
    /// the candidate's key compares smaller, so the path to the
    /// candidate itself is never pruned and DFS-earlier failures can
    /// still be found and take over.)
    pub fn prune_later(&self, prefix_key: &[u32]) -> bool {
        match lock(&self.failure).as_ref() {
            Some(best) => prefix_key > best.key.as_slice(),
            None => false,
        }
    }

    pub fn take_failure(&self) -> Option<FailureCandidate> {
        lock(&self.failure).take()
    }

    /// Register an executed run's choice path in the DPOR trie.
    /// `candidates[d]` is the number of alternatives at the run's `d`-th
    /// branch point. Returns `true` iff the path was not registered
    /// before — only then may the caller count the run, analyze it, and
    /// install its flags; a duplicate execution must contribute nothing.
    pub fn dpor_register_run(&self, choices: &[Choice], candidates: &[u32]) -> bool {
        debug_assert_eq!(choices.len(), candidates.len());
        let mut d = lock(&self.dpor);
        let mut node = 0usize;
        let mut created = false;
        for (c, &cand) in choices.iter().zip(candidates) {
            debug_assert!(
                d.nodes[node].candidates == 0 || d.nodes[node].candidates == cand,
                "branch-point structure must be a function of the choice prefix"
            );
            d.nodes[node].candidates = cand;
            let found = d.nodes[node]
                .edges
                .iter()
                .find(|&&(e, _)| e == *c)
                .map(|&(_, n)| n);
            node = match found {
                Some(n) => n as usize,
                None => {
                    let next = d.nodes.len() as u32;
                    d.nodes.push(TrieNode::default());
                    d.nodes[node].edges.push((*c, next));
                    created = true;
                    next as usize
                }
            };
        }
        let new = created || !d.nodes[node].run_end;
        d.nodes[node].run_end = true;
        new
    }

    /// Request backtrack insertions derived from one registered run:
    /// `inserts` holds `(branch-point index, thread id)` pairs, where
    /// the index refers to a position along `choices` (the run's path).
    /// The requests are buffered; they take effect only at the round
    /// barrier ([`dpor_apply_pending`](Frontier::dpor_apply_pending)).
    pub fn dpor_request_inserts(&self, choices: &[Choice], inserts: &[(usize, u64)]) {
        if inserts.is_empty() {
            return;
        }
        let mut d = lock(&self.dpor);
        // Map each path position to its trie node with one walk.
        let mut node_at = Vec::with_capacity(choices.len());
        let mut node = 0u32;
        for c in choices {
            node_at.push(node);
            node = d.nodes[node as usize]
                .edges
                .iter()
                .find(|&&(e, _)| e == *c)
                .map(|&(_, n)| n)
                .expect("insert requests must come from a registered run");
        }
        for &(point, tid) in inserts {
            d.pending.push((node_at[point], tid));
        }
    }

    /// Round barrier: fold the pending insertions into the trie's
    /// backtrack sets. Requests are grouped per node; tids already
    /// present are dropped; the genuinely new ones are appended in
    /// ascending order.
    /// Because the pending set is a union over first-registered runs,
    /// the result is independent of worker timing. Returns `true` iff
    /// any set grew — i.e. the next round has new work.
    ///
    /// The barrier also recomputes every node's
    /// [`dirty_below`](TrieNode::dirty_below) flag: a node whose set
    /// grew is dirty, and dirtiness propagates to every ancestor, so
    /// the next round's DFS can skip any registered subtree with
    /// `dirty_below == false` — its tree is unchanged since the round
    /// that drained it.
    pub fn dpor_apply_pending(&self) -> bool {
        let mut d = lock(&self.dpor);
        let mut pending = std::mem::take(&mut d.pending);
        pending.sort_unstable();
        pending.dedup();
        for n in &mut d.nodes {
            n.dirty_below = false;
        }
        let mut grew = false;
        for (node, tid) in pending {
            let n = &mut d.nodes[node as usize];
            if n.backtrack.contains(&tid) {
                continue;
            }
            // Sorted dedup'd pending means per-node tids arrive
            // ascending, so plain append keeps the canonical
            // (round added, tid) order.
            n.backtrack.push(tid);
            n.dirty_below = true;
            grew = true;
        }
        // Propagate dirtiness to ancestors. Registration appends child
        // nodes while walking root → leaf, so every child's index is
        // strictly greater than its parent's and one reverse scan sees
        // each child before its parent.
        for i in (0..d.nodes.len()).rev() {
            if d.nodes[i].dirty_below {
                continue;
            }
            let dirty = d.nodes[i]
                .edges
                .iter()
                .any(|&(_, c)| d.nodes[c as usize].dirty_below);
            d.nodes[i].dirty_below = dirty;
        }
        grew
    }

    /// `true` iff `script` names a registered trie node whose entire
    /// subtree is free of backtrack entries added at the last round
    /// barrier. Such a subtree is exactly the tree a previous round
    /// already drained: every path in it is registered, its sleep
    /// contexts are unchanged (child order is append-only), so
    /// re-executing it can register no new run, merge no stats, and
    /// request no insertion — the round DFS skips it wholesale instead
    /// of replaying every schedule in it.
    ///
    /// A script that walks off the trie is never clean: it denotes a
    /// path no registered run has taken, so this round must execute
    /// it. A node created *during* the current round is unreachable
    /// here — the DFS generates each script before any run through it
    /// registers, and never re-generates a script afterwards — so a
    /// successful walk always lands on a node some earlier round
    /// drained completely.
    pub fn dpor_subtree_clean(&self, script: &[Choice]) -> bool {
        let d = lock(&self.dpor);
        let mut node = 0usize;
        for c in script {
            match d.nodes[node].edges.iter().find(|&&(e, _)| e == *c) {
                Some(&(_, n)) => node = n as usize,
                None => return false,
            }
        }
        !d.nodes[node].dirty_below
    }

    /// The backtrack lists along an executed path, for stack expansion:
    /// entry `i` is the (possibly empty) backtrack set at branch point
    /// `from + i` of `choices`. Missing trie nodes (the path's new
    /// suffix, not yet registered when expansion happens first) yield
    /// empty lists.
    pub fn dpor_backtrack_lists(&self, choices: &[Choice], from: usize) -> Vec<Vec<u64>> {
        let d = lock(&self.dpor);
        let mut lists = Vec::with_capacity(choices.len().saturating_sub(from));
        let mut node = Some(0u32);
        for (i, c) in choices.iter().enumerate() {
            if i >= from {
                lists.push(match node {
                    Some(n) => d.nodes[n as usize].backtrack.clone(),
                    None => Vec::new(),
                });
            }
            node = node.and_then(|n| {
                d.nodes[n as usize]
                    .edges
                    .iter()
                    .find(|&&(e, _)| e == *c)
                    .map(|&(_, nx)| nx)
            });
        }
        lists
    }

    /// Reset the work queue for the next DPOR round: the whole
    /// (grown) tree is re-walked from the root. Counters, the trie,
    /// the failure candidate, and the stop flag all persist.
    pub fn start_round(&self) {
        let mut q = lock(&self.queue);
        debug_assert_eq!(q.busy, 0, "a round must be fully drained first");
        q.items = vec![WorkItem::root()];
        drop(q);
        self.available.notify_all();
    }

    /// Schedules pruned under DPOR: over every branch node of the run
    /// trie, the alternatives no run ever took. A deterministic
    /// function of the final trie, computed once at finalization.
    pub fn dpor_pruned(&self) -> usize {
        let d = lock(&self.dpor);
        d.nodes
            .iter()
            .map(|n| (n.candidates as usize).saturating_sub(n.edges.len()))
            .sum()
    }

    /// Total backtrack-set entries installed by the race analysis —
    /// the `backtracks_installed` telemetry.
    pub fn dpor_backtracks(&self) -> u64 {
        lock(&self.dpor)
            .nodes
            .iter()
            .map(|n| n.backtrack.len() as u64)
            .sum()
    }

    /// Fold a worker's accumulated runtime statistics into the total.
    pub fn merge_stats(&self, local: &Stats) {
        lock(&self.stats).merge(local);
    }

    pub fn total_stats(&self) -> Stats {
        lock(&self.stats).clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sched(s: &str) -> Schedule {
        s.parse().unwrap()
    }

    #[test]
    fn offer_failure_keeps_dfs_earliest() {
        let f = Frontier::new(4);
        f.offer_failure(vec![1, 0], sched("t1.t0"), "later".into());
        f.offer_failure(vec![0, 2], sched("t0.t2"), "earlier".into());
        f.offer_failure(vec![0, 3], sched("t0.t3"), "in between".into());
        let best = f.take_failure().unwrap();
        assert_eq!(best.key, vec![0, 2]);
        assert_eq!(best.message, "earlier");
    }

    #[test]
    fn prune_later_is_strict_and_prefix_safe() {
        let f = Frontier::new(4);
        assert!(!f.prune_later(&[5, 5]), "no candidate, nothing to prune");
        f.offer_failure(vec![1, 1, 0], sched("t1.t1.t0"), "x".into());
        // Strictly later prefixes are pruned.
        assert!(f.prune_later(&[1, 2]));
        assert!(f.prune_later(&[2]));
        // Extensions of the candidate's key are later too.
        assert!(f.prune_later(&[1, 1, 0, 0]));
        // Prefixes of (and paths before) the candidate are kept: a
        // DFS-earlier failure may still hide there.
        assert!(!f.prune_later(&[1, 1]));
        assert!(!f.prune_later(&[1, 0, 7]));
        assert!(!f.prune_later(&[0]));
    }

    #[test]
    fn queue_counts_busy_and_terminates_when_drained() {
        let f = Frontier::new(1);
        let item = f.next_item().expect("root item");
        assert!(item.node.is_none() && item.prefix.is_empty());
        // Donate one child, finish the root: child still pending.
        f.push_batch(vec![WorkItem::root()]);
        f.finish_item();
        assert!(f.next_item().is_some());
        f.finish_item();
        // Queue empty, nobody busy: the search is over.
        assert!(f.next_item().is_none());
    }

    #[test]
    fn stop_drains_immediately() {
        let f = Frontier::new(2);
        f.request_stop();
        assert!(f.next_item().is_none());
        assert!(f.is_stopped());
    }

    #[test]
    fn counters_accumulate() {
        let f = Frontier::new(1);
        f.note_run(false, 10, &[Choice::Thread(0), Choice::Arm(0)]);
        f.note_run(
            true,
            32,
            &[Choice::Arm(2), Choice::Deliver(true), Choice::Arm(1)],
        );
        f.add_pruned(3);
        assert_eq!(f.explored(), 2);
        assert_eq!(f.truncated(), 1);
        assert_eq!(f.steps(), 42);
        assert_eq!(f.pruned(), 3);
        // Arm 0 is the no-fault arm; only non-default arms count.
        assert_eq!(f.faults(), 2);
    }

    #[test]
    fn single_worker_is_never_hungry() {
        let f = Frontier::new(1);
        assert!(!f.hungry());
    }
}
