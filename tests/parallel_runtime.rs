//! Integration pins for the wall-clock parallel plane
//! (`conch_runtime::parallel`): whatever the OS-thread count, a
//! `MultiRuntime` run must be **bit-identical** — merged stats,
//! per-shard rendered traces, cross-shard drain order, final virtual
//! clocks. `os_threads = 1` is the semantic oracle; every other value
//! is just a faster way to compute the same run.
//!
//! The drain log of a small two-shard ping-pong is pinned byte-exactly
//! (the golden-trace discipline from `tests/golden_traces.rs` extended
//! to the channel plane). To regenerate after an *intentional*
//! semantics change:
//!
//! ```text
//! cargo test --test parallel_runtime -- --ignored --nocapture print_parallel_golden_values
//! ```

use conch_httpd::http::Response;
use conch_httpd::parallel::{wall_parallel_load, WallConfig};
use conch_httpd::server::{handler, Handler};
use conch_runtime::parallel::{MultiConfig, MultiRuntime, ShardCtx, ShardProgram};
use conch_runtime::prelude::*;
use conch_runtime::value::Value;

fn config(os_threads: usize, epoch_us: u64) -> MultiConfig {
    MultiConfig {
        epoch_us,
        os_threads,
        ..MultiConfig::default()
    }
}

// ---------------------------------------------------------------------
// The ring workload: cross-shard chatter, local forks, skewed sleeps
// ---------------------------------------------------------------------

/// One shard of the token ring: receive `recvs` tokens; for each,
/// fork a short-lived local thread, sleep a shard-skewed amount (so
/// the shards' virtual clocks genuinely diverge between barriers),
/// and forward the decremented token unless it is spent.
fn ring_lap(ctx: ShardCtx, recvs: u32, acc: i64) -> Io<Value> {
    if recvs == 0 {
        return Io::pure(Value::Int(acc));
    }
    let shard = ctx.shard();
    let shards = ctx.shards();
    ctx.clone().recv().and_then(move |v| {
        let n = v.as_int().expect("ring token");
        let forward = if n > 1 {
            ctx.send((shard + 1) % shards, Value::Int(n - 1))
        } else {
            Io::unit()
        };
        Io::fork(Io::sleep(5))
            .then(Io::sleep(u64::from(shard) * 7 + 3))
            .then(forward)
            .then(ring_lap(ctx, recvs - 1, acc + n))
    })
}

/// A 3-shard ring passing a 9-hop token: shard 0 injects, every shard
/// sees exactly three tokens, and the per-shard sums are fixed.
fn ring_programs() -> Vec<ShardProgram> {
    (0..3u16)
        .map(|shard| {
            Box::new(move |ctx: &ShardCtx| {
                let ctx = ctx.clone();
                let kickoff = if shard == 0 {
                    ctx.send(1, Value::Int(9))
                } else {
                    Io::unit()
                };
                kickoff.then(ring_lap(ctx, 3, 0))
            }) as ShardProgram
        })
        .collect()
}

#[test]
fn ring_reports_are_identical_at_any_os_thread_count() {
    let base = MultiRuntime::new(config(1, 100)).run(ring_programs());
    // Hops 9..1 land on shards 1,2,0 cyclically: 0 sums 7+4+1, 1 sums
    // 9+6+3, 2 sums 8+5+2.
    let sums: Vec<_> = base.shards.iter().map(|s| s.result.clone()).collect();
    assert_eq!(
        sums,
        vec![Ok(Value::Int(12)), Ok(Value::Int(18)), Ok(Value::Int(15))]
    );
    for os_threads in [2, 3, 8] {
        let par = MultiRuntime::new(config(os_threads, 100)).run(ring_programs());
        assert_eq!(par.drain_log, base.drain_log, "os_threads={os_threads}");
        assert_eq!(par.rounds, base.rounds, "os_threads={os_threads}");
        assert_eq!(par.messages, base.messages, "os_threads={os_threads}");
        for (i, (p, b)) in par.shards.iter().zip(base.shards.iter()).enumerate() {
            assert_eq!(
                p.result, b.result,
                "shard {i} result, os_threads={os_threads}"
            );
            assert_eq!(p.trace, b.trace, "shard {i} trace, os_threads={os_threads}");
            assert_eq!(p.clock, b.clock, "shard {i} clock, os_threads={os_threads}");
            assert_eq!(p.stats, b.stats, "shard {i} stats, os_threads={os_threads}");
            assert_eq!(
                p.output, b.output,
                "shard {i} console, os_threads={os_threads}"
            );
        }
    }
}

// ---------------------------------------------------------------------
// The httpd wall plane: merged StatsSnapshot is the oracle observable
// ---------------------------------------------------------------------

fn echo_factory() -> impl Fn() -> Handler + Send + Clone + 'static {
    || handler(|_req| Io::pure(Response::ok("hi")))
}

#[test]
fn wall_plane_merged_stats_are_identical_at_any_os_thread_count() {
    let cfg = |os_threads| WallConfig {
        shards: 4,
        clients: 200,
        requests_per_conn: 5,
        os_threads,
        ..WallConfig::default()
    };
    let base = wall_parallel_load(echo_factory(), cfg(1));
    assert_eq!(base.oks, 200 * 5);
    assert!(base.merged.conserved());
    assert_eq!(base.merged, base.host_merged());
    for os_threads in [2, 4] {
        let par = wall_parallel_load(echo_factory(), cfg(os_threads));
        assert_eq!(par.merged, base.merged, "os_threads={os_threads}");
        assert_eq!(par.per_shard, base.per_shard, "os_threads={os_threads}");
        assert_eq!(
            par.oks_per_shard, base.oks_per_shard,
            "os_threads={os_threads}"
        );
        assert_eq!(par.drain_log, base.drain_log, "os_threads={os_threads}");
        assert_eq!(par.rounds, base.rounds, "os_threads={os_threads}");
    }
}

// ---------------------------------------------------------------------
// Golden drain order: a pinned two-shard ping-pong
// ---------------------------------------------------------------------

/// The pinned workload: shard 0 serves a 4-hop ping-pong with shard 1.
/// Every hop is one cross-shard message, so the drain log records the
/// full conversation in `(epoch round, source, sequence)` order.
fn pingpong_programs() -> Vec<ShardProgram> {
    (0..2u16)
        .map(|shard| {
            Box::new(move |ctx: &ShardCtx| {
                let ctx = ctx.clone();
                let kickoff = if shard == 0 {
                    ctx.send(1, Value::Int(4))
                } else {
                    Io::unit()
                };
                kickoff.then(ring_lap(ctx, 2, 0))
            }) as ShardProgram
        })
        .collect()
}

#[test]
fn pingpong_drain_log_matches_golden() {
    let report = MultiRuntime::new(config(1, 100)).run(pingpong_programs());
    assert_eq!(
        report.shards[0].result,
        Ok(Value::Int(3 + 1)),
        "shard 0 sees hops 3 and 1"
    );
    assert_eq!(
        report.shards[1].result,
        Ok(Value::Int(4 + 2)),
        "shard 1 sees hops 4 and 2"
    );
    assert_eq!(
        report.drain_log,
        vec![
            "r1 s0.0->s1 data",
            "r2 s1.0->s0 data",
            "r3 s0.1->s1 data",
            "r4 s1.1->s0 data",
        ],
        "the cross-shard drain order is pinned byte-exactly"
    );
    assert_eq!(report.messages, 4);
    assert_eq!(report.rounds, 5);
    // Shards stop on their own virtual clocks: shard 0's last act is a
    // receive, shard 1 sleeps after its final token.
    assert_eq!(report.shards[0].clock, 8);
    assert_eq!(report.shards[1].clock, 20);
    // The per-shard traces are pure time-advances (all the chatter is
    // channel-plane, not intra-shard), pinned byte-exactly.
    assert_eq!(report.shards[0].trace, "$3$2$3");
    assert_eq!(report.shards[1].trace, "$5$5$5$5");
}

/// Regenerates the pinned values above (run with `--ignored`).
#[test]
#[ignore]
fn print_parallel_golden_values() {
    let report = MultiRuntime::new(config(1, 100)).run(pingpong_programs());
    println!(
        "results: {:?}",
        report.shards.iter().map(|s| &s.result).collect::<Vec<_>>()
    );
    println!("drain_log: {:#?}", report.drain_log);
    println!("messages: {}", report.messages);
    println!("rounds: {}", report.rounds);
    println!(
        "clocks: {:?}",
        report.shards.iter().map(|s| s.clock).collect::<Vec<_>>()
    );
    for (i, s) in report.shards.iter().enumerate() {
        println!("shard {i} trace:\n{}", s.trace);
    }
}
