//! A hierarchical timer wheel: the sleeper queue behind `Io::sleep`.
//!
//! The scheduler used to keep sleepers in a `BinaryHeap` ordered by
//! `(wake_at, seq)`. That is O(log n) per insert and per pop with
//! cache-hostile sift paths, and under `timeout`-and-kill churn the heap
//! additionally pays periodic O(n) compaction rebuilds. At the scale the
//! sharded httpd bench runs (100k+ concurrent sleepers, one `timeout`
//! per connection read), the heap is the hot structure.
//!
//! The wheel files each entry by its *absolute* wake time into one of
//! [`LEVELS`] levels of [`SLOTS`] slots; level `l` slots are `64^l`
//! microseconds wide, so 11 levels cover the full `u64` range and there
//! is no overflow list. Insert, cancel (via [`TimerWheel::retain`]) and
//! expiry are O(1) amortized: a per-level occupancy bitmap finds the
//! next non-empty slot with one `trailing_zeros`, and an entry cascades
//! to a finer level at most [`LEVELS`] times over its whole life.
//!
//! ## Determinism: the wheel pops in exactly the heap's order
//!
//! The scheduler's observable wake order is `(wake_at, seq)` — the heap
//! popped entries one at a time in that order. The wheel pops one
//! level-0 slot at a time instead, and a level-0 slot holds exactly the
//! entries of a single microsecond tick (see the invariant below), so
//! [`TimerWheel::pop_earliest_into`] returns *all* entries of the
//! earliest tick, sorted by `seq`. Consuming the popped batch in order
//! therefore reproduces the heap's sequence exactly; the scheduler's
//! `advance_clock` additionally wakes the whole batch before the next
//! scheduling decision, which is precisely what the heap's drain loop
//! (`while wake_at <= clock { pop }`) did.
//!
//! ## The cursor invariant
//!
//! `cursor` is the wheel's notion of "now": the wake time of the last
//! popped slot (the scheduler's clock never runs ahead of it, and
//! equals it whenever a live sleeper was woken). Every stored entry
//! satisfies `wake_at >= cursor`, and an entry files at the level of
//! the *highest* 6-bit group in which its wake time differs from the
//! cursor. Two consequences carry the whole design:
//!
//! 1. At its filing level, an entry's slot index is `>=` the cursor's
//!    index at that level (higher groups agree, the filing group is
//!    strictly greater), so scanning each level's bitmap from the
//!    cursor's index *upward* never needs wraparound.
//! 2. While the cursor sits inside some level-`l` window, that window's
//!    own level-`l` slot is empty: it was cascaded down the moment the
//!    cursor entered the window, and any later insert inside the window
//!    differs from the cursor only in lower groups, so it files at a
//!    finer level. Hence a level-0 slot is never shared by two ticks
//!    from different 64µs windows.
//!
//! Lazy invalidation is the caller's business: the scheduler leaves
//! interrupted sleepers' entries in place (they fail its validity check
//! when popped) and calls [`TimerWheel::retain`] to compact once stale
//! entries outnumber live ones — the same accounting the heap used.

/// log2 of the slots per level.
const SLOT_BITS: usize = 6;
/// Slots per level; one level-0 slot spans one virtual microsecond.
pub const SLOTS: usize = 1 << SLOT_BITS;
/// Levels in the wheel. `64^11 = 2^66 > u64::MAX`, so any wake time
/// files somewhere and no overflow list is needed.
pub const LEVELS: usize = 11;

/// One scheduled timer: an absolute wake time, the insertion sequence
/// number that breaks ties deterministically, and the caller's payload
/// (the scheduler stores the sleeping `ThreadId`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimerEntry<T> {
    /// Absolute virtual time (microseconds) at which to fire.
    pub wake_at: u64,
    /// Insertion sequence number; the deterministic tiebreak within a
    /// tick, identical to the old heap's second key.
    pub seq: u64,
    /// Caller data carried with the entry.
    pub payload: T,
}

/// The wheel itself. See the module docs for the invariants.
#[derive(Debug)]
pub struct TimerWheel<T> {
    /// `LEVELS * SLOTS` buckets, level-major. Entries within a bucket
    /// are in insertion order; because `seq` is monotone and cascades
    /// preserve relative order, buckets stay seq-sorted — the pop path
    /// still sorts defensively (cheap on already-sorted input).
    slots: Vec<Vec<TimerEntry<T>>>,
    /// One bit per slot and level: slot is non-empty.
    occupied: [u64; LEVELS],
    /// Total stored entries.
    len: usize,
    /// The wheel's "now" (see module docs). Rebased on insert-into-empty.
    cursor: u64,
    /// Reusable buffer for cascading a coarse slot without losing the
    /// bucket's allocation.
    cascade_scratch: Vec<TimerEntry<T>>,
}

impl<T> Default for TimerWheel<T> {
    fn default() -> Self {
        TimerWheel::new()
    }
}

impl<T> TimerWheel<T> {
    pub fn new() -> Self {
        TimerWheel {
            slots: (0..LEVELS * SLOTS).map(|_| Vec::new()).collect(),
            occupied: [0; LEVELS],
            len: 0,
            cursor: 0,
            cascade_scratch: Vec::new(),
        }
    }

    /// Number of stored entries (live *and* lazily-invalidated).
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Empties the wheel, keeping bucket allocations. O(occupied slots),
    /// so a reset between explorer schedules costs almost nothing.
    pub fn clear(&mut self) {
        for level in 0..LEVELS {
            let mut occ = self.occupied[level];
            while occ != 0 {
                let slot = occ.trailing_zeros() as usize;
                occ &= occ - 1;
                self.slots[level * SLOTS + slot].clear();
            }
            self.occupied[level] = 0;
        }
        self.len = 0;
        self.cursor = 0;
    }

    /// Files `entry`, where `now` is the caller's current time. `now`
    /// must be at or past the cursor unless the wheel is empty (in
    /// which case the cursor rebases to `now`). A plain `run` keeps
    /// `now == cursor` exactly — the clock and the cursor only advance
    /// together, to the wake time of a popped slot — but an epoch-synced
    /// shard (see `parallel`) may silently fast-forward its clock past
    /// the cursor at a barrier; filing only needs `wake_at >= cursor`,
    /// which `wake_at >= now >= cursor` implies.
    pub fn insert(&mut self, now: u64, entry: TimerEntry<T>) {
        if self.len == 0 {
            self.cursor = now;
        }
        debug_assert!(
            now >= self.cursor,
            "timer wheel cursor ran ahead of the caller's clock"
        );
        debug_assert!(entry.wake_at >= now, "inserting an already-due timer");
        self.file(entry);
    }

    /// Files an entry at the highest level where its wake time differs
    /// from the cursor (level 0 if equal). O(1).
    fn file(&mut self, e: TimerEntry<T>) {
        debug_assert!(e.wake_at >= self.cursor);
        let x = e.wake_at ^ self.cursor;
        let level = if x == 0 {
            0
        } else {
            (63 - x.leading_zeros()) as usize / SLOT_BITS
        };
        let idx = ((e.wake_at >> (level * SLOT_BITS)) & (SLOTS as u64 - 1)) as usize;
        self.slots[level * SLOTS + idx].push(e);
        self.occupied[level] |= 1 << idx;
        self.len += 1;
    }

    /// Pops the earliest non-empty tick: clears `out`, fills it with
    /// every entry of that tick sorted by `seq`, advances the cursor to
    /// the tick, and returns its wake time. Returns `None` (leaving
    /// `out` empty) if the wheel is empty. Amortized O(1) plus the
    /// batch size: each entry cascades at most [`LEVELS`] times over
    /// its lifetime, and each scan step is one bitmap probe.
    pub fn pop_earliest_into(&mut self, out: &mut Vec<TimerEntry<T>>) -> Option<u64> {
        out.clear();
        if self.len == 0 {
            return None;
        }
        let mut t = self.cursor;
        'scan: loop {
            for level in 0..LEVELS {
                let idx = ((t >> (level * SLOT_BITS)) & (SLOTS as u64 - 1)) as usize;
                let mask = self.occupied[level] & (!0u64 << idx);
                if mask == 0 {
                    continue;
                }
                let slot = mask.trailing_zeros() as usize;
                if level == 0 {
                    let wake = (t >> SLOT_BITS << SLOT_BITS) | slot as u64;
                    let bucket = &mut self.slots[slot];
                    debug_assert!(!bucket.is_empty());
                    self.len -= bucket.len();
                    out.append(bucket);
                    self.occupied[0] &= !(1u64 << slot);
                    self.cursor = wake;
                    out.sort_unstable_by_key(|e| e.seq);
                    debug_assert!(out.iter().all(|e| e.wake_at == wake));
                    return Some(wake);
                }
                // A coarse slot is due: advance to its window and
                // cascade its entries to finer levels (each strictly
                // descends), then rescan from level 0.
                let shift = level * SLOT_BITS;
                // Bits above the slot's own group (none at the top
                // level, where the group reaches past bit 63).
                let upper = if shift + SLOT_BITS >= 64 {
                    0
                } else {
                    (t >> (shift + SLOT_BITS)) << (shift + SLOT_BITS)
                };
                let slot_start = upper | ((slot as u64) << shift);
                // `slot == idx` can only be the transient mid-pop state
                // (module docs, invariant 2); then the window began at
                // or before `t` and the cursor must not move backward.
                let t2 = t.max(slot_start);
                let mut entries = std::mem::take(&mut self.cascade_scratch);
                std::mem::swap(&mut entries, &mut self.slots[level * SLOTS + slot]);
                self.occupied[level] &= !(1u64 << slot);
                self.len -= entries.len();
                self.cursor = t2;
                for e in entries.drain(..) {
                    self.file(e);
                }
                self.cascade_scratch = entries;
                t = t2;
                continue 'scan;
            }
            unreachable!("timer wheel has {} entries but no occupied slot", self.len);
        }
    }

    /// Returns the earliest stored wake time without popping anything —
    /// the scheduler's "when could a sleeper next fire?" probe for
    /// epoch-capped runs. Replays [`TimerWheel::pop_earliest_into`]'s
    /// level-ascending scan without cascading: the first occupied slot
    /// found is the earliest time window (finer levels cover the
    /// cursor's own window; coarser levels hold strictly later
    /// windows), so its minimum `wake_at` is the global minimum. O(1)
    /// bitmap probes plus one bucket scan.
    pub fn peek_earliest_wake(&self) -> Option<u64> {
        if self.len == 0 {
            return None;
        }
        let t = self.cursor;
        for level in 0..LEVELS {
            let idx = ((t >> (level * SLOT_BITS)) & (SLOTS as u64 - 1)) as usize;
            let mask = self.occupied[level] & (!0u64 << idx);
            if mask == 0 {
                continue;
            }
            let slot = mask.trailing_zeros() as usize;
            if level == 0 {
                return Some((t >> SLOT_BITS << SLOT_BITS) | slot as u64);
            }
            // A coarse slot: its entries share a window but not a tick;
            // the earliest is the bucket minimum.
            return self.slots[level * SLOTS + slot]
                .iter()
                .map(|e| e.wake_at)
                .min();
        }
        unreachable!("timer wheel has {} entries but no occupied slot", self.len);
    }

    /// Keeps only entries satisfying `f` — the compaction primitive for
    /// lazily-invalidated (cancelled) timers. Entries do not move
    /// between slots, so surviving wake order is unchanged. O(stored).
    pub fn retain(&mut self, mut f: impl FnMut(&TimerEntry<T>) -> bool) {
        let mut len = 0;
        for level in 0..LEVELS {
            let mut occ = self.occupied[level];
            while occ != 0 {
                let slot = occ.trailing_zeros() as usize;
                occ &= occ - 1;
                let bucket = &mut self.slots[level * SLOTS + slot];
                bucket.retain(&mut f);
                if bucket.is_empty() {
                    self.occupied[level] &= !(1u64 << slot);
                } else {
                    len += bucket.len();
                }
            }
        }
        self.len = len;
    }

    /// Structural audit: every occupancy bit matches its bucket, the
    /// length matches the stored total, and every entry sits at or
    /// above the cursor in a slot its wake time actually maps to. Used
    /// in `debug_assert!`s after compaction.
    pub fn check_consistent(&self) -> bool {
        let mut total = 0;
        for level in 0..LEVELS {
            for slot in 0..SLOTS {
                let bucket = &self.slots[level * SLOTS + slot];
                let bit = (self.occupied[level] >> slot) & 1 == 1;
                if bit == bucket.is_empty() {
                    return false;
                }
                for e in bucket {
                    let idx = ((e.wake_at >> (level * SLOT_BITS)) & (SLOTS as u64 - 1)) as usize;
                    if idx != slot || e.wake_at < self.cursor {
                        return false;
                    }
                }
                total += bucket.len();
            }
        }
        total == self.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wheel() -> TimerWheel<u64> {
        TimerWheel::new()
    }

    fn entry(wake_at: u64, seq: u64) -> TimerEntry<u64> {
        TimerEntry {
            wake_at,
            seq,
            payload: seq,
        }
    }

    /// Drains the wheel, returning (wake_at, seq) in pop order.
    fn drain(w: &mut TimerWheel<u64>) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let mut buf = Vec::new();
        while let Some(wake) = w.pop_earliest_into(&mut buf) {
            for e in &buf {
                assert_eq!(e.wake_at, wake);
                out.push((e.wake_at, e.seq));
            }
        }
        out
    }

    #[test]
    fn pops_in_wake_then_seq_order() {
        let mut w = wheel();
        // Deterministic pseudo-random wake times over a wide range.
        let mut x: u64 = 0x9e3779b97f4a7c15;
        let mut expect = Vec::new();
        for seq in 0..500 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let wake = x % 1_000_000;
            w.insert(0, entry(wake, seq));
            expect.push((wake, seq));
        }
        expect.sort_unstable();
        assert_eq!(w.len(), 500);
        assert_eq!(drain(&mut w), expect);
        assert!(w.is_empty());
        assert!(w.check_consistent());
    }

    #[test]
    fn same_tick_batch_pops_together_sorted_by_seq() {
        let mut w = wheel();
        w.insert(0, entry(70, 3));
        w.insert(0, entry(70, 1));
        w.insert(0, entry(5, 2));
        let mut buf = Vec::new();
        assert_eq!(w.pop_earliest_into(&mut buf), Some(5));
        assert_eq!(buf.len(), 1);
        assert_eq!(w.pop_earliest_into(&mut buf), Some(70));
        assert_eq!(buf.iter().map(|e| e.seq).collect::<Vec<_>>(), [1, 3]);
        assert_eq!(w.pop_earliest_into(&mut buf), None);
        assert!(buf.is_empty());
    }

    #[test]
    fn retain_false_empties_and_stays_consistent() {
        let mut w = wheel();
        for seq in 0..1_000 {
            w.insert(0, entry(seq * 37 + 1, seq));
        }
        assert_eq!(w.len(), 1_000);
        w.retain(|_| false);
        assert_eq!(w.len(), 0);
        assert!(w.check_consistent());
        let mut buf = Vec::new();
        assert_eq!(w.pop_earliest_into(&mut buf), None);
    }

    #[test]
    fn retain_keeps_order_of_survivors() {
        let mut w = wheel();
        for seq in 0..200 {
            w.insert(0, entry(1 + seq % 97, seq));
        }
        w.retain(|e| e.seq % 3 == 0);
        assert!(w.check_consistent());
        let popped = drain(&mut w);
        let mut expect: Vec<(u64, u64)> = (0..200)
            .filter(|s| s % 3 == 0)
            .map(|s| (1 + s % 97, s))
            .collect();
        expect.sort_unstable();
        assert_eq!(popped, expect);
    }

    #[test]
    fn cursor_rebases_when_emptied() {
        let mut w = wheel();
        w.insert(0, entry(1_000, 1));
        let mut buf = Vec::new();
        assert_eq!(w.pop_earliest_into(&mut buf), Some(1_000));
        // Empty again: a caller whose clock stayed behind may insert.
        w.insert(500, entry(501, 2));
        assert_eq!(w.pop_earliest_into(&mut buf), Some(501));
    }

    #[test]
    fn huge_deltas_file_at_top_levels_and_pop_in_order() {
        let mut w = wheel();
        w.insert(0, entry(u64::MAX, 1));
        w.insert(0, entry(1 << 40, 2));
        w.insert(0, entry(3, 3));
        assert_eq!(drain(&mut w), [(3, 3), (1 << 40, 2), (u64::MAX, 1)]);
    }

    #[test]
    fn interleaved_insert_pop_cascade() {
        let mut w = wheel();
        let mut buf = Vec::new();
        w.insert(0, entry(64, 1)); // level 1 from t=0
        w.insert(0, entry(66, 2)); // same level-1 slot
        assert_eq!(w.pop_earliest_into(&mut buf), Some(64));
        // Cursor is now 64; a later tick in the same window files fine.
        w.insert(64, entry(65, 3));
        assert_eq!(w.pop_earliest_into(&mut buf), Some(65));
        assert_eq!(w.pop_earliest_into(&mut buf), Some(66));
        assert!(w.check_consistent());
        assert!(w.is_empty());
    }

    #[test]
    fn peek_matches_pop_at_every_step() {
        let mut w = wheel();
        let mut x: u64 = 0x243f6a8885a308d3;
        for seq in 0..300 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            w.insert(0, entry(x % 500_000, seq));
        }
        let mut buf = Vec::new();
        loop {
            let peeked = w.peek_earliest_wake();
            let popped = w.pop_earliest_into(&mut buf);
            assert_eq!(peeked, popped);
            if popped.is_none() {
                break;
            }
        }
    }

    #[test]
    fn peek_does_not_mutate() {
        let mut w = wheel();
        w.insert(0, entry(1 << 20, 1));
        w.insert(0, entry(70, 2));
        assert_eq!(w.peek_earliest_wake(), Some(70));
        assert_eq!(w.peek_earliest_wake(), Some(70));
        assert!(w.check_consistent());
        assert_eq!(w.len(), 2);
    }

    #[test]
    fn insert_with_clock_ahead_of_cursor_files_fine() {
        let mut w = wheel();
        w.insert(0, entry(10, 1));
        let mut buf = Vec::new();
        assert_eq!(w.pop_earliest_into(&mut buf), Some(10));
        w.insert(10, entry(5_000, 2));
        // An epoch-synced caller's clock may run ahead of the cursor.
        w.insert(2_000, entry(2_500, 3));
        assert_eq!(drain(&mut w), [(2_500, 3), (5_000, 2)]);
    }

    #[test]
    fn clear_keeps_it_reusable() {
        let mut w = wheel();
        for seq in 0..100 {
            w.insert(0, entry(seq + 1, seq));
        }
        w.clear();
        assert!(w.is_empty());
        assert!(w.check_consistent());
        w.insert(7, entry(9, 1));
        let mut buf = Vec::new();
        assert_eq!(w.pop_earliest_into(&mut buf), Some(9));
    }
}
