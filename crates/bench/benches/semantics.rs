//! B7 — throughput of the executable semantics (§6): inner evaluation,
//! transition enumeration, random walks, and the E1 model-checking runs
//! with their state-space sizes.

use conch_semantics::engine::{check_safety, random_run, CheckResult, ExploreConfig, State};
use conch_semantics::eval::{eval, Outcome};
use conch_semantics::programs::{lock_scenario, naive_lock_update, safe_lock_update};
use conch_semantics::rules::{enabled_transitions, RuleConfig};
use conch_semantics::term::build::*;
use conch_semantics::term::PrimOp;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_inner_eval(c: &mut Criterion) {
    // Y-combinator factorial: a busy pure evaluation.
    let y = lam(
        "f",
        app(
            lam("x", app(var("f"), app(var("x"), var("x")))),
            lam("x", app(var("f"), app(var("x"), var("x")))),
        ),
    );
    let fact = app(
        y,
        lam(
            "rec",
            lam(
                "n",
                ite(
                    prim(PrimOp::Eq, var("n"), int(0)),
                    int(1),
                    prim(
                        PrimOp::Mul,
                        var("n"),
                        app(var("rec"), prim(PrimOp::Sub, var("n"), int(1))),
                    ),
                ),
            ),
        ),
    );
    let term = app(fact, int(10));
    c.bench_function("inner_eval_factorial_10", |b| {
        b.iter(|| {
            let mut fuel = 1_000_000_u64;
            match eval(&term, &mut fuel) {
                Outcome::Value(v) => v,
                other => panic!("unexpected {other:?}"),
            }
        })
    });
}

fn bench_transition_enumeration(c: &mut Criterion) {
    // A mid-size soup: the naive locking scenario a few steps in.
    let prog = lock_scenario(|m| naive_lock_update(m, 2));
    let state = State::new(prog, "");
    let rules = RuleConfig::default();
    c.bench_function("enabled_transitions_lock_scenario", |b| {
        b.iter(|| enabled_transitions(&state.soup, &[], &rules))
    });
}

fn bench_random_walk(c: &mut Criterion) {
    let prog = lock_scenario(|m| naive_lock_update(m, 2));
    let rules = RuleConfig::default();
    c.bench_function("random_walk_500_steps", |b| {
        let mut seed = 0_u64;
        b.iter(|| {
            seed += 1;
            random_run(&State::new(prog.clone(), ""), seed, 500, &rules)
        })
    });
}

fn bench_model_checking(c: &mut Criterion) {
    let cfg = ExploreConfig::default();
    let mut group = c.benchmark_group("model_check_e1");
    group.sample_size(10);
    group.bench_function("naive_until_race", |b| {
        b.iter(|| {
            let init = State::new(lock_scenario(|m| naive_lock_update(m, 2)), "");
            let r = check_safety(&init, &cfg, |s| s.is_deadlocked(&cfg.rules));
            assert!(matches!(r, CheckResult::Violation { .. }));
            r
        })
    });
    group.bench_function("safe_exhaustive", |b| {
        b.iter(|| {
            let init = State::new(lock_scenario(|m| safe_lock_update(m, 2)), "");
            let r = check_safety(&init, &cfg, |s| s.is_deadlocked(&cfg.rules));
            assert!(r.is_safe());
            r
        })
    });
    group.finish();

    // Report state-space sizes once (the B7 table).
    for (name, prog) in [
        ("naive", lock_scenario(|m| naive_lock_update(m, 2))),
        ("safe", lock_scenario(|m| safe_lock_update(m, 2))),
    ] {
        let init = State::new(prog, "");
        if let CheckResult::Safe { states, complete } = check_safety(&init, &cfg, |_| false) {
            println!("B7 state space: {name} locking = {states} states (complete: {complete})");
        }
    }
}

criterion_group!(
    benches,
    bench_inner_eval,
    bench_transition_enumeration,
    bench_random_walk,
    bench_model_checking
);
criterion_main!(benches);
