//! B2 — asynchronous vs synchronous `throwTo` (§9).
//!
//! Expected shape: the asynchronous design wins on fire-and-forget
//! (no rendezvous with the target), while a single kill-and-confirm
//! round costs about the same in both designs (the asynchronous one
//! pays for the confirmation MVar what the synchronous one pays for the
//! rendezvous).

use conch_bench::{kill_round_async, kill_round_sync, run, spray_async};
use conch_runtime::prelude::*;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_kill_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("kill_and_confirm_round");
    group.bench_function("async_throwto", |b| {
        b.iter(|| run(RuntimeConfig::new(), kill_round_async()))
    });
    group.bench_function("sync_throwto", |b| {
        b.iter(|| run(RuntimeConfig::new(), kill_round_sync()))
    });
    group.finish();
}

fn bench_fire_and_forget(c: &mut Criterion) {
    let mut group = c.benchmark_group("fire_and_forget");
    for &n in &[10_u64, 100] {
        group.bench_with_input(BenchmarkId::new("async_spray", n), &n, |b, &n| {
            b.iter(|| run(RuntimeConfig::new(), spray_async(n)))
        });
        group.bench_with_input(BenchmarkId::new("sync_spray_via_fork", n), &n, |b, &n| {
            // The paper: "the asynchronous version can easily be
            // implemented in terms of the synchronous one simply by
            // forking a new thread" — measure that encoding's cost.
            b.iter(|| {
                let io = sync_spray_via_fork(n);
                run(RuntimeConfig::new(), io)
            })
        });
    }
    group.finish();
}

fn sync_spray_via_fork(n: u64) -> Io<()> {
    fn resilient(lives: u64) -> Io<()> {
        if lives == 0 {
            Io::unit()
        } else {
            Io::<()>::unblock(Io::compute(u64::MAX)).catch(move |_| resilient(lives - 1))
        }
    }
    Io::<ThreadId>::block(Io::fork(resilient(n))).and_then(move |v| {
        conch_runtime::io::replicate(n, move || {
            Io::fork(Io::throw_to_sync(v, Exception::kill_thread())).then(Io::yield_now())
        })
    })
}

fn bench_throw_to_dead(c: &mut Criterion) {
    // Trivial-success path: throwing at finished threads.
    c.bench_function("throwto_dead_thread_x100", |b| {
        b.iter(|| {
            let io = Io::fork(Io::unit()).and_then(|t| {
                Io::sleep(1).then(conch_runtime::io::replicate(100, move || {
                    Io::throw_to(t, Exception::kill_thread())
                }))
            });
            run(RuntimeConfig::new(), io)
        })
    });
}

criterion_group!(
    benches,
    bench_kill_round,
    bench_fire_and_forget,
    bench_throw_to_dead
);
criterion_main!(benches);
