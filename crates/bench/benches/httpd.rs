//! S1 — throughput of the §11 fault-tolerant server under different
//! client mixes. Expected shape: well-behaved load scales linearly in
//! the number of requests; hostile clients (stallers) cost one timeout
//! each but do not block other requests (each connection has its own
//! thread).

use conch_httpd::client::{good_client, stalling_client};
use conch_httpd::http::Response;
use conch_httpd::net::Listener;
use conch_httpd::server::{handler, start, Handler, ServerConfig};
use conch_runtime::io::{for_each, sequence};
use conch_runtime::prelude::*;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn routes() -> Handler {
    handler(|_| Io::pure(Response::ok("ok")))
}

fn serve_n_good(n: u64) -> Io<()> {
    Listener::bind().and_then(move |l| {
        start(l, routes(), ServerConfig::default()).and_then(move |server| {
            Io::new_empty_mvar::<i64>().and_then(move |report| {
                for_each(n, move |i| {
                    Io::fork(good_client(l, format!("/{i}"), report))
                })
                .then(sequence((0..n).map(|_| report.take()).collect()))
                .and_then(move |codes| {
                    assert!(codes.iter().all(|c| *c == 200));
                    server.shutdown().then(server.drain())
                })
            })
        })
    })
}

fn serve_mixed(good: u64, stallers: u64) -> Io<()> {
    let total = good + stallers;
    Listener::bind().and_then(move |l| {
        let cfg = ServerConfig {
            read_timeout: 1_000,
            ..ServerConfig::default()
        };
        start(l, routes(), cfg).and_then(move |server| {
            Io::new_empty_mvar::<i64>().and_then(move |report| {
                for_each(good, move |i| {
                    Io::fork(good_client(l, format!("/{i}"), report))
                })
                .then(for_each(stallers, move |_| {
                    Io::fork(stalling_client(l, report))
                }))
                .then(sequence((0..total).map(|_| report.take()).collect()))
                .and_then(move |_| server.shutdown().then(server.drain()))
            })
        })
    })
}

fn bench_good_load(c: &mut Criterion) {
    let mut group = c.benchmark_group("httpd_good_requests");
    for &n in &[1_u64, 10, 50] {
        group.throughput(Throughput::Elements(n));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut rt = Runtime::new();
                rt.run(serve_n_good(n)).expect("server run");
            })
        });
    }
    group.finish();
}

fn bench_mixed_load(c: &mut Criterion) {
    let mut group = c.benchmark_group("httpd_mixed_load");
    group.sample_size(20);
    for &(good, stall) in &[(10_u64, 0_u64), (10, 5), (10, 10)] {
        group.bench_with_input(
            BenchmarkId::new("good_vs_stallers", format!("{good}g_{stall}s")),
            &(good, stall),
            |b, &(good, stall)| {
                b.iter(|| {
                    let mut rt = Runtime::new();
                    rt.run(serve_mixed(good, stall)).expect("server run");
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_good_load, bench_mixed_load);
criterion_main!(benches);
