//! Structural congruence — Figure 3 of the paper.
//!
//! Figure 3 defines ≡ as the least congruence containing commutativity
//! and associativity of `|`, exchange of adjacent restrictions (Swap),
//! scope extrusion (Extrude), and α-conversion (Alpha); rule (Equiv)
//! lets transitions fire up to ≡.
//!
//! We realize ≡ computationally by *flattening* a [`ProcTerm`] to a
//! [`Soup`]: the flattening forgets the tree structure of `|` (Comm,
//! Assoc) and the position of `ν` binders (Swap, Extrude), and renames
//! every ν-bound name to a canonical fresh name in a deterministic order
//! (Alpha). Two process terms are structurally congruent iff their
//! canonical soups are equal — [`congruent`].
//!
//! Free (unrestricted) names keep their identity, as they must: `⟨M⟩t ≢
//! ⟨M⟩u` when `t`, `u` are both free.

use std::collections::BTreeMap;
use std::rc::Rc;

use crate::process::{Mark, ProcTerm, Soup, ThreadState};
use crate::term::{Exc, MVarName, Term, TidName};

/// An atom of a flattened process: one non-composite Figure 2 process.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Atom {
    Thread(TidName, Rc<Term>, Mark),
    Dead(TidName),
    EmptyMVar(MVarName),
    FullMVar(MVarName, Rc<Term>),
    InFlight(TidName, Exc),
}

/// A renaming of ν-bound names to canonical indices.
#[derive(Debug, Default)]
struct Renaming {
    tids: BTreeMap<TidName, TidName>,
    mvars: BTreeMap<MVarName, MVarName>,
}

/// Flattens a process term into its atoms, renaming each ν-bound name to
/// a canonical fresh name at binding time (outermost-leftmost order).
fn flatten(
    p: &ProcTerm,
    ren: &mut Renaming,
    next_tid: &mut u32,
    next_mvar: &mut u32,
    out: &mut Vec<Atom>,
) {
    match p {
        ProcTerm::Thread(t, m, mark) => {
            let t = ren.tids.get(t).copied().unwrap_or(*t);
            out.push(Atom::Thread(t, rename_term(m, ren), *mark));
        }
        ProcTerm::Dead(t) => {
            let t = ren.tids.get(t).copied().unwrap_or(*t);
            out.push(Atom::Dead(t));
        }
        ProcTerm::EmptyMVar(m) => {
            let m = ren.mvars.get(m).copied().unwrap_or(*m);
            out.push(Atom::EmptyMVar(m));
        }
        ProcTerm::FullMVar(m, v) => {
            let m2 = ren.mvars.get(m).copied().unwrap_or(*m);
            out.push(Atom::FullMVar(m2, rename_term(v, ren)));
        }
        ProcTerm::InFlight(t, e) => {
            let t = ren.tids.get(t).copied().unwrap_or(*t);
            out.push(Atom::InFlight(t, e.clone()));
        }
        ProcTerm::Par(a, b) => {
            flatten(a, ren, next_tid, next_mvar, out);
            flatten(b, ren, next_tid, next_mvar, out);
        }
        ProcTerm::NuTid(t, body) => {
            let fresh = TidName(*next_tid);
            *next_tid += 1;
            let shadowed = ren.tids.insert(*t, fresh);
            flatten(body, ren, next_tid, next_mvar, out);
            match shadowed {
                Some(old) => {
                    ren.tids.insert(*t, old);
                }
                None => {
                    ren.tids.remove(t);
                }
            }
        }
        ProcTerm::NuMVar(m, body) => {
            let fresh = MVarName(*next_mvar);
            *next_mvar += 1;
            let shadowed = ren.mvars.insert(*m, fresh);
            flatten(body, ren, next_tid, next_mvar, out);
            match shadowed {
                Some(old) => {
                    ren.mvars.insert(*m, old);
                }
                None => {
                    ren.mvars.remove(m);
                }
            }
        }
    }
}

/// Applies a name renaming throughout a term (names occur as `MVarRef`
/// and `TidRef` leaves).
fn rename_term(t: &Rc<Term>, ren: &Renaming) -> Rc<Term> {
    if ren.tids.is_empty() && ren.mvars.is_empty() {
        return Rc::clone(t);
    }
    fn go(t: &Rc<Term>, ren: &Renaming) -> Rc<Term> {
        match &**t {
            Term::MVarRef(m) => match ren.mvars.get(m) {
                Some(m2) => Rc::new(Term::MVarRef(*m2)),
                None => Rc::clone(t),
            },
            Term::TidRef(x) => match ren.tids.get(x) {
                Some(x2) => Rc::new(Term::TidRef(*x2)),
                None => Rc::clone(t),
            },
            Term::Lam(x, b) => Rc::new(Term::Lam(x.clone(), go(b, ren))),
            Term::App(a, b) => Rc::new(Term::App(go(a, ren), go(b, ren))),
            Term::If(c, a, b) => Rc::new(Term::If(go(c, ren), go(a, ren), go(b, ren))),
            Term::Prim(op, a, b) => Rc::new(Term::Prim(*op, go(a, ren), go(b, ren))),
            Term::Raise(e) => Rc::new(Term::Raise(go(e, ren))),
            Term::Con(k, args) => Rc::new(Term::Con(
                k.clone(),
                args.iter().map(|a| go(a, ren)).collect(),
            )),
            Term::Return(m) => Rc::new(Term::Return(go(m, ren))),
            Term::Bind(a, b) => Rc::new(Term::Bind(go(a, ren), go(b, ren))),
            Term::PutChar(c) => Rc::new(Term::PutChar(go(c, ren))),
            Term::PutMVar(a, b) => Rc::new(Term::PutMVar(go(a, ren), go(b, ren))),
            Term::TakeMVar(m) => Rc::new(Term::TakeMVar(go(m, ren))),
            Term::Sleep(d) => Rc::new(Term::Sleep(go(d, ren))),
            Term::Fork(m) => Rc::new(Term::Fork(go(m, ren))),
            Term::Throw(e) => Rc::new(Term::Throw(go(e, ren))),
            Term::Catch(a, b) => Rc::new(Term::Catch(go(a, ren), go(b, ren))),
            Term::ThrowTo(a, b) => Rc::new(Term::ThrowTo(go(a, ren), go(b, ren))),
            Term::Block(m) => Rc::new(Term::Block(go(m, ren))),
            Term::Unblock(m) => Rc::new(Term::Unblock(go(m, ren))),
            Term::Var(_)
            | Term::Unit
            | Term::Bool(_)
            | Term::Int(_)
            | Term::Char(_)
            | Term::ExcLit(_)
            | Term::GetChar
            | Term::NewEmptyMVar
            | Term::MyThreadId => Rc::clone(t),
        }
    }
    go(t, ren)
}

/// Base for temporary names given to ν-bound binders during flattening.
const TEMP_BASE: u32 = 1 << 30;

/// Base for the canonical names bound binders end up with.
const CANON_BASE: u32 = 1_000_000;

/// Collects the thread and `MVar` names occurring in an atom, in a
/// deterministic traversal order.
fn atom_names(a: &Atom) -> Vec<NameRef> {
    let mut out = Vec::new();
    match a {
        Atom::Thread(t, m, _) => {
            out.push(NameRef::Tid(*t));
            term_names(m, &mut out);
        }
        Atom::Dead(t) => out.push(NameRef::Tid(*t)),
        Atom::EmptyMVar(m) => out.push(NameRef::MVar(*m)),
        Atom::FullMVar(m, v) => {
            out.push(NameRef::MVar(*m));
            term_names(v, &mut out);
        }
        Atom::InFlight(t, _) => out.push(NameRef::Tid(*t)),
    }
    out
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum NameRef {
    Tid(TidName),
    MVar(MVarName),
}

fn term_names(t: &Rc<Term>, out: &mut Vec<NameRef>) {
    match &**t {
        Term::MVarRef(m) => out.push(NameRef::MVar(*m)),
        Term::TidRef(x) => out.push(NameRef::Tid(*x)),
        Term::Lam(_, b)
        | Term::Raise(b)
        | Term::Return(b)
        | Term::PutChar(b)
        | Term::TakeMVar(b)
        | Term::Sleep(b)
        | Term::Fork(b)
        | Term::Throw(b)
        | Term::Block(b)
        | Term::Unblock(b) => term_names(b, out),
        Term::App(a, b)
        | Term::Prim(_, a, b)
        | Term::Bind(a, b)
        | Term::PutMVar(a, b)
        | Term::Catch(a, b)
        | Term::ThrowTo(a, b) => {
            term_names(a, out);
            term_names(b, out);
        }
        Term::If(c, a, b) => {
            term_names(c, out);
            term_names(a, out);
            term_names(b, out);
        }
        Term::Con(_, args) => {
            for a in args {
                term_names(a, out);
            }
        }
        Term::Var(_)
        | Term::Unit
        | Term::Bool(_)
        | Term::Int(_)
        | Term::Char(_)
        | Term::ExcLit(_)
        | Term::GetChar
        | Term::NewEmptyMVar
        | Term::MyThreadId => {}
    }
}

/// Renders an atom with every bound (temporary) name erased, giving a
/// name-independent sort key.
fn atom_skeleton(a: &Atom) -> String {
    let mut ren = Renaming::default();
    for n in atom_names(a) {
        match n {
            NameRef::Tid(t) if t.0 >= TEMP_BASE => {
                ren.tids.insert(t, TidName(u32::MAX));
            }
            NameRef::MVar(m) if m.0 >= TEMP_BASE => {
                ren.mvars.insert(m, MVarName(u32::MAX));
            }
            _ => {}
        }
    }
    match a {
        Atom::Thread(t, m, mark) => {
            let t = ren.tids.get(t).copied().unwrap_or(*t);
            format!("T:{t}:{:?}:{}", mark, rename_term(m, &ren))
        }
        Atom::Dead(t) => {
            let t = ren.tids.get(t).copied().unwrap_or(*t);
            format!("D:{t}")
        }
        Atom::EmptyMVar(m) => {
            let m = ren.mvars.get(m).copied().unwrap_or(*m);
            format!("E:{m}")
        }
        Atom::FullMVar(m, v) => {
            let m2 = ren.mvars.get(m).copied().unwrap_or(*m);
            format!("F:{m2}:{}", rename_term(v, &ren))
        }
        Atom::InFlight(t, e) => {
            let t = ren.tids.get(t).copied().unwrap_or(*t);
            format!("X:{t}:{e}")
        }
    }
}

/// Renames all temporarily-named (ν-bound) binders to canonical names, in
/// order of first occurrence when atoms are visited in skeleton order.
///
/// This makes the canonical soup independent of binder order and nesting
/// (the Swap/Extrude/Alpha laws). Caveat: when two *structurally
/// identical* atoms mention distinct bound names, their relative order is
/// arbitrary, so some α-equivalent soups of that special shape may be
/// distinguished; this is sound (never equates inequivalent states) and
/// only costs the model checker duplicate states.
fn canonicalize(atoms: Vec<Atom>) -> (Vec<Atom>, u32, u32) {
    let mut order: Vec<usize> = (0..atoms.len()).collect();
    let skeletons: Vec<String> = atoms.iter().map(atom_skeleton).collect();
    order.sort_by(|&i, &j| skeletons[i].cmp(&skeletons[j]).then(i.cmp(&j)));

    let mut ren = Renaming::default();
    let mut next_tid = CANON_BASE;
    let mut next_mvar = CANON_BASE;
    for &i in &order {
        for n in atom_names(&atoms[i]) {
            match n {
                NameRef::Tid(t) if t.0 >= TEMP_BASE => {
                    ren.tids.entry(t).or_insert_with(|| {
                        let c = TidName(next_tid);
                        next_tid += 1;
                        c
                    });
                }
                NameRef::MVar(m) if m.0 >= TEMP_BASE => {
                    ren.mvars.entry(m).or_insert_with(|| {
                        let c = MVarName(next_mvar);
                        next_mvar += 1;
                        c
                    });
                }
                _ => {}
            }
        }
    }
    let renamed = atoms
        .into_iter()
        .map(|a| match a {
            Atom::Thread(t, m, mark) => Atom::Thread(
                ren.tids.get(&t).copied().unwrap_or(t),
                rename_term(&m, &ren),
                mark,
            ),
            Atom::Dead(t) => Atom::Dead(ren.tids.get(&t).copied().unwrap_or(t)),
            Atom::EmptyMVar(m) => Atom::EmptyMVar(ren.mvars.get(&m).copied().unwrap_or(m)),
            Atom::FullMVar(m, v) => Atom::FullMVar(
                ren.mvars.get(&m).copied().unwrap_or(m),
                rename_term(&v, &ren),
            ),
            Atom::InFlight(t, e) => Atom::InFlight(ren.tids.get(&t).copied().unwrap_or(t), e),
        })
        .collect();
    (renamed, next_tid, next_mvar)
}

/// Flattens a process term into a canonical [`Soup`], treating `main` as
/// the distinguished main thread.
///
/// ν-bound names are canonically renamed by first occurrence in
/// skeleton-sorted atom order, realizing α-equivalence together with the
/// Comm/Assoc/Swap/Extrude laws (see `canonicalize` for the caveat).
///
/// # Panics
///
/// Panics if the same thread or `MVar` name occurs for two distinct atoms
/// (an ill-formed process).
pub fn to_soup(p: &ProcTerm, main: TidName) -> Soup {
    let mut atoms = Vec::new();
    let mut ren = Renaming::default();
    let mut next_tid = TEMP_BASE;
    let mut next_mvar = TEMP_BASE;
    flatten(p, &mut ren, &mut next_tid, &mut next_mvar, &mut atoms);
    let (atoms, next_tid, next_mvar) = canonicalize(atoms);

    let mut soup = Soup {
        threads: BTreeMap::new(),
        dead: Default::default(),
        mvars: BTreeMap::new(),
        inflight: Vec::new(),
        main,
        next_tid,
        next_mvar,
    };
    for atom in atoms {
        match atom {
            Atom::Thread(t, term, mark) => {
                let prev = soup.threads.insert(t, ThreadState { term, mark });
                assert!(prev.is_none(), "duplicate thread name {t}");
            }
            Atom::Dead(t) => {
                assert!(soup.dead.insert(t), "duplicate dead thread {t}");
            }
            Atom::EmptyMVar(m) => {
                let prev = soup.mvars.insert(m, None);
                assert!(prev.is_none(), "duplicate MVar name {m}");
            }
            Atom::FullMVar(m, v) => {
                let prev = soup.mvars.insert(m, Some(v));
                assert!(prev.is_none(), "duplicate MVar name {m}");
            }
            Atom::InFlight(t, e) => soup.add_inflight(t, e),
        }
    }
    soup
}

/// Decides structural congruence (Figure 3) between two process terms:
/// `P ≡ Q` iff their canonical soups coincide.
pub fn congruent(p: &ProcTerm, q: &ProcTerm, main: TidName) -> bool {
    to_soup(p, main) == to_soup(q, main)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::build::*;

    fn thread(t: u32, term: crate::term::build::T) -> ProcTerm {
        ProcTerm::Thread(TidName(t), term, Mark::Runnable)
    }

    #[test]
    fn comm_law() {
        // P | Q ≡ Q | P
        let p = thread(0, ret(unit()));
        let q = ProcTerm::EmptyMVar(MVarName(5));
        let pq = ProcTerm::par(p.clone(), q.clone());
        let qp = ProcTerm::par(q, p);
        assert!(congruent(&pq, &qp, TidName(0)));
    }

    #[test]
    fn assoc_law() {
        // P | (Q | R) ≡ (P | Q) | R
        let p = thread(0, ret(unit()));
        let q = ProcTerm::EmptyMVar(MVarName(1));
        let r = ProcTerm::Dead(TidName(9));
        let left = ProcTerm::par(p.clone(), ProcTerm::par(q.clone(), r.clone()));
        let right = ProcTerm::par(ProcTerm::par(p, q), r);
        assert!(congruent(&left, &right, TidName(0)));
    }

    #[test]
    fn swap_law() {
        // νx.νy.P ≡ νy.νx.P
        let body = ProcTerm::par(
            ProcTerm::EmptyMVar(MVarName(10)),
            ProcTerm::FullMVar(MVarName(11), int(1)),
        );
        let xy = ProcTerm::NuMVar(
            MVarName(10),
            Box::new(ProcTerm::NuMVar(MVarName(11), Box::new(body.clone()))),
        );
        let yx = ProcTerm::NuMVar(
            MVarName(11),
            Box::new(ProcTerm::NuMVar(MVarName(10), Box::new(body))),
        );
        assert!(congruent(&xy, &yx, TidName(0)));
    }

    #[test]
    fn extrude_law() {
        // (νm.P) | Q ≡ νm.(P | Q) when m ∉ fn(Q)
        let p = ProcTerm::EmptyMVar(MVarName(3));
        let q = thread(0, ret(unit()));
        let left = ProcTerm::par(
            ProcTerm::NuMVar(MVarName(3), Box::new(p.clone())),
            q.clone(),
        );
        let right = ProcTerm::NuMVar(MVarName(3), Box::new(ProcTerm::par(p, q)));
        assert!(congruent(&left, &right, TidName(0)));
    }

    #[test]
    fn alpha_law() {
        // νm.⟨⟩m ≡ νm'.⟨⟩m'
        let a = ProcTerm::NuMVar(MVarName(1), Box::new(ProcTerm::EmptyMVar(MVarName(1))));
        let b = ProcTerm::NuMVar(MVarName(2), Box::new(ProcTerm::EmptyMVar(MVarName(2))));
        assert!(congruent(&a, &b, TidName(0)));
    }

    #[test]
    fn alpha_renames_occurrences_in_terms() {
        // νm.⟨takeMVar m⟩t ≡ νm'.⟨takeMVar m'⟩t
        let a = ProcTerm::NuMVar(
            MVarName(1),
            Box::new(thread(0, take_mvar(mvar(MVarName(1))))),
        );
        let b = ProcTerm::NuMVar(
            MVarName(7),
            Box::new(thread(0, take_mvar(mvar(MVarName(7))))),
        );
        assert!(congruent(&a, &b, TidName(0)));
    }

    #[test]
    fn free_names_are_significant() {
        // ⟨⟩m1 ≢ ⟨⟩m2 when both are free.
        let a = ProcTerm::EmptyMVar(MVarName(1));
        let b = ProcTerm::EmptyMVar(MVarName(2));
        assert!(!congruent(&a, &b, TidName(0)));
    }

    #[test]
    fn bound_vs_free_distinguished() {
        // νm.⟨⟩m ≢ ⟨⟩m (bound vs free).
        let bound = ProcTerm::NuMVar(MVarName(1), Box::new(ProcTerm::EmptyMVar(MVarName(1))));
        let free = ProcTerm::EmptyMVar(MVarName(1));
        assert!(!congruent(&bound, &free, TidName(0)));
    }

    #[test]
    fn shadowed_binders_restore() {
        // νm.(⟨⟩m | νm.⟨⟩m): inner binder shadows; both atoms distinct.
        let p = ProcTerm::NuMVar(
            MVarName(1),
            Box::new(ProcTerm::par(
                ProcTerm::EmptyMVar(MVarName(1)),
                ProcTerm::NuMVar(MVarName(1), Box::new(ProcTerm::EmptyMVar(MVarName(1)))),
            )),
        );
        let soup = to_soup(&p, TidName(0));
        assert_eq!(soup.mvars.len(), 2);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_free_names_rejected() {
        let p = ProcTerm::par(
            ProcTerm::EmptyMVar(MVarName(1)),
            ProcTerm::EmptyMVar(MVarName(1)),
        );
        let _ = to_soup(&p, TidName(0));
    }

    #[test]
    fn stuck_marker_distinguishes_states() {
        let a = ProcTerm::Thread(TidName(0), ret(unit()), Mark::Runnable);
        let b = ProcTerm::Thread(TidName(0), ret(unit()), Mark::Stuck);
        assert!(!congruent(&a, &b, TidName(0)));
    }
}
