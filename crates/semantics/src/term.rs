//! The syntax of values and terms — Figure 1 of the paper.
//!
//! Terms `M, N, H` form a small call-by-name λ-calculus extended with the
//! monadic `IO` primitives. A [`Term`] is a *value* (`V` in Figure 1) when
//! the purely-functional semantics considers it evaluated; notably the
//! monadic operations are values once their *strict* arguments are values
//! — `putChar (chr 65)` is not a value, `putChar 'A'` is. [`Term::is_value`]
//! implements exactly that classification.
//!
//! Terms are immutable and shared via [`Rc`]; building blocks live in the
//! [`build`] module, which gives tests and example programs a compact DSL.

use std::fmt;
use std::rc::Rc;

/// The name of a thread in the semantics (`t`, `u` in Figure 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TidName(pub u32);

impl fmt::Display for TidName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// The name of an `MVar` in the semantics (`m` in Figure 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MVarName(pub u32);

impl fmt::Display for MVarName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// An exception constant (`e` in Figure 1).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Exc(pub String);

impl Exc {
    /// An exception named `name`.
    pub fn new(name: impl Into<String>) -> Self {
        Exc(name.into())
    }

    /// The `KillThread` exception of §7.2.
    pub fn kill_thread() -> Self {
        Exc::new("KillThread")
    }

    /// The divide-by-zero exception raised by pure evaluation.
    pub fn divide_by_zero() -> Self {
        Exc::new("DivideByZero")
    }
}

impl fmt::Display for Exc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Primitive binary operations of the inner language.
///
/// Not in Figure 1 (which leaves constants `k` abstract) but needed so
/// example programs can compute; division by zero raises, exercising the
/// imprecise-exceptions path of the inner semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PrimOp {
    /// Integer addition.
    Add,
    /// Integer subtraction.
    Sub,
    /// Integer multiplication.
    Mul,
    /// Integer division; `_ / 0` raises `DivideByZero`.
    Div,
    /// Integer equality, yielding a boolean.
    Eq,
    /// Integer less-than, yielding a boolean.
    Lt,
}

impl PrimOp {
    /// The operator's conventional symbol.
    pub fn symbol(self) -> &'static str {
        match self {
            PrimOp::Add => "+",
            PrimOp::Sub => "-",
            PrimOp::Mul => "*",
            PrimOp::Div => "/",
            PrimOp::Eq => "==",
            PrimOp::Lt => "<",
        }
    }
}

/// A term of the object language (Figure 1, plus the Figure 5 additions
/// `throwTo`, `block` and `unblock`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Term {
    // ----- the inner, purely-functional language -----
    /// A variable `x`.
    Var(String),
    /// A λ-abstraction `\x -> M`.
    Lam(String, Rc<Term>),
    /// Application `M N`.
    App(Rc<Term>, Rc<Term>),
    /// `if M then N1 else N2`.
    If(Rc<Term>, Rc<Term>, Rc<Term>),
    /// A primitive arithmetic/comparison operation.
    Prim(PrimOp, Rc<Term>, Rc<Term>),
    /// `raise e` — raising an exception in *pure* code (§6.2).
    Raise(Rc<Term>),
    /// The unit constant `()`.
    Unit,
    /// A boolean constant.
    Bool(bool),
    /// An integer constant `d`.
    Int(i64),
    /// A character constant `ch`.
    Char(char),
    /// An exception constant `e`.
    ExcLit(Exc),
    /// An `MVar` name `m`.
    MVarRef(MVarName),
    /// A thread name `t`.
    TidRef(TidName),
    /// A saturated constructor application `k M1 … Mn`.
    Con(String, Vec<Rc<Term>>),

    // ----- monadic IO values (Figure 1) -----
    /// `return M`.
    Return(Rc<Term>),
    /// `M >>= N`.
    Bind(Rc<Term>, Rc<Term>),
    /// `putChar M` — a value only when `M` is a character constant.
    PutChar(Rc<Term>),
    /// `getChar`.
    GetChar,
    /// `putMVar M N` — a value only when `M` is an `MVar` name.
    PutMVar(Rc<Term>, Rc<Term>),
    /// `takeMVar M` — a value only when `M` is an `MVar` name.
    TakeMVar(Rc<Term>),
    /// `newEmptyMVar`.
    NewEmptyMVar,
    /// `sleep M` — a value only when `M` is an integer constant.
    Sleep(Rc<Term>),
    /// `forkIO M`.
    Fork(Rc<Term>),
    /// `myThreadId`.
    MyThreadId,
    /// `throw M` — a value only when `M` is an exception constant.
    Throw(Rc<Term>),
    /// `catch M H`.
    Catch(Rc<Term>, Rc<Term>),

    // ----- the §5 extension (Figure 5 values) -----
    /// `throwTo M N` — a value when `M` is a thread name and `N` an
    /// exception constant.
    ThrowTo(Rc<Term>, Rc<Term>),
    /// `block M`.
    Block(Rc<Term>),
    /// `unblock M`.
    Unblock(Rc<Term>),
}

impl Term {
    /// Is this term a value `V` in the sense of Figure 1?
    ///
    /// Monadic operations count as values exactly when their strict
    /// arguments are already constants of the right kind.
    pub fn is_value(&self) -> bool {
        match self {
            Term::Var(_)
            | Term::Lam(_, _)
            | Term::Unit
            | Term::Bool(_)
            | Term::Int(_)
            | Term::Char(_)
            | Term::ExcLit(_)
            | Term::MVarRef(_)
            | Term::TidRef(_)
            | Term::Con(_, _)
            | Term::Return(_)
            | Term::Bind(_, _)
            | Term::GetChar
            | Term::NewEmptyMVar
            | Term::Fork(_)
            | Term::MyThreadId
            | Term::Catch(_, _)
            | Term::Block(_)
            | Term::Unblock(_) => true,
            Term::PutChar(m) => matches!(**m, Term::Char(_)),
            Term::PutMVar(m, _) => matches!(**m, Term::MVarRef(_)),
            Term::TakeMVar(m) => matches!(**m, Term::MVarRef(_)),
            Term::Sleep(d) => matches!(**d, Term::Int(_)),
            Term::Throw(e) => matches!(**e, Term::ExcLit(_)),
            Term::ThrowTo(t, e) => matches!(**t, Term::TidRef(_)) && matches!(**e, Term::ExcLit(_)),
            Term::App(_, _) | Term::If(_, _, _) | Term::Prim(_, _, _) | Term::Raise(_) => false,
        }
    }

    /// The free variables of this term.
    pub fn free_vars(&self) -> std::collections::BTreeSet<String> {
        fn go(t: &Term, bound: &mut Vec<String>, out: &mut std::collections::BTreeSet<String>) {
            match t {
                Term::Var(x) => {
                    if !bound.iter().any(|b| b == x) {
                        out.insert(x.clone());
                    }
                }
                Term::Lam(x, b) => {
                    bound.push(x.clone());
                    go(b, bound, out);
                    bound.pop();
                }
                Term::App(a, b)
                | Term::Prim(_, a, b)
                | Term::Bind(a, b)
                | Term::PutMVar(a, b)
                | Term::Catch(a, b)
                | Term::ThrowTo(a, b) => {
                    go(a, bound, out);
                    go(b, bound, out);
                }
                Term::If(c, a, b) => {
                    go(c, bound, out);
                    go(a, bound, out);
                    go(b, bound, out);
                }
                Term::Raise(m)
                | Term::Return(m)
                | Term::PutChar(m)
                | Term::TakeMVar(m)
                | Term::Sleep(m)
                | Term::Fork(m)
                | Term::Throw(m)
                | Term::Block(m)
                | Term::Unblock(m) => go(m, bound, out),
                Term::Con(_, args) => {
                    for a in args {
                        go(a, bound, out);
                    }
                }
                Term::Unit
                | Term::Bool(_)
                | Term::Int(_)
                | Term::Char(_)
                | Term::ExcLit(_)
                | Term::MVarRef(_)
                | Term::TidRef(_)
                | Term::GetChar
                | Term::NewEmptyMVar
                | Term::MyThreadId => {}
            }
        }
        let mut out = std::collections::BTreeSet::new();
        go(self, &mut Vec::new(), &mut out);
        out
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(x) => f.write_str(x),
            Term::Lam(x, b) => write!(f, "(\\{x} -> {b})"),
            Term::App(a, b) => write!(f, "({a} {b})"),
            Term::If(c, t, e) => write!(f, "(if {c} then {t} else {e})"),
            Term::Prim(op, a, b) => write!(f, "({a} {} {b})", op.symbol()),
            Term::Raise(e) => write!(f, "(raise {e})"),
            Term::Unit => f.write_str("()"),
            Term::Bool(b) => write!(f, "{b}"),
            Term::Int(n) => write!(f, "{n}"),
            Term::Char(c) => write!(f, "{c:?}"),
            Term::ExcLit(e) => write!(f, "{e}"),
            Term::MVarRef(m) => write!(f, "{m}"),
            Term::TidRef(t) => write!(f, "{t}"),
            Term::Con(k, args) => {
                write!(f, "({k}")?;
                for a in args {
                    write!(f, " {a}")?;
                }
                f.write_str(")")
            }
            Term::Return(m) => write!(f, "(return {m})"),
            Term::Bind(a, b) => write!(f, "({a} >>= {b})"),
            Term::PutChar(c) => write!(f, "(putChar {c})"),
            Term::GetChar => f.write_str("getChar"),
            Term::PutMVar(m, v) => write!(f, "(putMVar {m} {v})"),
            Term::TakeMVar(m) => write!(f, "(takeMVar {m})"),
            Term::NewEmptyMVar => f.write_str("newEmptyMVar"),
            Term::Sleep(d) => write!(f, "(sleep {d})"),
            Term::Fork(m) => write!(f, "(forkIO {m})"),
            Term::MyThreadId => f.write_str("myThreadId"),
            Term::Throw(e) => write!(f, "(throw {e})"),
            Term::Catch(m, h) => write!(f, "(catch {m} {h})"),
            Term::ThrowTo(t, e) => write!(f, "(throwTo {t} {e})"),
            Term::Block(m) => write!(f, "(block {m})"),
            Term::Unblock(m) => write!(f, "(unblock {m})"),
        }
    }
}

/// A compact construction DSL for terms.
///
/// # Examples
///
/// ```
/// use conch_semantics::term::build::*;
///
/// // do { c <- getChar; putChar c }
/// let prog = bind(get_char(), lam("c", put_char(var("c"))));
/// assert!(prog.is_value());
/// ```
pub mod build {
    use super::*;

    /// Shorthand for an `Rc`'d term.
    pub type T = Rc<Term>;

    /// A variable reference.
    pub fn var(x: &str) -> T {
        Rc::new(Term::Var(x.to_owned()))
    }

    /// A λ-abstraction.
    pub fn lam(x: &str, body: T) -> T {
        Rc::new(Term::Lam(x.to_owned(), body))
    }

    /// Application.
    pub fn app(f: T, a: T) -> T {
        Rc::new(Term::App(f, a))
    }

    /// `if c then t else e`.
    pub fn ite(c: T, t: T, e: T) -> T {
        Rc::new(Term::If(c, t, e))
    }

    /// A primitive operation.
    pub fn prim(op: PrimOp, a: T, b: T) -> T {
        Rc::new(Term::Prim(op, a, b))
    }

    /// Integer addition.
    pub fn add(a: T, b: T) -> T {
        prim(PrimOp::Add, a, b)
    }

    /// Integer division.
    pub fn div(a: T, b: T) -> T {
        prim(PrimOp::Div, a, b)
    }

    /// The unit constant.
    pub fn unit() -> T {
        Rc::new(Term::Unit)
    }

    /// An integer constant.
    pub fn int(n: i64) -> T {
        Rc::new(Term::Int(n))
    }

    /// A boolean constant.
    pub fn boolean(b: bool) -> T {
        Rc::new(Term::Bool(b))
    }

    /// A character constant.
    pub fn ch(c: char) -> T {
        Rc::new(Term::Char(c))
    }

    /// An exception constant.
    pub fn exc(name: &str) -> T {
        Rc::new(Term::ExcLit(Exc::new(name)))
    }

    /// `raise e` in pure code.
    pub fn raise(e: T) -> T {
        Rc::new(Term::Raise(e))
    }

    /// `return M`.
    pub fn ret(m: T) -> T {
        Rc::new(Term::Return(m))
    }

    /// `M >>= N`.
    pub fn bind(m: T, k: T) -> T {
        Rc::new(Term::Bind(m, k))
    }

    /// `M >> N` — sequencing, desugared to `M >>= \_ -> N`.
    pub fn seq(m: T, n: T) -> T {
        bind(m, lam("_seq", n))
    }

    /// `putChar M`.
    pub fn put_char(m: T) -> T {
        Rc::new(Term::PutChar(m))
    }

    /// `getChar`.
    pub fn get_char() -> T {
        Rc::new(Term::GetChar)
    }

    /// `putMVar M N`.
    pub fn put_mvar(m: T, v: T) -> T {
        Rc::new(Term::PutMVar(m, v))
    }

    /// `takeMVar M`.
    pub fn take_mvar(m: T) -> T {
        Rc::new(Term::TakeMVar(m))
    }

    /// `newEmptyMVar`.
    pub fn new_empty_mvar() -> T {
        Rc::new(Term::NewEmptyMVar)
    }

    /// A literal `MVar` name.
    pub fn mvar(m: MVarName) -> T {
        Rc::new(Term::MVarRef(m))
    }

    /// A literal thread name.
    pub fn tid(t: TidName) -> T {
        Rc::new(Term::TidRef(t))
    }

    /// `sleep M`.
    pub fn sleep(d: T) -> T {
        Rc::new(Term::Sleep(d))
    }

    /// `forkIO M`.
    pub fn fork(m: T) -> T {
        Rc::new(Term::Fork(m))
    }

    /// `myThreadId`.
    pub fn my_thread_id() -> T {
        Rc::new(Term::MyThreadId)
    }

    /// `throw M`.
    pub fn throw(e: T) -> T {
        Rc::new(Term::Throw(e))
    }

    /// `catch M H`.
    pub fn catch(m: T, h: T) -> T {
        Rc::new(Term::Catch(m, h))
    }

    /// `throwTo M N`.
    pub fn throw_to(t: T, e: T) -> T {
        Rc::new(Term::ThrowTo(t, e))
    }

    /// `block M`.
    pub fn block(m: T) -> T {
        Rc::new(Term::Block(m))
    }

    /// `unblock M`.
    pub fn unblock(m: T) -> T {
        Rc::new(Term::Unblock(m))
    }

    /// A saturated constructor application.
    pub fn con(k: &str, args: Vec<T>) -> T {
        Rc::new(Term::Con(k.to_owned(), args))
    }
}

#[cfg(test)]
mod tests {
    use super::build::*;
    use super::*;

    #[test]
    fn figure1_value_classification() {
        // The paper's own example: putChar (chr 65) is not a value, but
        // putChar 'A' is. We render `chr 65` as an application.
        let not_value = put_char(app(var("chr"), int(65)));
        assert!(!not_value.is_value());
        let value = put_char(ch('A'));
        assert!(value.is_value());
    }

    #[test]
    fn monadic_ops_are_values() {
        assert!(ret(app(var("f"), int(1))).is_value()); // return M: M arbitrary
        assert!(bind(get_char(), var("k")).is_value()); // M >>= N
        assert!(sleep(int(3)).is_value());
        assert!(!sleep(add(int(1), int(2))).is_value()); // strict arg unevaluated
        assert!(take_mvar(mvar(MVarName(0))).is_value());
        assert!(!take_mvar(var("m")).is_value());
        assert!(throw(exc("E")).is_value());
        assert!(!throw(raise(exc("E"))).is_value());
        assert!(throw_to(tid(TidName(1)), exc("E")).is_value());
        assert!(!throw_to(var("t"), exc("E")).is_value());
        assert!(block(app(var("f"), unit())).is_value());
    }

    #[test]
    fn pure_redexes_are_not_values() {
        assert!(!app(lam("x", var("x")), unit()).is_value());
        assert!(!ite(boolean(true), unit(), unit()).is_value());
        assert!(!add(int(1), int(2)).is_value());
        assert!(!raise(exc("E")).is_value());
    }

    #[test]
    fn free_vars_respect_binding() {
        let t = lam("x", app(var("x"), var("y")));
        let fv = t.free_vars();
        assert!(fv.contains("y"));
        assert!(!fv.contains("x"));
    }

    #[test]
    fn free_vars_of_closed_term_is_empty() {
        let t = bind(get_char(), lam("c", put_char(var("c"))));
        assert!(t.free_vars().is_empty());
    }

    #[test]
    fn display_is_paper_like() {
        let t = bind(get_char(), lam("c", put_char(var("c"))));
        assert_eq!(t.to_string(), "(getChar >>= (\\c -> (putChar c)))");
        assert_eq!(block(unit()).to_string(), "(block ())");
        assert_eq!(
            throw_to(tid(TidName(2)), exc("KillThread")).to_string(),
            "(throwTo t2 KillThread)"
        );
    }

    #[test]
    fn seq_desugars_to_bind() {
        let t = seq(put_char(ch('a')), put_char(ch('b')));
        assert!(matches!(&*t, Term::Bind(_, _)));
    }
}
