//! Observational equivalence — the paper's "simple equational theory".
//!
//! §11: "We hope to be able to formulate proofs, using this semantics,
//! that simple combinators built using these primitives have the
//! properties that we expect. We believe that there are two useful
//! theories … a simple equational theory, and a more subtle theory based
//! on a commitment ordering."
//!
//! This module mechanizes the first theory for *finite-state* programs:
//! two programs are **trace-equivalent** when the sets of observable
//! I/O traces of their complete runs coincide ([`trace_equivalent`]),
//! computed by exhaustive enumeration of the transition system. The
//! tests use it to verify the laws one expects of the combinators —
//! mask idempotence (§5.2 "there is no counting of scopes"), the monad
//! laws, the `catch`/`throw` algebra — as theorems about the *semantics*
//! rather than spot checks of the implementation.

use std::collections::{BTreeSet, HashSet};

use crate::engine::{ExploreConfig, Obs, State};
use crate::rules::Label;

/// How a maximal run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EndState {
    /// The main thread finished (normally or by an uncaught exception).
    Done,
    /// No transition was enabled but the main thread is still alive —
    /// the program wedged (deadlock).
    Wedged,
}

/// An observable outcome: the I/O trace of a maximal run plus how the
/// run ended. Including [`EndState::Wedged`] outcomes makes the theory
/// fine enough to distinguish, e.g., a masked critical section from an
/// unmasked one under a concurrent killer (the unmasked one admits a
/// wedged outcome the masked one forbids).
pub type Outcome = (Vec<Obs>, EndState);

/// Which bound cut a truncated enumeration short.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TruncationLimit {
    /// `ExploreConfig::max_depth` was reached on some run.
    Depth,
    /// `ExploreConfig::max_states` distinct states were visited.
    States,
}

/// Evidence that a trace-set enumeration was cut off by its bounds —
/// the set it would have produced is incomplete, so any comparison
/// against it is untrustworthy. Carries enough context to report (and
/// to decide whether raising the bounds could help).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Truncated {
    /// Which bound tripped.
    pub limit: TruncationLimit,
    /// Distinct states visited when the enumeration stopped.
    pub states_seen: usize,
    /// Depth of the run that tripped the bound.
    pub depth: usize,
}

impl std::fmt::Display for Truncated {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "trace enumeration truncated by the {} bound ({} states seen, depth {})",
            match self.limit {
                TruncationLimit::Depth => "max_depth",
                TruncationLimit::States => "max_states",
            },
            self.states_seen,
            self.depth
        )
    }
}

impl std::error::Error for Truncated {}

/// The set of observable outcomes of all maximal runs.
///
/// Time labels are projected out (they are environment stimuli, not
/// program outputs). Returns `Err(Truncated)` if the exploration was
/// cut off by the configured bounds — the set would not be trustworthy,
/// and the error says which bound tripped, so a capped comparison can
/// never silently pass as "equivalent".
pub fn trace_set(init: &State, config: &ExploreConfig) -> Result<BTreeSet<Outcome>, Truncated> {
    let mut seen: HashSet<(String, Vec<Obs>)> = HashSet::new();
    let mut stack: Vec<(State, Vec<Obs>, usize)> = vec![(init.clone(), Vec::new(), 0)];
    let mut traces = BTreeSet::new();
    while let Some((state, trace, depth)) = stack.pop() {
        if state.is_terminal() {
            traces.insert((trace, EndState::Done));
            continue;
        }
        if depth >= config.max_depth || seen.len() >= config.max_states {
            return Err(Truncated {
                limit: if depth >= config.max_depth {
                    TruncationLimit::Depth
                } else {
                    TruncationLimit::States
                },
                states_seen: seen.len(),
                depth,
            });
        }
        let key = (state.key(), trace.clone());
        if !seen.insert(key) {
            continue;
        }
        let succ = state.successors(&config.rules);
        if succ.is_empty() {
            traces.insert((trace, EndState::Wedged));
            continue;
        }
        for (t, next) in succ {
            let mut trace2 = trace.clone();
            match t.label {
                Label::Tau | Label::Time(_) => {}
                Label::Put(c) => trace2.push(Obs::Put(c)),
                Label::Get(c) => trace2.push(Obs::Get(c)),
            }
            stack.push((next, trace2, depth + 1));
        }
    }
    Ok(traces)
}

/// Decides bounded observational (trace) equivalence of two programs.
///
/// Returns `Err(Truncated)` when either side's exploration exceeded the
/// bounds — never a verdict over an incomplete set.
pub fn trace_equivalent(a: &State, b: &State, config: &ExploreConfig) -> Result<bool, Truncated> {
    Ok(trace_set(a, config)? == trace_set(b, config)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::build::*;
    use crate::term::Term;
    use std::rc::Rc;

    fn equiv(a: Rc<Term>, b: Rc<Term>) -> bool {
        let cfg = ExploreConfig::default();
        trace_equivalent(&State::new(a, "xy"), &State::new(b, "xy"), &cfg)
            .expect("programs must be finite-state within bounds")
    }

    /// A small observable computation to plug into laws.
    fn obs(c: char) -> Rc<Term> {
        put_char(ch(c))
    }

    #[test]
    fn mask_idempotence_block() {
        // §5.2: "two nested blocks behave the same as a single block".
        let m = seq(obs('a'), obs('b'));
        assert!(equiv(block(block(m.clone())), block(m)));
    }

    #[test]
    fn mask_idempotence_unblock() {
        let m = seq(obs('a'), obs('b'));
        assert!(equiv(unblock(unblock(m.clone())), unblock(m)));
    }

    #[test]
    fn innermost_mask_wins_law() {
        // block (unblock M) ≡ unblock M when nothing observes the outer
        // state afterwards (M is the whole program).
        let m = seq(obs('a'), obs('b'));
        assert!(equiv(block(unblock(m.clone())), unblock(m)));
    }

    #[test]
    fn monad_left_identity() {
        // return x >>= f ≡ f x.
        let f = lam("x", put_char(var("x")));
        let lhs = bind(ret(ch('q')), f.clone());
        let rhs = app(f, ch('q'));
        assert!(equiv(lhs, rhs));
    }

    #[test]
    fn monad_right_identity() {
        // m >>= return ≡ m  (with return as the η-expanded \x -> return x).
        let m = seq(obs('a'), get_char());
        let lhs = bind(m.clone(), lam("x", ret(var("x"))));
        assert!(equiv(lhs, m));
    }

    #[test]
    fn monad_associativity() {
        // (m >>= f) >>= g ≡ m >>= (\x -> f x >>= g).
        let m = get_char();
        let f = lam("x", put_char(var("x")));
        let g = lam("_y", put_char(ch('!')));
        let lhs = bind(bind(m.clone(), f.clone()), g.clone());
        let rhs = bind(m, lam("x", bind(app(f, var("x")), g)));
        assert!(equiv(lhs, rhs));
    }

    #[test]
    fn throw_annihilates_continuations() {
        // throw e >>= k ≡ throw e.
        let lhs = bind(throw(exc("E")), lam("_x", obs('a')));
        let rhs = throw(exc("E"));
        assert!(equiv(lhs, rhs));
    }

    #[test]
    fn catch_of_return_is_identity() {
        // catch (return v) H ≡ return v.
        let lhs = catch(ret(int(3)), lam("_e", obs('h')));
        let rhs = ret(int(3));
        assert!(equiv(lhs, rhs));
    }

    #[test]
    fn catch_of_throw_applies_handler() {
        // catch (throw e) H ≡ H e.
        let h = lam("_e", obs('h'));
        let lhs = catch(throw(exc("E")), h.clone());
        let rhs = app(h, exc("E"));
        assert!(equiv(lhs, rhs));
    }

    #[test]
    fn catch_distributes_over_completed_prefix() {
        // putChar a ; catch (throw e) H ≡ catch (putChar a ; throw e) H —
        // true here because the prefix cannot raise.
        let h = lam("_e", obs('h'));
        let lhs = seq(obs('a'), catch(throw(exc("E")), h.clone()));
        let rhs = catch(seq(obs('a'), throw(exc("E"))), h);
        assert!(equiv(lhs, rhs));
    }

    #[test]
    fn masking_forbids_the_split_wedge() {
        // Sharper witness: main waits for the child via an MVar. The
        // unmasked child can be killed between its puts, wedging main —
        // an outcome (["x"], Wedged) the masked child provably forbids.
        let victim = |protected: bool| {
            let core = seq(obs('x'), seq(obs('y'), put_mvar(var("m"), unit())));
            let child = if protected { block(core) } else { core };
            bind(
                new_empty_mvar(),
                lam(
                    "m",
                    bind(
                        fork(child),
                        lam("t", seq(throw_to(var("t"), exc("K")), take_mvar(var("m")))),
                    ),
                ),
            )
        };
        let cfg = ExploreConfig::default();
        let masked = trace_set(&State::new(victim(true), ""), &cfg).unwrap();
        let unmasked = trace_set(&State::new(victim(false), ""), &cfg).unwrap();
        let split_wedge: Outcome = (vec![Obs::Put('x')], EndState::Wedged);
        assert!(unmasked.contains(&split_wedge), "{unmasked:?}");
        assert!(!masked.contains(&split_wedge), "{masked:?}");
        // The masked child always completes: the only outcome is the
        // full trace, terminated.
        assert_eq!(
            masked.into_iter().collect::<Vec<_>>(),
            vec![(vec![Obs::Put('x'), Obs::Put('y')], EndState::Done)]
        );
    }

    #[test]
    fn sequencing_order_is_observable() {
        // Non-law sanity: putChar a; putChar b ≢ putChar b; putChar a.
        assert!(!equiv(seq(obs('a'), obs('b')), seq(obs('b'), obs('a'))));
    }

    #[test]
    fn trace_set_reports_truncation() {
        // An infinite loop exhausts the bounds: a Truncated error
        // naming the tripped bound, not a wrong answer.
        let omega_io = {
            // let rec loop u = putChar 'l' >> loop u — Y with an explicit
            // unit argument so `rec` is always a function.
            let y = lam(
                "f",
                app(
                    lam("x", app(var("f"), app(var("x"), var("x")))),
                    lam("x", app(var("f"), app(var("x"), var("x")))),
                ),
            );
            app(
                app(
                    y,
                    lam(
                        "rec",
                        lam("u", seq(put_char(ch('l')), app(var("rec"), unit()))),
                    ),
                ),
                unit(),
            )
        };
        // max_depth far above max_states, so the state budget is the
        // bound that trips and the error names it.
        let cfg = ExploreConfig {
            max_states: 2_000,
            max_depth: 1_000_000,
            ..ExploreConfig::default()
        };
        let err = trace_set(&State::new(omega_io, ""), &cfg)
            .expect_err("an infinite loop cannot have a complete trace set");
        assert_eq!(err.limit, TruncationLimit::States);
        assert!(err.states_seen >= 2_000, "{err}");
        // And the verdict-level API refuses too, rather than comparing
        // incomplete sets.
        let omega = || {
            let y = lam(
                "f",
                app(
                    lam("x", app(var("f"), app(var("x"), var("x")))),
                    lam("x", app(var("f"), app(var("x"), var("x")))),
                ),
            );
            app(
                app(
                    y,
                    lam(
                        "rec",
                        lam("u", seq(put_char(ch('l')), app(var("rec"), unit()))),
                    ),
                ),
                unit(),
            )
        };
        trace_equivalent(&State::new(omega(), ""), &State::new(omega(), ""), &cfg)
            .expect_err("equivalence over truncated sets must not produce a verdict");
    }
}
