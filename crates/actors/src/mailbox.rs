//! Typed bounded mailboxes.
//!
//! A [`Mailbox<M>`] is the actor layer's message queue: a bounded FIFO
//! whose *entire* state — queue contents and capacity — lives in one
//! `MVar`, manipulated only by §7.4 masked take→mutate→put
//! transactions. That single-cell design is what makes the mailbox
//! kill-safe:
//!
//! * **No separate capacity tokens.** A semaphore-based bound would
//!   leak a slot whenever an asynchronous exception tears down a
//!   sender between "token taken" and "message enqueued" (or a signal
//!   lands in an abandoned waiter cell, the documented `Sem`
//!   weakness). Here free space *is* `capacity - queue.len()`, so a
//!   killed sender or receiver cannot strand capacity: either its
//!   transaction committed or the state is untouched.
//! * **The masked take→deliver window.** [`Mailbox::recv`] wraps the
//!   dequeue transaction *and* the continuation that hands the message
//!   to the caller in one `block` section. Once the transaction pops
//!   the message there is no interruptible point left before `recv`
//!   returns, so an asynchronous exception can only land while the
//!   receiver is still *waiting* — before anything was dequeued.
//!   [`Mailbox::recv_racy`] keeps the pre-fix shape (dequeue, then an
//!   unmasked step, then return) so the schedule explorer can exhibit
//!   the lost-message interleaving the fix closes; the regression test
//!   in `tests/explore_actors.rs` proves `recv` has no such schedule.
//!
//! Waiting is by polling: a full `send` / empty `recv` sleeps
//! [`POLL_INTERVAL`] virtual microseconds and retries. Polling costs
//! nothing in virtual time (the clock only advances when every thread
//! is blocked) and dodges the abandoned-waiter-cell pathologies of
//! real wait queues under `KillThread` storms; the trade-off is that a
//! sleeping poller holds no claim at all, so a kill landing in the
//! sleep loses neither messages nor capacity.

use std::marker::PhantomData;

use conch_runtime::exception::ExceptionKind;
use conch_runtime::io::Io;
use conch_runtime::mvar::MVar;
use conch_runtime::value::{FromValue, IntoValue, Value};

use crate::actor::Signal;

/// Virtual microseconds between polls of a full (send) or empty
/// (recv) mailbox. Large relative to a scheduler step so explored
/// programs spend few branch points idling, irrelevant to wall time.
pub const POLL_INTERVAL: u64 = 25;

/// A bounded multi-producer multi-consumer FIFO mailbox carrying
/// messages of type `M`.
///
/// Copyable like `Chan`: the handle is one `MVar` reference plus a
/// phantom type, so actors, supervisors and fault injectors can all
/// hold the same mailbox.
///
/// # Examples
///
/// ```
/// use conch_runtime::prelude::*;
/// use conch_actors::Mailbox;
///
/// let mut rt = Runtime::new();
/// let prog = Mailbox::<i64>::new(2).and_then(|mb| {
///     mb.send(1)
///         .then(mb.try_send(2))
///         .then(mb.try_send(3)) // full: rejected, not blocked
///         .and_then(move |fit| mb.recv().map(move |a| (a, fit)))
/// });
/// assert_eq!(rt.run(prog).unwrap(), (1, false));
/// ```
pub struct Mailbox<M> {
    /// `Pair(List(queue), Int(capacity))` — the whole mailbox state.
    state: MVar<Value>,
    marker: PhantomData<fn(M) -> M>,
}

impl<M> Clone for Mailbox<M> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<M> Copy for Mailbox<M> {}

impl<M> std::fmt::Debug for Mailbox<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Mailbox({:?})", self.state)
    }
}

fn pack(queue: Vec<Value>, capacity: i64) -> Value {
    Value::Pair(Box::new(Value::List(queue)), Box::new(Value::Int(capacity)))
}

fn unpack(v: Value) -> (Vec<Value>, i64) {
    match v {
        Value::Pair(q, c) => match (*q, *c) {
            (Value::List(xs), Value::Int(n)) => (xs, n),
            other => panic!("mailbox state corrupted: {other:?}"),
        },
        other => panic!("mailbox state has shape {}", other.shape()),
    }
}

/// One masked transaction over the mailbox state: take, mutate with
/// pure code, put back. The put into the just-emptied cell cannot
/// block, so once the take returns the commit is certain; an
/// asynchronous exception either lands while the take still waits
/// (nothing taken, mailbox untouched) or after the transaction is
/// whole.
fn txn<R>(state: MVar<Value>, f: impl FnOnce(&mut Vec<Value>, i64) -> R + 'static) -> Io<R>
where
    R: FromValue + IntoValue + 'static,
{
    Io::block(state.take().and_then(move |st| {
        let (mut queue, capacity) = unpack(st);
        let r = f(&mut queue, capacity);
        state.put(pack(queue, capacity)).map(move |_| r)
    }))
}

fn send_loop(state: MVar<Value>, v: Value) -> Io<()> {
    let again = v.clone();
    txn(state, move |queue, capacity| {
        if (queue.len() as i64) < capacity {
            queue.push(v);
            true
        } else {
            false
        }
    })
    .and_then(move |sent| {
        if sent {
            Io::unit()
        } else {
            Io::sleep(POLL_INTERVAL).then(send_loop(state, again))
        }
    })
}

fn recv_loop(state: MVar<Value>) -> Io<Value> {
    txn(state, |queue, _| {
        if queue.is_empty() {
            Value::Nothing
        } else {
            Value::Just(Box::new(queue.remove(0)))
        }
    })
    .and_then(move |got| match got {
        Value::Just(v) => Io::pure(*v),
        _ => Io::sleep(POLL_INTERVAL).then(recv_loop(state)),
    })
}

fn from_message<M: FromValue>(v: Value) -> M {
    match M::from_value(v) {
        Some(m) => m,
        None => panic!("mailbox message has unexpected shape"),
    }
}

impl<M: FromValue + IntoValue + 'static> Mailbox<M> {
    /// Creates a mailbox holding at most `capacity` messages
    /// (clamped to at least 1).
    pub fn new(capacity: i64) -> Io<Mailbox<M>> {
        Io::new_mvar(pack(Vec::new(), capacity.max(1))).map(|state| Mailbox {
            state,
            marker: PhantomData,
        })
    }

    /// Enqueues `m`, waiting while the mailbox is full — the
    /// backpressure edge. The commit is a single masked transaction,
    /// so a kill landing mid-`send` either left the message out
    /// entirely or delivered it entirely.
    pub fn send(&self, m: M) -> Io<()> {
        send_loop(self.state, m.into_value())
    }

    /// Enqueues `m` if there is room, never waiting. Returns whether
    /// the message was accepted — `false` is the signal to shed load.
    pub fn try_send(&self, m: M) -> Io<bool> {
        let v = m.into_value();
        txn(self.state, move |queue, capacity| {
            if (queue.len() as i64) < capacity {
                queue.push(v);
                true
            } else {
                false
            }
        })
    }

    /// Dequeues the oldest message, waiting while the mailbox is
    /// empty.
    ///
    /// The whole of `recv` — dequeue transaction *and* the hand-off of
    /// the message to the caller — runs inside one `block` section:
    /// the masked take→deliver window. An asynchronous exception can
    /// only land while the receiver still waits (transaction take
    /// blocked, or sleeping between polls), in which case the message
    /// is still in the mailbox. A caller that must also protect the
    /// first step of *processing* runs `recv().and_then(handle)` under
    /// its own mask, as the actor shell does.
    pub fn recv(&self) -> Io<M> {
        Io::block(recv_loop(self.state)).map(from_message)
    }

    /// The pre-fix `recv`: dequeues in a transaction but yields —
    /// unmasked — before handing the message over. On the schedule
    /// where a `KillThread` lands in that yield, the message has left
    /// the mailbox and dies with the receiver: the lost-message bug
    /// the masked window in [`recv`](Self::recv) closes. Kept (hidden)
    /// so the explorer regression test can exhibit the bug it guards
    /// against, like `modify_mvar_naive`.
    #[doc(hidden)]
    pub fn recv_racy(&self) -> Io<M> {
        fn racy_loop(state: MVar<Value>) -> Io<Value> {
            txn(state, |queue, _| {
                if queue.is_empty() {
                    Value::Nothing
                } else {
                    Value::Just(Box::new(queue.remove(0)))
                }
            })
            .and_then(move |got| match got {
                Value::Just(v) => Io::yield_now().map(move |_| *v),
                _ => Io::sleep(POLL_INTERVAL).then(racy_loop(state)),
            })
        }
        racy_loop(self.state).map(from_message)
    }

    /// Dequeues the oldest message if there is one, never waiting.
    pub fn try_recv(&self) -> Io<Option<M>> {
        txn(self.state, |queue, _| {
            if queue.is_empty() {
                None
            } else {
                Some(queue.remove(0))
            }
        })
        .map(|v: Option<Value>| v.map(from_message))
    }

    /// Like [`recv`](Self::recv), but converts an
    /// [`ExitSignal`](conch_runtime::exception::ExceptionKind::ExitSignal)
    /// landing while this receiver waits into a [`Signal::Exit`]
    /// message — the trap-exit mode. The conversion is sound because
    /// actors run masked (see `spawn_actor`): the signal can only be
    /// delivered at `recv`'s interruptible points, all of which are
    /// inside this catch. `KillThread` is not trapped; like Erlang's
    /// `exit(Pid, kill)` it always terminates.
    pub fn recv_trapping(&self) -> Io<Signal<M>> {
        Io::block(recv_loop(self.state))
            .map(|v| Signal::Msg(from_message(v)))
            .catch(|e| {
                if let ExceptionKind::ExitSignal { from, reason } = e.kind() {
                    let (from, reason) = (*from, (**reason).clone());
                    Io::pure(Signal::Exit { from, reason })
                } else {
                    Io::throw(e)
                }
            })
    }

    /// Number of messages currently queued.
    pub fn len(&self) -> Io<i64> {
        txn(self.state, |queue, _| queue.len() as i64)
    }

    /// `true` if no messages are queued.
    pub fn is_empty(&self) -> Io<bool> {
        self.len().map(|n| n == 0)
    }

    /// Remaining room: `capacity - len`. The mailbox-slot conservation
    /// invariant the fault spaces check is `len + free_slots ==
    /// capacity` — which this representation makes unfalsifiable by
    /// kills, exactly the point.
    pub fn free_slots(&self) -> Io<i64> {
        txn(self.state, |queue, capacity| capacity - queue.len() as i64)
    }

    /// The fixed capacity this mailbox was created with.
    pub fn capacity(&self) -> Io<i64> {
        txn(self.state, |_, capacity| capacity)
    }

    /// Reinterprets the message type. The queue is dynamically typed
    /// underneath; use for erasing to `Mailbox<Value>` or for shared
    /// work queues consumed by actors of a narrower type.
    pub fn cast<U: FromValue + IntoValue + 'static>(&self) -> Mailbox<U> {
        Mailbox {
            state: self.state,
            marker: PhantomData,
        }
    }
}

impl<M> IntoValue for Mailbox<M> {
    fn into_value(self) -> Value {
        Value::MVar(self.state.id())
    }
}

impl<M> FromValue for Mailbox<M> {
    fn from_value(v: Value) -> Option<Self> {
        Some(Mailbox {
            state: MVar::from_id(v.as_mvar_id()?),
            marker: PhantomData,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use conch_runtime::scheduler::Runtime;

    fn run<T: FromValue + IntoValue + 'static>(io: Io<T>) -> T {
        Runtime::new().run(io).unwrap()
    }

    #[test]
    fn fifo_order() {
        let got = run(Mailbox::<i64>::new(4).and_then(|mb| {
            mb.send(1)
                .then(mb.send(2))
                .then(mb.send(3))
                .then(mb.recv())
                .and_then(move |a| {
                    mb.recv()
                        .and_then(move |b| mb.recv().map(move |c| vec![a, b, c]))
                })
        }));
        assert_eq!(got, vec![1, 2, 3]);
    }

    #[test]
    fn try_send_respects_capacity() {
        let got = run(Mailbox::<i64>::new(2).and_then(|mb| {
            mb.try_send(1).and_then(move |a| {
                mb.try_send(2).and_then(move |b| {
                    mb.try_send(3)
                        .and_then(move |c| mb.len().map(move |n| (a, b, c, n)))
                })
            })
        }));
        assert_eq!(got, (true, true, false, 2));
    }

    #[test]
    fn send_blocks_until_room() {
        // A full mailbox delays the sender until the consumer makes room.
        let got = run(Mailbox::<i64>::new(1).and_then(|mb| {
            mb.send(10).then(Io::fork(mb.send(20))).then(
                // Main drains both; the forked sender can only finish
                // after the first recv frees the slot.
                mb.recv().and_then(move |a| mb.recv().map(move |b| a + b)),
            )
        }));
        assert_eq!(got, 30);
    }

    #[test]
    fn try_recv_empty_is_none() {
        let got = run(Mailbox::<i64>::new(1).and_then(|mb| {
            mb.try_recv()
                .and_then(move |x| mb.free_slots().map(move |f| (x, f)))
        }));
        assert_eq!(got, (None, 1));
    }

    #[test]
    fn conservation_across_operations() {
        let got = run(Mailbox::<i64>::new(3).and_then(|mb| {
            mb.send(1)
                .then(mb.send(2))
                .then(mb.len().and_then(move |n| {
                    mb.free_slots()
                        .and_then(move |f| mb.capacity().map(move |c| (n, f, c)))
                }))
        }));
        assert_eq!(got.0 + got.1, got.2);
    }

    #[test]
    fn value_round_trip() {
        let got = run(Mailbox::<i64>::new(2).and_then(|mb| {
            let v = mb.into_value();
            let same = Mailbox::<i64>::from_value(v).unwrap();
            same.send(9).then(mb.recv())
        }));
        assert_eq!(got, 9);
    }
}
