//! Experiment C1: conformance of the runtime (§8's implementation) to the
//! formal semantics (§6's transition system).
//!
//! A common first-order program DSL compiles both to `conch-runtime`
//! `Io` actions and to `conch-semantics` terms. Each program is executed
//! on the runtime under many schedules; every observable I/O trace the
//! runtime produces must be admitted by the formal labelled transition
//! system ([`conch_semantics::admits_trace`]).
//!
//! The runtime is configured with `fork_inherits_mask(false)` to match
//! the paper's (Fork) rule exactly (see DESIGN.md).

use conch_runtime::io::Io;
use conch_runtime::mvar::MVar;
use conch_runtime::prelude::*;
use conch_runtime::trace::IoEvent;
use conch_runtime::value::Value;
use conch_semantics::engine::{admits_trace, ExploreConfig, Obs, State};
use conch_semantics::term::build as tb;
use conch_semantics::term::Term;
use proptest::prelude::*;
use std::rc::Rc;

/// The bridged program language. First-order and value-free (only unit
/// and characters flow), so that compilation to both targets is direct.
#[derive(Debug, Clone)]
enum Prog {
    /// `return ()`.
    Skip,
    /// `putChar c`.
    Put(char),
    /// `getChar >>= putChar`.
    Echo,
    /// `throw e`.
    Throw(u8),
    /// Sequential composition.
    Seq(Box<Prog>, Box<Prog>),
    /// `catch body (\_ -> handler)`.
    Catch(Box<Prog>, Box<Prog>),
    /// `block body`.
    Block(Box<Prog>),
    /// `unblock body`.
    Unblock(Box<Prog>),
    /// `forkIO child` (the child's tid is pushed on the fork stack).
    Fork(Box<Prog>),
    /// `throwTo <most recently forked tid> e`; no-op if none.
    ThrowToLast(u8),
    /// `takeMVar m_i` (blocking; result discarded).
    Take(u8),
    /// `putMVar m_i ()` (blocking when full).
    PutM(u8),
    /// `sleep d` for a tiny d — exercises the `$d` labels, which the
    /// conformance projection treats as internal.
    Nap(u8),
}

const MVAR_SLOTS: u8 = 2;

fn exc_name(i: u8) -> String {
    format!("E{i}")
}

// --------------------------------------------------------------------
// Compilation to the runtime
// --------------------------------------------------------------------

type RtEnv = Vec<ThreadId>;
type RtKont = Box<dyn FnOnce(RtEnv) -> Io<()>>;

fn to_io(p: Prog, mvars: Rc<Vec<MVar<Value>>>, env: RtEnv, k: RtKont) -> Io<()> {
    match p {
        Prog::Skip => k(env),
        Prog::Put(c) => Io::put_char(c).and_then(move |_| k(env)),
        Prog::Echo => Io::get_char().and_then(move |c| Io::put_char(c).and_then(move |_| k(env))),
        Prog::Throw(e) => Io::throw(Exception::custom(exc_name(e))),
        Prog::Seq(a, b) => {
            let mv = Rc::clone(&mvars);
            to_io(*a, mvars, env, Box::new(move |env| to_io(*b, mv, env, k)))
        }
        Prog::Catch(body, handler) => {
            let body_io = to_io(
                *body,
                Rc::clone(&mvars),
                env.clone(),
                Box::new(|_| Io::unit()),
            );
            let henv = env.clone();
            let hm = Rc::clone(&mvars);
            body_io
                .catch(move |_| to_io(*handler, hm, henv, Box::new(|_| Io::unit())))
                .and_then(move |_| k(env))
        }
        Prog::Block(b) => {
            let inner = to_io(*b, Rc::clone(&mvars), env.clone(), Box::new(|_| Io::unit()));
            Io::<()>::block(inner).and_then(move |_| k(env))
        }
        Prog::Unblock(b) => {
            let inner = to_io(*b, Rc::clone(&mvars), env.clone(), Box::new(|_| Io::unit()));
            Io::<()>::unblock(inner).and_then(move |_| k(env))
        }
        Prog::Fork(child) => {
            let child_io = to_io(
                *child,
                Rc::clone(&mvars),
                env.clone(),
                Box::new(|_| Io::unit()),
            );
            Io::fork(child_io).and_then(move |t| {
                let mut env = env;
                env.push(t);
                k(env)
            })
        }
        Prog::ThrowToLast(e) => match env.last().copied() {
            None => k(env),
            Some(t) => Io::throw_to(t, Exception::custom(exc_name(e))).and_then(move |_| k(env)),
        },
        Prog::Take(i) => mvars[usize::from(i % MVAR_SLOTS)]
            .take()
            .and_then(move |_| k(env)),
        Prog::PutM(i) => mvars[usize::from(i % MVAR_SLOTS)]
            .put(Value::Unit)
            .and_then(move |_| k(env)),
        Prog::Nap(d) => Io::sleep(u64::from(d % 4)).and_then(move |_| k(env)),
    }
}

fn runtime_program(p: Prog) -> Io<()> {
    // Prelude: allocate the MVar slots, then run the compiled body.
    Io::new_empty_mvar::<Value>().and_then(move |m0| {
        Io::new_empty_mvar::<Value>().and_then(move |m1| {
            let mvars = Rc::new(vec![m0, m1]);
            to_io(p, mvars, Vec::new(), Box::new(|_| Io::unit()))
        })
    })
}

// --------------------------------------------------------------------
// Compilation to the semantics
// --------------------------------------------------------------------

#[derive(Clone)]
struct TmCtx {
    tid_vars: Vec<String>,
    fresh: u32,
}

type TmKont = Box<dyn FnOnce(TmCtx) -> Rc<Term>>;

fn mvar_var(i: u8) -> Rc<Term> {
    tb::var(&format!("mv{}", i % MVAR_SLOTS))
}

fn to_term(p: Prog, mut ctx: TmCtx, k: TmKont) -> Rc<Term> {
    match p {
        Prog::Skip => k(ctx),
        Prog::Put(c) => tb::seq(tb::put_char(tb::ch(c)), k(ctx)),
        Prog::Echo => tb::bind(
            tb::get_char(),
            tb::lam("c", tb::seq(tb::put_char(tb::var("c")), k(ctx))),
        ),
        Prog::Throw(e) => tb::throw(tb::exc(&exc_name(e))),
        Prog::Seq(a, b) => to_term(*a, ctx, Box::new(move |ctx| to_term(*b, ctx, k))),
        Prog::Catch(body, handler) => {
            let hctx = ctx.clone();
            let body_t = to_term(*body, ctx.clone(), Box::new(|_| tb::ret(tb::unit())));
            let handler_t = to_term(*handler, hctx, Box::new(|_| tb::ret(tb::unit())));
            tb::seq(tb::catch(body_t, tb::lam("_exc", handler_t)), k(ctx))
        }
        Prog::Block(b) => {
            let inner = to_term(*b, ctx.clone(), Box::new(|_| tb::ret(tb::unit())));
            tb::seq(tb::block(inner), k(ctx))
        }
        Prog::Unblock(b) => {
            let inner = to_term(*b, ctx.clone(), Box::new(|_| tb::ret(tb::unit())));
            tb::seq(tb::unblock(inner), k(ctx))
        }
        Prog::Fork(child) => {
            let child_t = to_term(*child, ctx.clone(), Box::new(|_| tb::ret(tb::unit())));
            let tvar = format!("tid{}", ctx.fresh);
            ctx.fresh += 1;
            ctx.tid_vars.push(tvar.clone());
            tb::bind(tb::fork(child_t), tb::lam(&tvar, k(ctx)))
        }
        Prog::ThrowToLast(e) => match ctx.tid_vars.last().cloned() {
            None => k(ctx),
            Some(t) => tb::seq(tb::throw_to(tb::var(&t), tb::exc(&exc_name(e))), k(ctx)),
        },
        Prog::Take(i) => tb::bind(tb::take_mvar(mvar_var(i)), tb::lam("_tk", k(ctx))),
        Prog::PutM(i) => tb::seq(tb::put_mvar(mvar_var(i), tb::unit()), k(ctx)),
        Prog::Nap(d) => tb::seq(tb::sleep(tb::int(i64::from(d % 4))), k(ctx)),
    }
}

fn semantics_program(p: Prog) -> Rc<Term> {
    let body = to_term(
        p,
        TmCtx {
            tid_vars: Vec::new(),
            fresh: 0,
        },
        Box::new(|_| tb::ret(tb::unit())),
    );
    // Prelude mirrors runtime_program's MVar allocation.
    tb::bind(
        tb::new_empty_mvar(),
        tb::lam("mv0", tb::bind(tb::new_empty_mvar(), tb::lam("mv1", body))),
    )
}

// --------------------------------------------------------------------
// The conformance check itself
// --------------------------------------------------------------------

fn observed(events: &[IoEvent]) -> Vec<Obs> {
    events
        .iter()
        .filter_map(|e| match e {
            IoEvent::Put(c) => Some(Obs::Put(*c)),
            IoEvent::Get(c) => Some(Obs::Get(*c)),
            // Clock advances and scheduler-visible events (fork, throwTo,
            // mask transitions, blocking) are not part of the paper's
            // observable alphabet.
            _ => None,
        })
        .collect()
}

/// Runs `prog` on the runtime under several schedules; asserts every
/// observed trace is admitted by the LTS.
fn assert_conformance(prog: &Prog, input: &str, seeds: std::ops::Range<u64>) {
    let term = semantics_program(prog.clone());
    let init = State::new(term, input);
    let explore = ExploreConfig {
        max_states: 3_000_000,
        max_depth: 100_000,
        ..ExploreConfig::default()
    };

    for seed in seeds {
        let cfg = RuntimeConfig::new()
            .fork_inherits_mask(false)
            .random_scheduling(seed)
            .quantum(3)
            .max_steps(200_000);
        let mut rt = Runtime::with_config(cfg);
        rt.feed_input(input);
        let outcome = rt.run(runtime_program(prog.clone()));
        let trace = observed(rt.io_trace());
        match outcome {
            Ok(()) | Err(RunError::Uncaught(_)) => {
                // Terminated: the full trace must be a complete LTS run.
                assert!(
                    admits_trace(&init, &trace, true, &explore),
                    "seed {seed}: runtime trace {trace:?} not admitted (terminating) for {prog:?}"
                );
            }
            Err(RunError::Deadlock { .. }) | Err(RunError::StepLimitExceeded { .. }) => {
                // Wedged or truncated: the trace must be an admissible prefix.
                assert!(
                    admits_trace(&init, &trace, false, &explore),
                    "seed {seed}: runtime trace {trace:?} not admitted (prefix) for {prog:?}"
                );
            }
        }
    }
}

// Convenience constructors.
fn sq(a: Prog, b: Prog) -> Prog {
    Prog::Seq(Box::new(a), Box::new(b))
}
fn sq3(a: Prog, b: Prog, c: Prog) -> Prog {
    sq(a, sq(b, c))
}

#[test]
fn put_sequence() {
    assert_conformance(
        &sq3(Prog::Put('a'), Prog::Put('b'), Prog::Put('c')),
        "",
        0..3,
    );
}

#[test]
fn echo_conforms() {
    assert_conformance(&sq(Prog::Echo, Prog::Echo), "xy", 0..3);
}

#[test]
fn throw_and_catch() {
    assert_conformance(
        &sq(
            Prog::Catch(
                Box::new(sq(Prog::Put('a'), Prog::Throw(0))),
                Box::new(Prog::Put('h')),
            ),
            Prog::Put('z'),
        ),
        "",
        0..3,
    );
}

#[test]
fn uncaught_throw() {
    assert_conformance(&sq(Prog::Put('a'), Prog::Throw(1)), "", 0..3);
}

#[test]
fn forked_puts_interleave() {
    assert_conformance(
        &sq(
            Prog::Fork(Box::new(sq(Prog::Put('a'), Prog::Put('b')))),
            sq(Prog::Put('x'), Prog::Put('y')),
        ),
        "",
        0..10,
    );
}

#[test]
fn mvar_rendezvous() {
    // Child puts; main takes then prints.
    assert_conformance(
        &sq(
            Prog::Fork(Box::new(sq(Prog::Put('c'), Prog::PutM(0)))),
            sq(Prog::Take(0), Prog::Put('m')),
        ),
        "",
        0..10,
    );
}

#[test]
fn deadlocked_take_is_an_admissible_prefix() {
    assert_conformance(&sq(Prog::Put('a'), Prog::Take(0)), "", 0..3);
}

#[test]
fn kill_between_puts() {
    // Fork a printer, kill it: every interleaving the runtime picks must
    // be admitted (killed before 'a', between 'a' and 'b', after both, or
    // reaped by Proc GC).
    assert_conformance(
        &sq3(
            Prog::Fork(Box::new(sq(Prog::Put('a'), Prog::Put('b')))),
            Prog::ThrowToLast(0),
            Prog::Put('z'),
        ),
        "",
        0..20,
    );
}

#[test]
fn masked_child_kill() {
    // The child masks its puts: the runtime must never produce a trace
    // with 'a' but not 'b' while the main thread is still observably
    // active afterwards — and whatever it produces, the LTS admits it.
    assert_conformance(
        &sq3(
            Prog::Fork(Box::new(Prog::Block(Box::new(sq(
                Prog::Put('a'),
                Prog::Put('b'),
            ))))),
            Prog::ThrowToLast(0),
            sq(Prog::Put('z'), Prog::Take(0)), // keep main alive (deadlock)
        ),
        "",
        0..20,
    );
}

#[test]
fn unblock_window_inside_block() {
    assert_conformance(
        &sq3(
            Prog::Fork(Box::new(Prog::Block(Box::new(sq3(
                Prog::Put('a'),
                Prog::Unblock(Box::new(Prog::Put('u'))),
                Prog::Put('b'),
            ))))),
            Prog::ThrowToLast(1),
            Prog::Put('z'),
        ),
        "",
        0..20,
    );
}

#[test]
fn catch_of_async_exception_conforms() {
    assert_conformance(
        &sq3(
            Prog::Fork(Box::new(Prog::Catch(
                Box::new(sq(Prog::Put('a'), Prog::Take(0))), // blocks: interruptible
                Box::new(Prog::Put('h')),                    // handler prints
            ))),
            Prog::ThrowToLast(0),
            sq(Prog::Put('z'), Prog::Take(1)), // keep main alive
        ),
        "",
        0..20,
    );
}

#[test]
fn sleeping_threads_conform() {
    // Sleeps interleaved with puts across two threads: the runtime's
    // global clock partitions time differently than the LTS's per-sleep
    // labels, and the projection must still line up.
    assert_conformance(
        &sq3(
            Prog::Fork(Box::new(sq3(Prog::Nap(2), Prog::Put('a'), Prog::Nap(1)))),
            Prog::Nap(3),
            Prog::Put('z'),
        ),
        "",
        0..10,
    );
}

#[test]
fn kill_a_sleeper_conforms() {
    // Interrupting a stuck sleeper exercises the (Interrupt) rule on the
    // semantics side and the sleep-queue removal on the runtime side.
    assert_conformance(
        &sq3(
            Prog::Fork(Box::new(sq(Prog::Nap(3), Prog::Put('a')))),
            Prog::ThrowToLast(0),
            Prog::Put('z'),
        ),
        "",
        0..10,
    );
}

#[test]
fn negative_control_oracle_rejects_wrong_traces() {
    // The oracle must not be vacuously true: it rejects reordered output,
    // phantom output, and truncated terminating runs.
    let prog = sq(Prog::Put('a'), Prog::Put('b'));
    let init = State::new(semantics_program(prog), "");
    let cfg = ExploreConfig::default();
    assert!(admits_trace(
        &init,
        &[Obs::Put('a'), Obs::Put('b')],
        true,
        &cfg
    ));
    assert!(!admits_trace(
        &init,
        &[Obs::Put('b'), Obs::Put('a')],
        true,
        &cfg
    ));
    assert!(!admits_trace(&init, &[Obs::Put('a')], true, &cfg));
    assert!(!admits_trace(
        &init,
        &[Obs::Put('a'), Obs::Put('b'), Obs::Put('c')],
        true,
        &cfg
    ));
    // And for a masked child: killing cannot split the masked pair.
    let masked = sq3(
        Prog::Fork(Box::new(Prog::Block(Box::new(sq(
            Prog::Put('a'),
            Prog::Put('b'),
        ))))),
        Prog::ThrowToLast(0),
        sq(Prog::Put('z'), Prog::Take(0)), // main then blocks forever
    );
    let init = State::new(semantics_program(masked), "");
    // 'a' printed, child killed before 'b', 'z' printed, then 'b' never
    // comes: the trace !a!z must only be admissible as a *prefix* (the
    // child may still be between its puts), but the same trace extended
    // by nothing can never be a *terminating* run (main deadlocks) —
    // and !a!z!b IS admissible as a prefix.
    assert!(admits_trace(
        &init,
        &[Obs::Put('a'), Obs::Put('z')],
        false,
        &cfg
    ));
    assert!(!admits_trace(
        &init,
        &[Obs::Put('a'), Obs::Put('z')],
        true,
        &cfg
    ));
    assert!(admits_trace(
        &init,
        &[Obs::Put('a'), Obs::Put('z'), Obs::Put('b')],
        false,
        &cfg
    ));
    // The masked pair cannot be split by the kill: a run in which 'b'
    // never appears while the soup still contains the (live, unkillable-
    // between-puts) child can only be a prefix where 'b' is still to
    // come. A trace claiming 'a' then 'x' (phantom output) is rejected
    // outright.
    assert!(!admits_trace(
        &init,
        &[Obs::Put('a'), Obs::Put('x')],
        false,
        &cfg
    ));
}

// --------------------------------------------------------------------
// Randomized conformance
// --------------------------------------------------------------------

fn leaf() -> impl Strategy<Value = Prog> {
    prop_oneof![
        Just(Prog::Skip),
        prop::char::range('a', 'd').prop_map(Prog::Put),
        Just(Prog::Echo),
        (0u8..2).prop_map(Prog::Throw),
        (0u8..2).prop_map(Prog::ThrowToLast),
        (0u8..MVAR_SLOTS).prop_map(Prog::Take),
        (0u8..MVAR_SLOTS).prop_map(Prog::PutM),
        (0u8..4).prop_map(Prog::Nap),
    ]
}

fn prog_strategy() -> impl Strategy<Value = Prog> {
    leaf().prop_recursive(3, 10, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| sq(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Prog::Catch(Box::new(a), Box::new(b))),
            inner.clone().prop_map(|a| Prog::Block(Box::new(a))),
            inner.clone().prop_map(|a| Prog::Unblock(Box::new(a))),
            inner.prop_map(|a| Prog::Fork(Box::new(a))),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 48,
        max_shrink_iters: 200,
    })]

    /// Every trace of every random program under three random schedules
    /// is admitted by the formal semantics.
    #[test]
    fn random_programs_conform(prog in prog_strategy(), seed in 0u64..1000) {
        assert_conformance(&prog, "qrs", seed..seed + 3);
    }
}
