//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this shim
//! provides exactly the surface the workspace uses: `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, and `Rng::gen_range` over integer
//! ranges. The generator is SplitMix64 — deterministic per seed, which
//! is all the runtime's seeded-scheduling tests require. It is **not**
//! the same stream as the real `StdRng`, so seeds recorded elsewhere
//! reproduce structure, not identical schedules.

use std::ops::{Range, RangeInclusive};

/// Minimal core-RNG interface: a source of uniform `u64`s.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling helpers, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample from a half-open or inclusive integer range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// A Bernoulli sample with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }
}

impl<R: RngCore> Rng for R {}

/// A range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value.
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $ty
            }
        }
        impl SampleRange<$ty> for RangeInclusive<$ty> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $ty
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A deterministic 64-bit generator (SplitMix64).
    ///
    /// Stands in for `rand::rngs::StdRng`; the stream differs from the
    /// real crate but has the same determinism-per-seed contract.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Avoid the all-zeroes fixed point early on.
            StdRng {
                state: seed ^ 0x9e37_79b9_7f4a_7c15,
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
    }

    #[test]
    fn stays_in_range() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = r.gen_range(3u64..17);
            assert!((3..17).contains(&x));
            let y = r.gen_range(1u64..=5);
            assert!((1..=5).contains(&y));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..1_000_000)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen_range(0u64..1_000_000)).collect();
        assert_ne!(va, vb);
    }
}
