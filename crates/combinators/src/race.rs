//! Symmetric process abstractions (§7.2) and time-outs (§7.3).
//!
//! [`race`] is the paper's `either`: run two computations concurrently,
//! return the first result and kill the other thread. [`both`] waits for
//! both. [`timeout`] is the composable time-out built on `race` — note
//! that it needs *no* timeout exception at all, which is what makes nested
//! timeouts compose (§7.3).
//!
//! The implementation is a line-by-line transcription of the paper's
//! Haskell (§7.2), including the crucial details:
//!
//! * everything after the forks happens inside `block`, so the parent
//!   cannot lose track of its children;
//! * the waiting loop catches asynchronous exceptions aimed at the parent
//!   and propagates them to *both* children, then resumes waiting;
//! * the final `throwTo ... KillThread` calls are non-interruptible
//!   (asynchronous `throwTo`, §9), so both children are reliably killed
//!   before `race` returns.

use conch_runtime::exception::Exception;
use conch_runtime::ids::ThreadId;
use conch_runtime::io::Io;
use conch_runtime::mvar::MVar;
use conch_runtime::value::{FromValue, IntoValue, Value};

use crate::either::Either;

/// Tags a child's completion in the shared result `MVar`: the paper's
/// `EitherRet` datatype (`A a | B b | X Exception`).
fn tag_left(v: Value) -> Value {
    Value::Left(Box::new(v))
}

fn tag_right(v: Value) -> Value {
    Value::Right(Box::new(v))
}

/// One child of `race`/`both`: `catch (do r <- unblock body; putMVar m
/// (tag r)) (\e -> putMVar m (X e))`.
///
/// The child is forked while the parent is masked, so (with mask
/// inheritance) it installs its `catch` before any exception can arrive;
/// the `unblock` then opens the window for the body.
fn child<T>(m: MVar<Value>, body: Io<T>, tag: fn(Value) -> Value) -> Io<()>
where
    T: FromValue + IntoValue + 'static,
{
    Io::unblock(body)
        .and_then(move |r: T| m.put(tag(r.into_value())))
        .catch(move |e| m.put(Value::Exception(e)))
}

/// The parent's waiting loop: `catch (takeMVar m) (\e -> do throwTo a_id
/// e; throwTo b_id e; loop)`.
///
/// Any asynchronous exception received while waiting is propagated to both
/// children, and the wait resumes — so the eventual answer (result or
/// exception) always comes *from the children*.
fn await_result(m: MVar<Value>, a_id: ThreadId, b_id: ThreadId) -> Io<Value> {
    m.take().catch(move |e| {
        Io::throw_to(a_id, e.clone())
            .then(Io::throw_to(b_id, e))
            .then(await_result(m, a_id, b_id))
    })
}

/// The paper's `either` (§7.2): run `a` and `b` concurrently; return
/// `Left r` if `a` finishes first with `r`, `Right r` if `b` does, or
/// re-throw if either child raises before one returns. The losing child
/// is sent `KillThread`.
///
/// If the thread executing `race` receives an asynchronous exception, the
/// exception is propagated to both children and the wait resumes.
///
/// # Examples
///
/// ```
/// use conch_runtime::prelude::*;
/// use conch_combinators::{race, Either};
///
/// let mut rt = Runtime::new();
/// let prog = race(Io::sleep(10).map(|_| 'a'), Io::sleep(99).map(|_| 'b'));
/// assert_eq!(rt.run(prog).unwrap(), Either::Left('a'));
/// ```
pub fn race<A, B>(a: Io<A>, b: Io<B>) -> Io<Either<A, B>>
where
    A: FromValue + IntoValue + 'static,
    B: FromValue + IntoValue + 'static,
{
    Io::new_empty_mvar::<Value>().and_then(move |m| {
        Io::block(Io::fork(child(m, a, tag_left)).and_then(move |a_id| {
            Io::fork(child(m, b, tag_right)).and_then(move |b_id| {
                await_result(m, a_id, b_id).and_then(move |r| {
                    Io::throw_to(a_id, Exception::kill_thread())
                        .then(Io::throw_to(b_id, Exception::kill_thread()))
                        .then(match r {
                            Value::Left(v) => Io::pure(Either::Left(A::from_value_or_panic(*v))),
                            Value::Right(v) => Io::pure(Either::Right(B::from_value_or_panic(*v))),
                            Value::Exception(e) => Io::throw(e),
                            other => panic!("race: impossible completion tag {}", other.shape()),
                        })
                })
            })
        }))
    })
}

/// The paper's `both` (§7.2): run `a` and `b` concurrently and wait for
/// *both* results, returned as a pair.
///
/// If either child raises an exception before returning, the other child
/// is killed and the exception propagates. Asynchronous exceptions aimed
/// at the parent are propagated to both children while waiting.
///
/// # Examples
///
/// ```
/// use conch_runtime::prelude::*;
/// use conch_combinators::both;
///
/// let mut rt = Runtime::new();
/// let prog = both(Io::sleep(5).map(|_| 1_i64), Io::sleep(9).map(|_| 2_i64));
/// assert_eq!(rt.run(prog).unwrap(), (1, 2));
/// ```
pub fn both<A, B>(a: Io<A>, b: Io<B>) -> Io<(A, B)>
where
    A: FromValue + IntoValue + 'static,
    B: FromValue + IntoValue + 'static,
{
    Io::new_empty_mvar::<Value>().and_then(move |m| {
        Io::block(Io::fork(child(m, a, tag_left)).and_then(move |a_id| {
            Io::fork(child(m, b, tag_right)).and_then(move |b_id| {
                await_result(m, a_id, b_id).and_then(move |first| {
                    if let Value::Exception(e) = first {
                        // One child failed: kill the other immediately
                        // and propagate (the spec's third bullet).
                        return kill_both(a_id, b_id).then(Io::throw(e));
                    }
                    await_result(m, a_id, b_id).and_then(move |second| {
                        match pair_up(first, second) {
                            Ok((av, bv)) => kill_both(a_id, b_id).then(Io::pure((
                                A::from_value_or_panic(av),
                                B::from_value_or_panic(bv),
                            ))),
                            Err(e) => kill_both(a_id, b_id).then(Io::throw(e)),
                        }
                    })
                })
            })
        }))
    })
}

/// Sends `KillThread` to both children (non-interruptible asynchronous
/// `throwTo`, so both sends always happen).
fn kill_both(a_id: ThreadId, b_id: ThreadId) -> Io<()> {
    Io::throw_to(a_id, Exception::kill_thread()).then(Io::throw_to(b_id, Exception::kill_thread()))
}

/// Orders two tagged completions into `(left, right)`, or surfaces the
/// first exception among them.
fn pair_up(first: Value, second: Value) -> Result<(Value, Value), Exception> {
    match (first, second) {
        (Value::Exception(e), _) | (_, Value::Exception(e)) => Err(e),
        (Value::Left(a), Value::Right(b)) => Ok((*a, *b)),
        (Value::Right(b), Value::Left(a)) => Ok((*a, *b)),
        (x, y) => panic!(
            "both: impossible completion tags {} / {}",
            x.shape(),
            y.shape()
        ),
    }
}

/// The composable timeout (§7.3): run `action` with a time budget of `d`
/// virtual microseconds; `Just`/`Some` its result, or `None` on expiry.
///
/// Built on [`race`] against `sleep d`, so no timeout exception exists to
/// be intercepted by the timed code, and nested timeouts cannot interfere
/// with each other.
///
/// # Examples
///
/// ```
/// use conch_runtime::prelude::*;
/// use conch_combinators::timeout;
///
/// let mut rt = Runtime::new();
/// let fast = timeout(1_000, Io::sleep(10).map(|_| 'r'));
/// assert_eq!(rt.run(fast).unwrap(), Some('r'));
/// let slow = timeout(10, Io::sleep(1_000).map(|_| 'r'));
/// assert_eq!(rt.run(slow).unwrap(), None);
/// ```
pub fn timeout<A>(d: u64, action: Io<A>) -> Io<Option<A>>
where
    A: FromValue + IntoValue + 'static,
{
    race(Io::sleep(d), action).map(|r| match r {
        Either::Left(()) => None,
        Either::Right(a) => Some(a),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use conch_runtime::prelude::*;

    #[test]
    fn race_left_wins() {
        let mut rt = Runtime::new();
        let prog = race(Io::sleep(10).map(|_| 1_i64), Io::sleep(100).map(|_| 2_i64));
        assert_eq!(rt.run(prog).unwrap(), Either::Left(1));
    }

    #[test]
    fn race_right_wins() {
        let mut rt = Runtime::new();
        let prog = race(Io::sleep(100).map(|_| 1_i64), Io::sleep(10).map(|_| 2_i64));
        assert_eq!(rt.run(prog).unwrap(), Either::Right(2));
    }

    #[test]
    fn race_kills_the_loser() {
        let mut rt = Runtime::new();
        // The loser would fill `leak` if it survived.
        let prog = Io::new_empty_mvar::<i64>().and_then(|leak| {
            race(
                Io::sleep(10).map(|_| 1_i64),
                Io::sleep(100).then(leak.put(9)).map(|_| 2_i64),
            )
            .and_then(move |r| {
                // Wait past the loser's deadline, then check it never put.
                Io::sleep(1_000).then(leak.try_take()).map(move |l| (r, l))
            })
        });
        let (r, leaked) = rt.run(prog).unwrap();
        assert_eq!(r, Either::Left(1));
        assert_eq!(leaked, None);
    }

    #[test]
    fn race_propagates_child_exception() {
        let mut rt = Runtime::new();
        let prog = race(
            Io::sleep(50).map(|_| 1_i64),
            Io::sleep(5).then(Io::<i64>::throw(Exception::error_call("child died"))),
        );
        assert_eq!(
            rt.run(prog),
            Err(RunError::Uncaught(Exception::error_call("child died")))
        );
    }

    #[test]
    fn race_parent_exception_propagates_to_children() {
        let mut rt = Runtime::new();
        // Parent races two sleepers; an outside thread throws to the parent.
        // Spec: the exception is propagated to both children, so the race
        // ends with that exception (children re-raise it).
        let prog = Io::new_empty_mvar::<String>().and_then(|out| {
            let racer = race(
                Io::sleep(10_000).map(|_| 1_i64),
                Io::sleep(20_000).map(|_| 2_i64),
            )
            .map(|_| "finished".to_owned())
            .catch(|e| Io::pure(format!("racer got {e}")))
            .and_then(move |s| out.put(s));
            Io::fork(racer).and_then(move |racer_id| {
                Io::sleep(100)
                    .then(Io::throw_to(racer_id, Exception::custom("outside")))
                    .then(out.take())
            })
        });
        assert_eq!(rt.run(prog).unwrap(), "racer got outside");
    }

    #[test]
    fn both_returns_pair_in_argument_order() {
        let mut rt = Runtime::new();
        // Right finishes first; pair order must still be (a, b).
        let prog = both(Io::sleep(50).map(|_| 1_i64), Io::sleep(5).map(|_| 2_i64));
        assert_eq!(rt.run(prog).unwrap(), (1, 2));
    }

    #[test]
    fn both_propagates_first_exception_and_kills_other() {
        let mut rt = Runtime::new();
        let prog = Io::new_empty_mvar::<i64>().and_then(|leak| {
            both(
                Io::sleep(5).then(Io::<i64>::throw(Exception::error_call("a died"))),
                Io::sleep(10_000).then(leak.put(1)).map(|_| 2_i64),
            )
            .map(|_| 0_i64)
            .catch(|e| {
                assert_eq!(e, Exception::error_call("a died"));
                Io::pure(7)
            })
            .and_then(move |r| Io::sleep(20_000).then(leak.try_take()).map(move |l| (r, l)))
        });
        let (r, leaked) = rt.run(prog).unwrap();
        assert_eq!(r, 7);
        assert_eq!(leaked, None, "slow child must have been killed");
    }

    #[test]
    fn timeout_returns_some_when_fast() {
        let mut rt = Runtime::new();
        let prog = timeout(1_000, Io::sleep(1).map(|_| 5_i64));
        assert_eq!(rt.run(prog).unwrap(), Some(5));
    }

    #[test]
    fn timeout_returns_none_when_slow() {
        let mut rt = Runtime::new();
        let prog = timeout(10, Io::sleep(1_000).map(|_| 5_i64));
        assert_eq!(rt.run(prog).unwrap(), None);
    }

    #[test]
    fn timeout_aborts_blocked_computation() {
        let mut rt = Runtime::new();
        // The timed action blocks forever on an empty MVar; timeout must
        // still fire (takeMVar is interruptible).
        let prog = Io::new_empty_mvar::<i64>().and_then(|hole| timeout(50, hole.take()));
        assert_eq!(rt.run(prog).unwrap(), None);
        assert_eq!(rt.clock(), 50);
    }

    #[test]
    fn nested_timeouts_do_not_interfere() {
        let mut rt = Runtime::new();
        // Inner timeout (tight) fires; outer (loose) must still deliver the
        // inner's None as a successful result.
        let prog = timeout(10_000, timeout(10, Io::sleep(1_000).map(|_| 1_i64)));
        assert_eq!(rt.run(prog).unwrap(), Some(None));
    }

    #[test]
    fn nested_timeouts_outer_fires_first() {
        let mut rt = Runtime::new();
        let prog = timeout(10, timeout(10_000, Io::sleep(1_000).map(|_| 1_i64)));
        assert_eq!(rt.run(prog).unwrap(), None);
    }

    #[test]
    fn timeout_of_pure_compute() {
        let mut rt = Runtime::new();
        // A compute-bound action finishes (virtual time does not pass while
        // threads are runnable), so the timeout never fires.
        let prog = timeout(1, Io::compute_returning(10_000, 3_i64));
        assert_eq!(rt.run(prog).unwrap(), Some(3));
    }

    #[test]
    fn triple_nested_timeouts() {
        let mut rt = Runtime::new();
        let prog = timeout(
            100_000,
            timeout(10_000, timeout(10, Io::sleep(5_000).map(|_| 1_i64))),
        );
        assert_eq!(rt.run(prog).unwrap(), Some(Some(None)));
    }
}
