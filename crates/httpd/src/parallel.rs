//! The wall-clock parallel serving plane: one scheduler per shard.
//!
//! The sharded plane (`crate::shard`) proved *virtual-time* scaling —
//! 16 shards serve 16x the requests per virtual second — but a single
//! [`Runtime`](conch_runtime::Runtime) still interprets every shard's
//! threads on one OS thread, so *wall* throughput stays flat at any
//! shard count. This module re-homes the plane onto
//! [`MultiRuntime`](conch_runtime::parallel::MultiRuntime): each shard's
//! acceptor, workers, bounded accept `Mailbox` and `ServerStats` cell
//! live on their **own** runtime, pinned to an OS thread, so shards
//! genuinely run in parallel on real hardware.
//!
//! Concretely each shard program is a self-contained single-shard
//! plane: `ShardedListener::bind(1, ..)` + `start_sharded` plus that
//! shard's share of the load clients — the per-shard accept queue and
//! stats cell from the sharded plane become runtime-local for free.
//! Cross-shard traffic uses the deterministic epoch-synced channels:
//! after its local quiescent audit, every shard ships its
//! `(oks, snapshot)` as an **aggregate-stat message** to shard 0, which
//! folds them with [`StatsSnapshot::merge`] — so the conservation-law
//! aggregate itself crosses the channel plane, and the merged result is
//! bit-identical for any `os_threads` count.
//!
//! The handler is `Rc`-based and deliberately not `Send`, so callers
//! hand over a handler *factory* (`Fn() -> Handler + Send + Clone`):
//! each shard builds its own handler inside its pinned thread.

use conch_runtime::parallel::{MultiConfig, MultiRuntime, ShardCtx, ShardProgram};
use conch_runtime::value::{FromValue, IntoValue, Value};
use conch_runtime::{Io, RuntimeConfig};

use crate::server::{Handler, StatsSnapshot};
use crate::shard::{per_shard, sharded_load, LoadConfig, ShardConfig};

/// Shape of a wall-parallel load run.
#[derive(Debug, Clone, Copy)]
pub struct WallConfig {
    /// Accept shards — and independent schedulers.
    pub shards: usize,
    /// Total keep-alive connections, split evenly over the shards.
    pub clients: usize,
    /// Pipelined requests per connection.
    pub requests_per_conn: usize,
    /// Virtual µs between arrivals, per shard.
    pub arrival_gap: u64,
    /// Accept-queue bound per shard.
    pub queue_capacity: i64,
    /// Per-request budgets.
    pub server: ShardConfig,
    /// OS threads to spread the shards over (results are identical for
    /// every value; wall time is not).
    pub os_threads: usize,
    /// Epoch width for the cross-shard barriers. The load plane only
    /// crosses shards for the final aggregate, so wide epochs amortize
    /// barrier costs without adding observable latency.
    pub epoch_us: u64,
}

impl Default for WallConfig {
    fn default() -> Self {
        WallConfig {
            shards: 4,
            clients: 1_000,
            requests_per_conn: 10,
            arrival_gap: 100,
            queue_capacity: 1_024,
            server: ShardConfig::default(),
            os_threads: 1,
            epoch_us: 10_000,
        }
    }
}

/// What a wall-parallel load run produced.
#[derive(Debug, Clone)]
pub struct WallReport {
    /// Total `200` responses collected, summed across shards *by shard
    /// 0 over the channel plane*.
    pub oks: i64,
    /// The cross-shard aggregate snapshot, folded by shard 0 from the
    /// per-shard aggregate-stat messages with [`StatsSnapshot::merge`].
    pub merged: StatsSnapshot,
    /// Each shard's own quiescent snapshot, in shard order.
    pub per_shard: Vec<StatsSnapshot>,
    /// Each shard's own `200` count, in shard order.
    pub oks_per_shard: Vec<i64>,
    /// Barrier rounds the coordinator executed.
    pub rounds: u64,
    /// Cross-shard messages delivered (the aggregate-stat reports).
    pub messages: u64,
    /// The deterministic cross-shard drain log.
    pub drain_log: Vec<String>,
}

impl WallReport {
    /// Re-merges the per-shard snapshots host-side. Equality with
    /// [`merged`](Self::merged) (which travelled through the channel
    /// plane) is the end-to-end determinism check the bench asserts.
    pub fn host_merged(&self) -> StatsSnapshot {
        self.per_shard
            .iter()
            .fold(StatsSnapshot::default(), |acc, s| acc.merge(s))
    }
}

/// One shard's program: its slice of the load against its own
/// single-shard plane, then the aggregate-stat exchange. Every shard
/// returns `((oks, snapshot), aggregate)` where `aggregate` is `Some`
/// only on shard 0.
fn shard_program(cfg: WallConfig, shard: usize, h: Handler) -> impl FnOnce(&ShardCtx) -> Io<Value> {
    move |ctx: &ShardCtx| {
        let load = LoadConfig {
            clients: per_shard(cfg.clients, cfg.shards, shard),
            shards: 1,
            requests_per_conn: cfg.requests_per_conn,
            arrival_gap: cfg.arrival_gap,
            queue_capacity: cfg.queue_capacity,
            server: cfg.server,
        };
        let ctx = ctx.clone();
        sharded_load(h, load).and_then(move |(oks, snap)| {
            if ctx.shard() == 0 {
                let waiting = ctx.shards() - 1;
                gather(ctx, waiting, oks, snap, (oks, snap))
            } else {
                ctx.send(0, (oks, snap).into_value())
                    .map(move |()| encode((oks, snap), None))
            }
        })
    }
}

/// Shard 0's fold over the other shards' aggregate-stat messages.
fn gather(
    ctx: ShardCtx,
    left: u16,
    total: i64,
    merged: StatsSnapshot,
    own: (i64, StatsSnapshot),
) -> Io<Value> {
    if left == 0 {
        return Io::pure(encode(own, Some((total, merged))));
    }
    ctx.clone().recv().and_then(move |v| {
        let (oks, snap) = <(i64, StatsSnapshot)>::from_value_or_panic(v);
        gather(ctx, left - 1, total + oks, merged.merge(&snap), own)
    })
}

type ShardAnswer = ((i64, StatsSnapshot), Option<(i64, StatsSnapshot)>);

fn encode(own: (i64, StatsSnapshot), agg: Option<(i64, StatsSnapshot)>) -> Value {
    (own, agg).into_value()
}

/// Runs the wall-parallel load: `cfg.shards` independent schedulers on
/// `cfg.os_threads` OS threads.
///
/// # Panics
///
/// Panics if any shard program fails (a load bug, not an expected
/// outcome: the plane has no fault injection).
pub fn wall_parallel_load<F>(make_handler: F, cfg: WallConfig) -> WallReport
where
    F: Fn() -> Handler + Send + Clone + 'static,
{
    assert!(cfg.shards >= 1);
    let programs: Vec<ShardProgram> = (0..cfg.shards)
        .map(|shard| {
            let mk = make_handler.clone();
            Box::new(move |ctx: &ShardCtx| shard_program(cfg, shard, mk())(ctx)) as ShardProgram
        })
        .collect();
    let mut mr = MultiRuntime::new(MultiConfig {
        epoch_us: cfg.epoch_us,
        epoch_steps: None,
        os_threads: cfg.os_threads,
        runtime: RuntimeConfig::default(),
    });
    let report = mr.run(programs);

    let mut per_shard_snaps = Vec::with_capacity(cfg.shards);
    let mut oks_per_shard = Vec::with_capacity(cfg.shards);
    let mut aggregate = None;
    for (i, shard) in report.shards.iter().enumerate() {
        let v = shard
            .result
            .clone()
            .unwrap_or_else(|e| panic!("shard {i} failed: {e}"));
        let ((oks, snap), agg) = ShardAnswer::from_value_or_panic(v);
        per_shard_snaps.push(snap);
        oks_per_shard.push(oks);
        if let Some(a) = agg {
            assert!(i == 0 && aggregate.is_none(), "only shard 0 aggregates");
            aggregate = Some(a);
        }
    }
    let (oks, merged) = aggregate.expect("shard 0 reported the aggregate");
    WallReport {
        oks,
        merged,
        per_shard: per_shard_snaps,
        oks_per_shard,
        rounds: report.rounds,
        messages: report.messages,
        drain_log: report.drain_log,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::Response;
    use crate::server::handler;

    fn echo_factory() -> impl Fn() -> Handler + Send + Clone + 'static {
        || handler(|_req| Io::pure(Response::ok("hi")))
    }

    fn small(shards: usize, os_threads: usize) -> WallConfig {
        WallConfig {
            shards,
            clients: 40,
            requests_per_conn: 5,
            os_threads,
            ..WallConfig::default()
        }
    }

    #[test]
    fn wall_load_serves_and_conserves() {
        let report = wall_parallel_load(echo_factory(), small(4, 1));
        assert_eq!(report.oks, 40 * 5);
        assert_eq!(report.merged.served, 40 * 5);
        assert!(report.merged.conserved());
        assert_eq!(report.merged, report.host_merged());
        assert_eq!(report.messages, 3);
        assert_eq!(report.per_shard.len(), 4);
    }

    #[test]
    fn os_thread_count_is_invisible() {
        let base = wall_parallel_load(echo_factory(), small(4, 1));
        for os_threads in [2, 4, 8] {
            let par = wall_parallel_load(echo_factory(), small(4, os_threads));
            assert_eq!(par.oks, base.oks);
            assert_eq!(par.merged, base.merged);
            assert_eq!(par.per_shard, base.per_shard);
            assert_eq!(par.oks_per_shard, base.oks_per_shard);
            assert_eq!(par.drain_log, base.drain_log);
            assert_eq!(par.rounds, base.rounds);
        }
    }

    #[test]
    fn single_shard_wall_plane_degenerates_cleanly() {
        let report = wall_parallel_load(echo_factory(), small(1, 1));
        assert_eq!(report.oks, 40 * 5);
        assert!(report.merged.conserved());
        assert_eq!(report.messages, 0);
    }
}
