//! The green-thread scheduler and small-step interpreter.
//!
//! This module is the executable counterpart of §8 of the paper: it owns
//! the thread table, `MVar` cells, the virtual clock, and the console, and
//! interprets one [`Action`](crate::io::Io) node per step. Preemption is a
//! scheduling quantum measured in interpreter steps, so a `throwTo` can
//! take effect at *any* step boundary of the target — truly asynchronous
//! delivery, including in the middle of a pure computation.
//!
//! Delivery discipline (matching §5 and Figure 5):
//!
//! * **(Receive)** — a runnable, *unblocked* thread receives the first
//!   pending exception at its next step (in
//!   [`DeliveryMode::FullyAsync`]; the polling baseline defers this to
//!   explicit safe points).
//! * **(Interrupt)** — a *stuck* thread (blocked `takeMVar`/`putMVar`,
//!   `sleep`, `getChar`, sync-`throwTo`) is interruptible regardless of its
//!   masking state, and becomes runnable with the exception raised.
//! * **Interruptible operations** (§5.3) — a blocked-mask thread that is
//!   *about to block* on an unavailable resource receives its pending
//!   exception instead of blocking; if the resource is available the
//!   operation completes atomically without a delivery point.

use std::collections::VecDeque;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::config::{DeadlockPolicy, DeliveryMode, RuntimeConfig, SchedulingPolicy};
use crate::console::{BufferConsole, Console};
use crate::decide::{Decider, StepFootprint, ThreadView};
use crate::error::RunError;
use crate::exception::Exception;
use crate::ids::{MVarId, ThreadId};
use crate::io::{Action, Io};
use crate::mvar::MVarCell;
use crate::runq::RunQueue;
use crate::stats::Stats;
use crate::thread::{Code, Frame, MaskState, PendingExc, RaiseOrigin, Status, StuckReason, Thread};
use crate::timer::{TimerEntry, TimerWheel};
use crate::trace::{BlockSite, IoEvent};
use crate::value::{FromValue, Value};

/// The runtime: scheduler, thread table, `MVar` store, clock and console.
///
/// A `Runtime` is reusable: each [`Runtime::run`] spawns a fresh main
/// thread, while `MVar` cells, the console and the virtual clock persist
/// across runs (statistics reset per run).
///
/// # Examples
///
/// ```
/// use conch_runtime::prelude::*;
///
/// let mut rt = Runtime::new();
/// let result = rt.run(Io::pure(2_i64).map(|n| n + 2)).unwrap();
/// assert_eq!(result, 4);
/// ```
pub struct Runtime {
    config: RuntimeConfig,
    threads: Vec<Slot>,
    /// Vacated thread-table slots available for reuse (LIFO).
    free_slots: Vec<u16>,
    /// Spawn sequence counter: the next thread's observable identity.
    next_seq: u32,
    run_queue: RunQueue,
    mvars: Vec<MVarCell>,
    clock: u64,
    sleep_seq: u64,
    /// Sleeping threads, filed by absolute wake time in a hierarchical
    /// timer wheel. Pops whole ticks in `(wake_at, seq)` order — exactly
    /// the order the old `BinaryHeap` produced — at amortized O(1) per
    /// entry instead of O(log n) (see [`crate::timer`]).
    sleepers: TimerWheel<ThreadId>,
    /// Wheel entries whose sleeper was interrupted (or died) and which
    /// therefore will never wake anyone. Drives eager compaction.
    stale_sleepers: usize,
    /// Reusable buffer for the batch of entries popped from the wheel in
    /// [`Runtime::advance_clock`] (one virtual tick's sleepers at a time).
    due_scratch: Vec<TimerEntry<ThreadId>>,
    console_waiters: VecDeque<ThreadId>,
    console: BufferConsole,
    stats: Stats,
    rng: Option<StdRng>,
    trace: Vec<IoEvent>,
    main_tid: Option<ThreadId>,
    main_result: Option<Result<Value, Exception>>,
    yielded: bool,
    /// The thread scheduled by the previous `pick_next`, for
    /// context-switch accounting. A field (not a `run_value` local) so
    /// an epoch-capped [`Runtime::pump`] counts switches across pump
    /// boundaries exactly as one uninterrupted run would.
    last_scheduled: Option<ThreadId>,
    /// External scheduling driver (only consulted under
    /// [`SchedulingPolicy::External`]). Kept in an `Option` so it can be
    /// temporarily moved out while the runtime is borrowed.
    decider: Option<Box<dyn Decider>>,
    /// Reusable buffer for the per-decision `ThreadView` list handed to
    /// the decider (External policy runs quantum=1, so without this the
    /// scheduler would allocate a fresh `Vec` on *every* step).
    view_scratch: Vec<ThreadView>,
    /// Run-queue positions matching `view_scratch`, for O(1) unlinking
    /// of the chosen thread.
    pos_scratch: Vec<usize>,
    /// Recycled thread boxes from finished threads (stacks and pending
    /// queues emptied, capacity kept), reused by later spawns so
    /// fork-heavy workloads stop allocating per thread. The boxes are
    /// the pooled resource — they move straight back into a `Slot` —
    /// so `Vec<Box<_>>` is exactly right here, not an accident.
    #[allow(clippy::vec_box)]
    thread_pool: Vec<Box<Thread>>,
}

/// One thread-table entry: the occupant (if any) plus the slot's
/// generation, bumped each time an occupant is retired so stale
/// [`ThreadId`] handles miss instead of hitting the slot's next tenant.
#[derive(Debug, Default)]
struct Slot {
    generation: u16,
    /// Boxed so scheduling a thread moves 8 bytes, not the whole
    /// 160-byte `Thread`: [`Runtime::step`] takes the thread out of the
    /// table for the duration of the step (so helpers may touch other
    /// threads) and puts it back — twice per interpreter step on the
    /// hot path.
    thread: Option<Box<Thread>>,
}

/// Cap on recycled thread boxes kept for reuse.
const THREAD_POOL_MAX: usize = 256;

/// Why a capped [`Runtime::pump`] handed control back to its driver.
#[derive(Debug)]
pub(crate) enum PumpOutcome {
    /// The main thread finished (or hit the configured `max_steps` /
    /// local deadlock, in the uncapped path): the run is over and (Proc
    /// GC) has recycled every other thread.
    Finished(Result<Value, RunError>),
    /// The per-pump step budget ran out with work still queued.
    Budget,
    /// Nothing is runnable and no sleeper is due at or before the clock
    /// cap. `next_wake` is the earliest stored wake time (possibly of a
    /// lazily-invalidated sleeper), `None` if the wheel is empty.
    Idle { next_wake: Option<u64> },
}

/// Is `tid` still genuinely asleep until exactly `wake_at`?
///
/// Wheel entries are invalidated lazily: an interrupted sleeper keeps
/// its entry, which this check skips. A free function over the thread
/// table (rather than a method) so compaction can filter the wheel in
/// place while borrowing `threads` alongside the `&mut` wheel borrow.
fn sleeper_entry_is_valid(threads: &[Slot], tid: ThreadId, wake_at: u64) -> bool {
    let t = match threads.get(tid.slot as usize) {
        Some(s) if s.generation == tid.generation => s.thread.as_deref(),
        _ => None,
    };
    match t {
        Some(t) => matches!(
            t.status,
            Status::Stuck(StuckReason::Sleep { wake_at: w }) if w == wake_at
        ),
        None => false,
    }
}

impl std::fmt::Debug for Runtime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Runtime")
            .field(
                "live_threads",
                &self.threads.iter().filter(|s| s.thread.is_some()).count(),
            )
            .field("clock", &self.clock)
            .field("steps", &self.stats.steps)
            .finish()
    }
}

impl Default for Runtime {
    fn default() -> Self {
        Runtime::new()
    }
}

impl Runtime {
    /// A runtime with the default (paper-design) configuration.
    pub fn new() -> Self {
        Runtime::with_config(RuntimeConfig::default())
    }

    /// A runtime with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if `config.quantum` is 0. The [`RuntimeConfig::quantum`]
    /// builder rejects 0 up front, but the field is `pub`, so a struct
    /// literal could otherwise smuggle in a quantum that would make the
    /// scheduler spin forever (round-robin) or panic deep inside the
    /// RNG (`gen_range(1..=0)`, random policy). Validating here covers
    /// both construction paths.
    pub fn with_config(config: RuntimeConfig) -> Self {
        assert!(
            config.quantum >= 1,
            "RuntimeConfig.quantum must be at least 1 interpreter step, got 0 \
             (a zero quantum would never execute any thread)"
        );
        let rng = match config.scheduling {
            SchedulingPolicy::Random { seed } => Some(StdRng::seed_from_u64(seed)),
            SchedulingPolicy::RoundRobin | SchedulingPolicy::External => None,
        };
        Runtime {
            config,
            threads: Vec::new(),
            free_slots: Vec::new(),
            next_seq: 0,
            run_queue: RunQueue::new(),
            mvars: Vec::new(),
            clock: 0,
            sleep_seq: 0,
            sleepers: TimerWheel::new(),
            stale_sleepers: 0,
            due_scratch: Vec::new(),
            console_waiters: VecDeque::new(),
            console: BufferConsole::new(),
            stats: Stats::default(),
            rng,
            trace: Vec::new(),
            main_tid: None,
            main_result: None,
            yielded: false,
            last_scheduled: None,
            decider: None,
            view_scratch: Vec::new(),
            pos_scratch: Vec::new(),
            thread_pool: Vec::new(),
        }
    }

    /// Restores the runtime to its just-constructed state — fresh `MVar`
    /// store, console, clock and statistics — while keeping allocated
    /// capacity (thread table, run queue, scratch buffers, recycled
    /// stacks) and any installed decider. This is the cheap way to run
    /// many independent programs on one runtime: the schedule explorer
    /// calls it between schedules instead of building a new `Runtime`
    /// per run.
    pub fn reset(&mut self) {
        self.recycle_all_threads();
        self.free_slots.clear();
        self.next_seq = 0;
        self.run_queue.clear();
        self.mvars.clear();
        self.clock = 0;
        self.sleep_seq = 0;
        self.sleepers.clear();
        self.stale_sleepers = 0;
        self.console_waiters.clear();
        self.console = BufferConsole::new();
        self.stats = Stats::default();
        self.rng = match self.config.scheduling {
            SchedulingPolicy::Random { seed } => Some(StdRng::seed_from_u64(seed)),
            SchedulingPolicy::RoundRobin | SchedulingPolicy::External => None,
        };
        self.trace.clear();
        self.main_tid = None;
        self.main_result = None;
        self.yielded = false;
        self.last_scheduled = None;
    }

    /// Runs `io` to completion as the main thread.
    ///
    /// # Errors
    ///
    /// Returns [`RunError::Uncaught`] if the main thread dies with an
    /// uncaught exception, [`RunError::Deadlock`] if every live thread is
    /// stuck forever, or [`RunError::StepLimitExceeded`] if the configured
    /// step budget runs out.
    pub fn run<T: FromValue>(&mut self, io: Io<T>) -> Result<T, RunError> {
        self.run_value(io.action).map(T::from_value_or_panic)
    }

    pub(crate) fn run_value(&mut self, action: Action) -> Result<Value, RunError> {
        self.begin_run(action);
        match self.pump_inner(None, None, true) {
            PumpOutcome::Finished(res) => res,
            out => unreachable!("uncapped pump returned {out:?} instead of finishing"),
        }
    }

    /// Spawns `action` as a fresh main thread without running it yet —
    /// the first half of [`Runtime::run`], split out so an epoch-synced
    /// shard (see [`crate::parallel`]) can start a program and then
    /// drive it in capped [`Runtime::pump`] slices. Resets per-run state
    /// (threads, run queue, sleepers, stats, trace); `MVar`s, the
    /// console and the clock persist, so host-allocated mailboxes stay
    /// valid across `begin_run`.
    pub(crate) fn begin_run(&mut self, action: Action) {
        // Reset per-run state; keep mvars, console, clock.
        self.recycle_all_threads();
        self.free_slots.clear();
        self.next_seq = 0;
        self.run_queue.clear();
        self.sleepers.clear();
        self.stale_sleepers = 0;
        self.console_waiters.clear();
        self.stats = Stats::default();
        self.trace.clear();
        self.main_result = None;
        self.last_scheduled = None;

        let main = self.spawn(action, MaskState::Unblocked);
        self.main_tid = Some(main);
    }

    /// Runs the program started by [`Runtime::begin_run`] until it
    /// finishes, exhausts `step_budget` interpreter steps, or goes idle
    /// with no sleeper due at or before `clock_cap` (the inclusive end
    /// of the current epoch). Never applies the deadlock policy — a
    /// capped shard that is locally stuck may still be woken by a
    /// cross-shard message, so only the coordinator, seeing every shard
    /// idle with nothing in flight, can declare a global deadlock.
    pub(crate) fn pump(&mut self, clock_cap: u64, step_budget: Option<u64>) -> PumpOutcome {
        self.pump_inner(Some(clock_cap), step_budget, false)
    }

    /// The scheduler loop shared by [`Runtime::run`] (uncapped,
    /// `local_deadlock`) and [`Runtime::pump`] (epoch-capped).
    fn pump_inner(
        &mut self,
        clock_cap: Option<u64>,
        step_budget: Option<u64>,
        local_deadlock: bool,
    ) -> PumpOutcome {
        let budget_end = step_budget.map(|b| self.stats.steps.saturating_add(b));
        loop {
            if let Some(res) = self.main_result.take() {
                // (Proc GC): once the main thread is finished, all other
                // threads die.
                self.recycle_all_threads();
                self.free_slots.clear();
                self.run_queue.clear();
                self.sleepers.clear();
                self.stale_sleepers = 0;
                self.console_waiters.clear();
                return PumpOutcome::Finished(res.map_err(RunError::Uncaught));
            }
            if let Some(limit) = self.config.max_steps {
                if self.stats.steps >= limit {
                    return PumpOutcome::Finished(Err(RunError::StepLimitExceeded { limit }));
                }
            }
            if let Some(end) = budget_end {
                if self.stats.steps >= end {
                    return PumpOutcome::Budget;
                }
            }
            if self.run_queue.is_empty() {
                if self.advance_clock_capped(clock_cap) {
                    continue;
                }
                if local_deadlock {
                    match self.config.deadlock {
                        DeadlockPolicy::Report => {
                            return PumpOutcome::Finished(Err(self.deadlock_error()))
                        }
                        DeadlockPolicy::RaiseBlockedIndefinitely => {
                            if self.interrupt_all_stuck() {
                                continue;
                            }
                            return PumpOutcome::Finished(Err(self.deadlock_error()));
                        }
                    }
                }
                // The next wake may belong to a lazily-invalidated
                // sleeper; the coordinator tolerates that (the next
                // round's capped advance discards it and re-reports).
                return PumpOutcome::Idle {
                    next_wake: self.sleepers.peek_earliest_wake(),
                };
            }
            let tid = self.pick_next(self.last_scheduled);
            if self.last_scheduled != Some(tid) {
                self.stats.context_switches += 1;
                self.last_scheduled = Some(tid);
            }
            let quantum = self.quantum_for();
            self.yielded = false;
            let mut requeue = false;
            for _ in 0..quantum {
                if self.main_result.is_some() {
                    break;
                }
                if let Some(limit) = self.config.max_steps {
                    if self.stats.steps >= limit {
                        return PumpOutcome::Finished(Err(RunError::StepLimitExceeded { limit }));
                    }
                }
                self.step(tid);
                requeue = self
                    .thread(tid)
                    .map(|t| t.status == Status::Runnable)
                    .unwrap_or(false);
                if !requeue || self.yielded {
                    break;
                }
            }
            if requeue {
                self.enqueue_runnable(tid);
            }
        }
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// Everything the program has written with `putChar` so far.
    pub fn output(&self) -> &str {
        self.console.output()
    }

    /// Appends input for subsequent `getChar`s (between runs).
    pub fn feed_input(&mut self, input: impl Into<String>) {
        self.console.feed(input);
    }

    /// The observable I/O trace of the last run.
    pub fn io_trace(&self) -> &[IoEvent] {
        &self.trace
    }

    /// Statistics of the last run.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// The virtual clock, in microseconds.
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// The `ThreadId` the main thread had in the last run.
    ///
    /// # Panics
    ///
    /// Panics if nothing has been run yet.
    pub fn main_thread_id(&self) -> ThreadId {
        self.main_tid.expect("no run has started yet")
    }

    /// The configuration this runtime was built with.
    pub fn config(&self) -> &RuntimeConfig {
        &self.config
    }

    // ------------------------------------------------------------------
    // External scheduling
    // ------------------------------------------------------------------

    /// Installs an external scheduling driver and switches the runtime to
    /// [`SchedulingPolicy::External`]: from the next run on, every
    /// thread-selection and exception-delivery decision is made by
    /// `decider`. The decider persists across runs until replaced or
    /// removed with [`Runtime::clear_decider`].
    pub fn set_decider(&mut self, decider: Box<dyn Decider>) {
        self.config.scheduling = SchedulingPolicy::External;
        self.rng = None;
        self.decider = Some(decider);
    }

    /// Removes the external scheduling driver, if any, and returns it.
    /// The policy stays [`SchedulingPolicy::External`] (degrading to
    /// round-robin with quantum 1) until reconfigured.
    pub fn clear_decider(&mut self) -> Option<Box<dyn Decider>> {
        self.decider.take()
    }

    /// The currently-runnable threads, in run-queue order, each with the
    /// conservative footprint of its next step. Useful to exploration
    /// drivers and for post-mortem debugging (after a deadlock, this is
    /// empty; see [`RunError::Deadlock`] for the stuck set).
    pub fn runnable(&self) -> Vec<ThreadView> {
        self.run_queue.iter().map(|t| self.view_of(t)).collect()
    }

    fn view_of(&self, tid: ThreadId) -> ThreadView {
        let th = self.thread(tid).expect("runnable thread exists");
        debug_assert_eq!(
            th.footprint,
            footprint_of(th),
            "cached footprint went stale for {tid}"
        );
        ThreadView {
            tid,
            footprint: th.footprint,
            pending: th.pending.len(),
            masked: th.mask == MaskState::Blocked,
        }
    }

    // ------------------------------------------------------------------
    // Thread table helpers
    // ------------------------------------------------------------------

    fn thread(&self, tid: ThreadId) -> Option<&Thread> {
        match self.threads.get(tid.slot as usize) {
            Some(s) if s.generation == tid.generation => s.thread.as_deref(),
            _ => None,
        }
    }

    fn thread_mut(&mut self, tid: ThreadId) -> Option<&mut Thread> {
        match self.threads.get_mut(tid.slot as usize) {
            Some(s) if s.generation == tid.generation => s.thread.as_deref_mut(),
            _ => None,
        }
    }

    fn spawn(&mut self, action: Action, mask: MaskState) -> ThreadId {
        let seq = self.next_seq;
        self.next_seq = self
            .next_seq
            .checked_add(1)
            .expect("more than u32::MAX threads spawned in one run");
        let (slot, generation) = match self.free_slots.pop() {
            Some(slot) => (slot, self.threads[slot as usize].generation),
            None => {
                assert!(
                    self.threads.len() <= u16::MAX as usize,
                    "more than {} concurrent threads",
                    u16::MAX
                );
                self.threads.push(Slot::default());
                ((self.threads.len() - 1) as u16, 0)
            }
        };
        let tid = ThreadId::fresh(seq, slot, generation);
        let mut th = match self.thread_pool.pop() {
            Some(mut b) => {
                b.reinit(tid, action);
                b
            }
            None => Box::new(Thread::with_buffers(
                tid,
                action,
                Vec::new(),
                VecDeque::new(),
            )),
        };
        th.mask = mask;
        debug_assert!(self.threads[slot as usize].thread.is_none());
        self.threads[slot as usize].thread = Some(th);
        if self.threads.len() > self.stats.max_thread_slots {
            self.stats.max_thread_slots = self.threads.len();
        }
        self.enqueue_runnable(tid);
        tid
    }

    /// Enqueues a runnable thread, refreshing its cached next-step
    /// footprint — the single choke point every path to the run queue
    /// goes through, so a queued thread's `footprint` field is always
    /// current (nothing mutates a thread while it waits in the queue).
    fn enqueue_runnable(&mut self, tid: ThreadId) {
        let th = self.thread_mut(tid).expect("enqueued thread exists");
        debug_assert_eq!(th.status, Status::Runnable);
        th.footprint = footprint_of(th);
        self.run_queue.push_back(tid);
    }

    fn quantum_for(&mut self) -> u64 {
        if self.config.scheduling == SchedulingPolicy::External {
            // One step per decision: the driver sees every step boundary.
            return 1;
        }
        let q = self.config.quantum;
        match &mut self.rng {
            Some(rng) => rng.gen_range(1..=q),
            None => q,
        }
    }

    fn pick_next(&mut self, previous: Option<ThreadId>) -> ThreadId {
        if self.config.scheduling == SchedulingPolicy::External {
            if let Some(mut decider) = self.decider.take() {
                // Forced move: one runnable thread. The decider is still
                // consulted (it keeps sleep-set bookkeeping per step),
                // but the scratch buffers and position list are skipped.
                if self.run_queue.len() == 1 {
                    let tid = self.run_queue.pop_front().expect("non-empty run queue");
                    let view = self.view_of(tid);
                    let i = decider.choose_thread(std::slice::from_ref(&view), previous);
                    self.decider = Some(decider);
                    assert!(
                        i == 0,
                        "Decider::choose_thread returned index {i} for 1 runnable thread"
                    );
                    return tid;
                }
                // Build the decision's view list into the reusable
                // scratch buffers: no allocation after warm-up, and the
                // footprints come from the per-thread cache instead of
                // being recomputed for every queued thread.
                let mut views = std::mem::take(&mut self.view_scratch);
                let mut positions = std::mem::take(&mut self.pos_scratch);
                views.clear();
                positions.clear();
                for (pos, tid) in self.run_queue.iter_with_pos() {
                    views.push(self.view_of(tid));
                    positions.push(pos);
                }
                let i = decider.choose_thread(&views, previous);
                self.decider = Some(decider);
                assert!(
                    i < views.len(),
                    "Decider::choose_thread returned index {i} for {} runnable threads",
                    views.len()
                );
                let tid = self.run_queue.take_at(positions[i]);
                self.view_scratch = views;
                self.pos_scratch = positions;
                return tid;
            }
            // No decider installed: degrade to round-robin.
            return self.run_queue.pop_front().expect("non-empty run queue");
        }
        match &mut self.rng {
            None => self.run_queue.pop_front().expect("non-empty run queue"),
            Some(rng) => {
                let i = rng.gen_range(0..self.run_queue.len());
                self.run_queue.remove_live(i)
            }
        }
    }

    /// Advances the virtual clock to the earliest sleeper and wakes all
    /// sleepers that are due. Returns `false` if there are no sleepers.
    ///
    /// The wheel hands over one virtual tick at a time, already in
    /// `(wake_at, seq)` order, so the whole batch is woken through one
    /// reserved run-queue extension before the next scheduling decision
    /// — the same observable order the old heap's pop-one-at-a-time
    /// drain loop produced, without n log n queue churn on a mass wake.
    fn advance_clock(&mut self) -> bool {
        loop {
            let mut due = std::mem::take(&mut self.due_scratch);
            let Some(wake_at) = self.sleepers.pop_earliest_into(&mut due) else {
                self.due_scratch = due;
                return false;
            };
            // Drop lazily-invalidated entries (interrupted sleepers),
            // balancing the stale accounting per entry like the heap did.
            let threads = &self.threads;
            let before = due.len();
            self.stats.timer_ops += before as u64;
            due.retain(|e| sleeper_entry_is_valid(threads, e.payload, wake_at));
            for _ in due.len()..before {
                self.note_stale_sleeper_popped();
            }
            if due.is_empty() {
                // The whole tick was stale; keep scanning forward.
                self.due_scratch = due;
                continue;
            }
            if wake_at > self.clock {
                self.trace.push(IoEvent::TimeAdvance(wake_at - self.clock));
                self.clock = wake_at;
            }
            self.run_queue.reserve(due.len());
            for e in &due {
                let th = self.thread_mut(e.payload).expect("sleeper exists");
                th.status = Status::Runnable;
                th.code = Code::ReturnVal(Value::Unit);
                self.enqueue_runnable(e.payload);
            }
            due.clear();
            self.due_scratch = due;
            return true;
        }
    }

    /// [`Runtime::advance_clock`] with an optional inclusive cap: wakes
    /// the earliest due tick only if it is at or before `cap`. With
    /// `cap == None` this is byte-for-byte `advance_clock` (the peek is
    /// skipped), so the uncapped path's traces are untouched.
    ///
    /// One capped-only subtlety: a tick whose sleepers were all
    /// interrupted still advances the wheel's cursor when popped, and a
    /// capped caller may then return to its driver and run threads that
    /// insert new timers — so the clock advances to the stale tick too
    /// (with a `TimeAdvance` event, keeping the trace's advance sum
    /// equal to the clock delta) to preserve `clock >= cursor` for
    /// [`TimerWheel::insert`]. The uncapped path never needs this
    /// because no thread runs between a stale pop and the next live
    /// wake, so it folds the whole delta into the next live advance.
    fn advance_clock_capped(&mut self, cap: Option<u64>) -> bool {
        let Some(cap) = cap else {
            return self.advance_clock();
        };
        loop {
            match self.sleepers.peek_earliest_wake() {
                None => return false,
                Some(w) if w > cap => return false,
                Some(_) => {}
            }
            let mut due = std::mem::take(&mut self.due_scratch);
            let wake_at = self
                .sleepers
                .pop_earliest_into(&mut due)
                .expect("peek saw an entry");
            let threads = &self.threads;
            let before = due.len();
            self.stats.timer_ops += before as u64;
            due.retain(|e| sleeper_entry_is_valid(threads, e.payload, wake_at));
            for _ in due.len()..before {
                self.note_stale_sleeper_popped();
            }
            if due.is_empty() {
                if wake_at > self.clock {
                    self.trace.push(IoEvent::TimeAdvance(wake_at - self.clock));
                    self.clock = wake_at;
                }
                self.due_scratch = due;
                continue;
            }
            if wake_at > self.clock {
                self.trace.push(IoEvent::TimeAdvance(wake_at - self.clock));
                self.clock = wake_at;
            }
            self.run_queue.reserve(due.len());
            for e in &due {
                let th = self.thread_mut(e.payload).expect("sleeper exists");
                th.status = Status::Runnable;
                th.code = Code::ReturnVal(Value::Unit);
                self.enqueue_runnable(e.payload);
            }
            due.clear();
            self.due_scratch = due;
            return true;
        }
    }

    /// Fast-forwards the clock to `t` if it lags — the epoch-barrier
    /// clock sync, recorded as an ordinary `TimeAdvance` so the trace's
    /// advance sum still equals the clock delta. Safe at a barrier
    /// because the shard is quiescent there: every live sleeper's wake
    /// time is past the epoch being synced to (the epoch only advances
    /// when all shards report `Idle` with wakes beyond the old cap), so
    /// no due sleeper is skipped.
    pub(crate) fn sync_clock_forward(&mut self, t: u64) {
        if t > self.clock {
            self.trace.push(IoEvent::TimeAdvance(t - self.clock));
            self.clock = t;
        }
    }

    /// Balances [`Runtime::stale_sleepers`] when a stale wheel entry is
    /// popped. Every stale entry is counted exactly once at the moment
    /// its sleeper is invalidated, so the counter can never underflow;
    /// the assert catches a double-decrement accounting bug in debug
    /// builds, while release builds saturate rather than wrap.
    fn note_stale_sleeper_popped(&mut self) {
        debug_assert!(
            self.stale_sleepers > 0,
            "stale-sleeper accounting: popped a stale entry that was never counted"
        );
        self.stale_sleepers = self.stale_sleepers.saturating_sub(1);
    }

    /// Compacts the timer wheel once stale entries outnumber the live
    /// ones. Interrupted sleepers invalidate their wheel entry in place
    /// (the status check in [`sleeper_entry_is_valid`] fails), which is
    /// O(1) — but under sustained `timeout`-and-kill churn the dead
    /// entries would pile up until their original `wake_at`. Compacting
    /// at the >half-stale threshold keeps the wheel proportional to the
    /// number of *live* sleepers at amortized O(1) per interruption, and
    /// cannot change wake order: [`TimerWheel::retain`] removes entries
    /// in place, so survivors keep their `(wake_at, seq)` keys and slots.
    fn maybe_compact_sleepers(&mut self) {
        if self.stale_sleepers * 2 <= self.sleepers.len() {
            return;
        }
        let threads = &self.threads;
        self.sleepers
            .retain(|e| sleeper_entry_is_valid(threads, e.payload, e.wake_at));
        self.stale_sleepers = 0;
        debug_assert!(
            self.sleepers.check_consistent(),
            "timer wheel inconsistent after stale-sleeper compaction"
        );
    }

    /// Number of entries (live or stale) in the sleeper timer wheel.
    /// Exposed for leak regression tests: after a quiesced run the wheel
    /// must be empty.
    pub fn sleeper_queue_len(&self) -> usize {
        self.sleepers.len()
    }

    pub(crate) fn deadlock_error(&self) -> RunError {
        // Slot order is storage order; report in spawn order, which is
        // what the table order used to be before slot reclamation.
        let mut stuck: Vec<_> = self
            .threads
            .iter()
            .filter_map(|s| s.thread.as_ref())
            .filter_map(|t| match &t.status {
                Status::Stuck(r) => Some((t.tid, r.describe())),
                Status::Runnable => None,
            })
            .collect();
        stuck.sort_by_key(|(tid, _)| *tid);
        RunError::Deadlock { stuck }
    }

    /// GHC-style deadlock recovery: throw `BlockedIndefinitely` to every
    /// stuck thread. Returns `true` if any thread was interrupted.
    pub(crate) fn interrupt_all_stuck(&mut self) -> bool {
        let mut stuck: Vec<ThreadId> = self
            .threads
            .iter()
            .filter_map(|s| s.thread.as_ref())
            .filter(|t| t.is_stuck())
            .map(|t| t.tid)
            .collect();
        // Interrupt in spawn order (the pre-reclamation table order), so
        // the wake-up sequence is independent of slot reuse.
        stuck.sort_unstable();
        let any = !stuck.is_empty();
        for tid in stuck {
            self.enqueue_exception(tid, Exception::blocked_indefinitely(), None);
        }
        any
    }

    // ------------------------------------------------------------------
    // Host-side operations (the epoch-barrier surface)
    //
    // The parallel coordinator acts on a shard's runtime only while the
    // shard is between pumps — no program thread is mid-step — so these
    // are ordinary step-boundary events, exactly where the paper allows
    // asynchronous delivery.
    // ------------------------------------------------------------------

    /// Allocates a fresh empty `MVar` from outside any thread. Unlike
    /// per-run thread state, `MVar` cells persist across
    /// [`Runtime::begin_run`] (only [`Runtime::reset`] clears them), so
    /// a host-allocated mailbox outlives the program it is handed to.
    pub(crate) fn host_alloc_mvar(&mut self) -> MVarId {
        let id = MVarId(self.mvars.len() as u64);
        self.mvars.push(MVarCell::empty());
        id
    }

    /// `tryPutMVar` from outside any thread: fills the cell (waking a
    /// blocked taker, if any) and returns `true`, or returns `false` if
    /// it is already full — the same non-blocking semantics as
    /// `Action::TryPutMVar`, minus a thread to return the bool to.
    pub(crate) fn host_try_put_mvar(&mut self, m: MVarId, v: Value) -> bool {
        if self.mvars[m.0 as usize].contents.is_some() {
            return false;
        }
        self.fill_or_handoff(m, v);
        self.stats.mvar_ops += 1;
        true
    }

    /// `throwTo` from outside any thread: enqueues `exc` for `target`,
    /// interrupting it immediately if stuck (rule (Interrupt)). A
    /// `target` that is dead — or a stale `ThreadId` whose slot was
    /// reused, which the generation check distinguishes — is a no-op,
    /// matching the paper's "throwTo to a finished thread trivially
    /// succeeds". This is how a cross-shard `throwTo` lands at an epoch
    /// barrier.
    pub(crate) fn host_throw_to(&mut self, target: ThreadId, exc: Exception) {
        self.stats.throwtos += 1;
        self.enqueue_exception(target, exc, None);
    }

    // ------------------------------------------------------------------
    // Exception delivery
    // ------------------------------------------------------------------

    /// Appends an exception to `target`'s pending queue and, if the target
    /// is stuck, interrupts it immediately (rule (Interrupt)).
    ///
    /// Does nothing if the target no longer exists (`throwTo` to a dead
    /// thread trivially succeeds) — except waking `notify`, since the
    /// trivial success still counts as delivered for the §9 sync design.
    fn enqueue_exception(&mut self, target: ThreadId, exc: Exception, notify: Option<ThreadId>) {
        let step = self.stats.steps;
        let stuck = match self.thread_mut(target) {
            None => {
                if let Some(n) = notify {
                    self.wake_sync_notifier(n);
                }
                return;
            }
            Some(th) => {
                th.pending.push_back(PendingExc {
                    exc,
                    notify,
                    enqueued_step: step,
                });
                th.is_stuck()
            }
        };
        if stuck {
            self.interrupt_stuck_thread(target);
        }
    }

    /// Delivers the first pending exception to a stuck thread, waking it.
    fn interrupt_stuck_thread(&mut self, tid: ThreadId) {
        let (reason, notify, enqueued_step) = {
            let Some(th) = self.thread_mut(tid) else {
                return;
            };
            if !th.is_stuck() {
                return;
            }
            let Some(p) = th.take_pending() else {
                return;
            };
            let Status::Stuck(reason) = std::mem::replace(&mut th.status, Status::Runnable) else {
                unreachable!("is_stuck checked above");
            };
            let notify = p.notify;
            let enqueued_step = p.enqueued_step;
            th.code = Code::Raise(p.exc, RaiseOrigin::Async);
            (reason, notify, enqueued_step)
        };
        // Remove the thread from whatever wait structure held it.
        match reason {
            StuckReason::TakeMVar(m) | StuckReason::PutMVar(m) => {
                self.mvars[m.0 as usize].forget_waiter(tid);
            }
            StuckReason::Sleep { .. } => {
                // The wheel entry is invalidated by the status change and
                // skipped when popped; count it so compaction can evict
                // piles of dead entries before their wake_at arrives.
                self.stale_sleepers += 1;
                self.maybe_compact_sleepers();
            }
            StuckReason::GetChar => {
                self.console_waiters.retain(|&t| t != tid);
            }
            StuckReason::SyncThrow { .. } => {
                // The exception we sent stays queued at the target; the
                // paper notes this wart of the synchronous design (§9).
            }
        }
        self.enqueue_runnable(tid);
        self.stats.interrupted_blocked += 1;
        self.stats.delivery_latency_total += self.stats.steps - enqueued_step;
        self.stats.delivery_latency_samples += 1;
        if let Some(n) = notify {
            self.wake_sync_notifier(n);
        }
    }

    /// Wakes a thread waiting in a synchronous `throwTo` (§9).
    fn wake_sync_notifier(&mut self, tid: ThreadId) {
        let Some(th) = self.thread_mut(tid) else {
            return;
        };
        if matches!(th.status, Status::Stuck(StuckReason::SyncThrow { .. })) {
            th.status = Status::Runnable;
            th.code = Code::ReturnVal(Value::Unit);
            self.enqueue_runnable(tid);
        }
    }

    /// Records a (Receive)-path delivery in the statistics.
    fn record_receive(&mut self, p: &PendingExc) {
        self.stats.async_deliveries += 1;
        self.stats.delivery_latency_total += self.stats.steps - p.enqueued_step;
        self.stats.delivery_latency_samples += 1;
    }

    // ------------------------------------------------------------------
    // Thread termination
    // ------------------------------------------------------------------

    /// Wakes sync-throw waiters whose exceptions will now never be
    /// received: delivery to a dead thread trivially succeeds.
    fn drain_pending_notifiers(&mut self, th: &mut Thread) {
        while let Some(p) = th.take_pending() {
            if let Some(n) = p.notify {
                self.wake_sync_notifier(n);
            }
        }
    }

    fn finish_thread(&mut self, th: Box<Thread>, value: Value) {
        let tid = th.tid;
        if Some(tid) == self.main_tid {
            self.main_result = Some(Ok(value));
        }
        self.stats.finished_threads += 1;
        self.retire_thread(th);
    }

    fn die_thread(&mut self, th: Box<Thread>, exc: Exception) {
        let tid = th.tid;
        // Exit-reason classification (the actor layer's `ExitReason`
        // mirrors this split): a death is a kill, a link-cascade exit
        // signal, or an ordinary crash.
        if exc.is_kill_thread() {
            self.stats.kill_thread_deaths += 1;
        } else if exc.is_exit_signal() {
            self.stats.exit_signal_deaths += 1;
        }
        if Some(tid) == self.main_tid {
            self.main_result = Some(Err(exc));
        }
        self.stats.died_threads += 1;
        self.retire_thread(th);
    }

    /// Returns a finished/dead thread's slot to the free list and its
    /// buffers to the allocation pool. Bumping the slot's generation makes
    /// every outstanding `ThreadId` for the old occupant a stale handle:
    /// `thread()`/`thread_mut()` miss, so a late `throwTo` at the reused
    /// slot stays a no-op instead of killing the new occupant.
    fn retire_thread(&mut self, mut th: Box<Thread>) {
        let slot = th.tid.slot as usize;
        debug_assert!(self.threads[slot].thread.is_none(), "thread was taken");
        self.threads[slot].generation = self.threads[slot].generation.wrapping_add(1);
        self.free_slots.push(th.tid.slot);
        self.drain_pending_notifiers(&mut th);
        self.recycle(th);
    }

    /// Returns a dead thread's box (buffers emptied, capacity kept) to
    /// the spawn pool.
    fn recycle(&mut self, mut th: Box<Thread>) {
        if self.thread_pool.len() < THREAD_POOL_MAX {
            th.stack.clear();
            th.pending.clear();
            self.thread_pool.push(th);
        }
    }

    /// Empties the thread table, recycling every remaining occupant —
    /// the (Proc GC) rule and the per-run reset both end this way.
    fn recycle_all_threads(&mut self) {
        for i in 0..self.threads.len() {
            if let Some(th) = self.threads[i].thread.take() {
                self.recycle(th);
            }
        }
        self.threads.clear();
    }

    // ------------------------------------------------------------------
    // The interpreter
    // ------------------------------------------------------------------

    /// Pushes a frame, enforcing the stack limit; on overflow the thread's
    /// code becomes `Raise(StackOverflow)` and `false` is returned.
    fn push_frame_checked(&mut self, th: &mut Thread, frame: Frame) -> bool {
        if let Some(limit) = self.config.stack_limit {
            if th.stack.len() >= limit {
                th.code = Code::Raise(
                    Exception::new(crate::exception::ExceptionKind::StackOverflow),
                    RaiseOrigin::Sync,
                );
                return false;
            }
        }
        th.push_frame(frame);
        if th.stack.len() > self.stats.max_stack_depth {
            self.stats.max_stack_depth = th.stack.len();
        }
        if th.mask_frames > self.stats.max_mask_frames {
            self.stats.max_mask_frames = th.mask_frames;
        }
        true
    }

    /// Executes one small step of thread `tid`.
    fn step(&mut self, tid: ThreadId) {
        let mut th = self.threads[tid.slot as usize]
            .thread
            .take()
            .expect("scheduled thread exists");
        debug_assert_eq!(th.status, Status::Runnable);
        self.stats.steps += 1;

        // (Receive): asynchronous delivery at any program point, for
        // unblocked threads, in fully-asynchronous mode. Delivery does not
        // preempt an exception already being raised: §8 treats raising as
        // atomic (the stack is truncated to the handler in one go), so a
        // mid-unwind thread is not a delivery point. Under external
        // scheduling the decider picks the delivery step: deferring here
        // leaves the exception queued and the thread takes its ordinary
        // step, so the decider sees the same choice again at the thread's
        // next unmasked step.
        if self.config.delivery == DeliveryMode::FullyAsync
            && th.mask == MaskState::Unblocked
            && !matches!(th.code, Code::Raise(_, _))
            && !th.pending.is_empty()
        {
            let deliver = match self.decider.take() {
                None => true,
                Some(mut decider) => {
                    let view = ThreadView {
                        tid,
                        footprint: footprint_of(&th),
                        pending: th.pending.len(),
                        masked: false,
                    };
                    let answer = decider.deliver_now(view);
                    self.decider = Some(decider);
                    answer
                }
            };
            if deliver {
                let p = th.take_pending().expect("pending checked non-empty");
                self.record_receive(&p);
                if let Some(n) = p.notify {
                    self.wake_sync_notifier(n);
                }
                th.code = Code::Raise(p.exc, RaiseOrigin::Async);
                self.threads[tid.slot as usize].thread = Some(th);
                return;
            }
        }

        let code = std::mem::replace(&mut th.code, Code::ReturnVal(Value::Unit));
        match code {
            Code::ReturnVal(v) => match th.pop_frame() {
                None => {
                    self.finish_thread(th, v);
                    return;
                }
                Some(Frame::Bind(k)) => th.code = Code::Run(k(v)),
                Some(Frame::Catch { .. }) => th.code = Code::ReturnVal(v),
                Some(Frame::Restore(s)) => {
                    th.mask = s;
                    th.code = Code::ReturnVal(v);
                }
            },
            Code::Raise(e, origin) => match th.pop_frame() {
                None => {
                    self.die_thread(th, e);
                    return;
                }
                Some(Frame::Bind(_)) => th.code = Code::Raise(e, origin),
                Some(Frame::Restore(s)) => {
                    th.mask = s;
                    th.code = Code::Raise(e, origin);
                }
                Some(Frame::Catch {
                    handler,
                    saved_mask,
                }) => {
                    th.mask = saved_mask;
                    self.stats.catches += 1;
                    th.code = Code::Run(handler(e, origin));
                }
            },
            Code::Run(action) => self.run_action(&mut th, action),
        }

        self.threads[tid.slot as usize].thread = Some(th);
    }

    /// Interprets one action node in thread `th`.
    ///
    /// `th` has been removed from the thread table for the duration, so
    /// helper methods that touch *other* threads are safe to call.
    fn run_action(&mut self, th: &mut Thread, action: Action) {
        match action {
            Action::Pure(v) => th.code = Code::ReturnVal(v),
            Action::Bind(m, k) => {
                if self.push_frame_checked(th, Frame::Bind(k)) {
                    th.code = Code::Run(*m);
                }
            }
            Action::Catch(m, handler) => {
                let saved_mask = th.mask;
                if self.push_frame_checked(
                    th,
                    Frame::Catch {
                        handler,
                        saved_mask,
                    },
                ) {
                    th.code = Code::Run(*m);
                }
            }
            Action::Throw(e) => {
                self.stats.sync_throws += 1;
                th.code = Code::Raise(e, RaiseOrigin::Sync);
            }
            Action::Rethrow(e, origin) => {
                self.stats.sync_throws += 1;
                th.code = Code::Raise(e, origin);
            }
            Action::Block(m) => {
                if self.config.record_sched_events {
                    self.trace.push(IoEvent::Mask(th.tid));
                }
                let collapsed = th.enter_block(self.config.collapse_mask_frames);
                if collapsed {
                    self.stats.mask_frames_collapsed += 1;
                }
                if th.mask_frames > self.stats.max_mask_frames {
                    self.stats.max_mask_frames = th.mask_frames;
                }
                if th.stack.len() > self.stats.max_stack_depth {
                    self.stats.max_stack_depth = th.stack.len();
                }
                th.code = Code::Run(*m);
            }
            Action::Unblock(m) => {
                if self.config.record_sched_events {
                    self.trace.push(IoEvent::Unmask(th.tid));
                }
                let collapsed = th.enter_unblock(self.config.collapse_mask_frames);
                if collapsed {
                    self.stats.mask_frames_collapsed += 1;
                }
                if th.mask_frames > self.stats.max_mask_frames {
                    self.stats.max_mask_frames = th.mask_frames;
                }
                if th.stack.len() > self.stats.max_stack_depth {
                    self.stats.max_stack_depth = th.stack.len();
                }
                th.code = Code::Run(*m);
            }
            Action::GetMaskingState => {
                th.code = Code::ReturnVal(Value::Bool(th.mask == MaskState::Blocked));
            }
            Action::Fork(body) => {
                let mask = if self.config.fork_inherits_mask {
                    th.mask
                } else {
                    MaskState::Unblocked
                };
                let child = self.spawn(*body, mask);
                self.stats.forks += 1;
                if self.config.record_sched_events {
                    self.trace.push(IoEvent::Fork {
                        parent: th.tid,
                        child,
                    });
                }
                th.code = Code::ReturnVal(Value::ThreadId(child));
            }
            Action::MyThreadId => th.code = Code::ReturnVal(Value::ThreadId(th.tid)),
            Action::NewMVar(contents) => {
                let id = MVarId(self.mvars.len() as u64);
                self.mvars.push(match contents {
                    None => MVarCell::empty(),
                    Some(v) => MVarCell::full(v),
                });
                th.code = Code::ReturnVal(Value::MVar(id));
            }
            Action::TakeMVar(m) => self.do_take_mvar(th, m),
            Action::PutMVar(m, v) => self.do_put_mvar(th, m, v),
            Action::TryTakeMVar(m) => {
                let cell = &mut self.mvars[m.0 as usize];
                match cell.contents.take() {
                    None => th.code = Code::ReturnVal(Value::Nothing),
                    Some(v) => {
                        self.refill_from_put_queue(m);
                        self.stats.mvar_ops += 1;
                        th.code = Code::ReturnVal(Value::Just(Box::new(v)));
                    }
                }
            }
            Action::TryPutMVar(m, v) => {
                let cell = &mut self.mvars[m.0 as usize];
                if cell.contents.is_some() {
                    th.code = Code::ReturnVal(Value::Bool(false));
                } else {
                    self.fill_or_handoff(m, v);
                    self.stats.mvar_ops += 1;
                    th.code = Code::ReturnVal(Value::Bool(true));
                }
            }
            Action::Sleep(d) => {
                if d == 0 {
                    th.code = Code::ReturnVal(Value::Unit);
                } else if let Some(p) = th.take_pending() {
                    // Interruptible at the moment of blocking (§5.3).
                    self.deliver_at_block_point(th, p);
                } else {
                    let wake_at = self.clock + d;
                    th.status = Status::Stuck(StuckReason::Sleep { wake_at });
                    self.sleep_seq += 1;
                    self.sleepers.insert(
                        self.clock,
                        TimerEntry {
                            wake_at,
                            seq: self.sleep_seq,
                            payload: th.tid,
                        },
                    );
                    if self.sleepers.len() > self.stats.max_sleeper_heap {
                        self.stats.max_sleeper_heap = self.sleepers.len();
                    }
                    self.stats.timer_ops += 1;
                    self.stats.blocks += 1;
                    self.note_blocked(th.tid, BlockSite::Sleep);
                }
            }
            Action::GetChar => match self.console.try_read() {
                Some(c) => {
                    self.trace.push(IoEvent::Get(c));
                    th.code = Code::ReturnVal(Value::Char(c));
                }
                None => {
                    if let Some(p) = th.take_pending() {
                        self.deliver_at_block_point(th, p);
                    } else {
                        th.status = Status::Stuck(StuckReason::GetChar);
                        self.console_waiters.push_back(th.tid);
                        self.stats.blocks += 1;
                        self.note_blocked(th.tid, BlockSite::GetChar);
                    }
                }
            },
            Action::PutChar(c) => {
                self.console.write(c);
                self.trace.push(IoEvent::Put(c));
                th.code = Code::ReturnVal(Value::Unit);
            }
            Action::Compute { steps, result } => {
                if steps <= 1 {
                    th.code = Code::ReturnVal(result);
                } else {
                    th.code = Code::Run(Action::Compute {
                        steps: steps - 1,
                        result,
                    });
                }
            }
            Action::PollSafePoint => {
                if th.mask == MaskState::Unblocked {
                    if let Some(p) = th.take_pending() {
                        self.record_receive(&p);
                        if let Some(n) = p.notify {
                            self.wake_sync_notifier(n);
                        }
                        th.code = Code::Raise(p.exc, RaiseOrigin::Async);
                        return;
                    }
                }
                th.code = Code::ReturnVal(Value::Unit);
            }
            Action::Yield => {
                self.yielded = true;
                th.code = Code::ReturnVal(Value::Unit);
            }
            Action::Now => th.code = Code::ReturnVal(Value::Int(self.clock as i64)),
            Action::Effect(f) => th.code = Code::ReturnVal(f()),
            Action::Choose(arms) => {
                // A scheduler-visible oracle: the installed decider picks
                // the arm (the explorer records it as a branch point);
                // without a decider the choice collapses to arm 0.
                let arm = match self.decider.take() {
                    None => 0,
                    Some(mut decider) => {
                        let view = ThreadView {
                            tid: th.tid,
                            footprint: StepFootprint::Oracle,
                            pending: th.pending.len(),
                            masked: th.mask == MaskState::Blocked,
                        };
                        let answer = decider.choose_arm(view, arms);
                        self.decider = Some(decider);
                        answer
                    }
                };
                assert!(
                    arm < arms,
                    "Decider::choose_arm returned arm {arm} for {arms} arms"
                );
                th.code = Code::ReturnVal(Value::Int(arm as i64));
            }
            Action::ThrowTo(target, e) => {
                self.stats.throwtos += 1;
                if self.config.record_sched_events {
                    self.trace.push(IoEvent::ThrowTo {
                        from: th.tid,
                        to: target,
                    });
                }
                if target == th.tid {
                    // Self-throw: queue it; it is delivered at the next
                    // delivery point if unmasked, like any other pending
                    // asynchronous exception.
                    let step = self.stats.steps;
                    th.pending.push_back(PendingExc {
                        exc: e,
                        notify: None,
                        enqueued_step: step,
                    });
                } else {
                    self.enqueue_exception(target, e, None);
                }
                th.code = Code::ReturnVal(Value::Unit);
            }
            Action::ThrowToSync(target, e) => {
                self.stats.throwtos += 1;
                if self.config.record_sched_events {
                    self.trace.push(IoEvent::ThrowTo {
                        from: th.tid,
                        to: target,
                    });
                }
                if target == th.tid {
                    // §9: special case — a thread throwing to itself raises
                    // the exception immediately.
                    th.code = Code::Raise(e, RaiseOrigin::Async);
                } else if self.thread(target).is_none() {
                    th.code = Code::ReturnVal(Value::Unit);
                } else if let Some(p) = th.take_pending() {
                    // Synchronous throwTo is interruptible (§9): if we
                    // already have a pending exception, receive it instead
                    // of starting to wait.
                    self.deliver_at_block_point(th, p);
                } else if self.thread(target).is_some_and(Thread::is_stuck) {
                    // A stuck target receives via (Interrupt) the moment the
                    // exception is enqueued, so the thrower has nothing to
                    // wait for. Waiting would in fact deadlock: the wake
                    // happens during this very step, while the thrower is
                    // detached from the thread table and not yet suspended.
                    self.enqueue_exception(target, e, None);
                    th.code = Code::ReturnVal(Value::Unit);
                } else {
                    self.enqueue_exception(target, e, Some(th.tid));
                    th.status = Status::Stuck(StuckReason::SyncThrow { target });
                    self.stats.blocks += 1;
                    self.note_blocked(th.tid, BlockSite::SyncThrow);
                }
            }
        }
    }

    /// Records a [`IoEvent::BlockedOn`] scheduler event, if enabled.
    fn note_blocked(&mut self, tid: ThreadId, site: BlockSite) {
        if self.config.record_sched_events {
            self.trace.push(IoEvent::BlockedOn { tid, site });
        }
    }

    /// §5.3: an interruptible operation receives a pending exception at
    /// the moment it would otherwise block, regardless of the mask.
    fn deliver_at_block_point(&mut self, th: &mut Thread, p: PendingExc) {
        self.stats.interrupted_blocked += 1;
        self.stats.delivery_latency_total += self.stats.steps - p.enqueued_step;
        self.stats.delivery_latency_samples += 1;
        if let Some(n) = p.notify {
            self.wake_sync_notifier(n);
        }
        th.code = Code::Raise(p.exc, RaiseOrigin::Async);
    }

    fn do_take_mvar(&mut self, th: &mut Thread, m: MVarId) {
        let cell = &mut self.mvars[m.0 as usize];
        match cell.contents.take() {
            Some(v) => {
                // Full: take succeeds atomically — *not* a delivery point,
                // even with pending exceptions (§5.3: "an interruptible
                // operation cannot be interrupted if the resource ... is
                // available").
                self.refill_from_put_queue(m);
                self.stats.mvar_ops += 1;
                th.code = Code::ReturnVal(v);
            }
            None => {
                if let Some(p) = th.take_pending() {
                    self.deliver_at_block_point(th, p);
                } else {
                    th.status = Status::Stuck(StuckReason::TakeMVar(m));
                    self.mvars[m.0 as usize].take_queue.push_back(th.tid);
                    self.stats.blocks += 1;
                    self.note_blocked(th.tid, BlockSite::TakeMVar);
                }
            }
        }
    }

    fn do_put_mvar(&mut self, th: &mut Thread, m: MVarId, v: Value) {
        let full = self.mvars[m.0 as usize].contents.is_some();
        if full {
            if let Some(p) = th.take_pending() {
                self.deliver_at_block_point(th, p);
            } else {
                th.status = Status::Stuck(StuckReason::PutMVar(m));
                self.mvars[m.0 as usize].put_queue.push_back((th.tid, v));
                self.stats.blocks += 1;
                self.note_blocked(th.tid, BlockSite::PutMVar);
            }
        } else {
            self.fill_or_handoff(m, v);
            self.stats.mvar_ops += 1;
            th.code = Code::ReturnVal(Value::Unit);
        }
    }

    /// Puts `v` into the empty `MVar` `m`, or hands it directly to the
    /// first waiting taker (FIFO hand-off, so no woken thread retries).
    fn fill_or_handoff(&mut self, m: MVarId, v: Value) {
        let taker = self.mvars[m.0 as usize].take_queue.pop_front();
        match taker {
            None => self.mvars[m.0 as usize].contents = Some(v),
            Some(t) => {
                let th = self.thread_mut(t).expect("waiting taker exists");
                debug_assert!(matches!(th.status, Status::Stuck(StuckReason::TakeMVar(_))));
                th.status = Status::Runnable;
                th.code = Code::ReturnVal(v);
                self.enqueue_runnable(t);
                self.stats.mvar_ops += 1;
            }
        }
    }

    /// After a take empties `m`, admits the first queued putter (if any):
    /// its value fills the cell and the putter wakes with `()`.
    fn refill_from_put_queue(&mut self, m: MVarId) {
        if let Some((t, v)) = self.mvars[m.0 as usize].put_queue.pop_front() {
            self.mvars[m.0 as usize].contents = Some(v);
            let th = self.thread_mut(t).expect("waiting putter exists");
            debug_assert!(matches!(th.status, Status::Stuck(StuckReason::PutMVar(_))));
            th.status = Status::Runnable;
            th.code = Code::ReturnVal(Value::Unit);
            self.enqueue_runnable(t);
            self.stats.mvar_ops += 1;
        }
    }
}

/// Classifies what `th`'s next step will touch (see [`StepFootprint`]).
///
/// Conservative in the required direction: anything not provably local to
/// the thread maps to a variant that conflicts with more, never less.
fn footprint_of(th: &Thread) -> StepFootprint {
    match &th.code {
        Code::ReturnVal(_) => {
            if th.stack.is_empty() {
                StepFootprint::Terminal
            } else {
                StepFootprint::Local
            }
        }
        Code::Raise(_, _) => {
            if th.stack.is_empty() {
                StepFootprint::Terminal
            } else {
                StepFootprint::Raise
            }
        }
        Code::Run(action) => match action {
            Action::Pure(_)
            | Action::Bind(_, _)
            | Action::GetMaskingState
            | Action::MyThreadId
            | Action::Compute { .. }
            | Action::Yield => StepFootprint::Local,
            // Catch installs a handler: an exception delivered before vs
            // after the push lands differently, so this is not a plain
            // local step (it must not be fast-forwarded past a throw).
            Action::Catch(_, _) => StepFootprint::Raise,
            Action::Throw(_) | Action::Rethrow(_, _) => StepFootprint::Raise,
            // Under polling delivery this is itself a delivery point.
            Action::PollSafePoint => StepFootprint::Effect,
            Action::Block(_) | Action::Unblock(_) => StepFootprint::Mask,
            Action::NewMVar(_) => StepFootprint::Alloc,
            Action::TakeMVar(m)
            | Action::PutMVar(m, _)
            | Action::TryTakeMVar(m)
            | Action::TryPutMVar(m, _) => StepFootprint::MVar(*m),
            Action::Sleep(_) | Action::Now => StepFootprint::Time,
            Action::GetChar | Action::PutChar(_) => StepFootprint::Console,
            Action::Fork(_) => StepFootprint::Fork,
            Action::ThrowTo(t, _) | Action::ThrowToSync(t, _) => StepFootprint::Throw(*t),
            Action::Effect(_) => StepFootprint::Effect,
            Action::Choose(_) => StepFootprint::Oracle,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pure_program_runs() {
        let mut rt = Runtime::new();
        assert_eq!(rt.run(Io::pure(1_i64)).unwrap(), 1);
    }

    #[test]
    fn uncaught_throw_is_reported() {
        let mut rt = Runtime::new();
        let r = rt.run(Io::<i64>::throw(Exception::error_call("bang")));
        assert_eq!(r, Err(RunError::Uncaught(Exception::error_call("bang"))));
    }

    #[test]
    fn catch_handles_sync_exception() {
        let mut rt = Runtime::new();
        let prog = Io::<i64>::throw(Exception::error_call("bang")).catch(|_| Io::pure(5_i64));
        assert_eq!(rt.run(prog).unwrap(), 5);
    }

    #[test]
    fn catch_passes_through_success() {
        let mut rt = Runtime::new();
        let prog = Io::pure(3_i64).catch(|_| Io::pure(0_i64));
        assert_eq!(rt.run(prog).unwrap(), 3);
    }

    #[test]
    fn handler_receives_the_exception() {
        let mut rt = Runtime::new();
        let prog = Io::<String>::throw(Exception::custom("E1")).catch(|e| Io::pure(e.to_string()));
        assert_eq!(rt.run(prog).unwrap(), "E1");
    }

    #[test]
    fn fork_runs_concurrently() {
        let mut rt = Runtime::new();
        // Child fills the MVar; parent waits for it.
        let prog = Io::new_empty_mvar::<i64>().and_then(|m| Io::fork(m.put(10)).then(m.take()));
        assert_eq!(rt.run(prog).unwrap(), 10);
    }

    #[test]
    fn take_on_empty_blocks_until_put() {
        let mut rt = Runtime::new();
        let prog = Io::new_empty_mvar::<i64>().and_then(|m| {
            // Parent takes first (blocks); child sleeps then puts.
            Io::fork(Io::sleep(100).then(m.put(42))).then(m.take())
        });
        assert_eq!(rt.run(prog).unwrap(), 42);
        assert!(rt.clock() >= 100);
    }

    #[test]
    fn deadlock_is_detected() {
        let mut rt = Runtime::new();
        let prog = Io::new_empty_mvar::<i64>().and_then(|m| m.take());
        match rt.run(prog) {
            Err(RunError::Deadlock { stuck }) => assert_eq!(stuck.len(), 1),
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn deadlock_policy_can_raise() {
        let cfg = RuntimeConfig::new().deadlock_policy(DeadlockPolicy::RaiseBlockedIndefinitely);
        let mut rt = Runtime::with_config(cfg);
        let prog = Io::new_empty_mvar::<i64>()
            .and_then(|m| m.take())
            .catch(|e| {
                assert_eq!(e, Exception::blocked_indefinitely());
                Io::pure(0_i64)
            });
        assert_eq!(rt.run(prog).unwrap(), 0);
    }

    #[test]
    fn sleep_advances_virtual_clock() {
        let mut rt = Runtime::new();
        rt.run(Io::sleep(500)).unwrap();
        assert_eq!(rt.clock(), 500);
    }

    #[test]
    fn sleeps_wake_in_time_order() {
        let mut rt = Runtime::new();
        let prog = Io::new_empty_mvar::<i64>().and_then(|m| {
            Io::fork(Io::sleep(200).then(m.put(2)))
                .then(Io::fork(Io::sleep(100).then(Io::unit())))
                .then(m.take())
        });
        assert_eq!(rt.run(prog).unwrap(), 2);
        assert_eq!(rt.clock(), 200);
    }

    #[test]
    fn get_char_reads_input() {
        let mut rt = Runtime::new();
        rt.feed_input("x");
        assert_eq!(rt.run(Io::get_char()).unwrap(), 'x');
    }

    #[test]
    fn get_char_blocks_without_input() {
        let mut rt = Runtime::new();
        match rt.run(Io::get_char()) {
            Err(RunError::Deadlock { stuck }) => {
                assert!(stuck[0].1.contains("getChar"));
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn step_limit_is_enforced() {
        let cfg = RuntimeConfig::new().max_steps(50);
        let mut rt = Runtime::with_config(cfg);
        let r = rt.run(Io::compute(1000));
        assert_eq!(r, Err(RunError::StepLimitExceeded { limit: 50 }));
    }

    #[test]
    fn stack_limit_raises_stack_overflow() {
        use crate::exception::ExceptionKind;
        let cfg = RuntimeConfig::new().stack_limit(16);
        let mut rt = Runtime::with_config(cfg);
        fn deep(n: i64) -> Io<i64> {
            if n == 0 {
                Io::pure(0)
            } else {
                deep(n - 1).and_then(move |x| Io::pure(x + 1))
            }
        }
        // Each recursion level needs a Bind frame before any returns, so 100
        // levels overflow a 16-frame stack.
        let prog = deep(100).catch(|e| {
            assert_eq!(e.kind(), &ExceptionKind::StackOverflow);
            Io::pure(-1)
        });
        assert_eq!(rt.run(prog).unwrap(), -1);
    }

    #[test]
    fn throw_to_kills_runnable_thread() {
        let mut rt = Runtime::new();
        // Child loops forever; parent kills it, then finishes.
        let prog = Io::new_empty_mvar::<i64>().and_then(|_m| {
            Io::fork(Io::compute(u64::MAX)).and_then(|child| {
                Io::throw_to(child, Exception::kill_thread()).then(Io::pure(1_i64))
            })
        });
        assert_eq!(rt.run(prog).unwrap(), 1);
    }

    #[test]
    fn throw_to_dead_thread_trivially_succeeds() {
        let mut rt = Runtime::new();
        let prog = Io::fork(Io::unit()).and_then(|child| {
            // Give the child time to finish, then throw.
            Io::sleep(10)
                .then(Io::throw_to(child, Exception::kill_thread()))
                .then(Io::pure(7_i64))
        });
        assert_eq!(rt.run(prog).unwrap(), 7);
    }

    #[test]
    fn throw_to_interrupts_stuck_takemvar() {
        let mut rt = Runtime::new();
        // Child blocks on an empty MVar; parent interrupts it; child's
        // handler reports via another MVar.
        let prog = Io::new_empty_mvar::<i64>().and_then(|hole| {
            Io::new_empty_mvar::<String>().and_then(move |report| {
                let child_body = hole
                    .take()
                    .map(|_| "no exception".to_owned())
                    .catch(|e| Io::pure(format!("caught {e}")))
                    .and_then(move |s| report.put(s));
                Io::fork(child_body).and_then(move |child| {
                    Io::sleep(10)
                        .then(Io::throw_to(child, Exception::kill_thread()))
                        .then(report.take())
                })
            })
        });
        assert_eq!(rt.run(prog).unwrap(), "caught KillThread");
        assert!(rt.stats().interrupted_blocked >= 1);
    }

    #[test]
    fn block_defers_async_exception() {
        let mut rt = Runtime::new();
        // Child computes inside block; the exception must wait until the
        // child unblocks. The fork happens inside a block so the child
        // inherits the blocked state and there is no pre-block window.
        let prog = Io::new_empty_mvar::<i64>().and_then(|m| {
            let body = Io::compute(50)
                .then(m.put(1)) // protected: must complete
                .then(Io::<()>::unblock(Io::compute(1000))); // killable
            Io::<ThreadId>::block(Io::fork(body))
                .and_then(move |child| Io::throw_to(child, Exception::kill_thread()).then(m.take()))
        });
        // The put under the inherited mask always happens even though the
        // kill was thrown before it ran.
        assert_eq!(rt.run(prog).unwrap(), 1);
    }

    #[test]
    fn unblock_inside_block_restores_on_exit() {
        let mut rt = Runtime::new();
        let prog = Io::<bool>::block(Io::<bool>::unblock(Io::masking_state()).and_then(
            |inside_unblock| {
                Io::masking_state().map(move |after| {
                    assert!(!inside_unblock, "inside unblock must be unmasked");
                    after
                })
            },
        ));
        // After leaving unblock we are blocked again.
        assert!(rt.run(prog).unwrap());
    }

    #[test]
    fn mask_restored_after_block_exits() {
        let mut rt = Runtime::new();
        let prog = Io::<bool>::block(Io::masking_state())
            .and_then(|inside| Io::masking_state().map(move |outside| (inside, outside)));
        let (inside, outside) = rt.run(prog).unwrap();
        assert!(inside);
        assert!(!outside);
    }

    #[test]
    fn self_throw_to_is_deferred_while_masked() {
        let mut rt = Runtime::new();
        let prog = Io::<i64>::block(Io::my_thread_id().and_then(|me| {
            Io::throw_to(me, Exception::kill_thread())
                // Still alive here because we are masked.
                .then(Io::compute_returning(10, 42_i64))
        }))
        .catch(|e| {
            assert!(e.is_kill_thread());
            Io::pure(-1)
        });
        // On leaving block, the pending exception fires before the result
        // can be returned, so the handler runs.
        assert_eq!(rt.run(prog).unwrap(), -1);
    }

    #[test]
    fn sync_throw_to_self_raises_immediately() {
        let mut rt = Runtime::new();
        let prog = Io::my_thread_id()
            .and_then(|me| Io::throw_to_sync(me, Exception::custom("self")).then(Io::pure(0_i64)))
            .catch(|e| {
                assert_eq!(e, Exception::custom("self"));
                Io::pure(1)
            });
        assert_eq!(rt.run(prog).unwrap(), 1);
    }

    #[test]
    fn sync_throw_to_waits_for_delivery() {
        let mut rt = Runtime::new();
        // Child is forked masked (no pre-handler window), installs a catch,
        // and unmasks; parent sync-throws. The parent can only proceed after
        // the child actually receives the exception.
        let prog = Io::new_empty_mvar::<i64>().and_then(|m| {
            let child_body = Io::<()>::unblock(Io::compute(100_000)).catch(move |_| m.put(99));
            Io::<ThreadId>::block(Io::fork(child_body)).and_then(move |child| {
                Io::throw_to_sync(child, Exception::kill_thread()).then(m.take())
            })
        });
        assert_eq!(rt.run(prog).unwrap(), 99);
        assert!(rt.stats().async_deliveries >= 1);
    }

    #[test]
    fn interruptible_take_in_block_receives_exception() {
        let mut rt = Runtime::new();
        // §5.3: takeMVar inside block is interruptible while the MVar is
        // empty.
        let prog = Io::new_empty_mvar::<i64>().and_then(|hole| {
            Io::new_empty_mvar::<i64>().and_then(move |report| {
                let child = Io::<()>::block(
                    hole.take()
                        .map(|_| ())
                        .catch(move |_| report.put(1).map(|_| ())),
                );
                Io::fork(child).and_then(move |c| {
                    Io::sleep(5)
                        .then(Io::throw_to(c, Exception::kill_thread()))
                        .then(report.take())
                })
            })
        });
        assert_eq!(rt.run(prog).unwrap(), 1);
    }

    #[test]
    fn noninterruptible_take_when_mvar_full() {
        let mut rt = Runtime::new();
        // §5.3: with the resource available, take inside block completes
        // even with a pending exception; the exception arrives only at the
        // next delivery point.
        let prog = Io::new_mvar(5_i64).and_then(|m| {
            Io::<i64>::block(Io::my_thread_id().and_then(move |me| {
                Io::throw_to(me, Exception::kill_thread()).then(m.take()) // must succeed despite pending kill
            }))
            .catch(|_| Io::pure(-1))
        });
        // take succeeded inside block; kill delivered on unmasking at exit,
        // caught by the handler. The handler observes... the take result is
        // lost because the exception fires before block returns it.
        assert_eq!(rt.run(prog).unwrap(), -1);
        assert!(rt.stats().mvar_ops >= 1);
    }

    #[test]
    fn polling_mode_defers_to_safe_point() {
        let cfg = RuntimeConfig::new().delivery_mode(DeliveryMode::Polling);
        let mut rt = Runtime::with_config(cfg);
        let prog = Io::new_empty_mvar::<i64>().and_then(|m| {
            let child = Io::compute(100)
                .then(m.put(1)) // completes despite pending exception
                .then(Io::poll_safe_point()) // exception fires here
                .then(m.take().map(|_| ()))
                .catch(move |_| Io::unit());
            Io::fork(child)
                .and_then(move |c| Io::throw_to(c, Exception::kill_thread()).then(m.take()))
        });
        // If polling mode delivered mid-compute, the put would never happen
        // and this would deadlock.
        assert_eq!(rt.run(prog).unwrap(), 1);
    }

    #[test]
    fn fifo_delivery_of_multiple_pending() {
        use std::cell::RefCell;
        use std::rc::Rc;
        let mut rt = Runtime::new();
        let log = Rc::new(RefCell::new(Vec::<String>::new()));
        let l1 = Rc::clone(&log);
        let l2 = Rc::clone(&log);
        // Queue two exceptions while masked, then open two unmask windows;
        // each window receives exactly one exception, in FIFO order, and
        // each handler runs masked (saved catch state), so the second
        // exception waits for the second window.
        let prog = Io::<()>::block(Io::my_thread_id().and_then(move |me| {
            Io::throw_to(me, Exception::custom("first"))
                .then(Io::throw_to(me, Exception::custom("second")))
                .then(Io::<()>::unblock(Io::unit()))
                .catch(move |e| Io::effect(move || l1.borrow_mut().push(e.to_string())))
                .then(Io::<()>::unblock(Io::unit()))
                .catch(move |e| Io::effect(move || l2.borrow_mut().push(e.to_string())))
        }));
        rt.run(prog).unwrap();
        assert_eq!(*log.borrow(), ["first".to_owned(), "second".to_owned()]);
    }

    #[test]
    fn random_scheduling_is_deterministic_per_seed() {
        let run_with = |seed: u64| {
            let cfg = RuntimeConfig::new().random_scheduling(seed);
            let mut rt = Runtime::with_config(cfg);
            let prog = Io::new_mvar(0_i64).and_then(|m| {
                let bump = move || m.take().and_then(move |n| m.put(n + 1));
                Io::fork(bump().then(bump()))
                    .then(Io::fork(bump()))
                    .then(Io::sleep(1000))
                    .then(m.take())
            });
            (rt.run(prog).unwrap(), rt.stats().context_switches)
        };
        assert_eq!(run_with(7), run_with(7));
    }

    #[test]
    fn stats_count_forks_and_switches() {
        let mut rt = Runtime::new();
        let prog = Io::fork(Io::unit())
            .then(Io::fork(Io::unit()))
            .then(Io::sleep(1));
        rt.run(prog).unwrap();
        assert_eq!(rt.stats().forks, 2);
        assert!(rt.stats().context_switches >= 1);
        assert_eq!(rt.stats().finished_threads, 3);
    }

    #[test]
    fn output_and_trace_are_recorded() {
        let mut rt = Runtime::new();
        rt.feed_input("a");
        let prog = Io::get_char().and_then(|c| Io::put_char(c).then(Io::put_char('!')));
        rt.run(prog).unwrap();
        assert_eq!(rt.output(), "a!");
        assert_eq!(
            rt.io_trace(),
            &[IoEvent::Get('a'), IoEvent::Put('a'), IoEvent::Put('!')]
        );
    }

    #[test]
    fn yield_rotates_scheduler() {
        let mut rt = Runtime::new();
        // Two threads alternate via yield; both finish.
        let prog = Io::new_mvar(0_i64).and_then(|m| {
            Io::fork(Io::yield_now().then(m.take().and_then(move |n| m.put(n + 1))))
                .then(Io::yield_now())
                .then(Io::sleep(10))
                .then(m.take())
        });
        assert_eq!(rt.run(prog).unwrap(), 1);
    }

    #[test]
    fn sync_throw_to_stuck_target_does_not_deadlock() {
        // Regression: a sync throwTo at a *stuck* target used to suspend
        // the thrower forever — the target's (Interrupt) wake-up fired
        // while the thrower was mid-step and not yet suspended, so the
        // notification was lost. Delivery to a stuck target is immediate,
        // so the thrower must not wait at all.
        let mut rt = Runtime::new();
        let prog = Io::new_empty_mvar::<i64>().and_then(|hole| {
            Io::new_empty_mvar::<i64>().and_then(move |report| {
                let victim = hole
                    .take()
                    .map(|_| ())
                    .catch(move |_| report.put(1).map(|_| ()));
                Io::fork(victim).and_then(move |v| {
                    Io::sleep(5) // let the victim block on the take
                        .then(Io::throw_to_sync(v, Exception::kill_thread()))
                        .then(report.take())
                })
            })
        });
        assert_eq!(rt.run(prog).unwrap(), 1);
    }

    /// Picks the lowest or highest `ThreadId` among the runnable set.
    struct Prefer {
        highest: bool,
    }

    impl crate::decide::Decider for Prefer {
        fn choose_thread(
            &mut self,
            runnable: &[crate::decide::ThreadView],
            _previous: Option<ThreadId>,
        ) -> usize {
            let mut best = 0;
            for (i, v) in runnable.iter().enumerate() {
                let better = if self.highest {
                    v.tid > runnable[best].tid
                } else {
                    v.tid < runnable[best].tid
                };
                if better {
                    best = i;
                }
            }
            best
        }

        fn deliver_now(&mut self, _view: crate::decide::ThreadView) -> bool {
            true
        }
    }

    #[test]
    fn external_decider_controls_interleaving() {
        let run_with = |highest: bool| {
            let mut rt = Runtime::with_config(RuntimeConfig::new().external_scheduling());
            rt.set_decider(Box::new(Prefer { highest }));
            let prog = Io::fork(Io::put_char('b'))
                .then(Io::put_char('a'))
                .then(Io::sleep(1));
            rt.run(prog).unwrap();
            rt.output().to_owned()
        };
        // Preferring the main thread runs it to its sleep before the
        // child's put; preferring the child flips the order.
        assert_eq!(run_with(false), "ab");
        assert_eq!(run_with(true), "ba");
    }

    #[test]
    fn external_decider_controls_delivery_point() {
        struct Defer;
        impl crate::decide::Decider for Defer {
            fn choose_thread(
                &mut self,
                _runnable: &[crate::decide::ThreadView],
                _previous: Option<ThreadId>,
            ) -> usize {
                0
            }
            fn deliver_now(&mut self, _view: crate::decide::ThreadView) -> bool {
                false
            }
        }
        // An unmasked self-throw is normally delivered at the very next
        // step; a decider that keeps deferring lets the program run to
        // completion with the exception still pending.
        let prog = || {
            Io::my_thread_id().and_then(|me| {
                Io::throw_to(me, Exception::custom("later")).then(Io::compute_returning(3, 7_i64))
            })
        };
        let mut plain = Runtime::new();
        assert!(plain.run(prog()).is_err());

        let mut driven = Runtime::with_config(RuntimeConfig::new().external_scheduling());
        driven.set_decider(Box::new(Defer));
        assert_eq!(driven.run(prog()).unwrap(), 7);
    }

    #[test]
    fn external_without_decider_is_round_robin() {
        let mut rt = Runtime::with_config(RuntimeConfig::new().external_scheduling());
        let prog = Io::new_empty_mvar::<i64>().and_then(|m| Io::fork(m.put(10)).then(m.take()));
        assert_eq!(rt.run(prog).unwrap(), 10);
    }

    #[test]
    fn sched_events_recorded_when_enabled() {
        let mut rt = Runtime::with_config(RuntimeConfig::new().record_sched_events(true));
        let prog = Io::new_empty_mvar::<i64>().and_then(|m| {
            Io::<ThreadId>::block(Io::fork(m.take().map(|_| ()))).and_then(move |child| {
                Io::sleep(5)
                    .then(Io::throw_to(child, Exception::kill_thread()))
                    .then(Io::pure(0_i64))
            })
        });
        rt.run(prog).unwrap();
        let trace = rt.io_trace();
        assert!(trace.iter().any(|e| matches!(e, IoEvent::Mask(_))));
        assert!(trace.iter().any(|e| matches!(e, IoEvent::Fork { .. })));
        assert!(trace.iter().any(|e| matches!(
            e,
            IoEvent::BlockedOn {
                site: crate::trace::BlockSite::TakeMVar,
                ..
            }
        )));
        assert!(trace.iter().any(|e| matches!(e, IoEvent::ThrowTo { .. })));
    }

    #[test]
    fn sched_events_absent_by_default() {
        let mut rt = Runtime::new();
        let prog = Io::fork(Io::unit()).then(Io::sleep(1));
        rt.run(prog).unwrap();
        assert!(!rt
            .io_trace()
            .iter()
            .any(|e| matches!(e, IoEvent::Fork { .. } | IoEvent::BlockedOn { .. })));
    }

    #[test]
    fn mask_frames_collapse_stat() {
        // A mask-recursive loop: block(unblock(block(...))).
        fn looped(n: u64) -> Io<()> {
            if n == 0 {
                Io::unit()
            } else {
                Io::<()>::block(Io::<()>::unblock(
                    Io::unit().and_then(move |_| looped(n - 1)),
                ))
            }
        }
        let mut rt = Runtime::new();
        rt.run(looped(50)).unwrap();
        let with = rt.stats().max_mask_frames;
        assert!(rt.stats().mask_frames_collapsed > 0);

        let cfg = RuntimeConfig::new().collapse_mask_frames(false);
        let mut rt2 = Runtime::with_config(cfg);
        rt2.run(looped(50)).unwrap();
        let without = rt2.stats().max_mask_frames;
        assert!(
            without > with,
            "collapse should bound mask frames: with={with}, without={without}"
        );
    }
}

#[cfg(test)]
mod origin_tests {
    use crate::prelude::*;
    use crate::thread::RaiseOrigin;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn throw_reports_sync_origin() {
        let mut rt = Runtime::new();
        let prog = Io::<i64>::throw(Exception::error_call("mine"))
            .catch_info(|_, origin| Io::pure(i64::from(origin == RaiseOrigin::Sync)));
        assert_eq!(rt.run(prog).unwrap(), 1);
    }

    #[test]
    fn delivered_exception_reports_async_origin() {
        let mut rt = Runtime::new();
        let origins = Rc::new(RefCell::new(Vec::<RaiseOrigin>::new()));
        let o2 = Rc::clone(&origins);
        let prog = Io::new_empty_mvar::<i64>().and_then(move |done| {
            let victim = Io::<()>::unblock(Io::compute(100_000))
                .catch_info(move |_, origin| {
                    let o3 = Rc::clone(&o2);
                    Io::effect(move || o3.borrow_mut().push(origin))
                })
                .then(done.put(1));
            Io::<ThreadId>::block(Io::fork(victim))
                .and_then(move |v| Io::throw_to(v, Exception::kill_thread()).then(done.take()))
        });
        rt.run(prog).unwrap();
        assert_eq!(*origins.borrow(), [RaiseOrigin::Async]);
    }

    #[test]
    fn interrupted_blocked_take_reports_async_origin() {
        let mut rt = Runtime::new();
        let prog = Io::new_empty_mvar::<i64>().and_then(|hole| {
            Io::new_empty_mvar::<i64>().and_then(move |report| {
                let victim = hole
                    .take()
                    .catch_info(move |_, origin| {
                        report
                            .put(i64::from(origin == RaiseOrigin::Async))
                            .then(Io::pure(0))
                    })
                    .map(|_| ());
                Io::fork(victim).and_then(move |v| {
                    Io::sleep(5)
                        .then(Io::throw_to(v, Exception::kill_thread()))
                        .then(report.take())
                })
            })
        });
        assert_eq!(rt.run(prog).unwrap(), 1);
    }

    #[test]
    fn rethrow_preserves_async_origin_across_handlers() {
        let mut rt = Runtime::new();
        let prog = Io::new_empty_mvar::<i64>().and_then(|report| {
            let inner = Io::<()>::unblock(Io::compute(100_000));
            let victim = inner
                // Inner handler passes it along with origin intact.
                .catch_info(Io::rethrow)
                // Outer handler still sees Async.
                .catch_info(move |_, origin| {
                    report
                        .put(i64::from(origin == RaiseOrigin::Async))
                        .map(|_| ())
                });
            Io::<ThreadId>::block(Io::fork(victim))
                .and_then(move |v| Io::throw_to(v, Exception::kill_thread()).then(report.take()))
        });
        assert_eq!(rt.run(prog).unwrap(), 1);
    }

    #[test]
    fn plain_rethrow_launders_to_sync() {
        // Documented behaviour: re-raising with Io::throw makes it look
        // synchronous to outer handlers (use Io::rethrow to preserve).
        let mut rt = Runtime::new();
        let prog = Io::new_empty_mvar::<i64>().and_then(|report| {
            let victim = Io::<()>::unblock(Io::compute(100_000))
                .catch(Io::throw)
                .catch_info(move |_, origin| {
                    report
                        .put(i64::from(origin == RaiseOrigin::Sync))
                        .map(|_| ())
                });
            Io::<ThreadId>::block(Io::fork(victim))
                .and_then(move |v| Io::throw_to(v, Exception::kill_thread()).then(report.take()))
        });
        assert_eq!(rt.run(prog).unwrap(), 1);
    }

    #[test]
    fn self_sync_throwto_is_async_origin() {
        let mut rt = Runtime::new();
        let prog = Io::my_thread_id()
            .and_then(|me| Io::throw_to_sync(me, Exception::custom("self")).then(Io::pure(0_i64)))
            .catch_info(|_, origin| Io::pure(i64::from(origin == RaiseOrigin::Async)));
        assert_eq!(rt.run(prog).unwrap(), 1);
    }
}
