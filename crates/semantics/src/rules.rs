//! The transition rules — Figures 4 and 5 of the paper.
//!
//! [`enabled_transitions`] enumerates *every* transition a program state
//! admits, each tagged with the paper's rule name and (for I/O and time)
//! its label. The engine built on top explores this labelled transition
//! system exhaustively (model checking) or by random walk.
//!
//! Design notes:
//!
//! * **Stuck marking.** Figure 5's (Stuck *) rules let operations that
//!   wait on the outside world become stuck (⊛). The rules that are
//!   forced — `takeMVar` on an empty `MVar`, `putMVar` on a full one,
//!   `getChar` with no input, and `sleep` — are always enabled; the
//!   purely device-driven ones (`putChar`/`getChar` stuck even though the
//!   device is ready) are behind [`RuleConfig::device_stuckness`] because
//!   they only add interleavings without changing reachable outcomes.
//! * **Administrative normalization.** After every rule we drop in-flight
//!   exceptions whose target thread no longer exists (`throwTo` to a dead
//!   thread trivially succeeds, §5) and apply (Proc GC) when the main
//!   thread is dead. Neither is observable: no rule can fire on the
//!   removed processes.

use std::rc::Rc;

use crate::context::{decompose, CtxFrame};
use crate::eval::{eval, Outcome};
use crate::process::{Mark, Soup, ThreadState};
use crate::term::{Exc, Term, TidName};

/// The names of the paper's transition rules (Figures 4 and 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum RuleName {
    Bind,
    PutChar,
    GetChar,
    Sleep,
    PutMVar,
    TakeMVar,
    NewMVar,
    Fork,
    ThreadId,
    Propagate,
    Catch,
    Handle,
    ReturnGC,
    ThrowGC,
    Eval,
    Raise,
    BlockReturn,
    UnblockReturn,
    BlockThrow,
    UnblockThrow,
    ThrowTo,
    Receive,
    Interrupt,
    StuckPutChar,
    StuckGetChar,
    StuckSleep,
    StuckPutMVar,
    StuckTakeMVar,
}

impl RuleName {
    /// The rule's name as printed in the paper.
    pub fn paper_name(self) -> &'static str {
        match self {
            RuleName::Bind => "(Bind)",
            RuleName::PutChar => "(PutChar)",
            RuleName::GetChar => "(GetChar)",
            RuleName::Sleep => "(Sleep)",
            RuleName::PutMVar => "(PutMVar)",
            RuleName::TakeMVar => "(TakeMVar)",
            RuleName::NewMVar => "(NewMVar)",
            RuleName::Fork => "(Fork)",
            RuleName::ThreadId => "(ThreadId)",
            RuleName::Propagate => "(Propagate)",
            RuleName::Catch => "(Catch)",
            RuleName::Handle => "(Handle)",
            RuleName::ReturnGC => "(Return GC)",
            RuleName::ThrowGC => "(Throw GC)",
            RuleName::Eval => "(Eval)",
            RuleName::Raise => "(Raise)",
            RuleName::BlockReturn => "(Block Return)",
            RuleName::UnblockReturn => "(Unblock Return)",
            RuleName::BlockThrow => "(Block Throw)",
            RuleName::UnblockThrow => "(Unblock Throw)",
            RuleName::ThrowTo => "(ThrowTo)",
            RuleName::Receive => "(Receive)",
            RuleName::Interrupt => "(Interrupt)",
            RuleName::StuckPutChar => "(Stuck PutChar)",
            RuleName::StuckGetChar => "(Stuck GetChar)",
            RuleName::StuckSleep => "(Stuck Sleep)",
            RuleName::StuckPutMVar => "(Stuck PutMVar)",
            RuleName::StuckTakeMVar => "(Stuck TakeMVar)",
        }
    }
}

impl std::fmt::Display for RuleName {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.paper_name())
    }
}

/// The label on a transition: the paper's events `!c`, `?c`, `$d`, or the
/// unlabelled (internal) transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Label {
    /// An internal step.
    Tau,
    /// `!c` — `c` written to standard output.
    Put(char),
    /// `?c` — `c` read from standard input.
    Get(char),
    /// `$d` — `d` microseconds of external time.
    Time(u64),
}

impl std::fmt::Display for Label {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Label::Tau => f.write_str("τ"),
            Label::Put(c) => write!(f, "!{c}"),
            Label::Get(c) => write!(f, "?{c}"),
            Label::Time(d) => write!(f, "${d}"),
        }
    }
}

/// One enabled transition out of a state.
#[derive(Debug, Clone)]
pub struct Transition {
    /// Which rule fired.
    pub rule: RuleName,
    /// The transition's label.
    pub label: Label,
    /// The thread the rule fired in (if thread-local).
    pub tid: Option<TidName>,
    /// The successor program state (already normalized).
    pub soup: Soup,
    /// Whether one character of input was consumed (rule (GetChar)).
    pub consumed_input: bool,
}

/// Tunables for rule enumeration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuleConfig {
    /// Fuel for each inner (Eval) invocation.
    pub eval_fuel: u64,
    /// Enable the purely device-driven stuckness transitions
    /// ((Stuck PutChar) always; (Stuck GetChar) even when input is
    /// available). Off by default: they multiply interleavings without
    /// changing reachable outcomes.
    pub device_stuckness: bool,
}

impl Default for RuleConfig {
    fn default() -> Self {
        RuleConfig {
            eval_fuel: 100_000,
            device_stuckness: false,
        }
    }
}

/// Drops unobservable processes: in-flight exceptions aimed at
/// nonexistent threads, and — once the main thread is dead — everything
/// else (rule (Proc GC)).
pub fn normalize(soup: &mut Soup) {
    let threads = &soup.threads;
    soup.inflight.retain(|(t, _)| threads.contains_key(t));
    if soup.main_finished() {
        soup.threads.clear();
        soup.mvars.clear();
        soup.inflight.clear();
        let main = soup.main;
        soup.dead.retain(|t| *t == main);
    }
}

/// Enumerates every transition enabled in `soup`, given the remaining
/// `input` characters.
pub fn enabled_transitions(soup: &Soup, input: &[char], config: &RuleConfig) -> Vec<Transition> {
    let mut out = Vec::new();
    if soup.main_finished() {
        return out;
    }
    for (&tid, st) in &soup.threads {
        thread_transitions(soup, tid, st, input, config, &mut out);
    }
    out
}

/// Pushes a successor built from `soup` by replacing thread `tid`'s term.
#[allow(clippy::too_many_arguments)]
fn push(
    out: &mut Vec<Transition>,
    soup: &Soup,
    tid: TidName,
    rule: RuleName,
    label: Label,
    new_term: Rc<Term>,
    new_mark: Mark,
    consumed_input: bool,
    tweak: impl FnOnce(&mut Soup),
) {
    let mut next = soup.clone();
    if let Some(t) = next.threads.get_mut(&tid) {
        t.term = new_term;
        t.mark = new_mark;
    }
    tweak(&mut next);
    normalize(&mut next);
    out.push(Transition {
        rule,
        label,
        tid: Some(tid),
        soup: next,
        consumed_input,
    });
}

#[allow(clippy::too_many_lines, clippy::collapsible_match)]
fn thread_transitions(
    soup: &Soup,
    tid: TidName,
    st: &ThreadState,
    input: &[char],
    config: &RuleConfig,
    out: &mut Vec<Transition>,
) {
    let d = decompose(&st.term);
    let runnable = st.mark == Mark::Runnable;

    // ---- (Interrupt): a stuck thread receives any in-flight exception
    // aimed at it, in any context (masked or not), and becomes runnable.
    if st.mark == Mark::Stuck {
        for (i, (target, e)) in soup.inflight.iter().enumerate() {
            if *target == tid {
                let new_term = d.plug(Rc::new(Term::Throw(Rc::new(Term::ExcLit(e.clone())))));
                push(
                    out,
                    soup,
                    tid,
                    RuleName::Interrupt,
                    Label::Tau,
                    new_term,
                    Mark::Runnable,
                    false,
                    |s| {
                        s.inflight.remove(i);
                    },
                );
            }
        }
    }

    // ---- (Receive): a runnable thread in an unblocked context receives
    // an in-flight exception at the evaluation site.
    if runnable && !d.masked() {
        for (i, (target, e)) in soup.inflight.iter().enumerate() {
            if *target == tid {
                let new_term = d.plug(Rc::new(Term::Throw(Rc::new(Term::ExcLit(e.clone())))));
                push(
                    out,
                    soup,
                    tid,
                    RuleName::Receive,
                    Label::Tau,
                    new_term,
                    Mark::Runnable,
                    false,
                    |s| {
                        s.inflight.remove(i);
                    },
                );
            }
        }
    }

    // The remaining rules are driven by the redex.
    match &*d.redex {
        // ---- (Eval)/(Raise): lift the inner semantics. Runnable only.
        r if !r.is_value() => {
            if runnable {
                let mut fuel = config.eval_fuel;
                match eval(&d.redex, &mut fuel) {
                    Outcome::Value(v) => {
                        debug_assert!(*v != *d.redex, "(Eval) requires M ≠ V");
                        push(
                            out,
                            soup,
                            tid,
                            RuleName::Eval,
                            Label::Tau,
                            d.plug(v),
                            Mark::Runnable,
                            false,
                            |_| {},
                        );
                    }
                    Outcome::Raised(e) => {
                        let t = d.plug(Rc::new(Term::Throw(Rc::new(Term::ExcLit(e)))));
                        push(
                            out,
                            soup,
                            tid,
                            RuleName::Raise,
                            Label::Tau,
                            t,
                            Mark::Runnable,
                            false,
                            |_| {},
                        );
                    }
                    // Divergent or wedged pure code: no transition.
                    Outcome::OutOfFuel | Outcome::Wedged(_) => {}
                }
            }
        }

        // ---- return V meets its context.
        Term::Return(n) => {
            if !runnable {
                return;
            }
            match d.innermost() {
                None => {
                    // (Return GC): the final value is lost; thread dies.
                    let mut next = soup.clone();
                    next.threads.remove(&tid);
                    next.dead.insert(tid);
                    normalize(&mut next);
                    out.push(Transition {
                        rule: RuleName::ReturnGC,
                        label: Label::Tau,
                        tid: Some(tid),
                        soup: next,
                        consumed_input: false,
                    });
                }
                Some(CtxFrame::BindK(k)) => {
                    // (Bind): E[return N >>= M] → E[M N].
                    let new = d.pop_plug(Rc::new(Term::App(Rc::clone(k), Rc::clone(n))));
                    push(
                        out,
                        soup,
                        tid,
                        RuleName::Bind,
                        Label::Tau,
                        new,
                        Mark::Runnable,
                        false,
                        |_| {},
                    );
                }
                Some(CtxFrame::CatchH(_)) => {
                    // (Handle): E[catch (return M) H] → E[return M].
                    let new = d.pop_plug(Rc::new(Term::Return(Rc::clone(n))));
                    push(
                        out,
                        soup,
                        tid,
                        RuleName::Handle,
                        Label::Tau,
                        new,
                        Mark::Runnable,
                        false,
                        |_| {},
                    );
                }
                Some(CtxFrame::Block) => {
                    let new = d.pop_plug(Rc::new(Term::Return(Rc::clone(n))));
                    push(
                        out,
                        soup,
                        tid,
                        RuleName::BlockReturn,
                        Label::Tau,
                        new,
                        Mark::Runnable,
                        false,
                        |_| {},
                    );
                }
                Some(CtxFrame::Unblock) => {
                    let new = d.pop_plug(Rc::new(Term::Return(Rc::clone(n))));
                    push(
                        out,
                        soup,
                        tid,
                        RuleName::UnblockReturn,
                        Label::Tau,
                        new,
                        Mark::Runnable,
                        false,
                        |_| {},
                    );
                }
            }
        }

        // ---- throw e meets its context.
        Term::Throw(e) => {
            if !runnable {
                return;
            }
            match d.innermost() {
                None => {
                    // (Throw GC): uncaught exception; thread dies.
                    let mut next = soup.clone();
                    next.threads.remove(&tid);
                    next.dead.insert(tid);
                    normalize(&mut next);
                    out.push(Transition {
                        rule: RuleName::ThrowGC,
                        label: Label::Tau,
                        tid: Some(tid),
                        soup: next,
                        consumed_input: false,
                    });
                }
                Some(CtxFrame::BindK(_)) => {
                    // (Propagate): E[throw e >>= M] → E[throw e].
                    let new = d.pop_plug(Rc::new(Term::Throw(Rc::clone(e))));
                    push(
                        out,
                        soup,
                        tid,
                        RuleName::Propagate,
                        Label::Tau,
                        new,
                        Mark::Runnable,
                        false,
                        |_| {},
                    );
                }
                Some(CtxFrame::CatchH(h)) => {
                    // (Catch): E[catch (throw e) H] → E[H e].
                    let new = d.pop_plug(Rc::new(Term::App(Rc::clone(h), Rc::clone(e))));
                    push(
                        out,
                        soup,
                        tid,
                        RuleName::Catch,
                        Label::Tau,
                        new,
                        Mark::Runnable,
                        false,
                        |_| {},
                    );
                }
                Some(CtxFrame::Block) => {
                    let new = d.pop_plug(Rc::new(Term::Throw(Rc::clone(e))));
                    push(
                        out,
                        soup,
                        tid,
                        RuleName::BlockThrow,
                        Label::Tau,
                        new,
                        Mark::Runnable,
                        false,
                        |_| {},
                    );
                }
                Some(CtxFrame::Unblock) => {
                    let new = d.pop_plug(Rc::new(Term::Throw(Rc::clone(e))));
                    push(
                        out,
                        soup,
                        tid,
                        RuleName::UnblockThrow,
                        Label::Tau,
                        new,
                        Mark::Runnable,
                        false,
                        |_| {},
                    );
                }
            }
        }

        // ---- (PutChar): applies to runnable *and* stuck threads (the
        // labelled event is the impetus that wakes a stuck writer).
        Term::PutChar(c) => {
            if let Term::Char(c) = &**c {
                push(
                    out,
                    soup,
                    tid,
                    RuleName::PutChar,
                    Label::Put(*c),
                    d.plug(Rc::new(Term::Return(Rc::new(Term::Unit)))),
                    Mark::Runnable,
                    false,
                    |_| {},
                );
                if runnable && config.device_stuckness {
                    push(
                        out,
                        soup,
                        tid,
                        RuleName::StuckPutChar,
                        Label::Tau,
                        Rc::clone(&st.term),
                        Mark::Stuck,
                        false,
                        |_| {},
                    );
                }
            }
        }

        // ---- (GetChar) / (Stuck GetChar).
        Term::GetChar => {
            if let Some(&c) = input.first() {
                push(
                    out,
                    soup,
                    tid,
                    RuleName::GetChar,
                    Label::Get(c),
                    d.plug(Rc::new(Term::Return(Rc::new(Term::Char(c))))),
                    Mark::Runnable,
                    true,
                    |_| {},
                );
                if runnable && config.device_stuckness {
                    push(
                        out,
                        soup,
                        tid,
                        RuleName::StuckGetChar,
                        Label::Tau,
                        Rc::clone(&st.term),
                        Mark::Stuck,
                        false,
                        |_| {},
                    );
                }
            } else if runnable {
                // No input: the reader can only become stuck.
                push(
                    out,
                    soup,
                    tid,
                    RuleName::StuckGetChar,
                    Label::Tau,
                    Rc::clone(&st.term),
                    Mark::Stuck,
                    false,
                    |_| {},
                );
            }
        }

        // ---- (Sleep) / (Stuck Sleep).
        Term::Sleep(dur) => {
            if let Term::Int(dur) = &**dur {
                let micros = (*dur).max(0) as u64;
                push(
                    out,
                    soup,
                    tid,
                    RuleName::Sleep,
                    Label::Time(micros),
                    d.plug(Rc::new(Term::Return(Rc::new(Term::Unit)))),
                    Mark::Runnable,
                    false,
                    |_| {},
                );
                if runnable {
                    push(
                        out,
                        soup,
                        tid,
                        RuleName::StuckSleep,
                        Label::Tau,
                        Rc::clone(&st.term),
                        Mark::Stuck,
                        false,
                        |_| {},
                    );
                }
            }
        }

        // ---- (PutMVar) / (Stuck PutMVar).
        Term::PutMVar(m, n) => {
            if let Term::MVarRef(m) = &**m {
                match soup.mvars.get(m) {
                    Some(None) => {
                        let n = Rc::clone(n);
                        let m = *m;
                        push(
                            out,
                            soup,
                            tid,
                            RuleName::PutMVar,
                            Label::Tau,
                            d.plug(Rc::new(Term::Return(Rc::new(Term::Unit)))),
                            Mark::Runnable,
                            false,
                            move |s| {
                                s.mvars.insert(m, Some(n));
                            },
                        );
                    }
                    Some(Some(_)) => {
                        if runnable {
                            push(
                                out,
                                soup,
                                tid,
                                RuleName::StuckPutMVar,
                                Label::Tau,
                                Rc::clone(&st.term),
                                Mark::Stuck,
                                false,
                                |_| {},
                            );
                        }
                    }
                    None => {} // unknown MVar: wedged
                }
            }
        }

        // ---- (TakeMVar) / (Stuck TakeMVar).
        Term::TakeMVar(m) => {
            if let Term::MVarRef(m) = &**m {
                match soup.mvars.get(m) {
                    Some(Some(v)) => {
                        let v = Rc::clone(v);
                        let m = *m;
                        push(
                            out,
                            soup,
                            tid,
                            RuleName::TakeMVar,
                            Label::Tau,
                            d.plug(Rc::new(Term::Return(v))),
                            Mark::Runnable,
                            false,
                            move |s| {
                                s.mvars.insert(m, None);
                            },
                        );
                    }
                    Some(None) => {
                        if runnable {
                            push(
                                out,
                                soup,
                                tid,
                                RuleName::StuckTakeMVar,
                                Label::Tau,
                                Rc::clone(&st.term),
                                Mark::Stuck,
                                false,
                                |_| {},
                            );
                        }
                    }
                    None => {}
                }
            }
        }

        // ---- (NewMVar).
        Term::NewEmptyMVar => {
            if runnable {
                let mut next = soup.clone();
                let m = next.fresh_mvar();
                next.mvars.insert(m, None);
                if let Some(t) = next.threads.get_mut(&tid) {
                    t.term = d.plug(Rc::new(Term::Return(Rc::new(Term::MVarRef(m)))));
                }
                normalize(&mut next);
                out.push(Transition {
                    rule: RuleName::NewMVar,
                    label: Label::Tau,
                    tid: Some(tid),
                    soup: next,
                    consumed_input: false,
                });
            }
        }

        // ---- (Fork).
        Term::Fork(body) => {
            if runnable {
                let mut next = soup.clone();
                let u = next.fresh_tid();
                next.threads.insert(
                    u,
                    ThreadState {
                        term: Rc::clone(body),
                        mark: Mark::Runnable,
                    },
                );
                if let Some(t) = next.threads.get_mut(&tid) {
                    t.term = d.plug(Rc::new(Term::Return(Rc::new(Term::TidRef(u)))));
                }
                normalize(&mut next);
                out.push(Transition {
                    rule: RuleName::Fork,
                    label: Label::Tau,
                    tid: Some(tid),
                    soup: next,
                    consumed_input: false,
                });
            }
        }

        // ---- (ThreadId).
        Term::MyThreadId => {
            if runnable {
                push(
                    out,
                    soup,
                    tid,
                    RuleName::ThreadId,
                    Label::Tau,
                    d.plug(Rc::new(Term::Return(Rc::new(Term::TidRef(tid))))),
                    Mark::Runnable,
                    false,
                    |_| {},
                );
            }
        }

        // ---- (ThrowTo).
        Term::ThrowTo(target, e) => {
            if runnable {
                if let (Term::TidRef(u), Term::ExcLit(e)) = (&**target, &**e) {
                    let u = *u;
                    let e: Exc = e.clone();
                    push(
                        out,
                        soup,
                        tid,
                        RuleName::ThrowTo,
                        Label::Tau,
                        d.plug(Rc::new(Term::Return(Rc::new(Term::Unit)))),
                        Mark::Runnable,
                        false,
                        move |s| {
                            s.add_inflight(u, e);
                        },
                    );
                }
            }
        }

        // Values with no rule at the redex (e.g. a bare constant in IO
        // position): wedged, no transition.
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::build::*;
    use crate::term::MVarName;

    fn singleton(term: crate::term::build::T) -> Soup {
        Soup::initial(term)
    }

    fn rules_of(soup: &Soup, input: &[char]) -> Vec<RuleName> {
        enabled_transitions(soup, input, &RuleConfig::default())
            .into_iter()
            .map(|t| t.rule)
            .collect()
    }

    fn step_one(soup: &Soup, input: &[char], rule: RuleName) -> Soup {
        let ts = enabled_transitions(soup, input, &RuleConfig::default());
        let matching: Vec<_> = ts.into_iter().filter(|t| t.rule == rule).collect();
        assert_eq!(matching.len(), 1, "expected exactly one {rule} transition");
        matching.into_iter().next().unwrap().soup
    }

    #[test]
    fn bind_fires_on_return() {
        let s = singleton(bind(ret(int(1)), lam("x", ret(var("x")))));
        assert_eq!(rules_of(&s, &[]), vec![RuleName::Bind]);
        let s2 = step_one(&s, &[], RuleName::Bind);
        // E[M N]: an application, so next comes (Eval).
        assert_eq!(rules_of(&s2, &[]), vec![RuleName::Eval]);
    }

    #[test]
    fn putchar_emits_label() {
        let s = singleton(put_char(ch('x')));
        let ts = enabled_transitions(&s, &[], &RuleConfig::default());
        assert_eq!(ts.len(), 1);
        assert_eq!(ts[0].rule, RuleName::PutChar);
        assert_eq!(ts[0].label, Label::Put('x'));
    }

    #[test]
    fn getchar_consumes_input() {
        let s = singleton(get_char());
        let ts = enabled_transitions(&s, &['q'], &RuleConfig::default());
        // (GetChar) plus (Stuck GetChar) is gated off when input exists.
        let get: Vec<_> = ts.iter().filter(|t| t.rule == RuleName::GetChar).collect();
        assert_eq!(get.len(), 1);
        assert_eq!(get[0].label, Label::Get('q'));
        assert!(get[0].consumed_input);
    }

    #[test]
    fn getchar_without_input_can_only_stick() {
        let s = singleton(get_char());
        assert_eq!(rules_of(&s, &[]), vec![RuleName::StuckGetChar]);
    }

    #[test]
    fn eval_reduces_pure_redex() {
        let s = singleton(put_char(ite(boolean(true), ch('a'), ch('b'))));
        let s2 = step_one(&s, &[], RuleName::Eval);
        let t = &s2.threads[&s2.main].term;
        assert_eq!(t.to_string(), "(putChar 'a')");
    }

    #[test]
    fn raise_lifts_pure_exception() {
        let s = singleton(bind(ret(div(int(1), int(0))), lam("x", ret(var("x")))));
        // return (1/0) >>= k: (Bind) gives k (1/0); then (Eval)... actually
        // return's argument is lazy; the bind substitutes, apply forces.
        let s2 = step_one(&s, &[], RuleName::Bind);
        let s3 = step_one(&s2, &[], RuleName::Eval);
        // k (1/0) = return (1/0) — still lazy! A further Eval is impossible
        // (it's a value). The division is never forced: call-by-name.
        let t = &s3.threads[&s3.main].term;
        assert!(matches!(&**t, Term::Return(_)));
    }

    #[test]
    fn raise_fires_when_value_is_demanded() {
        let s = singleton(put_char(div(int(1), int(0))));
        let ts = enabled_transitions(&s, &[], &RuleConfig::default());
        assert_eq!(ts.len(), 1);
        assert_eq!(ts[0].rule, RuleName::Raise);
        let t = &ts[0].soup.threads[&ts[0].soup.main].term;
        assert_eq!(t.to_string(), "(throw DivideByZero)");
    }

    #[test]
    fn catch_handles_throw() {
        let s = singleton(catch(throw(exc("E")), lam("e", ret(var("e")))));
        let s2 = step_one(&s, &[], RuleName::Catch);
        let t = &s2.threads[&s2.main].term;
        assert_eq!(t.to_string(), "((\\e -> (return e)) E)");
    }

    #[test]
    fn handle_passes_success_through() {
        let s = singleton(catch(ret(int(1)), var("h")));
        let s2 = step_one(&s, &[], RuleName::Handle);
        assert_eq!(s2.threads[&s2.main].term.to_string(), "(return 1)");
    }

    #[test]
    fn propagate_skips_bind() {
        let s = singleton(bind(throw(exc("E")), var("k")));
        let s2 = step_one(&s, &[], RuleName::Propagate);
        assert_eq!(s2.threads[&s2.main].term.to_string(), "(throw E)");
    }

    #[test]
    fn return_gc_kills_thread() {
        let s = singleton(ret(int(3)));
        let s2 = step_one(&s, &[], RuleName::ReturnGC);
        assert!(s2.main_finished());
        assert!(s2.threads.is_empty());
    }

    #[test]
    fn fork_creates_runnable_child() {
        let s = singleton(bind(fork(put_char(ch('c'))), lam("t", ret(unit()))));
        let s2 = step_one(&s, &[], RuleName::Fork);
        assert_eq!(s2.threads.len(), 2);
        let child = s2.threads.keys().find(|t| **t != s2.main).copied().unwrap();
        assert_eq!(s2.threads[&child].mark, Mark::Runnable);
    }

    #[test]
    fn mvar_rules() {
        // newEmptyMVar >>= \m -> putMVar m 5 >>= \_ -> takeMVar m
        let prog = bind(
            new_empty_mvar(),
            lam(
                "m",
                bind(put_mvar(var("m"), int(5)), lam("_", take_mvar(var("m")))),
            ),
        );
        let s = singleton(prog);
        let s = step_one(&s, &[], RuleName::NewMVar);
        let s = step_one(&s, &[], RuleName::Bind);
        let s = step_one(&s, &[], RuleName::Eval); // beta-reduce
        let s = step_one(&s, &[], RuleName::PutMVar);
        assert!(s.mvars.values().next().unwrap().is_some());
        let s = step_one(&s, &[], RuleName::Bind);
        let s = step_one(&s, &[], RuleName::Eval);
        let s = step_one(&s, &[], RuleName::TakeMVar);
        assert!(s.mvars.values().next().unwrap().is_none());
        let t = &s.threads[&s.main].term;
        assert_eq!(t.to_string(), "(return 5)");
    }

    #[test]
    fn take_on_empty_sticks() {
        let prog = bind(new_empty_mvar(), lam("m", take_mvar(var("m"))));
        let s = singleton(prog);
        let s = step_one(&s, &[], RuleName::NewMVar);
        let s = step_one(&s, &[], RuleName::Bind);
        let s = step_one(&s, &[], RuleName::Eval);
        assert_eq!(rules_of(&s, &[]), vec![RuleName::StuckTakeMVar]);
        let s = step_one(&s, &[], RuleName::StuckTakeMVar);
        assert_eq!(s.threads[&s.main].mark, Mark::Stuck);
        // A stuck thread with a full... no help coming: no transitions.
        assert!(rules_of(&s, &[]).is_empty());
    }

    #[test]
    fn throwto_spawns_inflight() {
        let s = singleton(throw_to(tid(TidName(0)), exc("E")));
        let ts = enabled_transitions(&s, &[], &RuleConfig::default());
        let tt: Vec<_> = ts.iter().filter(|t| t.rule == RuleName::ThrowTo).collect();
        assert_eq!(tt.len(), 1);
        assert_eq!(tt[0].soup.inflight.len(), 1);
    }

    #[test]
    fn receive_only_in_unblocked_context() {
        // Masked thread: the in-flight exception cannot be received.
        let mut s = singleton(block(ret(int(1))));
        s.add_inflight(TidName(0), Exc::new("E"));
        let rules = rules_of(&s, &[]);
        assert!(!rules.contains(&RuleName::Receive), "got {rules:?}");
        // Unmasked: it can.
        let mut s2 = singleton(unblock(ret(int(1))));
        s2.add_inflight(TidName(0), Exc::new("E"));
        let rules2 = rules_of(&s2, &[]);
        assert!(rules2.contains(&RuleName::Receive));
    }

    #[test]
    fn receive_replaces_redex_with_throw() {
        let mut s = singleton(put_char(ch('x')));
        s.add_inflight(TidName(0), Exc::new("E"));
        let ts = enabled_transitions(&s, &[], &RuleConfig::default());
        let rcv: Vec<_> = ts.iter().filter(|t| t.rule == RuleName::Receive).collect();
        assert_eq!(rcv.len(), 1);
        assert_eq!(rcv[0].soup.threads[&s.main].term.to_string(), "(throw E)");
        assert!(rcv[0].soup.inflight.is_empty());
    }

    #[test]
    fn interrupt_fires_even_in_blocked_context() {
        // block (takeMVar m) with m empty: thread sticks, then Interrupt
        // applies despite the block — §5.3's interruptible operation.
        let m = MVarName(0);
        let mut s = singleton(block(take_mvar(mvar(m))));
        s.mvars.insert(m, None);
        let s = step_one(&s, &[], RuleName::StuckTakeMVar);
        let mut s2 = s.clone();
        s2.add_inflight(TidName(0), Exc::kill_thread());
        let rules = rules_of(&s2, &[]);
        assert!(rules.contains(&RuleName::Interrupt), "got {rules:?}");
        let s3 = step_one(&s2, &[], RuleName::Interrupt);
        assert_eq!(s3.threads[&s3.main].mark, Mark::Runnable);
        assert_eq!(
            s3.threads[&s3.main].term.to_string(),
            "(block (throw KillThread))"
        );
    }

    #[test]
    fn blocked_runnable_thread_does_not_receive() {
        // block (putChar 'x'): with an exception in flight, only (PutChar)
        // can fire — the §5.2 guarantee.
        let mut s = singleton(block(put_char(ch('x'))));
        s.add_inflight(TidName(0), Exc::kill_thread());
        let rules = rules_of(&s, &[]);
        assert_eq!(rules, vec![RuleName::PutChar]);
    }

    #[test]
    fn block_and_unblock_return_rules() {
        let s = singleton(block(ret(int(1))));
        let s2 = step_one(&s, &[], RuleName::BlockReturn);
        assert_eq!(s2.threads[&s2.main].term.to_string(), "(return 1)");
        let s3 = singleton(unblock(throw(exc("E"))));
        let s4 = step_one(&s3, &[], RuleName::UnblockThrow);
        assert_eq!(s4.threads[&s4.main].term.to_string(), "(throw E)");
    }

    #[test]
    fn inflight_to_dead_thread_is_dropped() {
        // Fork a child that dies; then throw to it: the in-flight entry
        // normalizes away (throwTo to a dead thread trivially succeeds).
        let prog = bind(fork(ret(unit())), lam("t", throw_to(var("t"), exc("E"))));
        let s = singleton(prog);
        let s = step_one(&s, &[], RuleName::Fork);
        let s = step_one(&s, &[], RuleName::Bind);
        let s = step_one(&s, &[], RuleName::Eval);
        // Let the child die first.
        let child_dead = {
            let ts = enabled_transitions(&s, &[], &RuleConfig::default());
            ts.into_iter()
                .find(|t| t.rule == RuleName::ReturnGC)
                .expect("child can die")
                .soup
        };
        let ts = enabled_transitions(&child_dead, &[], &RuleConfig::default());
        let tt = ts
            .into_iter()
            .find(|t| t.rule == RuleName::ThrowTo)
            .expect("main can throw");
        assert!(tt.soup.inflight.is_empty(), "inflight to dead thread kept");
    }

    #[test]
    fn proc_gc_reaps_after_main_death() {
        let prog = bind(fork(sleep(int(100))), lam("_", ret(unit())));
        let s = singleton(prog);
        let s = step_one(&s, &[], RuleName::Fork);
        let s = step_one(&s, &[], RuleName::Bind);
        let s = step_one(&s, &[], RuleName::Eval);
        let ts = enabled_transitions(&s, &[], &RuleConfig::default());
        let dead = ts
            .into_iter()
            .find(|t| t.rule == RuleName::ReturnGC)
            .expect("main can finish");
        assert!(dead.soup.main_finished());
        assert!(dead.soup.threads.is_empty(), "(Proc GC) must reap children");
    }

    #[test]
    fn sleep_emits_time_label_and_can_stick() {
        let s = singleton(sleep(int(7)));
        let ts = enabled_transitions(&s, &[], &RuleConfig::default());
        let rules: Vec<_> = ts.iter().map(|t| t.rule).collect();
        assert!(rules.contains(&RuleName::Sleep));
        assert!(rules.contains(&RuleName::StuckSleep));
        let sl = ts.iter().find(|t| t.rule == RuleName::Sleep).unwrap();
        assert_eq!(sl.label, Label::Time(7));
        // A stuck sleeper can still be woken by the (Sleep) rule.
        let stuck = ts.iter().find(|t| t.rule == RuleName::StuckSleep).unwrap();
        let ts2 = enabled_transitions(&stuck.soup, &[], &RuleConfig::default());
        assert!(ts2.iter().any(|t| t.rule == RuleName::Sleep));
    }

    #[test]
    fn rule_names_render_like_the_paper() {
        assert_eq!(RuleName::BlockReturn.to_string(), "(Block Return)");
        assert_eq!(RuleName::StuckTakeMVar.to_string(), "(Stuck TakeMVar)");
        assert_eq!(RuleName::Handle.to_string(), "(Handle)");
    }
}
