//! The DFS engine shared by sequential and parallel exploration.
//!
//! [`worker_loop`] is the whole search, parameterized by a
//! [`Frontier`]: with one worker the frontier never reports
//! [`hungry`](Frontier::hungry), donation never happens, and the loop
//! is the classic sequential DFS (run, drain new branch points,
//! backtrack) — the `workers = 1` counters and certificates are
//! bit-identical to the historical single-threaded explorer. With many
//! workers, each runs this same loop on its own OS thread with its own
//! reset-and-reuse [`Runtime`], its own [`DriverState`], and fresh
//! `TestCase`s from the caller's factory; only plain-data
//! [`WorkItem`]s, counters and failure certificates cross threads.
//!
//! Work splitting donates the *shallowest* unexhausted branch point of
//! the current stack: its remaining alternatives are the biggest
//! subtrees the worker owns, which keeps donated items chunky and the
//! donation rate low (a worker donates at most once per executed run,
//! and only while some other worker is actually starving).

use std::cell::RefCell;
use std::rc::Rc;

use conch_runtime::stats::Stats;
use conch_runtime::value::FromValue;

use crate::driver::DriverState;
use crate::explorer::{Explorer, Reduction, Strategy, TestCase};
use crate::frontier::{dfs_key, Frontier, Node, WorkItem};

/// Balances every `next_item` with a `finish_item`, even if the worker
/// panics mid-item (a panicking worker also aborts the search so its
/// peers don't wait forever for donations that will never come; the
/// panic itself propagates through `std::thread::scope`).
pub(crate) struct ItemGuard<'a>(pub(crate) &'a Frontier);

impl Drop for ItemGuard<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.request_stop();
        }
        self.0.finish_item();
    }
}

/// Run one worker to completion: pull items, DFS each subtree, donate
/// when peers starve, stop on global caps or search end.
pub(crate) fn worker_loop<T, F>(explorer: &Explorer, frontier: &Frontier, mut factory: F)
where
    T: FromValue,
    F: FnMut() -> TestCase<T>,
{
    let config = explorer.config();
    // Under `Reduction::Off` sleep entries are simply never loaded into
    // the driver, so every alternative is enumerated — the unreduced
    // baseline the benchmarks measure reductions against.
    let use_sleep = config.strategy != Strategy::Exhaustive(Reduction::Off);
    // One runtime and one driver state per worker, reset between
    // schedules, so the per-schedule cost is interpretation, not
    // allocation. The `Rc` never leaves this thread.
    let mut rt = explorer.make_runtime();
    let state = Rc::new(RefCell::new(DriverState::new(
        Vec::new(),
        Vec::new(),
        config.preemption_bound,
        config.max_depth,
    )));
    let mut stack: Vec<Node> = Vec::new();
    let mut local_stats = Stats::default();
    let mut replay_ns = 0u64;

    while let Some(item) = frontier.next_item() {
        let _guard = ItemGuard(frontier);
        stack.clear();
        if let Some(node) = item.node.clone() {
            stack.push(node);
        }
        'dfs: loop {
            if frontier.is_stopped() {
                break 'dfs;
            }
            // Once some worker holds a failing run, subtrees strictly
            // DFS-later than it can't change the verdict: skip them.
            if frontier.has_failure() && frontier.prune_later(&prefix_key(&item, &stack)) {
                if backtrack(&mut stack) {
                    continue 'dfs;
                }
                break 'dfs;
            }
            load_script(&state, &item, &stack, use_sleep);
            let t0 = std::time::Instant::now();
            let (run, schedule) = explorer.run_once(&mut rt, factory(), &state);
            replay_ns += t0.elapsed().as_nanos() as u64;
            frontier.note_run(run.depth_hit, run.stats.steps, &schedule.choices);
            local_stats.merge(&run.stats);
            if let Err(message) = run.check_result {
                // Stop this item (everything left in it is DFS-later
                // than the failing run) but let the search drain: other
                // items may hold a DFS-earlier failure that should win.
                let key = dfs_key(&state.borrow().record);
                frontier.offer_failure(key, schedule, message);
                break 'dfs;
            }
            // Newly discovered branch points below the scripted prefix
            // become fresh DFS nodes. Draining (rather than taking) the
            // record keeps its buffer capacity for the next run.
            {
                let mut st = state.borrow_mut();
                let scripted = item.prefix.len() + stack.len();
                let mut pruned = 0;
                for point in st.record.drain(scripted..) {
                    pruned += point.sleeping.len();
                    stack.push(Node::from_point(point));
                }
                frontier.add_pruned(pruned);
            }
            if frontier.hungry() {
                donate(frontier, &item, &mut stack);
            }
            if !backtrack(&mut stack) {
                break 'dfs;
            }
            if frontier.explored() >= config.max_schedules {
                frontier.request_stop();
                break 'dfs;
            }
            if let Some(budget) = config.max_total_steps {
                if frontier.steps() >= budget {
                    frontier.request_stop();
                    break 'dfs;
                }
            }
        }
    }
    frontier.merge_stats(&local_stats);
    frontier.add_timing(replay_ns, 0);
}

/// Refill the driver's script and sleep entries for the schedule the
/// item prefix + stack currently denote.
fn load_script(state: &Rc<RefCell<DriverState>>, item: &WorkItem, stack: &[Node], use_sleep: bool) {
    let mut st = state.borrow_mut();
    st.reset();
    st.script.extend_from_slice(&item.prefix);
    if use_sleep {
        st.extra_sleep.extend_from_slice(&item.base_sleep);
    }
    let base = item.prefix.len();
    for (i, node) in stack.iter().enumerate() {
        st.script.push(node.choice());
        if use_sleep {
            node.each_explored(|entry| st.extra_sleep.push((base + i, entry)));
        }
    }
}

/// DFS key of the schedule prefix the stack currently denotes.
fn prefix_key(item: &WorkItem, stack: &[Node]) -> Vec<u32> {
    let mut key = item.base_key.clone();
    key.extend(stack.iter().map(Node::key_index));
    key
}

/// Advance the deepest advanceable node; `false` when the item's
/// subtree is exhausted.
fn backtrack(stack: &mut Vec<Node>) -> bool {
    loop {
        match stack.last_mut() {
            None => return false,
            Some(node) => {
                if node.advance() {
                    return true;
                }
                stack.pop();
            }
        }
    }
}

/// Split the shallowest unexhausted branch points of the stack into
/// [`WorkItem`]s covering their remaining alternatives, and seal them
/// locally. Each donated item carries the full replay context — prefix
/// choices, accumulated sleep entries, DFS key — so any worker can pick
/// it up cold. One pass donates up to one item per *currently starving*
/// thief, pushed as a single batch: every thief wakes to its own
/// multi-schedule chunk instead of the whole pool contending for one
/// split per executed run.
fn donate(frontier: &Frontier, item: &WorkItem, stack: &mut [Node]) {
    let want = frontier.starving().max(1);
    let mut batch: Vec<WorkItem> = Vec::new();
    for i in 0..stack.len() {
        if batch.len() >= want {
            break;
        }
        if stack[i].sealed {
            continue;
        }
        let mut remainder = stack[i].clone();
        if !remainder.advance() {
            continue;
        }
        let base = item.prefix.len();
        let mut prefix = item.prefix.clone();
        let mut base_sleep = item.base_sleep.clone();
        let mut base_key = item.base_key.clone();
        for (j, node) in stack[..i].iter().enumerate() {
            prefix.push(node.choice());
            node.each_explored(|entry| base_sleep.push((base + j, entry)));
            base_key.push(node.key_index());
        }
        batch.push(WorkItem {
            prefix,
            base_sleep,
            base_key,
            node: Some(remainder),
        });
        stack[i].sealed = true;
    }
    frontier.push_batch(batch);
}
