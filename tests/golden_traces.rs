//! Golden-trace corpus: byte-exact determinism pins for the runtime and
//! the schedule explorer.
//!
//! Every value asserted here was captured from the runtime *before* the
//! hot-path optimisations (scratch-buffer scheduling decisions, cached
//! footprints, run-queue tombstoning, thread-slot reclamation) landed.
//! The optimisations must not change a single observable byte: rendered
//! traces, console output, step counts, schedule-space sizes and shrunk
//! failure certificates are all pinned exactly. If any assertion in this
//! file fires, a perf change has altered observable scheduling
//! behaviour — that is a semantics regression, not a test to update
//! casually.
//!
//! To regenerate after an *intentional* semantics change:
//!
//! ```text
//! cargo test --test golden_traces -- --ignored --nocapture print_golden_values
//! ```

use conch_combinators::timeout;
use conch_explore::{ExploreConfig, Explorer, RunOutcome, TestCase};
use conch_runtime::prelude::*;
use conch_runtime::trace::render_trace;

// ---------------------------------------------------------------------
// Corpus programs
// ---------------------------------------------------------------------

/// G1: masked fork + async kill + MVar hand-off under round-robin.
fn g1_program() -> Io<i64> {
    Io::new_empty_mvar::<i64>().and_then(|m| {
        let child = Io::<()>::unblock(Io::put_char('x').then(m.put(1)).map(|_| ()));
        Io::<ThreadId>::block(Io::fork(child)).and_then(move |c| {
            Io::put_char('y')
                .then(Io::sleep(5))
                .then(Io::throw_to(c, Exception::kill_thread()))
                .then(m.take())
        })
    })
}

/// G2: console echo across two threads, with `getChar` blocking.
fn g2_program() -> Io<()> {
    Io::fork(Io::get_char().and_then(Io::put_char))
        .then(Io::sleep(3))
        .then(Io::get_char())
        .and_then(Io::put_char)
        .then(Io::put_char('!'))
}

/// G3: a three-way counter race, scheduled by the seeded RNG.
fn g3_program() -> Io<i64> {
    Io::new_mvar(0_i64).and_then(|m| {
        let bump = move || m.take().and_then(move |n| m.put(n + 1));
        Io::fork(bump().then(bump()))
            .then(Io::fork(bump()))
            .then(Io::sleep(1_000))
            .then(m.take())
    })
}

/// G6: httpd-style churn — a sequential loop of expiring timeouts, each
/// killing a sleeper mid-sleep (the stale-sleeper-entry stress case).
fn g6_program(n: u64) -> Io<()> {
    if n == 0 {
        Io::unit()
    } else {
        timeout(5, Io::sleep(50)).and_then(move |_| g6_program(n - 1))
    }
}

/// The explorer race used for the certificate goldens (G4).
fn g4_program() -> Io<()> {
    Io::fork(Io::put_char('b'))
        .then(Io::put_char('a'))
        .then(Io::sleep(1))
}

/// The three-thread workload whose full schedule space is pinned (G5):
/// two MVar writers racing a reader, plus an async kill. This is the
/// same shape as the `schedules` bench workload.
fn g5_program() -> Io<i64> {
    Io::new_empty_mvar::<i64>().and_then(|m| {
        Io::fork(m.put(1))
            .then(Io::fork(m.put(2)))
            .and_then(move |t2| {
                Io::throw_to(t2, Exception::kill_thread())
                    .then(m.take())
                    .catch(|_| Io::pure(-1))
            })
    })
}

// ---------------------------------------------------------------------
// Capture helpers
// ---------------------------------------------------------------------

struct RunGolden {
    trace: String,
    output: String,
    steps: u64,
    context_switches: u64,
    clock: u64,
}

fn run_golden<T: FromValue>(config: RuntimeConfig, input: &str, program: Io<T>) -> RunGolden {
    let mut rt = Runtime::with_config(config);
    rt.feed_input(input);
    rt.run(program).expect("golden corpus program must succeed");
    RunGolden {
        trace: render_trace(rt.io_trace()),
        output: rt.output().to_owned(),
        steps: rt.stats().steps,
        context_switches: rt.stats().context_switches,
        clock: rt.clock(),
    }
}

fn g1_golden() -> RunGolden {
    run_golden(
        RuntimeConfig::new().record_sched_events(true),
        "",
        g1_program(),
    )
}

fn g2_golden() -> RunGolden {
    run_golden(
        RuntimeConfig::new().record_sched_events(true),
        "hi",
        g2_program(),
    )
}

fn g3_golden() -> RunGolden {
    run_golden(
        RuntimeConfig::new()
            .random_scheduling(42)
            .record_sched_events(true),
        "",
        g3_program(),
    )
}

fn g6_golden() -> RunGolden {
    run_golden(RuntimeConfig::new(), "", g6_program(40))
}

/// G4: find the race, shrink it, and report the certificate.
fn g4_golden() -> (String, String, usize, usize, bool) {
    let result = Explorer::new().check(|| {
        TestCase::new(g4_program(), |out: &RunOutcome<()>| {
            if out.output == "ba" {
                Err("child won the race".into())
            } else {
                Ok(())
            }
        })
    });
    let failure = result.expect_fail();
    (
        failure.schedule.to_string(),
        failure.message.clone(),
        failure.report.explored,
        failure.report.shrink_runs,
        failure.report.complete,
    )
}

/// G4b: the same race with the property inverted, so the first explored
/// schedule passes and the certificate is a non-empty choice list.
fn g4b_golden() -> (String, String, usize, usize) {
    let result = Explorer::new().check(|| {
        TestCase::new(g4_program(), |out: &RunOutcome<()>| {
            if out.output == "ab" {
                Err("main won the race".into())
            } else {
                Ok(())
            }
        })
    });
    let failure = result.expect_fail();
    (
        failure.schedule.to_string(),
        failure.original.to_string(),
        failure.report.explored,
        failure.report.shrink_runs,
    )
}

/// G5: the full (unbounded) schedule space of the three-thread workload.
fn g5_golden() -> (usize, usize, usize, bool) {
    let result = Explorer::with_config(ExploreConfig {
        max_schedules: 100_000,
        ..ExploreConfig::default()
    })
    .check(|| {
        TestCase::new(g5_program(), |out: &RunOutcome<i64>| match out.result {
            Ok(_) => Ok(()),
            Err(ref e) => Err(e.to_string()),
        })
    });
    let report = result.expect_pass();
    (
        report.explored,
        report.pruned,
        report.truncated,
        report.complete,
    )
}

// ---------------------------------------------------------------------
// The pinned goldens
// ---------------------------------------------------------------------

const G1_TRACE: &str = "[t0#b][t0+t1][t1#u]!x!y[t0*sleep]$5[t0^t1]";
const G1_OUTPUT: &str = "xy";
const G1_STEPS: u64 = 29;
const G1_SWITCHES: u64 = 3;

const G2_TRACE: &str = "[t0+t1][t0*sleep]?h!h$3?i!i!!";
const G2_OUTPUT: &str = "hi!";
const G2_STEPS: u64 = 19;

const G3_TRACE: &str = "[t0+t1][t0+t2][t0*sleep]$1000";
const G3_STEPS: u64 = 30;
const G3_SWITCHES: u64 = 4;

const G4_SCHEDULE: &str = "";
const G4_MESSAGE: &str = "child won the race";
const G4_EXPLORED: usize = 1;
const G4_SHRINK_RUNS: usize = 1;

const G4B_SCHEDULE: &str = "t0";
const G4B_ORIGINAL: &str = "t0.t1.t0";
const G4B_EXPLORED: usize = 4;
const G4B_SHRINK_RUNS: usize = 3;

const G5_EXPLORED: usize = 448;
const G5_PRUNED: usize = 8;

const G6_TRACE: &str =
    "$5$5$5$5$5$5$5$5$5$5$5$5$5$5$5$5$5$5$5$5$5$5$5$5$5$5$5$5$5$5$5$5$5$5$5$5$5$5$5$5";
const G6_STEPS: u64 = 1842;
const G6_CLOCK: u64 = 200;

#[test]
fn g1_round_robin_masked_kill_is_byte_identical() {
    let g = g1_golden();
    assert_eq!(g.trace, G1_TRACE);
    assert_eq!(g.output, G1_OUTPUT);
    assert_eq!(g.steps, G1_STEPS);
    assert_eq!(g.context_switches, G1_SWITCHES);
}

#[test]
fn g2_console_echo_is_byte_identical() {
    let g = g2_golden();
    assert_eq!(g.trace, G2_TRACE);
    assert_eq!(g.output, G2_OUTPUT);
    assert_eq!(g.steps, G2_STEPS);
}

#[test]
fn g3_seeded_random_schedule_is_byte_identical() {
    let g = g3_golden();
    assert_eq!(g.trace, G3_TRACE);
    assert_eq!(g.steps, G3_STEPS);
    assert_eq!(g.context_switches, G3_SWITCHES);
}

#[test]
fn g4_shrunk_explorer_certificate_is_byte_identical() {
    let (schedule, message, explored, shrink_runs, complete) = g4_golden();
    assert_eq!(schedule, G4_SCHEDULE);
    assert_eq!(message, G4_MESSAGE);
    assert_eq!(explored, G4_EXPLORED);
    assert_eq!(shrink_runs, G4_SHRINK_RUNS);
    assert!(!complete, "a failure stops exploration early");
    // The certificate replays to the same failing outcome.
    let schedule: conch_explore::Schedule = schedule.parse().expect("certificate parses");
    let (outcome, _) = Explorer::new().replay(
        TestCase::new(g4_program(), |_: &RunOutcome<()>| Ok(())),
        &schedule,
    );
    assert_eq!(outcome.output, "ba");
}

#[test]
fn g4b_nonempty_certificate_is_byte_identical() {
    let (schedule, original, explored, shrink_runs) = g4b_golden();
    assert_eq!(schedule, G4B_SCHEDULE);
    assert_eq!(original, G4B_ORIGINAL);
    assert_eq!(explored, G4B_EXPLORED);
    assert_eq!(shrink_runs, G4B_SHRINK_RUNS);
    // The certificate replays to the same failing outcome.
    let schedule: conch_explore::Schedule = schedule.parse().expect("certificate parses");
    let (outcome, _) = Explorer::new().replay(
        TestCase::new(g4_program(), |_: &RunOutcome<()>| Ok(())),
        &schedule,
    );
    assert_eq!(outcome.output, "ab");
}

#[test]
fn g5_schedule_space_is_exactly_reproduced() {
    let (explored, pruned, truncated, complete) = g5_golden();
    assert_eq!(explored, G5_EXPLORED);
    assert_eq!(pruned, G5_PRUNED);
    assert_eq!(truncated, 0);
    assert!(complete);
}

#[test]
fn g6_timeout_churn_is_byte_identical() {
    let g = g6_golden();
    assert_eq!(g.trace, G6_TRACE);
    assert_eq!(g.steps, G6_STEPS);
    assert_eq!(g.clock, G6_CLOCK);
}

/// Prints the current values of every golden in paste-ready form.
#[test]
#[ignore = "generator: run with --ignored --nocapture to re-capture"]
fn print_golden_values() {
    let g1 = g1_golden();
    let g2 = g2_golden();
    let g3 = g3_golden();
    let (g4s, g4m, g4e, g4sr, _) = g4_golden();
    let (g4bs, g4bo, g4be, g4bsr) = g4b_golden();
    let (g5e, g5p, _, _) = g5_golden();
    let g6 = g6_golden();
    println!("const G1_TRACE: &str = {:?};", g1.trace);
    println!("const G1_OUTPUT: &str = {:?};", g1.output);
    println!("const G1_STEPS: u64 = {};", g1.steps);
    println!("const G1_SWITCHES: u64 = {};", g1.context_switches);
    println!();
    println!("const G2_TRACE: &str = {:?};", g2.trace);
    println!("const G2_OUTPUT: &str = {:?};", g2.output);
    println!("const G2_STEPS: u64 = {};", g2.steps);
    println!();
    println!("const G3_TRACE: &str = {:?};", g3.trace);
    println!("const G3_STEPS: u64 = {};", g3.steps);
    println!("const G3_SWITCHES: u64 = {};", g3.context_switches);
    println!();
    println!("const G4_SCHEDULE: &str = {g4s:?};");
    println!("const G4_MESSAGE: &str = {g4m:?};");
    println!("const G4_EXPLORED: usize = {g4e};");
    println!("const G4_SHRINK_RUNS: usize = {g4sr};");
    println!();
    println!("const G4B_SCHEDULE: &str = {g4bs:?};");
    println!("const G4B_ORIGINAL: &str = {g4bo:?};");
    println!("const G4B_EXPLORED: usize = {g4be};");
    println!("const G4B_SHRINK_RUNS: usize = {g4bsr};");
    println!();
    println!("const G5_EXPLORED: usize = {g5e};");
    println!("const G5_PRUNED: usize = {g5p};");
    println!();
    println!("const G6_TRACE: &str = {:?};", g6.trace);
    println!("const G6_STEPS: u64 = {};", g6.steps);
    println!("const G6_CLOCK: u64 = {};", g6.clock);
}
