//! The bounded schedule explorer: DFS over scheduling and delivery
//! choices, with sleep-set pruning, preemption bounding, replay and
//! greedy schedule shrinking.

use std::cell::RefCell;
use std::rc::Rc;

use conch_runtime::config::RuntimeConfig;
use conch_runtime::error::RunError;
use conch_runtime::io::Io;
use conch_runtime::scheduler::Runtime;
use conch_runtime::stats::Stats;
use conch_runtime::trace::IoEvent;
use conch_runtime::value::FromValue;

use crate::dpor::dpor_round_loop;
use crate::driver::{DriverState, ScriptedDecider};
use crate::frontier::Frontier;
use crate::pool::worker_loop;
use crate::sample::{sample_loop, SamplePlan};
use crate::schedule::Schedule;

/// Which schedule-space reduction the explorer applies.
///
/// All three modes explore the same *behaviours* (every reachable
/// outcome of every program, at the configured bounds); they differ
/// only in how many redundant interleavings they execute to get there.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Reduction {
    /// No pruning: enumerate every interleaving at the bounds. The
    /// baseline reductions are measured against.
    Off,
    /// Sleep sets plus invisible-move fast-forwarding — the historical
    /// default.
    #[default]
    SleepSets,
    /// Dynamic partial-order reduction: vector-clock happens-before
    /// race detection over each executed run, with backtrack flags
    /// installed only where a race proves the reversal matters (see
    /// [`crate::dpor`]). Typically explores far fewer schedules than
    /// sleep sets on programs with many independent threads.
    Dpor,
}

/// How the explorer picks the schedules it executes.
///
/// The exhaustive strategies *enumerate* the bounded schedule space
/// (with a [`Reduction`] deciding how many redundant interleavings they
/// skip) and can certify `complete = true`. The sampling strategies
/// *draw* `max_schedules` schedules instead — the right tool once the
/// space stops being enumerable (the 3-stage pipeline leaves sleep sets
/// incomplete at 2M schedules; a production fault×schedule space never
/// finishes). A sampled run can only ever report `complete = false`,
/// but each sample carries a quantifiable bug-finding probability, and
/// any failure it finds yields the same replayable, shrinkable
/// certificate the exhaustive engines produce.
///
/// Every sampling strategy is fully seeded: the run set is a pure
/// function of the configuration, so reports are bit-identical for any
/// worker count and a failing seed reproduces forever.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Strategy {
    /// Enumerate the bounded space under the given reduction — the
    /// historical behaviour, and the default
    /// (`Exhaustive(Reduction::SleepSets)`).
    Exhaustive(Reduction),
    /// Probabilistic concurrency testing: random thread priorities at
    /// first sight plus `depth − 1` random priority-change points per
    /// run. A bug needing `d` ordering constraints is found with
    /// probability ≥ `1/(k·n^(d−1))` per sample (`k` threads, `n`
    /// scheduling decisions). `depth` ≥ 1; `depth = 1` is priority
    /// scheduling with no change points. See [`crate::sample`].
    Pct {
        /// PCT bug depth `d`: the number of ordering constraints the
        /// sampler can force per run (`d − 1` priority-change points).
        depth: usize,
        /// Base seed of the sample stream.
        seed: u64,
    },
    /// Uniform random walk: every unscripted choice drawn uniformly.
    /// The baseline sampling strategies are measured against — no
    /// probability guarantee, but maximally unopinionated.
    UniformRandom {
        /// Base seed of the sample stream.
        seed: u64,
    },
    /// Swarm testing: interleaved PCT streams, one per seed, each with
    /// its own depth derived from its seed (1..=4). Covers several bug
    /// depths in one budget — diversity of configurations, not just of
    /// seeds. `seeds` must be non-empty.
    Swarm {
        /// One PCT stream per entry; sample `i` belongs to stream
        /// `i % seeds.len()`.
        seeds: Vec<u64>,
    },
}

impl Default for Strategy {
    fn default() -> Self {
        Strategy::Exhaustive(Reduction::default())
    }
}

impl Strategy {
    /// `true` for the strategies that draw schedules instead of
    /// enumerating them (everything except [`Strategy::Exhaustive`]).
    pub fn is_sampling(&self) -> bool {
        !matches!(self, Strategy::Exhaustive(_))
    }
}

/// Everything observable about one driven execution.
#[derive(Debug)]
pub struct RunOutcome<T> {
    /// What `Runtime::run` returned.
    pub result: Result<T, RunError>,
    /// Everything the program printed.
    pub output: String,
    /// Step counters for the run.
    pub stats: Stats,
    /// The I/O (and, if enabled, scheduler) trace.
    pub trace: Vec<IoEvent>,
    /// The complete schedule of the run — replaying it reproduces this
    /// outcome exactly.
    pub schedule: Schedule,
}

/// A boxed property over one execution: `Err(reason)` fails the check.
pub type Property<T> = Box<dyn FnOnce(&RunOutcome<T>) -> Result<(), String>>;

/// A program plus the property its executions must satisfy.
///
/// `Io` values are consumed by running them, so [`Explorer::check`]
/// takes a *factory* that builds a fresh `TestCase` per explored
/// schedule.
pub struct TestCase<T> {
    /// The program to run.
    pub program: Io<T>,
    /// The property: `Err(reason)` fails the check for this schedule.
    pub check: Property<T>,
}

impl<T> TestCase<T> {
    /// Pair a program with a property.
    pub fn new(
        program: Io<T>,
        check: impl FnOnce(&RunOutcome<T>) -> Result<(), String> + 'static,
    ) -> Self {
        TestCase {
            program,
            check: Box::new(check),
        }
    }
}

/// Exploration limits and the base runtime configuration.
#[derive(Debug, Clone)]
pub struct ExploreConfig {
    /// Stop after this many schedules; under a sampling
    /// [`Strategy`], the number of samples to draw. 0 = unlimited is
    /// not supported (use a large number) and is rejected by
    /// [`Explorer::with_config`].
    pub max_schedules: usize,
    /// Maximum branch points per run; beyond it choices are forced to
    /// defaults and the run counts as truncated.
    pub max_depth: usize,
    /// CHESS-style bound on preemptive context switches per run
    /// (`None` = unbounded).
    pub preemption_bound: Option<usize>,
    /// Step budget per run; exceeding it counts as truncated, not as a
    /// property failure.
    pub step_budget: u64,
    /// Base runtime configuration. Scheduling is forced to
    /// [`SchedulingPolicy::External`](conch_runtime::config::SchedulingPolicy)
    /// and `max_steps` to `step_budget` regardless of what this says.
    pub runtime: RuntimeConfig,
    /// Cap on extra runs spent shrinking a failing schedule.
    pub max_shrink_runs: usize,
    /// Deterministic deadline: stop exploring (reporting
    /// `complete = false`) once the *total* interpreter steps across
    /// all explored schedules reach this budget. Unlike a wall-clock
    /// deadline, the same budget truncates at the same schedule on
    /// every machine. `None` = unbounded.
    pub max_total_steps: Option<u64>,
    /// How schedules are picked: exhaustive enumeration under a
    /// [`Reduction`], or seeded sampling (default
    /// `Exhaustive(Reduction::SleepSets)`).
    pub strategy: Strategy,
    /// Use the legacy full-recompute race analyzer instead of the
    /// incremental one (DPOR only). The two are bit-equivalent —
    /// `tests/dpor_equiv.rs` proves it over the corpus — and the flag
    /// exists so that proof stays executable; leave it `false`
    /// everywhere else.
    pub legacy_race_analysis: bool,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            max_schedules: 10_000,
            max_depth: 64,
            preemption_bound: None,
            step_budget: 20_000,
            runtime: RuntimeConfig::new(),
            max_shrink_runs: 512,
            max_total_steps: None,
            strategy: Strategy::default(),
            legacy_race_analysis: false,
        }
    }
}

/// Wall-clock telemetry for one exploration, split by phase: schedule
/// execution (`replay_seconds`) vs race analysis (`analysis_seconds`,
/// zero outside DPOR). Machine-dependent by nature, so it is excluded
/// from [`Report`] equality — the determinism contract covers the
/// counters, not the stopwatch.
#[derive(Debug, Clone, Copy, Default)]
pub struct Timing {
    /// Seconds spent executing schedules, summed across workers.
    pub replay_seconds: f64,
    /// Seconds spent in vector-clock race analysis, summed across
    /// workers.
    pub analysis_seconds: f64,
}

impl PartialEq for Timing {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}

impl Eq for Timing {}

/// What an exploration covered.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Report {
    /// Schedules actually executed.
    pub explored: usize,
    /// Alternatives skipped by the sleep-set rule (each would have
    /// re-reached an already-explored state).
    pub pruned: usize,
    /// Runs cut short by the depth or step budget.
    pub truncated: usize,
    /// Extra runs spent validating shrink candidates.
    pub shrink_runs: usize,
    /// Interpreter steps spent replaying shrink candidates. Counted
    /// against `max_total_steps` alongside `steps`, so shrinking cannot
    /// burn budget past the deadline unaccounted.
    pub shrink_steps: u64,
    /// `true` iff shrinking stopped early because `max_total_steps` ran
    /// out mid-shrink: the certificate in the failure is the best found
    /// so far, not necessarily minimal.
    pub shrink_truncated: bool,
    /// Under a sampling [`Strategy`]: the index of the earliest failing
    /// sample (0-based), `None` on a pass or under exhaustive
    /// strategies. Deterministic for every worker count — workers drain
    /// the whole sample budget and the lowest index wins.
    pub first_failing_sample: Option<u64>,
    /// Total interpreter steps across all explored schedules — the
    /// deterministic cost measure `max_total_steps` budgets against.
    pub steps: u64,
    /// Runtime statistics merged (via
    /// [`Stats::merge`](conch_runtime::stats::Stats::merge)) over every
    /// explored schedule: counters add, high-water marks take the max.
    /// Covers exploration runs only, not shrink replays.
    pub stats: Stats,
    /// Total fault-arm choices taken across all explored schedules: the
    /// number of `Choice::Arm(k)` branch points with `k > 0` (arm 0 is
    /// the no-fault arm by convention). A sum over the explored run
    /// set, so bit-identical for every worker count.
    pub faults_injected: u64,
    /// `true` iff the DFS exhausted the (bounded) schedule space with no
    /// run truncated — i.e. the verification is complete at this bound.
    pub complete: bool,
    /// Wall-clock telemetry (replay vs analysis seconds). Always equal
    /// under `==`: timing is measurement, not coverage.
    pub timing: Timing,
}

impl Report {
    /// How many times fewer schedules this exploration executed than
    /// `baseline` — the same workload explored under a weaker (or no)
    /// reduction: `baseline.explored / self.explored`. Kept as a method
    /// rather than a field so `Report` stays `Eq` (bit-comparable
    /// across worker counts in the determinism tests).
    pub fn reduction_ratio(&self, baseline: &Report) -> f64 {
        if self.explored == 0 {
            1.0
        } else {
            baseline.explored as f64 / self.explored as f64
        }
    }
}

impl std::fmt::Display for Report {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "explored {} / pruned {} / truncated {} ({})",
            self.explored,
            self.pruned,
            self.truncated,
            if self.complete { "complete" } else { "partial" }
        )
    }
}

/// A property violation, with its replayable certificates.
#[derive(Debug, Clone)]
pub struct Failure {
    /// Why the property failed (on the minimal schedule).
    pub message: String,
    /// The minimal failing schedule found by shrinking.
    pub schedule: Schedule,
    /// The original (unshrunk) failing schedule.
    pub original: Schedule,
    /// Coverage up to (and including) the failing run.
    pub report: Report,
}

/// Result of [`Explorer::check`].
#[derive(Debug)]
pub enum CheckResult {
    /// Every explored schedule satisfied the property.
    Passed(Box<Report>),
    /// Some schedule violated the property.
    Failed(Box<Failure>),
}

impl CheckResult {
    /// The failure, if any.
    pub fn failure(&self) -> Option<&Failure> {
        match self {
            CheckResult::Passed(_) => None,
            CheckResult::Failed(f) => Some(f),
        }
    }

    /// The coverage report (of the pass, or up to the failure).
    pub fn report(&self) -> &Report {
        match self {
            CheckResult::Passed(r) => r,
            CheckResult::Failed(f) => &f.report,
        }
    }

    /// Panic with the failure message unless the check passed.
    pub fn expect_pass(&self) -> &Report {
        match self {
            CheckResult::Passed(r) => r,
            CheckResult::Failed(f) => panic!(
                "property failed: {} (schedule {}, {})",
                f.message, f.schedule, f.report
            ),
        }
    }

    /// Panic unless the check failed; returns the failure.
    pub fn expect_fail(&self) -> &Failure {
        match self {
            CheckResult::Passed(r) => panic!("expected a property failure, but passed: {r}"),
            CheckResult::Failed(f) => f,
        }
    }
}

/// The worker count [`Explorer::check_parallel`] actually uses for a
/// request of `requested` workers on a host with `available` CPUs:
/// `0` asks for the host default, anything else is clamped to
/// `available` (oversubscription only adds contention — never
/// coverage, which is worker-count-independent).
pub fn effective_workers(requested: usize, available: usize) -> usize {
    let available = available.max(1);
    if requested == 0 {
        available
    } else {
        requested.min(available)
    }
}

/// The exploration engine. See the crate docs for the model.
#[derive(Debug, Clone, Default)]
pub struct Explorer {
    config: ExploreConfig,
}

pub(crate) struct RunRecord {
    pub(crate) depth_hit: bool,
    pub(crate) check_result: Result<(), String>,
    pub(crate) stats: Stats,
}

impl Explorer {
    /// An explorer with default bounds.
    pub fn new() -> Self {
        Explorer::with_config(ExploreConfig::default())
    }

    /// An explorer with explicit bounds.
    ///
    /// # Panics
    ///
    /// If the configuration is unusable — mirroring the runtime's
    /// `quantum >= 1` validation rather than exploring nothing and
    /// reporting `complete = true`:
    /// * `max_schedules == 0` (documented as unsupported);
    /// * `Strategy::Pct { depth: 0, .. }` (PCT needs at least one
    ///   priority level);
    /// * `Strategy::Swarm { seeds }` with no seeds (no stream to draw
    ///   from).
    pub fn with_config(config: ExploreConfig) -> Self {
        assert!(
            config.max_schedules >= 1,
            "ExploreConfig.max_schedules must be at least 1, got 0 \
             (a zero budget would explore nothing yet report complete)"
        );
        match &config.strategy {
            Strategy::Pct { depth, .. } => assert!(
                *depth >= 1,
                "Strategy::Pct.depth must be at least 1, got 0 \
                 (PCT needs at least one priority level per run)"
            ),
            Strategy::Swarm { seeds } => assert!(
                !seeds.is_empty(),
                "Strategy::Swarm.seeds must be non-empty \
                 (the swarm needs at least one stream to draw from)"
            ),
            Strategy::Exhaustive(_) | Strategy::UniformRandom { .. } => {}
        }
        Explorer { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &ExploreConfig {
        &self.config
    }

    /// Explore the schedule space of the program produced by `factory`,
    /// checking each execution's property. On failure the schedule is
    /// shrunk to a minimal failing certificate.
    pub fn check<T, F>(&self, mut factory: F) -> CheckResult
    where
        T: FromValue,
        F: FnMut() -> TestCase<T>,
    {
        // The single-worker instance of the shared engine: with one
        // worker the frontier never requests work splitting, so this is
        // the plain sequential search (same runs, in the same order,
        // with the same counters and certificates as ever).
        let frontier = Frontier::new(1);
        match &self.config.strategy {
            Strategy::Exhaustive(Reduction::Dpor) => loop {
                dpor_round_loop(self, &frontier, &mut factory);
                if frontier.is_stopped() || !frontier.dpor_apply_pending() {
                    break;
                }
                frontier.start_round();
            },
            Strategy::Exhaustive(Reduction::Off | Reduction::SleepSets) => {
                worker_loop(self, &frontier, &mut factory)
            }
            sampling => {
                let plan = SamplePlan::from_strategy(sampling)
                    .expect("non-exhaustive strategies always have a plan");
                sample_loop(self, &frontier, &mut factory, &plan);
            }
        }
        self.finalize(&frontier, &mut factory)
    }

    /// [`Explorer::check`] fanned out over OS threads with prefix-based
    /// work stealing (see `DESIGN.md`). `workers = 0` means
    /// [`std::thread::available_parallelism`]; `workers = 1` is exactly
    /// [`Explorer::check`]. A request *above* the machine's available
    /// parallelism is clamped down to it — oversubscribed workers only
    /// contend for the same cores and slow the search (0.85x at 8
    /// workers on 1 CPU, per BENCH_explore.json before the clamp).
    /// Counters and certificates are worker-count-independent, so the
    /// clamp never changes a result; use
    /// [`check_parallel_exact`](Explorer::check_parallel_exact) to
    /// force a genuine thread count (the determinism tests do, to
    /// actually exercise cross-thread interleavings on small hosts).
    ///
    /// Each worker owns its own [`Runtime`] and driver and builds fresh
    /// `TestCase`s from `factory` (which is why, unlike `check`, the
    /// factory must be `Fn + Sync`) — programs and runtimes never cross
    /// threads; only plain-data schedule prefixes, counters and failure
    /// certificates do.
    ///
    /// # Determinism
    ///
    /// On a pass, `explored`/`pruned`/`truncated`/`steps`/`complete`
    /// are bit-identical for every worker count, because the work items
    /// partition the schedule space and the branch points of a run
    /// depend only on its own path. On a failure, the shrunk and
    /// original certificates and the message are bit-identical too (the
    /// DFS-earliest failing run wins, which is the run sequential
    /// search fails on); only the coverage counters in the failure's
    /// `report` may exceed the sequential ones, since other workers
    /// keep exploring DFS-earlier subtrees while the candidate stands.
    /// Likewise, when a global cap (`max_schedules`/`max_total_steps`)
    /// binds mid-search, in-flight runs may overshoot it; whenever the
    /// search completes within its caps the counts are exact.
    pub fn check_parallel<T, F>(&self, workers: usize, factory: F) -> CheckResult
    where
        T: FromValue,
        F: Fn() -> TestCase<T> + Sync,
    {
        let available = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        self.check_parallel_exact(effective_workers(workers, available), factory)
    }

    /// [`Explorer::check_parallel`] without the available-parallelism
    /// clamp: spawn exactly `workers` threads (`0` still means
    /// [`std::thread::available_parallelism`]). The explicit override
    /// for callers that need a genuine thread count regardless of the
    /// host — the w1==w4 determinism tests, chiefly.
    pub fn check_parallel_exact<T, F>(&self, workers: usize, factory: F) -> CheckResult
    where
        T: FromValue,
        F: Fn() -> TestCase<T> + Sync,
    {
        let workers = if workers == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            workers
        };
        if workers == 1 {
            return self.check(&factory);
        }
        let frontier = Frontier::new(workers);
        match &self.config.strategy {
            Strategy::Exhaustive(Reduction::Dpor) => loop {
                // One scope per round: the round barrier needs every
                // worker drained before the backtrack sets may change.
                std::thread::scope(|s| {
                    for _ in 0..workers {
                        let frontier = &frontier;
                        let factory = &factory;
                        s.spawn(move || dpor_round_loop(self, frontier, factory));
                    }
                });
                if frontier.is_stopped() || !frontier.dpor_apply_pending() {
                    break;
                }
                frontier.start_round();
            },
            Strategy::Exhaustive(Reduction::Off | Reduction::SleepSets) => {
                std::thread::scope(|s| {
                    for _ in 0..workers {
                        let frontier = &frontier;
                        let factory = &factory;
                        s.spawn(move || worker_loop(self, frontier, factory));
                    }
                });
            }
            sampling => {
                // Workers claim sample indices from the frontier's
                // shared counter; each sample's behaviour is a pure
                // function of (strategy, index), so the partition of
                // indices across workers cannot change the run set.
                let plan = SamplePlan::from_strategy(sampling)
                    .expect("non-exhaustive strategies always have a plan");
                std::thread::scope(|s| {
                    for _ in 0..workers {
                        let frontier = &frontier;
                        let factory = &factory;
                        let plan = &plan;
                        s.spawn(move || sample_loop(self, frontier, factory, plan));
                    }
                });
            }
        }
        self.finalize(&frontier, &mut || factory())
    }

    /// Turn a finished frontier into a [`CheckResult`], shrinking the
    /// surviving failure candidate if there is one.
    fn finalize<T, F>(&self, frontier: &Frontier, factory: &mut F) -> CheckResult
    where
        T: FromValue,
        F: FnMut() -> TestCase<T>,
    {
        let sampling = self.config.strategy.is_sampling();
        let mut report = Report {
            explored: frontier.explored(),
            pruned: frontier.pruned(),
            truncated: frontier.truncated(),
            shrink_runs: 0,
            shrink_steps: 0,
            shrink_truncated: false,
            first_failing_sample: None,
            steps: frontier.steps(),
            stats: frontier.total_stats(),
            faults_injected: frontier.faults(),
            complete: false,
            timing: {
                let (replay_seconds, analysis_seconds) = frontier.timing();
                Timing {
                    replay_seconds,
                    analysis_seconds,
                }
            },
        };
        if sampling {
            // Distinctness is read off the shared hash set, not summed
            // per worker — the same sampled schedule counted once.
            report.stats.distinct_schedules = frontier.distinct_schedules() as u64;
        }
        if self.config.strategy == Strategy::Exhaustive(Reduction::Dpor) {
            // Under DPOR "pruned" is read off the final run trie (the
            // alternatives no registered run took) and the backtrack
            // count is the total size of the final backtrack sets —
            // both deterministic functions of the fixpoint.
            report.pruned = frontier.dpor_pruned();
            report.stats.backtracks_installed = frontier.dpor_backtracks();
        }
        if let Some(candidate) = frontier.take_failure() {
            if sampling {
                // The sampler's failure key is the sample index split
                // into two big-endian u32 limbs (see crate::sample).
                report.first_failing_sample =
                    Some(((candidate.key[0] as u64) << 32) | candidate.key[1] as u64);
            }
            let mut rt = self.make_runtime();
            let original = candidate.schedule;
            let (schedule, message) = self.shrink(
                &mut rt,
                factory,
                original.clone(),
                candidate.message,
                &mut report,
            );
            return CheckResult::Failed(Box::new(Failure {
                message,
                schedule,
                original,
                report,
            }));
        }
        // A sampled pass never certifies the space: samples are draws,
        // not an enumeration.
        report.complete = !sampling && !frontier.is_stopped() && report.truncated == 0;
        CheckResult::Passed(Box::new(report))
    }

    /// Replay a schedule byte-for-byte in a fresh `Runtime` and apply the
    /// case's property. Choices past the end of the schedule (or that no
    /// longer fit, after shrinking spliced the list) fall back to
    /// deterministic defaults.
    pub fn replay<T: FromValue>(
        &self,
        case: TestCase<T>,
        schedule: &Schedule,
    ) -> (RunOutcome<T>, Result<(), String>) {
        let mut rt = self.make_runtime();
        self.replay_in(&mut rt, case, schedule)
    }

    /// [`Explorer::replay`] against a caller-provided (reused) runtime.
    fn replay_in<T: FromValue>(
        &self,
        rt: &mut Runtime,
        case: TestCase<T>,
        schedule: &Schedule,
    ) -> (RunOutcome<T>, Result<(), String>) {
        let state = Rc::new(RefCell::new(DriverState::new(
            schedule.choices.clone(),
            Vec::new(),
            self.config.preemption_bound,
            self.config.max_depth,
        )));
        let outcome = self.drive(rt, case.program, &state);
        let check_result = (case.check)(&outcome);
        (outcome, check_result)
    }

    /// One driven execution with the script already loaded into `state`.
    pub(crate) fn run_once<T: FromValue>(
        &self,
        rt: &mut Runtime,
        case: TestCase<T>,
        state: &Rc<RefCell<DriverState>>,
    ) -> (RunRecord, Schedule) {
        let outcome = self.drive(rt, case.program, state);
        let check_result = (case.check)(&outcome);
        let truncated_by_steps = matches!(outcome.result, Err(RunError::StepLimitExceeded { .. }));
        let schedule = outcome.schedule;
        let depth_hit = state.borrow().depth_hit || truncated_by_steps;
        (
            RunRecord {
                depth_hit,
                check_result,
                stats: outcome.stats,
            },
            schedule,
        )
    }

    /// A runtime configured for driven exploration.
    pub(crate) fn make_runtime(&self) -> Runtime {
        let config = self
            .config
            .runtime
            .clone()
            .external_scheduling()
            .max_steps(self.config.step_budget);
        Runtime::with_config(config)
    }

    /// Run `program` on `rt` (reset to pristine) under the scripted
    /// decider. The decider is removed again before returning, so the
    /// caller holds the only strong reference to `state` afterwards.
    fn drive<T: FromValue>(
        &self,
        rt: &mut Runtime,
        program: Io<T>,
        state: &Rc<RefCell<DriverState>>,
    ) -> RunOutcome<T> {
        rt.reset();
        rt.set_decider(Box::new(ScriptedDecider(Rc::clone(state))));
        let result = rt.run(program);
        rt.clear_decider();
        let schedule = Schedule::from(
            state
                .borrow()
                .record
                .iter()
                .map(|p| p.chosen)
                .collect::<Vec<_>>(),
        );
        RunOutcome {
            result,
            output: rt.output().to_owned(),
            stats: rt.stats().clone(),
            trace: rt.io_trace().to_vec(),
            schedule,
        }
    }

    /// Greedily shrink a failing schedule: first the shortest failing
    /// prefix, then repeated single-choice deletion, each candidate
    /// validated by a full replay.
    fn shrink<T, F>(
        &self,
        rt: &mut Runtime,
        factory: &mut F,
        original: Schedule,
        original_message: String,
        report: &mut Report,
    ) -> (Schedule, String)
    where
        T: FromValue,
        F: FnMut() -> TestCase<T>,
    {
        let mut best = original;
        let mut best_message = original_message;
        let budget = self.config.max_shrink_runs;
        // Shrink replays burn interpreter steps too; they are checked
        // against the same deterministic deadline exploration was, at
        // the same point of every candidate loop, so the truncation
        // point is the same on every machine and the report says so.
        let out_of_steps = |report: &Report| match self.config.max_total_steps {
            Some(deadline) => report.steps + report.shrink_steps >= deadline,
            None => false,
        };

        let mut fails =
            |rt: &mut Runtime, sched: &Schedule, report: &mut Report| -> Option<String> {
                report.shrink_runs += 1;
                let (outcome, check) = self.replay_in(rt, factory(), sched);
                report.shrink_steps += outcome.stats.steps;
                check.err()
            };

        if out_of_steps(report) {
            report.shrink_truncated = true;
            return (best, best_message);
        }

        // Phase 1: shortest failing prefix.
        for len in 0..best.len() {
            if report.shrink_runs >= budget {
                return (best, best_message);
            }
            if out_of_steps(report) {
                report.shrink_truncated = true;
                return (best, best_message);
            }
            let prefix = Schedule::from(best.choices[..len].to_vec());
            if let Some(msg) = fails(rt, &prefix, report) {
                best = prefix;
                best_message = msg;
                break;
            }
        }

        // Phase 2: delete single choices until a fixpoint.
        loop {
            let mut improved = false;
            let mut i = 0;
            while i < best.len() {
                if report.shrink_runs >= budget {
                    return (best, best_message);
                }
                if out_of_steps(report) {
                    report.shrink_truncated = true;
                    return (best, best_message);
                }
                let mut candidate = best.clone();
                candidate.choices.remove(i);
                match fails(rt, &candidate, report) {
                    Some(msg) => {
                        best = candidate;
                        best_message = msg;
                        improved = true;
                    }
                    None => i += 1,
                }
            }
            if !improved {
                return (best, best_message);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use conch_runtime::exception::Exception;
    use std::collections::BTreeSet;

    /// fork (putChar 'b'); putChar 'a'; sleep 1 — the classic two-way
    /// output race.
    fn race_program() -> Io<()> {
        Io::fork(Io::put_char('b'))
            .then(Io::put_char('a'))
            .then(Io::sleep(1))
    }

    #[test]
    fn explores_both_orders_of_a_two_thread_race() {
        let seen = Rc::new(RefCell::new(BTreeSet::new()));
        let result = Explorer::new().check(|| {
            let seen = Rc::clone(&seen);
            TestCase::new(race_program(), move |out: &RunOutcome<()>| {
                seen.borrow_mut().insert(out.output.clone());
                Ok(())
            })
        });
        let report = result.expect_pass();
        assert!(report.complete, "small race should be fully explored");
        let seen = seen.borrow();
        assert!(seen.contains("ab") && seen.contains("ba"), "saw {seen:?}");
    }

    #[test]
    fn failing_schedule_replays_deterministically() {
        let explorer = Explorer::new();
        let result = explorer.check(|| {
            TestCase::new(race_program(), |out: &RunOutcome<()>| {
                if out.output == "ba" {
                    Err(format!("child won: {:?}", out.output))
                } else {
                    Ok(())
                }
            })
        });
        let failure = result.expect_fail();
        // The certificate replays to the same failing output in a brand
        // new Runtime — twice.
        for _ in 0..2 {
            let case = TestCase::new(race_program(), |out: &RunOutcome<()>| {
                if out.output == "ba" {
                    Err("child won".to_owned())
                } else {
                    Ok(())
                }
            });
            let (outcome, check) = explorer.replay(case, &failure.schedule);
            assert_eq!(outcome.output, "ba");
            assert!(check.is_err());
        }
        // And the serialized form round-trips.
        let parsed: Schedule = failure.schedule.to_string().parse().unwrap();
        assert_eq!(parsed, failure.schedule);
    }

    #[test]
    fn shrinking_minimizes_the_certificate() {
        let explorer = Explorer::new();
        let result = explorer.check(|| {
            TestCase::new(race_program(), |out: &RunOutcome<()>| {
                if out.output == "ba" {
                    Err("child won".to_owned())
                } else {
                    Ok(())
                }
            })
        });
        let failure = result.expect_fail();
        assert!(
            failure.schedule.len() <= failure.original.len(),
            "shrunk {} > original {}",
            failure.schedule,
            failure.original
        );
        // Every choice in the minimal schedule is necessary: deleting any
        // one of them makes the failure disappear.
        for i in 0..failure.schedule.len() {
            let mut cand = failure.schedule.clone();
            cand.choices.remove(i);
            let case = TestCase::new(race_program(), |out: &RunOutcome<()>| {
                if out.output == "ba" {
                    Err("child won".to_owned())
                } else {
                    Ok(())
                }
            });
            let (_, check) = explorer.replay(case, &cand);
            assert!(
                check.is_ok(),
                "choice {i} of {} is redundant",
                failure.schedule
            );
        }
    }

    #[test]
    fn delivery_points_are_both_explored() {
        // main masks, forks a child that throws back, then unmasks and
        // loops briefly: the exploration must cover both delivering at
        // the first opportunity and deferring.
        let outcomes = Rc::new(RefCell::new(BTreeSet::new()));
        let prog = || {
            Io::my_thread_id().and_then(|me| {
                Io::fork(Io::throw_to(me, Exception::kill_thread()))
                    .then(Io::put_char('x'))
                    .then(Io::put_char('y'))
                    .map(|_| 0i64)
                    .catch(|_| Io::pure(1i64))
            })
        };
        let result = Explorer::new().check(|| {
            let outcomes = Rc::clone(&outcomes);
            TestCase::new(prog(), move |out: &RunOutcome<i64>| {
                outcomes
                    .borrow_mut()
                    .insert((out.result.clone().ok(), out.output.clone()));
                Ok(())
            })
        });
        result.expect_pass();
        let outcomes = outcomes.borrow();
        // Depending on where the exception lands, the handler runs after
        // zero, one, or two characters (or the kill never lands before
        // the program finishes).
        assert!(outcomes.len() >= 2, "only saw {outcomes:?}");
    }

    #[test]
    fn sleep_sets_prune_independent_interleavings() {
        // Two children touching *different* MVars are independent; sleep
        // sets must skip at least one redundant interleaving.
        let prog = || {
            Io::new_empty_mvar::<i64>().and_then(|a| {
                Io::new_empty_mvar::<i64>().and_then(move |b| {
                    Io::fork(a.put(1))
                        .then(Io::fork(b.put(2)))
                        .then(a.take())
                        .and_then(move |x| b.take().map(move |y| x + y))
                })
            })
        };
        let result = Explorer::new().check(|| {
            TestCase::new(prog(), |out: &RunOutcome<i64>| match &out.result {
                Ok(3) => Ok(()),
                other => Err(format!("expected Ok(3), got {other:?}")),
            })
        });
        let report = result.expect_pass();
        assert!(report.complete);
        assert!(report.pruned > 0, "no pruning happened: {report}");
    }

    #[test]
    fn depth_budget_marks_runs_truncated() {
        let cfg = ExploreConfig {
            max_depth: 0,
            ..ExploreConfig::default()
        };
        let result = Explorer::with_config(cfg)
            .check(|| TestCase::new(race_program(), |_: &RunOutcome<()>| Ok(())));
        let report = result.expect_pass();
        assert!(report.truncated > 0);
        assert!(!report.complete);
    }

    #[test]
    fn schedule_cap_stops_exploration_incomplete() {
        let cfg = ExploreConfig {
            max_schedules: 1,
            ..ExploreConfig::default()
        };
        let result = Explorer::with_config(cfg)
            .check(|| TestCase::new(race_program(), |_: &RunOutcome<()>| Ok(())));
        let report = result.expect_pass();
        assert_eq!(report.explored, 1);
        assert!(!report.complete);
    }

    #[test]
    #[should_panic(expected = "max_schedules")]
    fn zero_schedule_budget_is_rejected_at_construction() {
        // Previously accepted silently: explored nothing, reported
        // complete = true. Mirrors the runtime's quantum >= 1 check.
        let _ = Explorer::with_config(ExploreConfig {
            max_schedules: 0,
            ..ExploreConfig::default()
        });
    }

    #[test]
    #[should_panic(expected = "depth")]
    fn zero_pct_depth_is_rejected_at_construction() {
        let _ = Explorer::with_config(ExploreConfig {
            strategy: Strategy::Pct { depth: 0, seed: 1 },
            ..ExploreConfig::default()
        });
    }

    #[test]
    #[should_panic(expected = "seeds")]
    fn empty_swarm_is_rejected_at_construction() {
        let _ = Explorer::with_config(ExploreConfig {
            strategy: Strategy::Swarm { seeds: vec![] },
            ..ExploreConfig::default()
        });
    }

    #[test]
    fn pct_sampling_finds_the_race_and_certifies_it() {
        let cfg = ExploreConfig {
            max_schedules: 64,
            strategy: Strategy::Pct {
                depth: 3,
                seed: 0xC0FFEE,
            },
            ..ExploreConfig::default()
        };
        let explorer = Explorer::with_config(cfg);
        let result = explorer.check(|| {
            TestCase::new(race_program(), |out: &RunOutcome<()>| {
                if out.output == "ba" {
                    Err("child won".to_owned())
                } else {
                    Ok(())
                }
            })
        });
        let failure = result.expect_fail();
        let sample = failure
            .report
            .first_failing_sample
            .expect("sampled failures carry their sample index");
        assert!(sample < 64, "index within the budget, got {sample}");
        // The sampled certificate is byte-compatible with the
        // exhaustive machinery: a default (exhaustive) explorer replays
        // both the original and the shrunk schedule to the failure.
        for schedule in [&failure.original, &failure.schedule] {
            let case = TestCase::new(race_program(), |out: &RunOutcome<()>| {
                if out.output == "ba" {
                    Err("child won".to_owned())
                } else {
                    Ok(())
                }
            });
            let (outcome, check) = Explorer::new().replay(case, schedule);
            assert_eq!(outcome.output, "ba");
            assert!(check.is_err());
        }
    }

    #[test]
    fn sampling_reports_draws_not_coverage() {
        for strategy in [
            Strategy::Pct { depth: 2, seed: 7 },
            Strategy::UniformRandom { seed: 7 },
            Strategy::Swarm {
                seeds: vec![1, 2, 3],
            },
        ] {
            let cfg = ExploreConfig {
                max_schedules: 32,
                strategy,
                ..ExploreConfig::default()
            };
            let result = Explorer::with_config(cfg)
                .check(|| TestCase::new(race_program(), |_: &RunOutcome<()>| Ok(())));
            let report = result.expect_pass();
            assert_eq!(report.explored, 32, "the sample budget is drained");
            assert_eq!(report.stats.sampled, 32);
            assert!(!report.complete, "samples are draws, not an enumeration");
            let distinct = report.stats.distinct_schedules;
            assert!(
                distinct >= 1 && distinct <= 32,
                "distinct_schedules out of range: {distinct}"
            );
            assert_eq!(report.pruned, 0, "sampling never prunes");
        }
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let check = |seed: u64| {
            let cfg = ExploreConfig {
                max_schedules: 48,
                strategy: Strategy::Pct { depth: 2, seed },
                ..ExploreConfig::default()
            };
            Explorer::with_config(cfg).check(|| {
                TestCase::new(race_program(), |out: &RunOutcome<()>| {
                    if out.output == "ba" {
                        Err("child won".to_owned())
                    } else {
                        Ok(())
                    }
                })
            })
        };
        let (a, b) = (check(11), check(11));
        let (fa, fb) = (a.expect_fail(), b.expect_fail());
        assert_eq!(fa.original, fb.original, "same seed, same failing run");
        assert_eq!(fa.schedule, fb.schedule);
        assert_eq!(fa.report, fb.report);
    }

    #[test]
    fn preemption_bound_zero_still_finds_non_preemptive_schedules() {
        let cfg = ExploreConfig {
            preemption_bound: Some(0),
            ..ExploreConfig::default()
        };
        let seen = Rc::new(RefCell::new(BTreeSet::new()));
        let result = Explorer::with_config(cfg).check(|| {
            let seen = Rc::clone(&seen);
            TestCase::new(race_program(), move |out: &RunOutcome<()>| {
                seen.borrow_mut().insert(out.output.clone());
                Ok(())
            })
        });
        result.expect_pass();
        // With zero preemptions the scheduler may still switch at blocking
        // points, so "ab" (main runs to its sleep, then child) survives.
        assert!(seen.borrow().contains("ab"), "saw {:?}", seen.borrow());
    }
}
