//! Counting semaphores built from `MVar`s (§4: "using only MVars, many
//! complex datatypes for concurrent communication can be built,
//! including typed channels, semaphores and so on").
//!
//! The representation is the classic Concurrent Haskell `QSem`: an
//! `MVar` holding `(available, wakeup-queue)` where the queue carries
//! one empty `MVar` per blocked waiter. `wait` and `signal` manipulate
//! the state with the §5.1-safe pattern, and the blocking `takeMVar` on
//! a waiter's wakeup cell is interruptible per §5.3 — so a thread
//! blocked on a semaphore can be timed out or killed without corrupting
//! the count, provided acquisitions are bracketed ([`Sem::with`]).

use conch_runtime::io::Io;
use conch_runtime::mvar::MVar;
use conch_runtime::value::{FromValue, IntoValue, Value};

use crate::locking::modify_mvar_with;

/// A counting semaphore.
///
/// # Examples
///
/// ```
/// use conch_runtime::prelude::*;
/// use conch_combinators::Sem;
///
/// let mut rt = Runtime::new();
/// let prog = Sem::new(2).and_then(|sem| {
///     sem.wait().then(sem.wait()).then(sem.try_wait())
/// });
/// // Two units acquired; the third attempt fails.
/// assert_eq!(rt.run(prog).unwrap(), false);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Sem {
    /// Pair(available: Int, waiters: List of MVar ids).
    state: MVar<Value>,
}

impl Sem {
    /// A semaphore with `units` initially available.
    ///
    /// # Panics
    ///
    /// Panics if `units` is negative.
    pub fn new(units: i64) -> Io<Sem> {
        assert!(units >= 0, "a semaphore cannot start in debt");
        Io::new_mvar::<Value>(Value::Pair(
            Box::new(Value::Int(units)),
            Box::new(Value::List(Vec::new())),
        ))
        .map(|state| Sem { state })
    }

    /// Acquires one unit, blocking while none are available.
    pub fn wait(&self) -> Io<()> {
        let state = self.state;
        // Phase 1 (atomic via the state MVar): either take a unit, or
        // enqueue a fresh wakeup cell.
        modify_mvar_with(state, move |st: Value| {
            let (avail, mut waiters) = split(st);
            if avail > 0 {
                Io::pure((join(avail - 1, waiters), Value::Nothing))
            } else {
                Io::new_empty_mvar::<Value>().map(move |cell| {
                    waiters.push(Value::MVar(cell.id()));
                    (
                        join(0, waiters),
                        Value::Just(Box::new(Value::MVar(cell.id()))),
                    )
                })
            }
        })
        .and_then(move |ticket: Value| match ticket {
            Value::Nothing => Io::unit(),
            Value::Just(cell) => {
                // Phase 2: block (interruptibly) until signalled.
                let cell: MVar<Value> =
                    MVar::from_id(cell.as_mvar_id().expect("ticket is an mvar"));
                cell.take().map(|_| ())
            }
            other => panic!("malformed semaphore ticket: {other}"),
        })
    }

    /// Releases one unit, waking the longest-waiting blocked thread.
    ///
    /// Never blocks; safe to call from exception handlers and
    /// finalizers (the state `MVar` is only ever held momentarily).
    pub fn signal(&self) -> Io<()> {
        let state = self.state;
        modify_mvar_with(state, move |st: Value| {
            let (avail, mut waiters) = split(st);
            if waiters.is_empty() {
                Io::pure((join(avail + 1, waiters), Value::Nothing))
            } else {
                let cell = waiters.remove(0);
                Io::pure((join(avail, waiters), Value::Just(Box::new(cell))))
            }
        })
        .and_then(|woken: Value| match woken {
            Value::Nothing => Io::unit(),
            Value::Just(cell) => {
                let cell: MVar<Value> =
                    MVar::from_id(cell.as_mvar_id().expect("waiter is an mvar"));
                // The waiter's cell is empty by construction: this put is
                // non-interruptible (§5.3).
                cell.put(Value::Unit)
            }
            other => panic!("malformed semaphore wake: {other}"),
        })
    }

    /// Non-blocking acquire: `true` if a unit was taken.
    pub fn try_wait(&self) -> Io<bool> {
        modify_mvar_with(self.state, move |st: Value| {
            let (avail, waiters) = split(st);
            if avail > 0 {
                Io::pure((join(avail - 1, waiters), true))
            } else {
                Io::pure((join(avail, waiters), false))
            }
        })
    }

    /// The currently available units (momentary snapshot).
    pub fn available(&self) -> Io<i64> {
        crate::locking::with_mvar(self.state, |st: Value| {
            let (avail, _) = split(st);
            Io::pure(avail)
        })
    }

    /// Runs `body` holding one unit, releasing it on every exit path —
    /// `bracket`-style (§7.1), so an asynchronous exception cannot leak
    /// a unit.
    pub fn with<T, F>(&self, body: F) -> Io<T>
    where
        T: FromValue + IntoValue + 'static,
        F: FnOnce() -> Io<T> + 'static,
    {
        let sem = *self;
        crate::bracket::bracket(
            sem.wait().map(|_| 0_i64), // the resource token (unit-ish)
            move |_| sem.signal(),
            move |_| body(),
        )
    }
}

fn split(st: Value) -> (i64, Vec<Value>) {
    match st {
        Value::Pair(avail, waiters) => match (*avail, *waiters) {
            (Value::Int(a), Value::List(w)) => (a, w),
            other => panic!("malformed semaphore state: {other:?}"),
        },
        other => panic!("malformed semaphore state: {other}"),
    }
}

fn join(avail: i64, waiters: Vec<Value>) -> Value {
    Value::Pair(Box::new(Value::Int(avail)), Box::new(Value::List(waiters)))
}

impl FromValue for Sem {
    fn from_value(v: Value) -> Option<Self> {
        Some(Sem {
            state: MVar::from_id(v.as_mvar_id()?),
        })
    }
}

impl IntoValue for Sem {
    fn into_value(self) -> Value {
        Value::MVar(self.state.id())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{modify_mvar, timeout};
    use conch_runtime::prelude::*;

    #[test]
    fn counts_down_and_up() {
        let mut rt = Runtime::new();
        let prog = Sem::new(1).and_then(|s| {
            s.wait()
                .then(s.available())
                .and_then(move |a| s.signal().then(s.available()).map(move |b| (a, b)))
        });
        assert_eq!(rt.run(prog).unwrap(), (0, 1));
    }

    #[test]
    fn try_wait_respects_count() {
        let mut rt = Runtime::new();
        let prog = Sem::new(1).and_then(|s| {
            s.try_wait()
                .and_then(move |a| s.try_wait().map(move |b| (a, b)))
        });
        assert_eq!(rt.run(prog).unwrap(), (true, false));
    }

    #[test]
    fn blocked_waiter_wakes_on_signal() {
        let mut rt = Runtime::new();
        let prog = Sem::new(0).and_then(|s| {
            Io::new_empty_mvar::<i64>().and_then(move |out| {
                Io::fork(s.wait().then(out.put(1)))
                    .then(Io::sleep(10))
                    .then(s.signal())
                    .then(out.take())
            })
        });
        assert_eq!(rt.run(prog).unwrap(), 1);
    }

    #[test]
    fn fifo_wakeup_order() {
        let mut rt = Runtime::new();
        let prog = Sem::new(0).and_then(|s| {
            crate::Chan::<i64>::new().and_then(move |order| {
                Io::fork(s.wait().then(order.send(1)))
                    .then(Io::sleep(5))
                    .then(Io::fork(s.wait().then(order.send(2))))
                    .then(Io::sleep(5))
                    .then(s.signal())
                    .then(Io::sleep(5))
                    .then(s.signal())
                    .then(Io::sleep(5))
                    .then(order.recv())
                    .and_then(move |a| order.recv().map(move |b| (a, b)))
            })
        });
        assert_eq!(rt.run(prog).unwrap(), (1, 2));
    }

    #[test]
    fn with_releases_on_exception() {
        let mut rt = Runtime::new();
        let prog = Sem::new(1).and_then(|s| {
            s.with(|| Io::<i64>::throw(Exception::error_call("inside")))
                .catch(|_| Io::pure(0))
                .then(s.available())
        });
        assert_eq!(rt.run(prog).unwrap(), 1);
    }

    #[test]
    fn timed_out_waiter_does_not_corrupt_sem() {
        let mut rt = Runtime::new();
        // A waiter times out while blocked; the unit later granted is
        // still usable by someone else.
        let prog = Sem::new(0).and_then(|s| {
            timeout(100, s.wait()).and_then(move |r| {
                assert_eq!(r, None);
                s.signal().then(s.available())
            })
        });
        // NOTE: the timed-out waiter's wakeup cell is still queued; the
        // signal "wakes" the dead waiter's cell first. This mirrors real
        // QSem's documented weakness before GHC's QSem was rewritten —
        // the unit lands in the abandoned cell.
        assert_eq!(rt.run(prog).unwrap(), 0);
    }

    #[test]
    fn mutual_exclusion_under_load() {
        for seed in 0..10 {
            let cfg = RuntimeConfig::new().random_scheduling(seed).quantum(3);
            let mut rt = Runtime::with_config(cfg);
            let prog = Sem::new(1).and_then(|s| {
                Io::new_mvar(0_i64).and_then(move |inside| {
                    Io::new_mvar(0_i64).and_then(move |peak| {
                        Io::new_mvar(0_i64).and_then(move |done| {
                            let worker = move || {
                                s.with(move || {
                                    modify_mvar(inside, |n| Io::pure(n + 1))
                                        .then(crate::with_mvar(inside, move |n| {
                                            modify_mvar(peak, move |p| Io::pure(p.max(n)))
                                                .then(Io::pure(n))
                                        }))
                                        .then(Io::compute(20))
                                        .then(modify_mvar(inside, |n| Io::pure(n - 1)))
                                        .then(Io::pure(0_i64))
                                })
                                .then(modify_mvar(done, |d| Io::pure(d + 1)))
                            };
                            Io::fork(worker())
                                .then(Io::fork(worker()))
                                .then(Io::fork(worker()))
                                .then(Io::sleep(1_000_000))
                                .then(peak.take())
                                .and_then(move |p| done.take().map(move |d| (p, d)))
                        })
                    })
                })
            });
            let (peak, done) = rt.run(prog).unwrap();
            assert_eq!(done, 3, "seed {seed}: not all workers finished");
            assert_eq!(peak, 1, "seed {seed}: mutual exclusion violated");
        }
    }
}
