//! Speculative computation (§2's first motivation) with `either`/`race`.
//!
//! Run with `cargo run --example speculative`.
//!
//! Two search strategies race over the same (simulated) problem; the
//! first to finish wins and the loser is killed — its partial work and
//! its locks evaporate safely thanks to asynchronous exceptions. A
//! third scenario shows the whole race under a `timeout`, and a fourth
//! shows `both` waiting for two halves of a task.

use conch::prelude::*;
use conch_runtime::io::for_each;

/// A simulated search: `steps` chunks of pure work, checking a shared
/// "found it" flag via an MVar-protected counter along the way.
fn search(name: &'static str, steps: u64, progress: MVar<i64>) -> Io<String> {
    for_each(steps, move |_| {
        Io::compute(500).then(modify_mvar(progress, |n| Io::pure(n + 1)))
    })
    .map(move |_| format!("{name} found the answer"))
}

fn main() {
    let mut rt = Runtime::new();

    // --- Scenario 1: fast strategy beats slow strategy.
    let prog = Io::new_mvar(0_i64).and_then(|progress| {
        race(
            search("breadth-first", 10, progress),
            search("depth-first", 50, progress),
        )
        .and_then(move |winner| {
            // Give the loser time to leak work if it survived the kill.
            Io::sleep(10_000)
                .then(with_mvar(progress, Io::pure))
                .map(move |work_after| (winner, work_after))
        })
        .and_then(move |(winner, at_finish)| {
            Io::sleep(50_000)
                .then(with_mvar(progress, Io::pure))
                .map(move |later| (winner, at_finish, later))
        })
    });
    let (winner, at_finish, later) = rt.run(prog).unwrap();
    match &winner {
        Either::Left(msg) => println!("[race]  winner: {msg}"),
        Either::Right(msg) => println!("[race]  winner: {msg}"),
    }
    assert!(
        winner.is_left(),
        "breadth-first does less work and must win"
    );
    assert_eq!(
        at_finish, later,
        "the loser kept computing after it was killed!"
    );
    println!("[race]  loser stopped promptly: progress frozen at {later} chunks");

    // --- Scenario 2: the answer arrives before the deadline.
    let prog = Io::new_mvar(0_i64)
        .and_then(|p| timeout(10_000_000, race(search("a", 5, p), search("b", 9, p))));
    let within = rt.run(prog).unwrap();
    println!(
        "[budget] within deadline: {:?}",
        within.map(|w| w.fold(|a| a, |b| b))
    );

    // --- Scenario 3: the deadline kills the whole race.
    // Searches blocked on an MVar that is never filled: both stuck, the
    // timeout interrupts them (blocked takeMVar is interruptible, §5.3).
    let prog = Io::new_empty_mvar::<i64>().and_then(|never| {
        timeout(
            1_000,
            race(
                never.take().map(|_| "a".to_owned()),
                never.take().map(|_| "b".to_owned()),
            ),
        )
    });
    let expired = rt.run(prog).unwrap();
    println!("[budget] stuck searches under deadline: {expired:?}");
    assert!(expired.is_none());

    // --- Scenario 4: `both` gathers two halves of a task.
    let prog = Io::new_mvar(0_i64)
        .and_then(|p| both(search("left half", 4, p), search("right half", 6, p)));
    let (l, r) = rt.run(prog).unwrap();
    println!("[both]  gathered: {l:?} + {r:?}");

    println!("total scheduler steps this run: {}", rt.stats().steps);
}
